//! Cross-crate integration tests: the full offline → online → forecast
//! pipeline, exercised through the umbrella crate's public API only.

use focus::{
    Benchmark, Focus, FocusConfig, Forecaster, MtsDataset, Split, TrainOptions,
};

fn small_ds(seed: u64) -> MtsDataset {
    MtsDataset::generate(Benchmark::Pems08.scaled(8, 2_000), seed)
}

fn small_cfg() -> FocusConfig {
    let mut cfg = FocusConfig::new(64, 16);
    cfg.segment_len = 8;
    cfg.n_prototypes = 8;
    cfg.d = 16;
    cfg.readout = 4;
    cfg.cluster_iters = 10;
    cfg
}

#[test]
fn offline_online_forecast_pipeline() {
    let ds = small_ds(1);
    let mut model = Focus::fit_offline(&ds, small_cfg(), 1);
    let report = model.train(
        &ds,
        &TrainOptions {
            epochs: 3,
            max_windows: 32,
            ..Default::default()
        },
    );
    assert_eq!(report.epoch_losses.len(), 3);
    assert!(
        report.epoch_losses.last().unwrap() < &report.epoch_losses[0],
        "training did not reduce loss: {:?}",
        report.epoch_losses
    );
    let m = model.evaluate(&ds, Split::Test, 32);
    assert!(m.mse().is_finite() && m.mae().is_finite());
    assert!(m.count() > 0);
}

#[test]
fn focus_beats_climatology_after_training() {
    // Predicting "no change from the window mean" is the natural floor; a
    // trained FOCUS must beat it on structured periodic data.
    let ds = small_ds(2);
    let mut model = Focus::fit_offline(&ds, small_cfg(), 2);
    model.train(
        &ds,
        &TrainOptions {
            epochs: 6,
            max_windows: 64,
            ..Default::default()
        },
    );

    let mut model_metrics = focus::Metrics::new();
    let mut mean_metrics = focus::Metrics::new();
    for w in ds.windows(Split::Test, 64, 16, 32) {
        let pred = model.predict(&w.x);
        model_metrics.update(&pred, &w.y);
        // Climatology baseline: repeat the window mean.
        let stats = w.x.row_mean_std();
        let mut naive = focus::Tensor::zeros(&[8, 16]);
        for (e, (mean, _)) in stats.iter().enumerate() {
            for t in 0..16 {
                naive.data_mut()[e * 16 + t] = *mean;
            }
        }
        mean_metrics.update(&naive, &w.y);
    }
    assert!(
        model_metrics.mse() < mean_metrics.mse(),
        "FOCUS MSE {} >= climatology {}",
        model_metrics.mse(),
        mean_metrics.mse()
    );
}

#[test]
fn prototypes_round_trip_through_disk() {
    // Offline phase on one process, online phase on "another": the paper's
    // deployment story. Prototypes must survive serialisation and produce
    // identical forecasts.
    let ds = small_ds(3);
    let cfg = small_cfg();
    let model_a = Focus::fit_offline(&ds, cfg.clone(), 3);

    let dir = std::env::temp_dir().join("focus-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("protos.txt");
    model_a.prototypes().save(&path).unwrap();

    let protos = focus::Prototypes::load(&path).unwrap();
    let model_b = Focus::with_prototypes(cfg, protos, 3);
    let w = ds.window_at(0, 64, 16);
    assert_eq!(
        model_a.predict(&w.x).data(),
        model_b.predict(&w.x).data(),
        "same seed + same prototypes must give identical forecasts"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn zoo_models_share_the_pipeline() {
    use focus::{BaselineConfig, ModelKind};
    let ds = small_ds(4);
    let cfg = BaselineConfig {
        d: 8,
        n_prototypes: 4,
        ..BaselineConfig::new(48, 12)
    };
    for kind in [ModelKind::DLinear, ModelKind::PatchTst, ModelKind::Focus] {
        let mut model = cfg.build(kind, &ds);
        let r = model.train(
            &ds,
            &TrainOptions {
                epochs: 2,
                max_windows: 12,
                ..Default::default()
            },
        );
        assert!(r.epoch_losses.iter().all(|l| l.is_finite()), "{kind:?}");
        let m = model.evaluate(&ds, Split::Val, 48);
        assert!(m.mse().is_finite(), "{kind:?}");
    }
}

#[test]
fn ablation_variants_run_through_public_api() {
    use focus::{AblationVariant, FocusAblation};
    let ds = small_ds(5);
    let cfg = small_cfg();
    let protos = cfg.cluster(&ds.train_matrix(), 5);
    for v in AblationVariant::ALL {
        let model = FocusAblation::with_prototypes(v, cfg.clone(), &protos, 5);
        let w = ds.window_at(10, 64, 16);
        let pred = model.predict(&w.x);
        assert_eq!(pred.dims(), &[8, 16], "{v:?}");
        assert!(pred.all_finite(), "{v:?}");
    }
}

#[test]
fn stacked_focus_trains_through_public_api() {
    let ds = small_ds(7);
    let mut cfg = small_cfg();
    cfg.n_layers = 2;
    let mut model = Focus::fit_offline(&ds, cfg, 7);
    let r = model.train(
        &ds,
        &TrainOptions {
            epochs: 2,
            max_windows: 12,
            ..Default::default()
        },
    );
    assert!(r.epoch_losses.iter().all(|l| l.is_finite()));
    let w = ds.window_at(0, 64, 16);
    let pred = model.predict(&w.x);
    assert_eq!(pred.dims(), &[8, 16]);
    assert!(pred.all_finite());
}

#[test]
fn grid_search_selects_from_validation() {
    use focus::core::tune;
    let ds = small_ds(8);
    let mut base = small_cfg();
    base.cluster_iters = 4;
    base.d = 8;
    let report = tune::grid_search(
        &ds,
        &base,
        &[8, 16],
        &[4, 8],
        &TrainOptions {
            epochs: 1,
            max_windows: 8,
            ..Default::default()
        },
        3,
    );
    assert_eq!(report.points.len(), 4);
    let best = report.best_point();
    assert!(report.points.iter().all(|p| p.val_mse >= best.val_mse));
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let ds = small_ds(6);
        let mut model = Focus::fit_offline(&ds, small_cfg(), 6);
        model.train(
            &ds,
            &TrainOptions {
                epochs: 1,
                max_windows: 8,
                ..Default::default()
            },
        );
        let w = ds.window_at(0, 64, 16);
        model.predict(&w.x).into_vec()
    };
    assert_eq!(run(), run(), "end-to-end pipeline must be reproducible");
}
