#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and a warnings-as-
# errors clippy pass over the whole workspace. CI and pre-merge both run
# exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --workspace --examples --benches"
cargo build --release --workspace --examples --benches

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# Pinned two-thread leg: every kernel dispatch crosses the worker pool
# instead of inlining, so barrier/determinism regressions that a 1-core
# default run would never exercise fail here.
echo "==> FOCUS_THREADS=2 cargo test --workspace -q"
FOCUS_THREADS=2 cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Static-analysis pass: determinism / panic-hygiene / float-hygiene /
# unsafe-forbid invariants plus the cross-file stale-allow and
# opcode-coverage rules (see DESIGN.md §10, §14). The tool prints its rule
# and finding counts so regressions are visible in CI logs, and exits
# nonzero on any enforced finding.
echo "==> focus-lint crates/ src/"
cargo run -q -p focus-lint --release -- crates/ src/

# Machine-readable lint report: the --json mode is what CI dashboards
# consume, so verify that the schema line and a clean result actually come
# out of the same run the human-readable pass just made.
echo "==> focus-lint --json crates/ src/"
cargo run -q -p focus-lint --release -- --json crates/ src/ | tee /tmp/focus-lint-report.json
grep -q '"schema":"focus-lint-report v1"' /tmp/focus-lint-report.json
grep -q '"enforced":0' /tmp/focus-lint-report.json
grep -q '"io_errors":0' /tmp/focus-lint-report.json

# The lint's own fixture suite: every rule (including the workspace-wide
# clock ban and its single crates/trace/src/clock.rs exemption) must keep
# firing on its positive fixture and staying silent on its negative one.
echo "==> cargo test -p focus-lint -q"
cargo test -p focus-lint -q

# Steady-state train-step benchmark: measures the fused/pooled path against
# the reference path at 1/2/4 threads and rewrites BENCH_trainstep.json.
# Asserts internally that steady-state training performs zero fresh pool
# allocations, so a pool regression fails verification here too.
echo "==> cargo bench -p focus-bench --bench trainstep"
cargo bench -p focus-bench --bench trainstep

# Trace self-check: the bench must have produced a schema-versioned run
# report with a captured span tree (the bench itself asserts span coverage,
# disabled-mode overhead < 2%, and thread-invariant traces; this guards the
# report wiring end to end).
echo "==> trace report self-check (BENCH_trainstep.json)"
grep -q '"schema": "focus-trace-report v1"' BENCH_trainstep.json
grep -q '"spans"' BENCH_trainstep.json

# Compiled-plan self-check: the bench's plan arm must have recorded the plan
# counters (instruction/slot counts, steady-state pool lookups pinned at
# zero) and the plan-over-interpreter speedup metric. The bench itself
# asserts speedup >= 1.10x and bitwise parity with the interpreter; this
# guards that those numbers actually landed in the committed report.
echo "==> compiled-plan self-check (BENCH_trainstep.json)"
grep -q '"plan_instrs"' BENCH_trainstep.json
grep -q '"plan_slots"' BENCH_trainstep.json
grep -q '"plan_pool_lookups_steady": 0' BENCH_trainstep.json
grep -q '"plan_speedup_t1"' BENCH_trainstep.json
grep -q '"plan_after_t1_ns"' BENCH_trainstep.json

# Worker-pool self-check: steady-state training must have spawned zero OS
# threads (the bench asserts it; this guards that the report recorded it)
# and the pool's dispatch counters must have landed in the captured trace.
echo "==> worker-pool self-check (BENCH_trainstep.json)"
grep -q '"steady_state_spawns": 0' BENCH_trainstep.json
grep -q '"par/spawns"' BENCH_trainstep.json
grep -q '"par/parallel"' BENCH_trainstep.json
grep -q '"scaling_efficiency_t2"' BENCH_trainstep.json

echo "verify: OK"
