//! Quickstart: the full FOCUS pipeline in ~50 lines.
//!
//! 1. Generate a small PEMS08-like traffic dataset.
//! 2. Run the offline clustering phase to discover prototypes.
//! 3. Train the online network for a few epochs.
//! 4. Forecast and report accuracy.
//!
//! Tracing is switched on up front, so the run ends with a per-phase
//! wall-clock table (offline fit, forward, backward, optimizer, ...).
//!
//! Run with: `cargo run --release --example quickstart`

use focus::{trace, Benchmark, Focus, FocusConfig, Forecaster, MtsDataset, Split, TrainOptions};

fn main() {
    // Collect spans/counters for the whole run; disabled by default
    // everywhere else because the probes then cost a single atomic load.
    trace::set_enabled(true);

    // A laptop-scale stand-in for PEMS08: 16 sensors, ~14 days of 5-minute
    // readings (see DESIGN.md §4 for why synthetic data preserves the
    // relevant structure).
    let ds = MtsDataset::generate(Benchmark::Pems08.scaled(16, 4_032), 42);
    println!(
        "dataset: {} — {} entities × {} steps",
        ds.spec().name,
        ds.spec().entities,
        ds.spec().len
    );

    // Offline phase: cluster training segments into k prototypes.
    let mut cfg = FocusConfig::new(96, 24);
    cfg.segment_len = 12;
    cfg.n_prototypes = 12;
    cfg.d = 32;
    let mut model = Focus::fit_offline(&ds, cfg, 7);
    println!(
        "offline phase done: {} prototypes of length {}",
        model.prototypes().k(),
        model.prototypes().segment_len()
    );

    // Online phase: train the dual-branch network.
    let report = model.train(
        &ds,
        &TrainOptions {
            epochs: 5,
            max_windows: 64,
            ..Default::default()
        },
    );
    println!("training loss per epoch: {:?}", report.epoch_losses);

    // Forecast on the held-out test split.
    let metrics = model.evaluate(&ds, Split::Test, 24);
    println!(
        "test accuracy over {} points: MSE {:.4}, MAE {:.4}",
        metrics.count(),
        metrics.mse(),
        metrics.mae()
    );

    // Show one concrete forecast.
    let test_range = ds.range(Split::Test);
    let w = ds.window_at(test_range.start, 96, 24);
    let pred = model.predict(&w.x);
    println!("\nentity 0, first 8 forecast steps vs truth:");
    for t in 0..8 {
        println!("  t+{t:<2} pred {:+.3}   true {:+.3}", pred.at2(0, t), w.y.at2(0, t));
    }

    // The efficiency story: analytic cost of one forward pass.
    let cost = model.cost(ds.spec().entities);
    println!("\nforward-pass cost: {cost}");

    // Where the whole run (offline fit + training + evaluation + the
    // forecast above) spent its time, from the trace registry.
    println!("\nrun phases:");
    print!("{}", trace::report::phase_table(&trace::snapshot_spans()));
}
