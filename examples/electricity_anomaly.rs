//! Robustness scenario (the paper's §VIII-E study): how does forecast
//! accuracy degrade when the training data is polluted with sensor
//! outliers, for FOCUS vs the segmentation-based PatchTST?
//!
//! FOCUS's prototype assignment snaps corrupted segments onto clean
//! cluster centres, so its accuracy should decay more slowly.
//!
//! Run with: `cargo run --release --example electricity_anomaly`

use focus::baselines::PatchTst;
use focus::data::outliers;
use focus::{Benchmark, Focus, FocusConfig, Forecaster, MtsDataset, Split, TrainOptions};

fn main() {
    let spec = Benchmark::Electricity.scaled(12, 3_600);
    let clean = focus::data::synth::generate(&spec, 21);
    let (train_range, _, _) = spec.split_points();

    let opts = TrainOptions {
        epochs: 4,
        max_windows: 48,
        ..Default::default()
    };

    println!("outlier-pollution study on an Electricity-like dataset");
    println!("{:>8}  {:>12}  {:>12}", "ratio", "FOCUS MSE", "PatchTST MSE");

    for ratio in [0.0, 0.04, 0.08] {
        // Corrupt only the training region, as in Fig. 10.
        let polluted = outliers::inject(&clean, train_range.clone(), ratio, 5);
        let ds = MtsDataset::from_raw(spec.clone(), polluted);

        let mut cfg = FocusConfig::new(96, 24);
        cfg.segment_len = 12;
        cfg.n_prototypes = 10;
        cfg.d = 24;
        let mut focus_model = Focus::fit_offline(&ds, cfg, 1);
        focus_model.train(&ds, &opts);
        let focus_mse = focus_model.evaluate(&ds, Split::Test, 48).mse();

        let mut patch = PatchTst::new(96, 24, 12, 24, 1);
        patch.train(&ds, &opts);
        let patch_mse = patch.evaluate(&ds, Split::Test, 48).mse();

        println!("{:>7.0}%  {focus_mse:>12.4}  {patch_mse:>12.4}", ratio * 100.0);
    }

    println!("\n(the test split is always clean; only training data is polluted)");
}
