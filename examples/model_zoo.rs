//! League table: train every model in the zoo (FOCUS + 7 baselines) on the
//! same dataset and print accuracy next to the analytic efficiency metrics —
//! a miniature of the paper's Table III + Fig. 6.
//!
//! Run with: `cargo run --release --example model_zoo`

use focus::{BaselineConfig, Benchmark, ModelKind, MtsDataset, Split, TrainOptions};

fn main() {
    let ds = MtsDataset::generate(Benchmark::Pems08.scaled(12, 3_000), 33);
    println!(
        "dataset: {}-like, {} entities × {} steps; lookback 96 → horizon 24\n",
        ds.spec().name,
        ds.spec().entities,
        ds.spec().len
    );

    let cfg = BaselineConfig {
        d: 24,
        n_prototypes: 10,
        ..BaselineConfig::new(96, 24)
    };
    let opts = TrainOptions {
        epochs: 10,
        max_windows: 64,
        ..Default::default()
    };

    println!(
        "{:<14} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "model", "MSE", "MAE", "MFLOPs", "Mem(MiB)", "Params(K)"
    );
    let mut rows = Vec::new();
    for kind in ModelKind::ALL {
        let mut model = cfg.build(kind, &ds);
        model.train(&ds, &opts);
        let m = model.evaluate(&ds, Split::Test, 48);
        let c = model.cost(ds.spec().entities);
        rows.push((kind.label(), m.mse(), m.mae(), c));
    }
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (name, mse, mae, c) in rows {
        println!(
            "{name:<14} {mse:>8.4} {mae:>8.4} {:>10.2} {:>10.3} {:>10.1}",
            c.mflops(),
            c.mem_mib(),
            c.kparams()
        );
    }
    println!("\n(sorted by MSE; efficiency metrics are analytic, per forward pass)");
}
