//! Traffic-management scenario (the paper's motivating application):
//! forecast the next two hours of flow at a group of intersections, inspect
//! the prototypes the offline phase discovered, and read the learned
//! long-range dependencies (the Fig. 13 analysis).
//!
//! Run with: `cargo run --release --example traffic_forecast`

use focus::core::protoattn::Assignment;
use focus::{Benchmark, Focus, FocusConfig, Forecaster, MtsDataset, Split, TrainOptions};

fn main() {
    // PEMS04-like: 5-minute flow at 24 intersections over ~3 weeks.
    let ds = MtsDataset::generate(Benchmark::Pems04.scaled(24, 6_048), 11);
    let spd = ds.spec().steps_per_day();
    println!(
        "traffic network: {} intersections, {} days of 5-minute flow",
        ds.spec().entities,
        ds.spec().len / spd
    );

    // Lookback = 8 hours (96 steps), horizon = 2 hours (24 steps).
    let mut cfg = FocusConfig::new(96, 24);
    cfg.segment_len = 12; // one-hour segments
    cfg.n_prototypes = 10;
    cfg.d = 32;
    let mut model = Focus::fit_offline(&ds, cfg, 3);

    // Inspect the discovered prototypes: each is a one-hour flow motif.
    println!("\ndiscovered hourly flow motifs (prototype, min → max):");
    for j in 0..model.prototypes().k() {
        let row = model.prototypes().centers().row(j);
        let lo = row.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let shape: String = row
            .iter()
            .map(|&v| {
                let u = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
                [' ', '.', ':', '|', '#'][(u * 4.0).round() as usize]
            })
            .collect();
        println!("  proto {j:>2}  [{shape}]  range {lo:+.2}..{hi:+.2}");
    }

    model.train(
        &ds,
        &TrainOptions {
            epochs: 5,
            max_windows: 64,
            ..Default::default()
        },
    );

    let metrics = model.evaluate(&ds, Split::Test, 24);
    println!(
        "\n2-hour-ahead accuracy: MSE {:.4}, MAE {:.4}",
        metrics.mse(),
        metrics.mae()
    );

    // Fig. 13-style analysis: which past hours does the model consult?
    let test_range = ds.range(Split::Test);
    let w = ds.window_at(test_range.start, 96, 24);
    let (x_norm, _) = focus::nn::revin::instance_norm(&w.x);
    let segs = model.extractor().segment_view(&x_norm);
    let assign = Assignment::Hard.matrix(&segs, model.prototypes());
    let dep = model
        .extractor()
        .temporal_attn()
        .dependency_matrix(model.params(), &segs, &assign);

    println!("\nlearned temporal dependency of intersection 0 (rows: hour of lookback):");
    let l = segs.dims()[1];
    for i in 0..l {
        let row: String = (0..l)
            .map(|j| {
                let v = dep.at3(0, i, j);
                [' ', '.', ':', '|', '#'][((v * 4.0 * l as f32).min(4.0)) as usize]
            })
            .collect();
        println!("  hour -{:<2} attends [{row}]", l - i);
    }
}
