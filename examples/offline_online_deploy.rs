//! Deployment-split scenario: the paper's two-phase design means the
//! expensive clustering runs **once, offline** (e.g. a nightly batch job)
//! and the online service only loads the prototype file and trains/serves
//! the lightweight network.
//!
//! This example plays both roles in one process, with the prototype file as
//! the hand-off artifact.
//!
//! Run with: `cargo run --release --example offline_online_deploy`

use focus::{
    Benchmark, Focus, FocusConfig, Forecaster, MtsDataset, Prototypes, Split, TrainOptions,
};
use std::time::Instant;

fn main() {
    let ds = MtsDataset::generate(Benchmark::Electricity.scaled(12, 4_000), 99);
    let mut cfg = FocusConfig::new(96, 24);
    cfg.segment_len = 12;
    cfg.n_prototypes = 10;
    cfg.d = 24;

    let proto_path = std::env::temp_dir().join("focus_prototypes.txt");

    // ---- Offline worker -------------------------------------------------
    {
        let t0 = Instant::now();
        let prototypes = cfg.cluster(&ds.train_matrix(), 1);
        prototypes.save(&proto_path).expect("persist prototypes");
        println!(
            "[offline] clustered {} train segments into {} prototypes in {:.0} ms",
            ds.train_matrix().numel() / cfg.segment_len,
            prototypes.k(),
            t0.elapsed().as_secs_f64() * 1e3
        );
        println!("[offline] wrote {}", proto_path.display());
    }

    // ---- Online service --------------------------------------------------
    {
        let prototypes = Prototypes::load(&proto_path).expect("load prototypes");
        println!(
            "[online]  loaded {} prototypes (objective {:?})",
            prototypes.k(),
            prototypes.objective()
        );
        let mut model = Focus::with_prototypes(cfg.clone(), prototypes, 1);
        let report = model.train(
            &ds,
            &TrainOptions {
                epochs: 30,
                max_windows: 64,
                patience: Some(4),
                ..Default::default()
            },
        );
        println!(
            "[online]  trained {} epochs (best validation at epoch {:?})",
            report.epoch_losses.len(),
            report.best_epoch
        );

        let t0 = Instant::now();
        let metrics = model.evaluate(&ds, Split::Test, 24);
        let n_windows = ds.windows(Split::Test, 96, 24, 24).len();
        println!(
            "[online]  test MSE {:.4}, MAE {:.4}  ({} windows in {:.0} ms — {:.1} ms/forecast)",
            metrics.mse(),
            metrics.mae(),
            n_windows,
            t0.elapsed().as_secs_f64() * 1e3,
            t0.elapsed().as_secs_f64() * 1e3 / n_windows as f64
        );
    }

    std::fs::remove_file(&proto_path).ok();
}
