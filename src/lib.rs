//! # focus
//!
//! Umbrella crate for the FOCUS reproduction — *Accurate and Efficient
//! Multivariate Time Series Forecasting via Offline Clustering* (ICDE 2025).
//!
//! Everything in the workspace is re-exported here so applications can
//! depend on one crate:
//!
//! * [`tensor`] — dense f32 kernels;
//! * [`autograd`] — reverse-mode differentiation + AdamW/Adam/SGD;
//! * [`nn`] — layers and analytic cost accounting;
//! * [`data`] — synthetic Table II benchmarks, windowing, metrics;
//! * [`cluster`] — the offline segment-clustering phase;
//! * [`core`] — ProtoAttn, the dual-branch FOCUS model, ablations;
//! * [`baselines`] — the seven comparison forecasters;
//! * [`trace`] — opt-in spans, counters, and schema-versioned run reports.
//!
//! The most common entry points are lifted to the crate root:
//!
//! ```
//! use focus::{Benchmark, Focus, FocusConfig, Forecaster, MtsDataset, Split};
//!
//! let ds = MtsDataset::generate(Benchmark::Etth1.scaled(4, 1_500), 7);
//! let mut cfg = FocusConfig::new(48, 12);
//! cfg.d = 16;
//! cfg.n_prototypes = 6;
//! cfg.cluster_iters = 5;
//! let mut model = Focus::fit_offline(&ds, cfg, 1);
//! model.train(&ds, &focus::TrainOptions { epochs: 1, max_windows: 8, ..Default::default() });
//! let m = model.evaluate(&ds, Split::Test, 64);
//! assert!(m.mse().is_finite());
//! ```

#![forbid(unsafe_code)]

pub use focus_autograd as autograd;
pub use focus_baselines as baselines;
pub use focus_cluster as cluster;
pub use focus_core as core;
pub use focus_data as data;
pub use focus_nn as nn;
pub use focus_tensor as tensor;
pub use focus_trace as trace;

pub use focus_baselines::{BaselineConfig, ModelKind};
pub use focus_cluster::{ClusterConfig, Objective, Prototypes};
pub use focus_core::{
    AblationVariant, Assignment, Focus, FocusAblation, FocusConfig, Forecaster, TrainOptions,
};
pub use focus_data::{Benchmark, Metrics, MtsDataset, Split};
pub use focus_tensor::Tensor;
