//! Wall-clock backing for the GEMM assignment + sparse routing rewrite:
//!
//! * composite-distance `assign_all` — serial scalar per-pair sweep vs the
//!   blocked two-GEMM kernel, swept across worker threads;
//! * one-hot routing — dense `[B,l,k]·[B,k,d]` bmm vs the `route_gather`
//!   index kernel (and the matching backward: dense `bmm_tn` vs
//!   `route_scatter_add`).
//!
//! Rewrites `BENCH_assign.json` at the repository root — a schema-versioned
//! [`focus_trace::report::RunReport`] — so the numbers are tracked alongside
//! the code; equality metrics record that the fast paths returned the same
//! assignments / bitwise-identical tensors in this run.

use focus_cluster::{ClusterConfig, Objective, ProtoUpdate};
use focus_tensor::{par, route, Tensor};
use focus_trace::clock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Best-of-`reps` wall time of `f`, in nanoseconds, after one warm-up call.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = clock::now_ns();
        f();
        best = best.min(clock::now_ns().saturating_sub(start) as f64);
    }
    best
}

fn fmt_ms(ns: f64) -> String {
    format!("{:.3} ms", ns / 1e6)
}

struct Sweep {
    label: &'static str,
    naive_ns: f64,
    /// `(threads, ns)` for the fast path.
    fast: Vec<(usize, f64)>,
    /// Fast path reproduced the baseline's output in this run.
    matches: bool,
}

impl Sweep {
    fn fast_t1(&self) -> f64 {
        self.fast.iter().find(|&&(t, _)| t == 1).map_or(f64::NAN, |&(_, ns)| ns)
    }

    fn report(&self) {
        println!(
            "{}: naive {} | speedup at 1 thread: {:.2}x | output match: {}",
            self.label,
            fmt_ms(self.naive_ns),
            self.naive_ns / self.fast_t1(),
            self.matches
        );
        for &(t, ns) in &self.fast {
            println!("  fast, {t} thread(s): {}", fmt_ms(ns));
        }
    }

    fn to_report(&self, report: &mut focus_trace::report::RunReport) {
        report.metric(&format!("{}/naive_ns", self.label), self.naive_ns);
        for &(t, ns) in &self.fast {
            report.metric(&format!("{}/fast_t{t}_ns", self.label), ns);
        }
        report.metric(&format!("{}/speedup_1_thread", self.label), self.naive_ns / self.fast_t1());
        report.metric(&format!("{}/output_match", self.label), f64::from(u8::from(self.matches)));
    }
}

fn sweep_threads() -> Vec<usize> {
    let mut ts = vec![1usize, 2, 4];
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    if !ts.contains(&max) {
        ts.push(max);
    }
    ts
}

/// Scalar per-pair sweep vs the blocked two-GEMM assignment kernel, at the
/// sizes of the recorded `assign_all_20000x32_k64` baseline.
fn bench_assign() -> Sweep {
    let (n, p, k) = (20_000usize, 32usize, 64usize);
    let mut rng = StdRng::seed_from_u64(0xa551);
    let segs = Tensor::randn(&[n, p], 1.0, &mut rng);
    let protos = ClusterConfig::new(k, p)
        .with_objective(Objective::rec_corr(0.2))
        .with_update(ProtoUpdate::ClosedFormMean)
        .with_max_iters(3)
        .fit(&segs, 1);
    let reps = 5;

    par::set_threads(1);
    let naive_ns = time_ns(reps, || {
        black_box(protos.assign_all_scalar(&segs));
    });
    let matches = protos.assign_all(&segs) == protos.assign_all_scalar(&segs);

    let mut sweep = Sweep {
        label: "assign_all_20000x32_k64",
        naive_ns,
        fast: Vec::new(),
        matches,
    };
    for t in sweep_threads() {
        par::set_threads(t);
        sweep.fast.push((t, time_ns(reps, || {
            black_box(protos.assign_all(&segs));
        })));
    }
    par::set_threads(0);
    sweep
}

/// Dense one-hot bmm vs the sparse gather (forward) and scatter-add
/// (backward) routing kernels at ProtoAttn-scale shapes.
fn bench_routing() -> [Sweep; 2] {
    let (b, l, k, d) = (64usize, 128usize, 64usize, 64usize);
    let mut rng = StdRng::seed_from_u64(0x307e);
    let head = Tensor::randn(&[b, k, d], 1.0, &mut rng);
    let dout = Tensor::randn(&[b, l, d], 1.0, &mut rng);
    let indices: Vec<u32> = (0..b * l).map(|_| rng.gen_range(0..k) as u32).collect();
    let one_hot = route::one_hot_matrix(&indices, b, l, k);
    let reps = 7;

    par::set_threads(1);
    let dense_fwd_ns = time_ns(reps, || {
        black_box(one_hot.bmm(&head));
    });
    let dense_bwd_ns = time_ns(reps, || {
        black_box(one_hot.bmm_tn(&dout));
    });
    let fwd_match = route::route_gather(&head, &indices, l).data() == one_hot.bmm(&head).data();
    let bwd_match = route::route_scatter_add(&dout, &indices, k).data() == one_hot.bmm_tn(&dout).data();

    let mut fwd = Sweep {
        label: "route_gather_b64_l128_k64_d64",
        naive_ns: dense_fwd_ns,
        fast: Vec::new(),
        matches: fwd_match,
    };
    let mut bwd = Sweep {
        label: "route_scatter_add_b64_l128_k64_d64",
        naive_ns: dense_bwd_ns,
        fast: Vec::new(),
        matches: bwd_match,
    };
    for t in sweep_threads() {
        par::set_threads(t);
        fwd.fast.push((t, time_ns(reps, || {
            black_box(route::route_gather(&head, &indices, l));
        })));
        bwd.fast.push((t, time_ns(reps, || {
            black_box(route::route_scatter_add(&dout, &indices, k));
        })));
    }
    par::set_threads(0);
    [fwd, bwd]
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("assignment + routing sweep (host cores: {cores})");

    let assign = bench_assign();
    let routing = bench_routing();
    assign.report();
    for s in &routing {
        s.report();
    }

    let mut report = focus_trace::report::RunReport::new("assign");
    report
        .setting("assign", "20000x32 segments, k=64, rec+corr(0.2)")
        .setting("routing", "b=64, l=128, k=64, d=64");
    assign.to_report(&mut report);
    for s in &routing {
        s.to_report(&mut report);
    }
    // Record the worker pool's dispatch stats (par/*) for the whole sweep.
    focus_trace::set_enabled(true);
    par::publish_trace_stats();
    focus_trace::set_enabled(false);
    report.capture_trace();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_assign.json");
    match report.write(path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
