//! Fusion-stage wall clock: the Parallel Fusion Module (readout queries +
//! gating) vs the gated-linear alternative of Table IV, across entity
//! counts — backing the "linear scalability" claim of §VII-B.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focus_autograd::{Graph, ParamStore};
use focus_core::fusion::ParallelFusion;
use focus_nn::Linear;
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const D: usize = 32;
const L: usize = 24;
const M: usize = 6;
const HORIZON: usize = 24;

fn bench_fusion_scaling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);

    let mut group = c.benchmark_group("fusion_scaling");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [8usize, 32, 128] {
        let h_t = Tensor::randn(&[n, L, D], 1.0, &mut rng);
        let h_e = Tensor::randn(&[n, L, D], 1.0, &mut rng);

        // Parallel Fusion Module (the paper's design).
        let mut ps = ParamStore::new();
        let fusion = ParallelFusion::new(&mut ps, "fusion", M, D, HORIZON, &mut rng);
        group.bench_with_input(BenchmarkId::new("parallel_fusion", n), &n, |b, _| {
            b.iter(|| {
                let mut g = Graph::new();
                let pv = ps.register(&mut g);
                let ht = g.constant(h_t.clone());
                let he = g.constant(h_e.clone());
                let y = fusion.forward(&mut g, &pv, ht, he);
                black_box(g.value(y).sum_all())
            })
        });

        // Gated linear fusion (Table IV's FOCUS-LnrFusion stage).
        let mut ps2 = ParamStore::new();
        let w1 = Linear::new(&mut ps2, "w1", 2 * L * D, HORIZON, &mut rng);
        let w2 = Linear::new(&mut ps2, "w2", 2 * L * D, HORIZON, &mut rng);
        group.bench_with_input(BenchmarkId::new("gated_linear", n), &n, |b, _| {
            b.iter(|| {
                let mut g = Graph::new();
                let pv = ps2.register(&mut g);
                let ht = g.constant(h_t.reshape(&[n, L * D]));
                let he = g.constant(h_e.reshape(&[n, L * D]));
                let z = g.concat_last(ht, he);
                let lin = w1.forward(&mut g, &pv, z);
                let gate_logits = w2.forward(&mut g, &pv, z);
                let gate = g.sigmoid(gate_logits);
                let y = g.mul(lin, gate);
                black_box(g.value(y).sum_all())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fusion_scaling);
criterion_main!(benches);
