//! Wall-clock forward-pass comparison of every model in the zoo (the
//! runtime counterpart of Fig. 6's analytic FLOPs), plus one training step
//! of FOCUS (forward + backward + AdamW).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focus_autograd::{AdamW, Graph};
use focus_baselines::{BaselineConfig, ModelKind};
use focus_core::{Focus, FocusConfig, Forecaster};
use focus_data::{Benchmark, MtsDataset};
use focus_nn::revin::instance_norm;
use std::hint::black_box;

fn bench_forward_per_model(c: &mut Criterion) {
    let ds = MtsDataset::generate(Benchmark::Pems08.scaled(12, 2_400), 5);
    let cfg = BaselineConfig {
        d: 24,
        n_prototypes: 12,
        ..BaselineConfig::new(96, 24)
    };
    let w = ds.window_at(0, 96, 24);

    let mut group = c.benchmark_group("forward_pass");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for kind in ModelKind::ALL {
        let model = cfg.build(kind, &ds);
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, _| {
            b.iter(|| black_box(model.predict(&w.x)))
        });
    }
    group.finish();
}

fn bench_focus_train_step(c: &mut Criterion) {
    let ds = MtsDataset::generate(Benchmark::Pems08.scaled(12, 2_400), 6);
    let mut cfg = FocusConfig::new(96, 24);
    cfg.segment_len = 8;
    cfg.n_prototypes = 12;
    cfg.d = 24;
    let mut model = Focus::fit_offline(&ds, cfg, 1);
    let w = ds.window_at(0, 96, 24);
    let (x_norm, _) = instance_norm(&w.x);
    let y_norm = {
        let (_, stats) = instance_norm(&w.x);
        focus_core::forecaster::normalise_target(&w.y, &stats)
    };
    let mut opt = AdamW::new(1e-3, 0.0);

    c.bench_function("focus_train_step", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let pv = model.params().register(&mut g);
            let pred = model.forward_window(&mut g, &pv, &x_norm);
            let target = g.constant(y_norm.clone());
            let loss = g.mse(pred, target);
            g.backward(loss);
            model.params_mut().step(&mut opt, &g, &pv);
            black_box(g.value(loss).item())
        })
    });
}

fn bench_offline_phase(c: &mut Criterion) {
    let ds = MtsDataset::generate(Benchmark::Pems08.scaled(12, 2_400), 7);
    let mut cfg = FocusConfig::new(96, 24);
    cfg.segment_len = 8;
    cfg.n_prototypes = 12;
    cfg.cluster_iters = 10;
    let train = ds.train_matrix();

    c.bench_function("offline_phase", |b| {
        b.iter(|| black_box(cfg.cluster(&train, 1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_forward_per_model, bench_focus_train_step, bench_offline_phase
}
criterion_main!(benches);
