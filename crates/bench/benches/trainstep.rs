//! End-to-end training-step benchmark for the dual-branch FOCUS model:
//! instance-norm → forward → MSE → backward → AdamW step, i.e. exactly the
//! per-window work of [`Forecaster::train`].
//!
//! Two execution modes are timed:
//!
//! * **before** — buffer pool disabled and fused kernels off, reproducing
//!   the pre-pool/pre-fusion per-step behaviour (every kernel allocates its
//!   output and the reference serial backward rules run);
//! * **after** — pooled allocation + fused forward/backward kernels +
//!   fused AdamW, swept across 1/2/4/max worker threads.
//!
//! The host may be time-shared, so before/after are measured in
//! *interleaved* rounds — a block of before-steps then a block of
//! after-steps per round, best block kept for each — ensuring both modes
//! sample the same background-load conditions instead of whichever phase of
//! the machine's mood their contiguous run landed on.
//!
//! The run rewrites `BENCH_trainstep.json` at the repository root, including
//! the steady-state pool counters proving the zero-allocation invariant.

use focus_autograd::{self as autograd, AdamW, Graph};
use focus_core::forecaster::normalise_target;
use focus_core::model::{Focus, FocusConfig};
use focus_core::Forecaster;
use focus_data::{Benchmark, MtsDataset, Split};
use focus_nn::revin::instance_norm;
use focus_tensor::{par, pool};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Steps per timed block; one block is the unit of comparison.
const BLOCK: usize = 4;
/// Interleaved rounds; each round times one block per mode.
const ROUNDS: usize = 15;

fn fmt_ms(ns: f64) -> String {
    format!("{:.3} ms", ns / 1e6)
}

struct Harness {
    model: Focus,
    windows: Vec<focus_data::Window>,
    opt: AdamW,
    graph: Graph,
    next: usize,
}

impl Harness {
    fn new() -> Harness {
        let (entities, lookback, horizon) = (32, 96, 24);
        let ds = MtsDataset::generate(Benchmark::Pems08.scaled(entities, 2_000), 7);
        let mut cfg = FocusConfig::new(lookback, horizon);
        cfg.segment_len = 8;
        cfg.n_prototypes = 8;
        cfg.d = 32;
        cfg.readout = 6;
        cfg.cluster_iters = 6;
        let model = Focus::fit_offline(&ds, cfg, 1);
        let windows = ds.windows(Split::Train, lookback, horizon, 64);
        assert!(windows.len() >= 4, "need a few distinct training windows");
        Harness {
            model,
            windows,
            opt: AdamW::new(1e-3, 1e-4),
            graph: Graph::new(),
            next: 0,
        }
    }

    /// One full train step on the next window (cycling through the set).
    fn step(&mut self) {
        let w = &self.windows[self.next % self.windows.len()];
        self.next += 1;
        let (x_norm, stats) = instance_norm(&w.x);
        let y_norm = normalise_target(&w.y, &stats);
        let g = &mut self.graph;
        g.reset();
        let pv = self.model.params().register(g);
        let pred = self.model.forward_window(g, &pv, &x_norm);
        let target = g.constant(y_norm);
        let loss = g.mse(pred, target);
        g.backward(loss);
        self.model.params_mut().step(&mut self.opt, g, &pv);
        black_box(g.value(loss).item());
    }

    /// Times one block of steps, returning ns per step.
    fn block_ns(&mut self) -> f64 {
        let start = Instant::now();
        for _ in 0..BLOCK {
            self.step();
        }
        start.elapsed().as_nanos() as f64 / BLOCK as f64
    }
}

/// Puts the process in "before" (pre-PR) or "after" execution mode.
fn set_mode(after: bool) {
    pool::set_enabled(after);
    autograd::set_fused(after);
}

fn sweep_threads() -> Vec<usize> {
    let mut ts = vec![1usize, 2, 4];
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    if !ts.contains(&max) {
        ts.push(max);
    }
    ts
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("train-step sweep: dual-branch FOCUS, 32 entities x L=96 -> 24 (host cores: {cores})");
    par::set_threads(1);

    // Build one harness per mode, each warmed in its own mode so the pooled
    // harness starts at steady state.
    set_mode(false);
    let mut before_h = Harness::new();
    set_mode(true);
    let mut after_h = Harness::new();
    for _ in 0..3 {
        after_h.step();
    }
    set_mode(false);
    for _ in 0..3 {
        before_h.step();
    }

    // Interleaved rounds: both modes sample every load phase of the host.
    let mut before_ns = f64::INFINITY;
    let mut after1_ns = f64::INFINITY;
    let mut fresh_total = 0u64;
    for _ in 0..ROUNDS {
        set_mode(false);
        before_ns = before_ns.min(before_h.block_ns());
        set_mode(true);
        let f0 = pool::fresh_allocs();
        after1_ns = after1_ns.min(after_h.block_ns());
        fresh_total += pool::fresh_allocs() - f0;
    }
    let steady_steps = ROUNDS * BLOCK;
    assert_eq!(
        fresh_total, 0,
        "steady-state training must not allocate fresh pool buffers ({fresh_total} over {steady_steps} steps)"
    );
    println!("before (no pool, reference kernels, 1 thread): {}", fmt_ms(before_ns));
    println!(
        "after  (pool + fused, 1 thread): {}  [fresh allocs over {steady_steps} steady steps: {fresh_total}]",
        fmt_ms(after1_ns)
    );
    println!("single-thread speedup: {:.2}x", before_ns / after1_ns);

    // Thread sweep for the fused mode (the host may expose only one core;
    // the sweep still proves bitwise stability and records the scaling).
    set_mode(true);
    let mut after = Vec::new();
    for t in sweep_threads() {
        par::set_threads(t);
        if t == 1 {
            after.push((t, after1_ns));
            continue;
        }
        let mut h = Harness::new();
        for _ in 0..3 {
            h.step();
        }
        let mut best = f64::INFINITY;
        for _ in 0..ROUNDS / 3 {
            best = best.min(h.block_ns());
        }
        after.push((t, best));
        println!("after  (pool + fused, {t} threads): {}", fmt_ms(best));
    }
    par::set_threads(0);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"model\": \"FOCUS dual-branch, 32 entities, L=96, p=8, k=8, d=32, m=6, horizon=24\","
    );
    let _ = writeln!(json, "  \"step\": \"instance_norm + forward + mse + backward + adamw\",");
    let _ = writeln!(json, "  \"interleaved_rounds\": {ROUNDS},");
    let _ = writeln!(json, "  \"block_steps\": {BLOCK},");
    let _ = writeln!(json, "  \"before_1_thread_ns\": {before_ns:.0},");
    for &(t, ns) in &after {
        let _ = writeln!(json, "  \"after_t{t}_ns\": {ns:.0},");
    }
    let _ = writeln!(json, "  \"steady_state_steps\": {steady_steps},");
    let _ = writeln!(json, "  \"steady_state_fresh_allocs\": {fresh_total},");
    let _ = write!(json, "  \"speedup_1_thread\": {:.3}\n}}\n", before_ns / after1_ns);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trainstep.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
