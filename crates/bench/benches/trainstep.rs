//! End-to-end training-step benchmark for the dual-branch FOCUS model:
//! instance-norm → forward → MSE → backward → AdamW step, i.e. exactly the
//! per-window work of [`Forecaster::train`].
//!
//! Two execution modes are timed:
//!
//! * **before** — buffer pool disabled and fused kernels off, reproducing
//!   the pre-pool/pre-fusion per-step behaviour (every kernel allocates its
//!   output and the reference serial backward rules run);
//! * **after** — pooled allocation + fused forward/backward kernels +
//!   fused AdamW, swept across 1/2/4/max worker threads;
//! * **plan** — the compiled-plan VM: after two interpreted warmup steps
//!   the tape is lowered to a flat instruction sequence with pre-resolved
//!   buffer slots, and every further step replays it with zero graph
//!   traversal and zero pool lookups (`plan/pool_lookups_steady == 0`).
//!
//! The host may be time-shared, so before/after are measured in
//! *interleaved* rounds — a block of before-steps then a block of
//! after-steps per round, best block kept for each — ensuring both modes
//! sample the same background-load conditions instead of whichever phase of
//! the machine's mood their contiguous run landed on.
//!
//! On top of the timings, the run exercises the `focus-trace` observability
//! layer end to end and asserts its contract:
//!
//! * a traced run covers the six core phases (forward / backward / optimizer
//!   / assignment / routing / pool reclaim);
//! * the projected cost of *disabled* tracing stays under 2% of a step;
//! * the span tree's structure and counters are identical at 1/2/4 threads;
//! * enabled-but-unread tracing changes no model parameter bitwise.
//!
//! The run rewrites `BENCH_trainstep.json` at the repository root as a
//! schema-versioned [`focus_trace::report::RunReport`], including the
//! steady-state pool counters proving the zero-allocation invariant.

use focus_autograd::plan::PlanCache;
use focus_autograd::{self as autograd, AdamW, Graph};
use focus_core::forecaster::normalise_target;
use focus_core::model::{Focus, FocusConfig};
use focus_core::Forecaster;
use focus_data::{Benchmark, MtsDataset, Split};
use focus_nn::revin::instance_norm;
use focus_tensor::{par, pool};
use focus_trace::clock;
use std::hint::black_box;

/// Steps per timed block; one block is the unit of comparison.
const BLOCK: usize = 4;
/// Interleaved rounds; each round times one block per mode.
const ROUNDS: usize = 15;
/// Steps per traced run (span-coverage, thread-sweep and bitwise checks).
const TRACE_STEPS: usize = 6;

/// The six span names the trace contract promises a train step covers.
const CORE_SPANS: [&str; 6] = [
    "model/forward",
    "autograd/backward",
    "autograd/optimizer",
    "cluster/assign",
    "model/routing",
    "pool/reclaim",
];

fn fmt_ms(ns: f64) -> String {
    format!("{:.3} ms", ns / 1e6)
}

struct Harness {
    model: Focus,
    windows: Vec<focus_data::Window>,
    opt: AdamW,
    graph: Graph,
    pcache: PlanCache,
    next: usize,
}

impl Harness {
    fn new() -> Harness {
        let (entities, lookback, horizon) = (32, 96, 24);
        let ds = MtsDataset::generate(Benchmark::Pems08.scaled(entities, 2_000), 7);
        let mut cfg = FocusConfig::new(lookback, horizon);
        cfg.segment_len = 8;
        cfg.n_prototypes = 8;
        cfg.d = 32;
        cfg.readout = 6;
        cfg.cluster_iters = 6;
        let model = Focus::fit_offline(&ds, cfg, 1);
        let windows = ds.windows(Split::Train, lookback, horizon, 64);
        assert!(windows.len() >= 4, "need a few distinct training windows");
        Harness {
            model,
            windows,
            opt: AdamW::new(1e-3, 1e-4),
            graph: Graph::new(),
            pcache: PlanCache::new(),
            next: 0,
        }
    }

    /// One full train step on the next window (cycling through the set).
    fn step(&mut self) {
        let w = &self.windows[self.next % self.windows.len()];
        self.next += 1;
        let (x_norm, stats) = instance_norm(&w.x);
        let y_norm = normalise_target(&w.y, &stats);
        let g = &mut self.graph;
        g.reset();
        let pv = self.model.params().register(g);
        let pred = self.model.forward_window(g, &pv, &x_norm);
        let target = g.constant(y_norm);
        let loss = g.mse(pred, target);
        g.backward(loss);
        self.model.params_mut().step(&mut self.opt, g, &pv);
        black_box(g.value(loss).item());
    }

    /// One train step through the plan cache: warmup steps interpret and
    /// feed the compiler, steady-state steps replay the flat plan — the
    /// exact control flow of [`Forecaster::train`].
    fn plan_step(&mut self) {
        let w = &self.windows[self.next % self.windows.len()];
        self.next += 1;
        let (x_norm, stats) = instance_norm(&w.x);
        let y_norm = normalise_target(&w.y, &stats);
        let plans_on = self.pcache.active();
        let routes: Vec<Vec<u32>> =
            if plans_on { self.model.plan_route_indices(&x_norm) } else { Vec::new() };
        let route_refs: Vec<&[u32]> = routes.iter().map(|r| r.as_slice()).collect();
        if let Some(loss) = self.pcache.try_replay_train(
            &[&x_norm, &y_norm],
            &route_refs,
            self.model.params_mut(),
            &mut self.opt,
        ) {
            black_box(loss);
            return;
        }
        let y_obs = plans_on.then(|| y_norm.clone());
        let g = &mut self.graph;
        g.reset();
        let pv = self.model.params().register(g);
        let pred = self.model.forward_window(g, &pv, &x_norm);
        let target = g.constant(y_norm);
        let loss = g.mse(pred, target);
        g.backward(loss);
        self.model.params_mut().step(&mut self.opt, g, &pv);
        black_box(g.value(loss).item());
        if let Some(y_obs) = y_obs {
            self.pcache.observe_train(g, loss, &pv, self.model.params(), &[&x_norm, &y_obs], &route_refs);
        }
    }

    /// Times one block of steps, returning ns per step.
    fn block_ns(&mut self) -> f64 {
        let start = clock::now_ns();
        for _ in 0..BLOCK {
            self.step();
        }
        clock::now_ns().saturating_sub(start) as f64 / BLOCK as f64
    }

    /// Times one block of plan-cached steps, returning ns per step.
    fn plan_block_ns(&mut self) -> f64 {
        let start = clock::now_ns();
        for _ in 0..BLOCK {
            self.plan_step();
        }
        clock::now_ns().saturating_sub(start) as f64 / BLOCK as f64
    }

    /// Every parameter's raw bits, for bitwise-equality checks.
    fn param_bits(&self) -> Vec<(String, Vec<u32>)> {
        self.model
            .params()
            .iter()
            .map(|(_, name, t)| (name.to_string(), t.data().iter().map(|v| v.to_bits()).collect()))
            .collect()
    }
}

/// Puts the process in "before" (pre-PR) or "after" execution mode.
fn set_mode(after: bool) {
    pool::set_enabled(after);
    autograd::set_fused(after);
}

fn sweep_threads() -> Vec<usize> {
    let mut ts = vec![1usize, 2, 4];
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    if !ts.contains(&max) {
        ts.push(max);
    }
    ts
}

/// Runs `TRACE_STEPS` traced steps on a fresh harness, returning the span
/// structure signature and the thread-invariant counters (the `pool/` and
/// `par/` counters legitimately depend on the worker-thread count — pool on
/// which thread first touched each size class, par on how many dispatches
/// fanned out — so both prefixes are excluded from cross-thread equality).
fn traced_run() -> (String, Vec<(&'static str, u64)>) {
    let mut h = Harness::new();
    focus_trace::set_enabled(true);
    focus_trace::reset();
    for _ in 0..TRACE_STEPS {
        h.step();
    }
    let signature = focus_trace::structure_signature(&focus_trace::snapshot_spans());
    let counters: Vec<(&'static str, u64)> = focus_trace::snapshot_counters()
        .into_iter()
        .filter(|(name, _)| !name.starts_with("pool/") && !name.starts_with("par/"))
        .collect();
    focus_trace::set_enabled(false);
    (signature, counters)
}

/// Measures the cost of one *disabled* trace call (a single relaxed atomic
/// load) in ns, by timing a tight span_guard loop with tracing off.
fn disabled_call_ns() -> f64 {
    assert!(!focus_trace::enabled(), "overhead probe must run with tracing off");
    let iters = 4_000_000u64;
    let start = clock::now_ns();
    for _ in 0..iters {
        black_box(focus_trace::span_guard("bench/overhead-probe"));
    }
    clock::now_ns().saturating_sub(start) as f64 / iters as f64
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("train-step sweep: dual-branch FOCUS, 32 entities x L=96 -> 24 (host cores: {cores})");
    par::set_threads(1);

    // Build one harness per mode, each warmed in its own mode so the pooled
    // harness starts at steady state. The plan harness warms through the
    // cache: two interpreted+observed steps compile and verify the plan,
    // further steps replay it.
    set_mode(false);
    let mut before_h = Harness::new();
    set_mode(true);
    let mut after_h = Harness::new();
    for _ in 0..3 {
        after_h.step();
    }
    let mut plan_h = Harness::new();
    for _ in 0..4 {
        plan_h.plan_step();
    }
    assert!(
        plan_h.pcache.is_ready(),
        "plan cache must verify during warmup (state: {})",
        plan_h.pcache.state_name()
    );
    set_mode(false);
    for _ in 0..3 {
        before_h.step();
    }

    // Interleaved rounds: all modes sample every load phase of the host.
    let mut before_ns = f64::INFINITY;
    let mut after1_ns = f64::INFINITY;
    let mut plan1_ns = f64::INFINITY;
    let mut fresh_total = 0u64;
    let mut plan_fresh = 0u64;
    let spawns0 = par::spawn_count();
    for _ in 0..ROUNDS {
        set_mode(false);
        before_ns = before_ns.min(before_h.block_ns());
        set_mode(true);
        pool::set_steady(true);
        let f0 = pool::fresh_allocs();
        after1_ns = after1_ns.min(after_h.block_ns());
        fresh_total += pool::fresh_allocs() - f0;
        let f1 = pool::fresh_allocs();
        plan1_ns = plan1_ns.min(plan_h.plan_block_ns());
        plan_fresh += pool::fresh_allocs() - f1;
        pool::set_steady(false);
    }
    let steady_steps = ROUNDS * BLOCK;
    assert_eq!(
        fresh_total, 0,
        "steady-state training must not allocate fresh pool buffers ({fresh_total} over {steady_steps} steps)"
    );
    assert_eq!(
        plan_fresh, 0,
        "steady-state plan replay must not allocate fresh pool buffers ({plan_fresh} over {steady_steps} steps)"
    );
    // Pool-reuse twin of the zero-allocation contract: once the harnesses
    // are warm, the measured rounds (2 × 60 steps — interpreted + replay)
    // must never spawn an OS thread. On a 1-core host this is the scaling
    // acceptance check (the thread sweep below is oversubscribed there).
    let steady_spawns = par::spawn_count() - spawns0;
    assert_eq!(
        steady_spawns, 0,
        "steady-state training must reuse pool workers, not spawn ({steady_spawns} spawns over {steady_steps} steps)"
    );
    println!("before (no pool, reference kernels, 1 thread): {}", fmt_ms(before_ns));
    println!(
        "after  (pool + fused, 1 thread): {}  [fresh allocs over {steady_steps} steady steps: {fresh_total}]",
        fmt_ms(after1_ns)
    );
    println!(
        "plan   (compiled replay, 1 thread): {}  [fresh allocs over {steady_steps} steady steps: {plan_fresh}]",
        fmt_ms(plan1_ns)
    );
    println!("single-thread speedup: {:.2}x", before_ns / after1_ns);
    let plan_speedup = after1_ns / plan1_ns;
    println!("plan-over-interpreter speedup (1 thread): {plan_speedup:.2}x");
    assert!(
        plan_speedup >= 1.10,
        "compiled-plan replay must beat the interpreter by >= 1.10x (got {plan_speedup:.3}x)"
    );

    // Thread sweep for the fused mode (the host may expose only one core;
    // the sweep still proves bitwise stability and records the scaling).
    // Rows where the requested worker count exceeds the host's cores are
    // labelled oversubscribed: their timings measure scheduler contention,
    // not kernel scaling, and downstream tooling must not read them as a
    // parallel-efficiency regression. The plan harness is swept alongside —
    // a compiled plan is thread-agnostic, so the verified cache is reused.
    set_mode(true);
    let mut after = Vec::new();
    for t in sweep_threads() {
        par::set_threads(t);
        let oversubscribed = t > cores;
        let tag = if oversubscribed { "  [oversubscribed]" } else { "" };
        if t == 1 {
            after.push((t, after1_ns, plan1_ns, oversubscribed));
            continue;
        }
        let mut h = Harness::new();
        for _ in 0..3 {
            h.step();
        }
        // Warmup primed the pool for `t` threads; the measured rounds must
        // reuse those workers, never spawn more.
        let t_spawns0 = par::spawn_count();
        let mut best = f64::INFINITY;
        let mut plan_best = f64::INFINITY;
        pool::set_steady(true);
        for _ in 0..ROUNDS / 3 {
            best = best.min(h.block_ns());
            plan_best = plan_best.min(plan_h.plan_block_ns());
        }
        pool::set_steady(false);
        let t_spawns = par::spawn_count() - t_spawns0;
        assert_eq!(t_spawns, 0, "steady rounds at {t} threads spawned {t_spawns} workers");
        after.push((t, best, plan_best, oversubscribed));
        println!("after  (pool + fused, {t} threads): {}{tag}", fmt_ms(best));
        println!("plan   (compiled replay, {t} threads): {}{tag}", fmt_ms(plan_best));
    }

    // ---- scaling efficiency ---------------------------------------------
    // speedup(t) = t1/tN; efficiency(t) = speedup(t)/t. On a genuinely
    // multicore host the 2-thread point must not regress below the
    // single-thread time (the pre-pool design was *slower* with threads);
    // oversubscribed rows measure scheduler contention, not kernel scaling,
    // so they are recorded but never gated on.
    for &(t, ns, _, oversubscribed) in &after {
        if t == 1 {
            continue;
        }
        let speedup = after1_ns / ns;
        let efficiency = speedup / t as f64;
        let tag = if oversubscribed { "  [oversubscribed]" } else { "" };
        println!("scaling: t{t} speedup {speedup:.2}x, efficiency {:.0}%{tag}", efficiency * 100.0);
        if t == 2 && !oversubscribed {
            assert!(
                ns <= after1_ns * 1.02,
                "2-thread steps must not be slower than 1-thread (t1 {} vs t2 {})",
                fmt_ms(after1_ns),
                fmt_ms(ns)
            );
        }
    }

    // ---- trace contract: bitwise neutrality ------------------------------
    // Two identical harnesses, one stepped with tracing enabled (and never
    // read mid-run), one with it disabled: every parameter must come out
    // bit-identical. Traced values never feed model computation.
    par::set_threads(1);
    let mut plain = Harness::new();
    for _ in 0..TRACE_STEPS {
        plain.step();
    }
    let mut traced = Harness::new();
    focus_trace::set_enabled(true);
    focus_trace::reset();
    for _ in 0..TRACE_STEPS {
        traced.step();
    }
    focus_trace::set_enabled(false);
    let (pb, tb) = (plain.param_bits(), traced.param_bits());
    assert_eq!(pb.len(), tb.len(), "param stores must be congruent");
    for ((pn, pv), (tn, tv)) in pb.iter().zip(&tb) {
        assert_eq!(pn, tn, "param order must match");
        assert_eq!(pv, tv, "tracing changed parameter {pn} bitwise");
    }
    println!("trace neutrality: {} params bitwise-identical traced vs untraced", pb.len());

    // ---- trace contract: span coverage + per-phase table -----------------
    // Reuse the traced run just recorded: it must cover the six core phases.
    focus_trace::set_enabled(true);
    pool::publish_trace_stats();
    focus_trace::set_enabled(false);
    let spans = focus_trace::snapshot_spans();
    let flat = focus_trace::flatten_spans(&spans);
    for want in CORE_SPANS {
        assert!(
            flat.iter().any(|&(name, calls, _)| name == want && calls > 0),
            "traced train step must record span {want}; saw {:?}",
            flat.iter().map(|f| f.0).collect::<Vec<_>>()
        );
    }
    let distinct = {
        let mut names: Vec<&str> = flat.iter().map(|f| f.0).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    };
    assert!(distinct >= 6, "span tree too shallow: {distinct} distinct spans");
    println!("\nper-phase profile over {TRACE_STEPS} traced steps ({distinct} distinct spans):");
    print!("{}", focus_trace::report::phase_table(&spans));

    // ---- trace contract: disabled overhead < 2% of a step ----------------
    // api_calls counts the enabled-path invocations of the run above, i.e.
    // exactly the instrumentation sites a disabled step crosses. Each one
    // costs a single relaxed atomic load when tracing is off.
    let calls_before = focus_trace::api_calls();
    focus_trace::set_enabled(true);
    focus_trace::reset();
    traced.step();
    focus_trace::set_enabled(false);
    let calls_per_step = focus_trace::api_calls() - calls_before;
    let per_call = disabled_call_ns();
    let overhead_ns = calls_per_step as f64 * per_call;
    let overhead_frac = overhead_ns / after1_ns;
    println!(
        "disabled-trace overhead: {calls_per_step} sites/step x {per_call:.2} ns = {:.0} ns ({:.3}% of a {} step)",
        overhead_ns,
        overhead_frac * 100.0,
        fmt_ms(after1_ns),
    );
    assert!(
        overhead_frac < 0.02,
        "disabled tracing must stay under 2% of a step (got {:.2}%)",
        overhead_frac * 100.0
    );

    // ---- trace contract: thread-invariant structure ----------------------
    // The span tree (names + call counts) and all non-pool counters must be
    // identical at 1, 2 and 4 threads — only timings may differ.
    let (sig1, ctr1) = {
        par::set_threads(1);
        traced_run()
    };
    for t in [2usize, 4] {
        par::set_threads(t);
        let (sig, ctr) = traced_run();
        assert_eq!(sig, sig1, "span structure diverged at {t} threads");
        assert_eq!(ctr, ctr1, "counters diverged at {t} threads");
    }
    println!("span tree + counters identical at 1/2/4 threads ({} counters)", ctr1.len());

    // ---- compiled-plan trace: counters prove the replay contract ---------
    // A fresh harness driven through the cache with tracing on: the two
    // interpreted warmup steps record `plan/compile` and the instruction /
    // slot gauges, the replayed steps record `plan/replay` and the
    // steady-state pool-lookup gauge, which must be exactly zero — replay
    // touches only its pre-resolved slots.
    par::set_threads(1);
    set_mode(true);
    focus_trace::set_enabled(true);
    focus_trace::reset();
    let mut traced_plan = Harness::new();
    for _ in 0..2 + TRACE_STEPS {
        traced_plan.plan_step();
    }
    pool::publish_trace_stats();
    focus_trace::set_enabled(false);
    let plan_counters = focus_trace::snapshot_counters();
    let counter = |name: &str| plan_counters.iter().find(|(n, _)| *n == name).map(|&(_, v)| v);
    let plan_instrs = counter("plan/instrs").expect("plan compile must publish plan/instrs");
    let plan_slots = counter("plan/slots").expect("plan compile must publish plan/slots");
    let plan_replays = counter("plan/replays").expect("plan replay must publish plan/replays");
    let plan_lookups = counter("plan/pool_lookups_steady")
        .expect("plan replay must publish plan/pool_lookups_steady");
    assert_eq!(plan_replays as usize, TRACE_STEPS, "every post-warmup step must replay");
    assert_eq!(
        plan_lookups, 0,
        "steady-state plan replay must perform zero pool lookups (got {plan_lookups})"
    );
    assert!(plan_instrs > 0 && plan_slots > 0, "plan gauges must be non-trivial");
    {
        let spans = focus_trace::snapshot_spans();
        let flat = focus_trace::flatten_spans(&spans);
        for want in ["plan/compile", "plan/replay"] {
            assert!(
                flat.iter().any(|&(name, calls, _)| name == want && calls > 0),
                "traced plan phase must record span {want}"
            );
        }
    }
    println!(
        "plan: {plan_instrs} instrs over {plan_slots} slots; {plan_replays} traced replays, {plan_lookups} steady pool lookups"
    );
    par::set_threads(0);

    // ---- schema-versioned run report -------------------------------------
    let mut report = focus_trace::report::RunReport::new("trainstep");
    report
        .setting("model", "FOCUS dual-branch, 32 entities, L=96, p=8, k=8, d=32, m=6, horizon=24")
        .setting("step", "instance_norm + forward + mse + backward + adamw")
        .setting("interleaved_rounds", ROUNDS)
        .setting("block_steps", BLOCK)
        .setting("trace_steps", TRACE_STEPS)
        .metric("before_1_thread_ns", before_ns)
        .metric("steady_state_steps", steady_steps as f64)
        .metric("steady_state_fresh_allocs", fresh_total as f64)
        .metric("speedup_1_thread", before_ns / after1_ns)
        .metric("plan_speedup_t1", plan_speedup)
        .metric("plan_instrs", plan_instrs as f64)
        .metric("plan_slots", plan_slots as f64)
        .metric("plan_pool_lookups_steady", plan_lookups as f64)
        .metric("trace_calls_per_step", calls_per_step as f64)
        .metric("disabled_trace_overhead_ns", overhead_ns)
        .metric("disabled_trace_overhead_frac", overhead_frac)
        .metric("steady_state_spawns", steady_spawns as f64);
    for &(t, ns, plan_ns, oversubscribed) in &after {
        report.metric(&format!("after_t{t}_ns"), ns);
        report.metric(&format!("plan_after_t{t}_ns"), plan_ns);
        if t > 1 {
            let speedup = after1_ns / ns;
            report.metric(&format!("speedup_t{t}"), speedup);
            report.metric(&format!("scaling_efficiency_t{t}"), speedup / t as f64);
        }
        if oversubscribed {
            report.setting(&format!("oversubscribed_t{t}"), "true");
        }
    }
    // Fold the pool's and worker pool's steady-state stats into the
    // captured counters (pool/* buffer-pool gauges, par/* dispatch stats).
    focus_trace::set_enabled(true);
    pool::publish_trace_stats();
    par::publish_trace_stats();
    focus_trace::set_enabled(false);
    report.capture_trace();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trainstep.json");
    match report.write(path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
