//! Throughput benchmark for the tensor backend's hot kernels: serial
//! reference GEMM vs the cache-blocked/tiled path, swept across worker
//! thread counts (1/2/4/max via [`focus_tensor::par::set_threads`]), plus
//! the nearest-prototype `assign_all` sweep.
//!
//! Besides printing per-config timings, the run rewrites
//! `BENCH_kernels.json` at the repository root — a schema-versioned
//! [`focus_trace::report::RunReport`] — so the numbers are tracked
//! alongside the code. Thread scaling beyond the host's core count cannot
//! speed anything up, so the report records the core count next to the
//! sweep.

use focus_cluster::{ClusterConfig, Objective, ProtoUpdate};
use focus_tensor::{par, reference, Tensor};
use focus_trace::clock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Best-of-`reps` wall time of `f`, in nanoseconds, after one warm-up call.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = clock::now_ns();
        f();
        best = best.min(clock::now_ns().saturating_sub(start) as f64);
    }
    best
}

fn fmt_ms(ns: f64) -> String {
    format!("{:.3} ms", ns / 1e6)
}

struct Sweep {
    label: &'static str,
    naive_ns: f64,
    /// `(threads, ns)` for the tiled path.
    tiled: Vec<(usize, f64)>,
}

impl Sweep {
    fn tiled_t1(&self) -> f64 {
        self.tiled.iter().find(|&&(t, _)| t == 1).map_or(f64::NAN, |&(_, ns)| ns)
    }

    fn report(&self) {
        println!(
            "{}: naive {} | tiling speedup at 1 thread: {:.2}x",
            self.label,
            fmt_ms(self.naive_ns),
            self.naive_ns / self.tiled_t1()
        );
        for &(t, ns) in &self.tiled {
            println!("  tiled, {t} thread(s): {}", fmt_ms(ns));
        }
    }

    fn to_report(&self, report: &mut focus_trace::report::RunReport) {
        report.metric(&format!("{}/naive_ns", self.label), self.naive_ns);
        for &(t, ns) in &self.tiled {
            report.metric(&format!("{}/tiled_t{t}_ns", self.label), ns);
        }
        report.metric(
            &format!("{}/tiling_speedup_1_thread", self.label),
            self.naive_ns / self.tiled_t1(),
        );
    }
}

fn sweep_threads() -> Vec<usize> {
    let mut ts = vec![1usize, 2, 4];
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    if !ts.contains(&max) {
        ts.push(max);
    }
    ts
}

fn bench_gemm(m: usize, k: usize, n: usize) -> [Sweep; 3] {
    let mut rng = StdRng::seed_from_u64(0x6e3a);
    let a = Tensor::randn(&[m, k], 1.0, &mut rng);
    let b = Tensor::randn(&[k, n], 1.0, &mut rng);
    let bt = Tensor::randn(&[n, k], 1.0, &mut rng);
    let at = Tensor::randn(&[k, m], 1.0, &mut rng);
    let reps = 7;

    let mut c = Tensor::zeros(&[m, n]);
    let naive_nn = time_ns(reps, || {
        c.data_mut().fill(0.0);
        reference::gemm(m, k, n, a.data(), b.data(), c.data_mut());
        black_box(c.data());
    });
    let naive_nt = time_ns(reps, || {
        reference::gemm_nt(m, k, n, a.data(), bt.data(), c.data_mut());
        black_box(c.data());
    });
    let naive_tn = time_ns(reps, || {
        c.data_mut().fill(0.0);
        reference::gemm_tn(m, k, n, at.data(), b.data(), c.data_mut());
        black_box(c.data());
    });

    let mut sweeps = [
        Sweep { label: "gemm_256", naive_ns: naive_nn, tiled: Vec::new() },
        Sweep { label: "gemm_nt_256", naive_ns: naive_nt, tiled: Vec::new() },
        Sweep { label: "gemm_tn_256", naive_ns: naive_tn, tiled: Vec::new() },
    ];
    for t in sweep_threads() {
        par::set_threads(t);
        sweeps[0].tiled.push((t, time_ns(reps, || {
            black_box(a.matmul(&b));
        })));
        sweeps[1].tiled.push((t, time_ns(reps, || {
            black_box(a.matmul_nt(&bt));
        })));
        sweeps[2].tiled.push((t, time_ns(reps, || {
            black_box(at.matmul_tn(&b));
        })));
    }
    par::set_threads(0);
    sweeps
}

fn bench_assign_all() -> Sweep {
    let (n, p, k) = (20_000usize, 32usize, 64usize);
    let mut rng = StdRng::seed_from_u64(0xa551);
    let segs = Tensor::randn(&[n, p], 1.0, &mut rng);
    let protos = ClusterConfig::new(k, p)
        .with_objective(Objective::RecOnly)
        .with_update(ProtoUpdate::ClosedFormMean)
        .with_max_iters(3)
        .fit(&segs, 1);
    let reps = 5;

    // "Naive" = the serial scalar per-pair sweep the GEMM path replaces.
    par::set_threads(1);
    let naive_ns = time_ns(reps, || {
        black_box(protos.assign_all_scalar(&segs));
    });
    let mut sweep = Sweep { label: "assign_all_20000x32_k64", naive_ns, tiled: Vec::new() };
    for t in sweep_threads() {
        par::set_threads(t);
        sweep.tiled.push((t, time_ns(reps, || {
            black_box(protos.assign_all(&segs));
        })));
    }
    par::set_threads(0);
    sweep
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("kernel throughput sweep (host cores: {cores})");

    let gemm = bench_gemm(256, 256, 256);
    let assign = bench_assign_all();
    for s in &gemm {
        s.report();
    }
    assign.report();

    let mut report = focus_trace::report::RunReport::new("kernels");
    report
        .setting("shape", "256x256x256")
        .setting("assign", "20000x32 segments, k=64, rec-only");
    for s in &gemm {
        s.to_report(&mut report);
    }
    assign.to_report(&mut report);
    // Record the worker pool's dispatch stats (par/*) for the whole sweep.
    focus_trace::set_enabled(true);
    par::publish_trace_stats();
    focus_trace::set_enabled(false);
    report.capture_trace();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    match report.write(path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
