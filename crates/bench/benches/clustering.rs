//! Offline-phase throughput: Algorithm 1 under the two objectives (the
//! Fig. 8 "the correlation term is almost free" claim) and the two prototype
//! update rules, across segment-set sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use focus_cluster::{ClusterConfig, Objective, ProtoUpdate};
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const P: usize = 16;
const K: usize = 16;

fn segments(n: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(42);
    // Structured data: noisy sinusoids at a few phases, so clusters exist.
    let mut data = Vec::with_capacity(n * P);
    for i in 0..n {
        let phase = (i % 8) as f32 * 0.7;
        for j in 0..P {
            let u = j as f32 / P as f32;
            data.push((2.0 * std::f32::consts::PI * u + phase).sin());
        }
    }
    let noise = Tensor::randn(&[n, P], 0.1, &mut rng);
    Tensor::from_vec(data, &[n, P]).add(&noise)
}

fn bench_objectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_objective");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [512usize, 2048] {
        let segs = segments(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("rec_only", n), &n, |b, _| {
            b.iter(|| {
                let cfg = ClusterConfig::new(K, P)
                    .with_objective(Objective::RecOnly)
                    .with_max_iters(10);
                black_box(cfg.fit(&segs, 1))
            })
        });
        group.bench_with_input(BenchmarkId::new("rec_corr", n), &n, |b, _| {
            b.iter(|| {
                let cfg = ClusterConfig::new(K, P)
                    .with_objective(Objective::rec_corr(0.2))
                    .with_max_iters(10);
                black_box(cfg.fit(&segs, 1))
            })
        });
    }
    group.finish();
}

fn bench_update_rules(c: &mut Criterion) {
    let segs = segments(1024);
    let mut group = c.benchmark_group("clustering_update");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("closed_form_mean", |b| {
        b.iter(|| {
            let cfg = ClusterConfig::new(K, P)
                .with_objective(Objective::RecOnly)
                .with_update(ProtoUpdate::ClosedFormMean)
                .with_max_iters(10);
            black_box(cfg.fit(&segs, 2))
        })
    });
    group.bench_function("adamw", |b| {
        b.iter(|| {
            let cfg = ClusterConfig::new(K, P)
                .with_max_iters(10) // paper default update: AdamW
                .with_objective(Objective::rec_corr(0.2));
            black_box(cfg.fit(&segs, 2))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_objectives, bench_update_rules);
criterion_main!(benches);
