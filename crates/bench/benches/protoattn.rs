//! Wall-clock backing for Fig. 6's headline: ProtoAttn (linear in the
//! segment count) vs full self-attention (quadratic), at growing sequence
//! lengths, plus hard vs soft assignment cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focus_autograd::{Graph, ParamStore};
use focus_cluster::{ClusterConfig, Objective, ProtoUpdate, Prototypes};
use focus_core::protoattn::{Assignment, ProtoAttn};
use focus_nn::SelfAttention;
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const D: usize = 32;
const P: usize = 8;
const K: usize = 16;

fn make_prototypes(rng: &mut StdRng) -> Prototypes {
    let segs = Tensor::randn(&[256, P], 1.0, rng);
    ClusterConfig::new(K, P)
        .with_objective(Objective::RecOnly)
        .with_update(ProtoUpdate::ClosedFormMean)
        .with_max_iters(10)
        .fit(&segs, 1)
}

fn bench_attention_scaling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let protos = make_prototypes(&mut rng);

    let mut group = c.benchmark_group("attention_scaling");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for l in [16usize, 32, 64, 128, 256] {
        let segments = Tensor::randn(&[1, l, P], 1.0, &mut rng);

        // ProtoAttn: linear in l.
        let mut ps = ParamStore::new();
        let pa = ProtoAttn::new(&mut ps, "pa", &protos, D, &mut rng);
        let plan = Assignment::Hard.plan(&segments, &protos);
        group.bench_with_input(BenchmarkId::new("protoattn", l), &l, |b, _| {
            b.iter(|| {
                let mut g = Graph::new();
                let pv = ps.register(&mut g);
                let seg_v = g.constant(segments.clone());
                let out = pa.forward(&mut g, &pv, seg_v, &plan);
                black_box(g.value(out).sum_all())
            })
        });

        // Full self-attention: quadratic in l.
        let mut ps2 = ParamStore::new();
        let embed = focus_nn::Linear::new(&mut ps2, "embed", P, D, &mut rng);
        let sa = SelfAttention::new(&mut ps2, "sa", D, &mut rng);
        group.bench_with_input(BenchmarkId::new("self_attention", l), &l, |b, _| {
            b.iter(|| {
                let mut g = Graph::new();
                let pv = ps2.register(&mut g);
                let seg_v = g.constant(segments.clone());
                let emb = embed.forward(&mut g, &pv, seg_v);
                let out = sa.forward(&mut g, &pv, emb);
                black_box(g.value(out).sum_all())
            })
        });
    }
    group.finish();
}

fn bench_assignment_modes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let protos = make_prototypes(&mut rng);
    let segments = Tensor::randn(&[8, 64, P], 1.0, &mut rng);

    let mut group = c.benchmark_group("assignment");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("hard", |b| {
        b.iter(|| black_box(Assignment::Hard.matrix(&segments, &protos)))
    });
    group.bench_function("soft", |b| {
        b.iter(|| black_box(Assignment::Soft { temperature: 1.0 }.matrix(&segments, &protos)))
    });
    group.finish();
}

criterion_group!(benches, bench_attention_scaling, bench_assignment_modes);
criterion_main!(benches);
