//! Table/CSV emission shared by the experiment binaries.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table that renders as markdown and as CSV.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// If the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(out, " {cell:>w$} |");
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to `results/<name>.csv` under `root`.
    pub fn save_csv(&self, root: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = root.join("results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a float with 4 significant decimals, the paper's table precision.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a float with 1 decimal (for MFLOPs / K-params columns).
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_alignment() {
        let mut t = Table::new(&["model", "mse"]);
        t.row(vec!["FOCUS".into(), "0.1".into()]);
        t.row(vec!["PatchTST".into(), "0.22".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| PatchTST |"));
        assert!(md.lines().count() == 4);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_width_is_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
