//! # focus-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md §3 for the full index) plus Criterion micro-benchmarks.
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `bin/table3` | Table III — accuracy vs 7 baselines across datasets |
//! | `bin/fig6` | Fig. 6 — FLOPs / peak memory / params vs input length |
//! | `bin/fig7` | Fig. 7a–d — k, d, L, p parameter studies |
//! | `bin/table4` | Table IV — ablation study |
//! | `bin/fig8` | Fig. 8 — Rec Only vs Rec+Corr clustering objectives |
//! | `bin/fig9` | Fig. 9 — generalization to unseen test segments |
//! | `bin/fig10` | Fig. 10 — outlier-ratio robustness |
//! | `bin/case_study` | Figs. 11–13 — approximation, forecast, dependencies |
//! | `bin/theorem1` | Theorem 1 — low-rank approximation error sweep |
//!
//! Every binary prints a markdown table to stdout and accepts `--fast` for a
//! smoke-test-sized run. Results land in `results/` as CSV when `--csv` is
//! passed.

#![forbid(unsafe_code)]

pub mod report;
pub mod settings;
