//! Shared experiment sizing and CLI flags.
//!
//! The paper's full-scale settings (lookback 512, hundreds of entities,
//! dozens of epochs on V100s) do not fit a CPU test box, so every experiment
//! runs at a documented reduced scale (EXPERIMENTS.md records the exact
//! numbers). `--fast` shrinks further for smoke tests; `--full` grows toward
//! the paper's scale for overnight runs.

use focus_core::TrainOptions;
use focus_data::Benchmark;

/// Experiment scale parsed from the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke test.
    Fast,
    /// The default minutes-scale run used for EXPERIMENTS.md.
    Standard,
    /// Closer to paper scale; expect a long run.
    Full,
}

/// Parsed common flags.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Experiment scale.
    pub scale: Scale,
    /// Write CSVs under `results/`.
    pub csv: bool,
    /// Remaining (experiment-specific) args.
    pub rest: Vec<String>,
}

impl Cli {
    /// Parses `std::env::args`, accepting `--fast`, `--full` and `--csv`.
    pub fn parse() -> Cli {
        let mut scale = Scale::Standard;
        let mut csv = false;
        let mut rest = Vec::new();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--fast" => scale = Scale::Fast,
                "--full" => scale = Scale::Full,
                "--csv" => csv = true,
                other => rest.push(other.to_string()),
            }
        }
        Cli { scale, csv, rest }
    }

    /// Value of `--<key> <value>` style experiment-specific options.
    pub fn opt(&self, key: &str) -> Option<&str> {
        let flag = format!("--{key}");
        self.rest
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.rest.get(i + 1))
            .map(String::as_str)
    }
}

/// Dataset sizing per scale: `(max_entities, max_len)`.
pub fn dataset_size(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Fast => (6, 2_000),
        Scale::Standard => (16, 6_000),
        Scale::Full => (48, 16_000),
    }
}

/// Window sizing per scale: `(lookback, horizons)`.
///
/// The paper uses lookback 512 and horizons {96, 336}; the reduced scales
/// keep the ~5:1 and ~1.5:1 lookback:horizon ratios.
pub fn window_size(scale: Scale) -> (usize, [usize; 2]) {
    match scale {
        Scale::Fast => (96, [24, 48]),
        Scale::Standard => (192, [48, 96]),
        Scale::Full => (512, [96, 336]),
    }
}

/// Training budget per scale, shared by every model for fairness. Standard
/// and Full scales train to convergence with validation early stopping (the
/// paper trains each baseline with its original configuration until
/// convergence); Fast uses a tiny fixed budget.
pub fn train_options(scale: Scale) -> TrainOptions {
    match scale {
        Scale::Fast => TrainOptions {
            epochs: 4,
            max_windows: 24,
            ..Default::default()
        },
        Scale::Standard => TrainOptions {
            epochs: 40,
            max_windows: 96,
            patience: Some(10),
            ..Default::default()
        },
        Scale::Full => TrainOptions {
            epochs: 150,
            max_windows: 256,
            patience: Some(8),
            ..Default::default()
        },
    }
}

/// The datasets each experiment sweeps, per scale (Fast trims the list).
pub fn benchmarks(scale: Scale) -> &'static [Benchmark] {
    match scale {
        Scale::Fast => &[Benchmark::Pems08, Benchmark::Etth1],
        _ => &Benchmark::ALL,
    }
}

/// Deterministic per-experiment seed.
pub fn seed_for(experiment: &str, index: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in experiment.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ index
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_by_experiment_and_index() {
        assert_ne!(seed_for("table3", 0), seed_for("fig6", 0));
        assert_ne!(seed_for("table3", 0), seed_for("table3", 1));
        assert_eq!(seed_for("table3", 2), seed_for("table3", 2));
    }

    #[test]
    fn cli_opt_parses_key_value_pairs() {
        let cli = Cli {
            scale: Scale::Standard,
            csv: false,
            rest: vec!["--part".into(), "a".into(), "--other".into()],
        };
        assert_eq!(cli.opt("part"), Some("a"));
        assert_eq!(cli.opt("missing"), None);
        assert_eq!(cli.opt("other"), None, "flag without value yields None");
    }

    #[test]
    fn scales_are_ordered() {
        assert!(dataset_size(Scale::Fast).1 < dataset_size(Scale::Standard).1);
        assert!(window_size(Scale::Standard).0 < window_size(Scale::Full).0);
        assert!(train_options(Scale::Fast).epochs < train_options(Scale::Full).epochs);
    }
}
