//! Table III: long-range forecasting accuracy (MSE/MAE) of FOCUS vs the
//! seven baselines, across the Table II datasets and two horizons.
//!
//! Usage: `cargo run --release -p focus-bench --bin table3 [--fast|--full] [--csv]`
//!
//! Scale note (see EXPERIMENTS.md): datasets are synthetic stand-ins and the
//! window/training sizes are reduced from the paper's (lookback 512,
//! horizons 96/336, V100 training). The comparison *shape* — which model
//! family wins where — is the reproduced quantity.

use focus_baselines::{BaselineConfig, ModelKind};
use focus_bench::report::{f4, Table};
use focus_bench::settings::{self, Cli, Scale};
use focus_data::{MtsDataset, Split};

fn main() {
    let cli = Cli::parse();
    let (max_entities, max_len) = settings::dataset_size(cli.scale);
    let (lookback, horizons) = settings::window_size(cli.scale);
    let opts = settings::train_options(cli.scale);

    let mut table = Table::new(&["dataset", "horizon", "model", "MSE", "MAE"]);
    let mut winners: Vec<String> = Vec::new();
    // Per-setting MSE of every model, for the mean-rank summary.
    let mut setting_scores: Vec<Vec<(ModelKind, f64)>> = Vec::new();

    for &bench in settings::benchmarks(cli.scale) {
        let spec = bench.scaled(max_entities, max_len);
        let ds = MtsDataset::generate(spec, settings::seed_for("table3-data", bench as u64));
        for &horizon in &horizons {
            eprintln!("== {} @ horizon {horizon} ==", ds.spec().name);
            let cfg = BaselineConfig {
                d: if cli.scale == Scale::Fast { 16 } else { 32 },
                n_prototypes: 12,
                seed: settings::seed_for("table3-model", horizon as u64),
                ..BaselineConfig::new(lookback, horizon)
            };
            let mut best: Option<(String, f64)> = None;
            let mut scores = Vec::new();
            for kind in ModelKind::ALL {
                let mut model = cfg.build(kind, &ds);
                model.train(&ds, &opts);
                let m = model.evaluate(&ds, Split::Test, horizon);
                eprintln!("  {:<14} MSE {:.4}  MAE {:.4}", kind.label(), m.mse(), m.mae());
                table.row(vec![
                    ds.spec().name.clone(),
                    horizon.to_string(),
                    kind.label().to_string(),
                    f4(m.mse()),
                    f4(m.mae()),
                ]);
                scores.push((kind, m.mse()));
                if best.as_ref().map(|(_, b)| m.mse() < *b).unwrap_or(true) {
                    best = Some((kind.label().to_string(), m.mse()));
                }
            }
            setting_scores.push(scores);
            let (winner, _) = best.expect("at least one model ran");
            winners.push(format!("{}@{horizon}: {winner}", ds.spec().name));
        }
    }

    println!("\n# Table III — accuracy comparison\n");
    println!("{}", table.to_markdown());
    println!("\nper-setting winners (paper: FOCUS takes 26/28 settings):");
    for w in &winners {
        println!("  {w}");
    }
    let focus_wins = winners.iter().filter(|w| w.ends_with("FOCUS")).count();
    println!(
        "\nFOCUS is top-1 on {focus_wins} of {} settings at this scale",
        winners.len()
    );

    // Mean rank across settings: the variance-robust shape statistic at this
    // reduced scale (individual winners flip with seed noise; ranks do not).
    println!("\nmean MSE rank across all settings (1 = best):");
    let mut mean_ranks: Vec<(ModelKind, f64)> = ModelKind::ALL
        .iter()
        .map(|&kind| {
            let total: f64 = setting_scores
                .iter()
                .map(|scores| {
                    let my = scores.iter().find(|(k, _)| *k == kind).expect("kind ran").1;
                    1.0 + scores.iter().filter(|(_, s)| *s < my).count() as f64
                })
                .sum();
            (kind, total / setting_scores.len() as f64)
        })
        .collect();
    mean_ranks.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (kind, rank) in &mean_ranks {
        println!("  {:<14} {rank:.2}", kind.label());
    }

    if cli.csv {
        let path = table
            .save_csv(std::path::Path::new(env!("CARGO_MANIFEST_DIR")), "table3")
            .expect("write csv");
        println!("csv: {}", path.display());
    }
}
