//! Fig. 10: robustness to training-data outliers. The training split is
//! polluted at increasing ratios with >3σ spikes (§VIII-E); forecast
//! accuracy on the clean test split is compared between FOCUS and PatchTST.
//!
//! Usage: `cargo run --release -p focus-bench --bin fig10 [--fast|--full] [--csv]`

use focus_baselines::PatchTst;
use focus_bench::report::{f4, Table};
use focus_bench::settings::{self, Cli, Scale};
use focus_core::{Focus, FocusConfig, Forecaster};
use focus_data::{outliers, Benchmark, MtsDataset, Split};

fn main() {
    let cli = Cli::parse();
    let (max_entities, max_len) = settings::dataset_size(cli.scale);
    let (lookback, horizons) = settings::window_size(cli.scale);
    let horizon = horizons[0];
    let opts = settings::train_options(cli.scale);

    let ratios: &[f64] = match cli.scale {
        Scale::Fast => &[0.0, 0.08],
        _ => &[0.0, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12],
    };

    let spec = Benchmark::Pems08.scaled(max_entities, max_len);
    let clean = focus_data::synth::generate(&spec, settings::seed_for("fig10", 0));
    let (train_range, _, _) = spec.split_points();
    // All ratios are evaluated in the SAME metric space: the clean dataset's
    // z-scored test split. (Pollution inflates the train-split std, so
    // evaluating each run in its own normalisation would silently shrink the
    // targets and make the ratios incomparable.)
    let ds_eval = MtsDataset::from_raw(spec.clone(), clean.clone());

    // Average over seeds: at this scale a single run's MSE moves by
    // ±10-20 %, which would swamp the robustness curve.
    let n_seeds: u64 = if cli.scale == Scale::Fast { 1 } else { 3 };
    let mut table = Table::new(&["ratio", "model", "MSE", "MAE"]);
    for &ratio in ratios {
        let (mut f_mse, mut f_mae, mut p_mse, mut p_mae) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for seed in 0..n_seeds {
            let polluted = outliers::inject(
                &clean,
                train_range.clone(),
                ratio,
                settings::seed_for("fig10-noise", (ratio * 100.0) as u64 ^ (seed << 32)),
            );
            let ds = MtsDataset::from_raw(spec.clone(), polluted);

            let mut cfg = FocusConfig::new(lookback, horizon);
            cfg.segment_len = 8;
            cfg.n_prototypes = 12;
            cfg.d = 24;
            let mut focus_model =
                Focus::fit_offline(&ds, cfg.clone(), settings::seed_for("fig10-m", seed));
            let mut topts = opts.clone();
            topts.seed = seed;
            focus_model.train(&ds, &topts);
            let mf = focus_model.evaluate(&ds_eval, Split::Test, horizon);

            let mut patch = PatchTst::new(
                lookback,
                horizon,
                cfg.segment_len,
                cfg.d,
                settings::seed_for("fig10-m", seed ^ 0xff),
            );
            patch.train(&ds, &topts);
            let mp = patch.evaluate(&ds_eval, Split::Test, horizon);
            f_mse += mf.mse();
            f_mae += mf.mae();
            p_mse += mp.mse();
            p_mae += mp.mae();
        }
        let k = n_seeds as f64;
        let (f_mse, f_mae, p_mse, p_mae) = (f_mse / k, f_mae / k, p_mse / k, p_mae / k);
        eprintln!("ratio {:>4.0}%: FOCUS {f_mse:.4} | PatchTST {p_mse:.4}", ratio * 100.0);
        table.row(vec![format!("{:.0}%", ratio * 100.0), "FOCUS".into(), f4(f_mse), f4(f_mae)]);
        table.row(vec![format!("{:.0}%", ratio * 100.0), "PatchTST".into(), f4(p_mse), f4(p_mae)]);
    }

    println!("\n# Fig. 10 — accuracy under training-data outlier pollution\n");
    println!("{}", table.to_markdown());
    println!("\npaper finding: FOCUS degrades more slowly — prototype assignment snaps");
    println!("corrupted segments onto clean cluster centres.");

    if cli.csv {
        let path = table
            .save_csv(std::path::Path::new(env!("CARGO_MANIFEST_DIR")), "fig10")
            .expect("write csv");
        println!("csv: {}", path.display());
    }
}
