//! Theorem 1: empirical check of the low-rank approximation bound. For
//! planted-rank segment matrices, the assignment-based factorisation
//! `P̃ = A·C` should satisfy `‖P̃w − Pw‖ ≤ ε‖Pw‖` with `k = O(log r / ε²)`
//! prototypes; the measurable consequences are (i) the error falls as `k`
//! grows and (ii) is already small for `k` near `r`.
//!
//! Usage: `cargo run --release -p focus-bench --bin theorem1 [--fast] [--csv]`

use focus_bench::report::Table;
use focus_bench::settings::{Cli, Scale};
use focus_core::lowrank;

fn main() {
    let cli = Cli::parse();
    let (l, p) = (256, 16);
    let ranks: &[usize] = if cli.scale == Scale::Fast { &[4] } else { &[2, 4, 8] };
    let ks: &[usize] = if cli.scale == Scale::Fast {
        &[2, 8, 32]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128]
    };

    let mut table = Table::new(&["matrix", "rank r", "k", "relative error"]);
    for &r in ranks {
        let generic = lowrank::sweep(l, p, r, ks, 7);
        let motifs = lowrank::sweep_motifs(l, p, r, 0.05, ks, 7);
        for (kind, reports) in [("generic", &generic), ("motif", &motifs)] {
            for rep in reports {
                table.row(vec![
                    kind.to_string(),
                    rep.rank.to_string(),
                    rep.k.to_string(),
                    format!("{:.4}", rep.relative_error),
                ]);
            }
            // The theorem's qualitative content, asserted.
            let first = reports.first().expect("non-empty sweep").relative_error;
            let last = reports.last().expect("non-empty sweep").relative_error;
            assert!(
                last < first,
                "{kind}: error did not fall with k for rank {r}: {first} → {last}"
            );
        }
        // In the motif regime, k = r already collapses the error.
        if let Some(at_r) = motifs.iter().find(|rep| rep.k >= r) {
            assert!(
                at_r.relative_error < 0.2,
                "motif matrix should be tight at k ≥ r, got {}",
                at_r.relative_error
            );
        }
    }

    println!("# Theorem 1 — low-rank approximation error vs prototype count\n");
    println!("segment matrices: {l} × {p}; 'generic' = Gaussian rank-r product,");
    println!("'motif' = r noisy repeated patterns (the paper's §III premise);");
    println!("errors averaged over 8 random directions w\n");
    println!("{}", table.to_markdown());
    println!("\nexpected: error decreases in k and is small once k ≳ r (the paper's");
    println!("claim that the needed prototype count depends on the data's intrinsic");
    println!("rank, not the input length).");

    if cli.csv {
        let path = table
            .save_csv(std::path::Path::new(env!("CARGO_MANIFEST_DIR")), "theorem1")
            .expect("write csv");
        println!("csv: {}", path.display());
    }
}
