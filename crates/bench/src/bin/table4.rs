//! Table IV: ablation study — FOCUS vs FOCUS-Attn vs FOCUS-LnrFusion vs
//! FOCUS-AllLnr on PEMS08-like and Electricity-like data, reporting
//! MSE / MAE / FLOPs / peak memory / parameter count.
//!
//! Usage: `cargo run --release -p focus-bench --bin table4 [--fast|--full] [--csv]`

use focus_bench::report::{f4, Table};
use focus_bench::settings::{self, Cli};
use focus_core::{AblationVariant, FocusAblation, FocusConfig, Forecaster};
use focus_data::{Benchmark, MtsDataset, Split};

fn main() {
    let cli = Cli::parse();
    let (max_entities, max_len) = settings::dataset_size(cli.scale);
    let (lookback, horizons) = settings::window_size(cli.scale);
    let horizon = horizons[0];
    let opts = settings::train_options(cli.scale);

    let mut table = Table::new(&[
        "dataset", "model", "MSE", "MAE", "FLOPs(M)", "Mem(MB)", "Param(K)",
    ]);

    for bench in [Benchmark::Pems08, Benchmark::Electricity] {
        let ds = MtsDataset::generate(
            bench.scaled(max_entities, max_len),
            settings::seed_for("table4", bench as u64),
        );
        let entities = ds.spec().entities;
        let mut cfg = FocusConfig::new(lookback, horizon);
        cfg.segment_len = 8;
        cfg.n_prototypes = 12;
        cfg.d = 24;
        // All variants share one offline prototype set, isolating the online
        // architecture.
        let protos = cfg.cluster(&ds.train_matrix(), settings::seed_for("table4-proto", 0));

        eprintln!("== {} ==", ds.spec().name);
        for variant in AblationVariant::ALL {
            let mut model = FocusAblation::with_prototypes(
                variant,
                cfg.clone(),
                &protos,
                settings::seed_for("table4-model", variant as u64),
            );
            model.train(&ds, &opts);
            let m = model.evaluate(&ds, Split::Test, horizon);
            let c = model.cost(entities);
            eprintln!(
                "  {:<16} MSE {:.4}  FLOPs {:.1}M  Mem {:.2}MB  Params {:.0}K",
                variant.label(),
                m.mse(),
                c.mflops(),
                c.mem_mib(),
                c.kparams()
            );
            table.row(vec![
                ds.spec().name.clone(),
                variant.label().to_string(),
                f4(m.mse()),
                f4(m.mae()),
                format!("{:.1}", c.mflops()),
                format!("{:.2}", c.mem_mib()),
                format!("{:.0}", c.kparams()),
            ]);
        }
    }

    println!("\n# Table IV — ablation study\n");
    println!("{}", table.to_markdown());
    println!("\npaper findings to check:");
    println!("  FOCUS-Attn: higher FLOPs/memory, negligible accuracy gain");
    println!("  FOCUS-LnrFusion: cheaper but less accurate, more parameters");
    println!("  FOCUS-AllLnr: cheapest, least accurate");

    if cli.csv {
        let path = table
            .save_csv(std::path::Path::new(env!("CARGO_MANIFEST_DIR")), "table4")
            .expect("write csv");
        println!("csv: {}", path.display());
    }
}
