//! Case study (paper §VIII-G, Figs. 11–13) on a PEMS08-like sequence:
//!
//! * `--part approx`     — Fig. 11: approximate a day-long series with k=8
//!   prototypes rescaled to local mean/std;
//! * `--part forecast`   — Fig. 12: one window's forecast vs ground truth;
//! * `--part dependency` — Fig. 13: the learned long-range dependency matrix
//!   `A · α`.
//!
//! Usage: `cargo run --release -p focus-bench --bin case_study [--part …] [--fast]`

use focus_bench::settings::{self, Cli};
use focus_cluster::{reconstruct_row, segment_matrix, ClusterConfig};
use focus_core::protoattn::Assignment;
use focus_core::{Focus, FocusConfig, Forecaster};
use focus_data::{Benchmark, MtsDataset, Split};
use focus_nn::revin::instance_norm;

fn spark(values: &[f32]) -> String {
    let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    values
        .iter()
        .map(|&v| {
            let u = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
            ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'][(u * 7.0).round() as usize]
        })
        .collect()
}

fn main() {
    let cli = Cli::parse();
    let parts: Vec<&str> = match cli.opt("part") {
        Some(p) => vec![p],
        None => vec!["approx", "forecast", "dependency"],
    };
    let parts: Vec<String> = parts.into_iter().map(String::from).collect();

    let (max_entities, max_len) = settings::dataset_size(cli.scale);
    let ds = MtsDataset::generate(
        Benchmark::Pems08.scaled(max_entities, max_len),
        settings::seed_for("case", 0),
    );
    let spd = ds.spec().steps_per_day().min(ds.spec().len / 4);

    if parts.iter().any(|p| p == "approx") {
        println!("## Fig. 11 — series approximation with k = 8 prototypes\n");
        let day = &ds.data().row(0)[..spd];
        let p = 16.min(spd / 4).max(2);
        let segs = segment_matrix(&ds.train_matrix(), p);
        let protos = ClusterConfig::new(8, p).fit(&segs, settings::seed_for("case-k8", 0));
        let rep = reconstruct_row(day, &protos);
        let n = rep.reconstruction.len();
        println!("original       {}", spark(&day[..n]));
        println!("reconstruction {}", spark(&rep.reconstruction));
        println!(
            "\nMSE {:.4}, correlation {:.3}, prototypes used: {:?}",
            rep.mse,
            rep.correlation,
            {
                let mut used = rep.assignments.clone();
                used.sort_unstable();
                used.dedup();
                used
            }
        );
        println!();
    }

    // A trained model for the remaining parts.
    let (lookback, horizons) = settings::window_size(cli.scale);
    let horizon = horizons[0];
    let mut cfg = FocusConfig::new(lookback, horizon);
    cfg.segment_len = 8;
    cfg.n_prototypes = 12;
    cfg.d = 24;
    let mut model = Focus::fit_offline(&ds, cfg.clone(), settings::seed_for("case-m", 0));
    model.train(&ds, &settings::train_options(cli.scale));

    let test_range = ds.range(Split::Test);
    let w = ds.window_at(test_range.start + spd / 2, lookback, horizon);

    if parts.iter().any(|p| p == "forecast") {
        println!("## Fig. 12 — forecast vs ground truth (entity 0)\n");
        let pred = model.predict(&w.x);
        println!("input    {}", spark(w.x.row(0)));
        println!("truth    {}", spark(w.y.row(0)));
        println!("forecast {}", spark(pred.row(0)));
        let mut m = focus_data::Metrics::new();
        m.update(&pred, &w.y);
        println!("\nwindow MSE {:.4}, MAE {:.4}\n", m.mse(), m.mae());
    }

    if parts.iter().any(|p| p == "dependency") {
        println!("## Fig. 13 — learned long-range dependency (entity 0)\n");
        let (x_norm, _) = instance_norm(&w.x);
        let segs = model.extractor().segment_view(&x_norm);
        let assign = Assignment::Hard.matrix(&segs, model.prototypes());
        let dep = model
            .extractor()
            .temporal_attn()
            .dependency_matrix(model.params(), &segs, &assign);
        let l = segs.dims()[1];
        println!("rows: query segment (old → recent); cols: attended segment\n");
        for i in 0..l {
            let row: Vec<f32> = (0..l).map(|j| dep.at3(0, i, j)).collect();
            println!("seg {i:>2} {}", spark(&row));
        }
        println!("\n(each row sums to 1; bright cells mark the segments the model consults)");
    }
}
