//! Fig. 6: FLOPs, peak memory and parameter count of every model as the
//! input length grows — the paper's efficiency headline (FOCUS scales
//! linearly; the transformer baselines quadratically).
//!
//! These are the paper's own platform-independent metrics, computed
//! analytically from the architectures (`thop`-style), so this figure
//! reproduces *directly*, not just in shape.
//!
//! Usage: `cargo run --release -p focus-bench --bin fig6 [--fast|--full] [--csv]`

use focus_baselines::{BaselineConfig, ModelKind};
use focus_bench::report::{f1, Table};
use focus_bench::settings::{self, Cli, Scale};
use focus_data::{Benchmark, MtsDataset};

fn main() {
    let cli = Cli::parse();
    let (max_entities, max_len) = settings::dataset_size(cli.scale);
    let lengths: &[usize] = match cli.scale {
        Scale::Fast => &[96, 192],
        Scale::Standard => &[96, 192, 384, 768, 1536],
        Scale::Full => &[96, 192, 384, 768, 1536, 3072],
    };
    let horizon = 48;

    // The efficiency study is architecture-only; one dataset supplies the
    // entity count and the FOCUS prototypes.
    let spec = Benchmark::Pems08.scaled(max_entities, max_len);
    let entities = spec.entities;
    let ds = MtsDataset::generate(spec, settings::seed_for("fig6", 0));

    let mut table = Table::new(&["model", "L", "MFLOPs", "Mem(MiB)", "Params(K)"]);
    for kind in ModelKind::ALL {
        for &len in lengths {
            let cfg = BaselineConfig {
                d: 32,
                n_prototypes: 12,
                ..BaselineConfig::new(len, horizon)
            };
            let model = cfg.build(kind, &ds);
            let c = model.cost(entities);
            table.row(vec![
                kind.label().to_string(),
                len.to_string(),
                format!("{:.2}", c.mflops()),
                format!("{:.3}", c.mem_mib()),
                f1(c.kparams()),
            ]);
        }
    }

    println!("# Fig. 6 — efficiency vs input length (N = {entities})\n");
    println!("{}", table.to_markdown());

    // Scaling-exponent summary: fit log(flops) ~ a·log(L).
    println!("\nempirical FLOPs scaling exponents (log–log slope over the sweep):");
    for kind in ModelKind::ALL {
        let mut pts = Vec::new();
        for &len in lengths {
            let cfg = BaselineConfig {
                d: 32,
                n_prototypes: 12,
                ..BaselineConfig::new(len, horizon)
            };
            let c = cfg.build(kind, &ds).cost(entities);
            pts.push(((len as f64).ln(), (c.flops as f64).ln()));
        }
        let slope = slope(&pts);
        println!("  {:<14} {slope:.2}", kind.label());
    }
    println!("\n(FOCUS ≈ 1.0 = linear; PatchTST/Crossformer trend toward 2.0 = quadratic)");

    if cli.csv {
        let path = table
            .save_csv(std::path::Path::new(env!("CARGO_MANIFEST_DIR")), "fig6")
            .expect("write csv");
        println!("csv: {}", path.display());
    }
}

fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}
