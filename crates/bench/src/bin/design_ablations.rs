//! Design-choice ablations beyond the paper's Table IV — the candidates
//! DESIGN.md §5 calls out:
//!
//! * hard one-hot assignment (paper, Eq. 15) vs soft assignment;
//! * AdamW prototype optimisation (paper, §V) vs the closed-form k-means
//!   mean update;
//! * the readout-query count `m` of the Parallel Fusion Module.
//!
//! Usage: `cargo run --release -p focus-bench --bin design_ablations [--fast|--full] [--csv]`

use focus_bench::report::{f4, Table};
use focus_bench::settings::{self, Cli, Scale};
use focus_cluster::ProtoUpdate;
use focus_core::{Assignment, Focus, FocusConfig, Forecaster};
use focus_data::{Benchmark, MtsDataset, Split};

fn main() {
    let cli = Cli::parse();
    let (max_entities, max_len) = settings::dataset_size(cli.scale);
    let (lookback, horizons) = settings::window_size(cli.scale);
    let horizon = horizons[0];
    // Fixed budget across variants, same rationale as fig7.
    let opts = focus_core::TrainOptions {
        epochs: if cli.scale == Scale::Fast { 4 } else { 12 },
        max_windows: 64,
        patience: None,
        ..settings::train_options(cli.scale)
    };

    let ds = MtsDataset::generate(
        Benchmark::Pems08.scaled(max_entities, max_len),
        settings::seed_for("design", 0),
    );
    let base = || {
        let mut cfg = FocusConfig::new(lookback, horizon);
        cfg.segment_len = 8;
        cfg.n_prototypes = 12;
        cfg.d = 24;
        cfg
    };

    let mut table = Table::new(&["study", "variant", "MSE", "MAE"]);
    let mut run = |study: &str, variant: &str, cfg: FocusConfig| {
        let mut model = Focus::fit_offline(&ds, cfg, settings::seed_for("design-m", 0));
        model.train(&ds, &opts);
        let m = model.evaluate(&ds, Split::Test, horizon);
        eprintln!("  {study}/{variant}: MSE {:.4}", m.mse());
        table.row(vec![study.into(), variant.into(), f4(m.mse()), f4(m.mae())]);
    };

    eprintln!("== assignment mode ==");
    run("assignment", "hard (paper)", base());
    for temp in [0.5f32, 2.0] {
        let mut cfg = base();
        cfg.assignment = Assignment::Soft { temperature: temp };
        run("assignment", &format!("soft τ={temp}"), cfg);
    }

    eprintln!("== prototype update rule ==");
    run("proto-update", "AdamW (paper)", base());
    {
        let mut cfg = base();
        cfg.cluster_update = ProtoUpdate::ClosedFormMean;
        run("proto-update", "closed-form mean", cfg);
    }

    eprintln!("== readout queries m ==");
    let ms: &[usize] = if cli.scale == Scale::Fast { &[2, 6] } else { &[2, 4, 6, 12, 21] };
    for &m in ms {
        let mut cfg = base();
        cfg.readout = m;
        run("readout-m", &format!("m={m}"), cfg);
    }

    println!("\n# Design ablations (PEMS08-like, horizon {horizon})\n");
    println!("{}", table.to_markdown());

    if cli.csv {
        let path = table
            .save_csv(std::path::Path::new(env!("CARGO_MANIFEST_DIR")), "design_ablations")
            .expect("write csv");
        println!("csv: {}", path.display());
    }
}
