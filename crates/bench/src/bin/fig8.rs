//! Fig. 8: effect of the clustering objective — prototypes fitted with
//! reconstruction error only (*Rec Only*) vs reconstruction + correlation
//! (*Rec+Corr*, Eq. 10) — measured, as in the paper, by the downstream
//! forecast accuracy of the model trained on each prototype set, plus the
//! offline wall-clock to show the corr term is effectively free.
//!
//! Usage: `cargo run --release -p focus-bench --bin fig8 [--fast|--full] [--csv]`

use focus_bench::report::{f4, Table};
use focus_bench::settings::{self, Cli};
use focus_cluster::{segment_matrix, ClusterConfig, Objective};
use focus_core::{Focus, FocusConfig, Forecaster};
use focus_data::{Benchmark, MtsDataset, Split};
use focus_trace::clock;

fn main() {
    let cli = Cli::parse();
    let (max_entities, max_len) = settings::dataset_size(cli.scale);
    let (lookback, horizons) = settings::window_size(cli.scale);
    let horizon = horizons[0];
    let opts = settings::train_options(cli.scale);

    let mut table = Table::new(&["dataset", "objective", "MSE", "MAE", "offline(ms)"]);

    for bench in [Benchmark::Pems08, Benchmark::Electricity] {
        let ds = MtsDataset::generate(
            bench.scaled(max_entities, max_len),
            settings::seed_for("fig8", bench as u64),
        );
        let mut cfg = FocusConfig::new(lookback, horizon);
        cfg.segment_len = 8;
        cfg.n_prototypes = 12;
        cfg.d = 24;

        let segments = segment_matrix(&ds.train_matrix(), cfg.segment_len);
        eprintln!("== {} ({} segments) ==", ds.spec().name, segments.dims()[0]);

        for (label, objective) in [
            ("Rec Only", Objective::RecOnly),
            ("Rec+Corr", Objective::rec_corr(0.2)),
        ] {
            // Average over seeds: the effect size is small, so a single run
            // is dominated by training noise.
            let n_seeds = 3u64;
            let (mut mse, mut mae, mut offline_ms) = (0.0f64, 0.0f64, 0.0f64);
            for seed in 0..n_seeds {
                let t0 = clock::now_ns();
                let protos = ClusterConfig::new(cfg.n_prototypes, cfg.segment_len)
                    .with_objective(objective)
                    .with_update(cfg.cluster_update)
                    .with_max_iters(cfg.cluster_iters)
                    .fit(&segments, settings::seed_for("fig8-cluster", seed));
                offline_ms += clock::now_ns().saturating_sub(t0) as f64 / 1e6;

                // Identical online training on top of each prototype set.
                let mut model =
                    Focus::with_prototypes(cfg.clone(), protos, settings::seed_for("fig8-model", seed));
                let mut topts = opts.clone();
                topts.seed = seed;
                model.train(&ds, &topts);
                let m = model.evaluate(&ds, Split::Test, horizon);
                mse += m.mse();
                mae += m.mae();
            }
            let k = n_seeds as f64;
            let (mse, mae, offline_ms) = (mse / k, mae / k, offline_ms / k);
            eprintln!("  {label:<9} MSE {mse:.4}  offline {offline_ms:.0}ms");
            table.row(vec![
                ds.spec().name.clone(),
                label.to_string(),
                f4(mse),
                f4(mae),
                format!("{offline_ms:.0}"),
            ]);
        }
    }

    println!("\n# Fig. 8 — Rec Only vs Rec+Corr clustering objectives\n");
    println!("{}", table.to_markdown());
    println!("\npaper finding: Rec+Corr improves MSE/MAE at negligible extra offline cost");

    if cli.csv {
        let path = table
            .save_csv(std::path::Path::new(env!("CARGO_MANIFEST_DIR")), "fig8")
            .expect("write csv");
        println!("csv: {}", path.display());
    }
}
