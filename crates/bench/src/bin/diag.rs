//! Developer diagnostic: FOCUS training dynamics vs PatchTST at several
//! learning rates. Not part of the paper reproduction; used to tune the
//! shared training defaults.

use focus_baselines::PatchTst;
use focus_core::{Focus, FocusConfig, Forecaster, TrainOptions};
use focus_data::{Benchmark, MtsDataset, Split};

fn main() {
    let ds = MtsDataset::generate(Benchmark::Pems08.scaled(12, 3_000), 33);
    for lr in [2e-3f32, 5e-3, 1e-2, 2e-2] {
        let opts = TrainOptions {
            epochs: 20,
            max_windows: 64,
            lr,
            ..Default::default()
        };
        let mut cfg = FocusConfig::new(96, 24);
        cfg.segment_len = 8;
        cfg.n_prototypes = 10;
        cfg.d = 24;
        let mut focus = Focus::fit_offline(&ds, cfg, 1);
        let rf = focus.train(&ds, &opts);
        let mf = focus.evaluate(&ds, Split::Test, 48);

        let mut patch = PatchTst::new(96, 24, 8, 24, 1);
        let rp = patch.train(&ds, &opts);
        let mp = patch.evaluate(&ds, Split::Test, 48);

        println!(
            "lr {lr:.0e}: FOCUS loss {:.3}->{:.3} test {:.4} | PatchTST loss {:.3}->{:.3} test {:.4}",
            rf.epoch_losses[0],
            rf.epoch_losses.last().expect("train ran at least one epoch"),
            mf.mse(),
            rp.epoch_losses[0],
            rp.epoch_losses.last().expect("train ran at least one epoch"),
            mp.mse()
        );
    }
}
