//! Fig. 9: generalization to unseen segment patterns. The paper identifies
//! Electricity test instances containing segments absent from the training
//! distribution (illustrated there with t-SNE) and compares FOCUS's
//! forecasts against PatchTST's on those instances.
//!
//! Here the "unseen-ness" of a test window is *measured* — the maximum
//! distance of any of its segments to the nearest training prototype — and
//! both models are evaluated on the most-novel versus a typical cohort.
//!
//! Usage: `cargo run --release -p focus-bench --bin fig9 [--fast|--full] [--csv]`

use focus_baselines::PatchTst;
use focus_bench::report::{f4, Table};
use focus_bench::settings::{self, Cli};
use focus_core::{Focus, FocusConfig, Forecaster};
use focus_data::{novelty, Benchmark, Metrics, MtsDataset, Split, Window};

fn main() {
    let cli = Cli::parse();
    let (max_entities, max_len) = settings::dataset_size(cli.scale);
    let (lookback, horizons) = settings::window_size(cli.scale);
    let horizon = horizons[0];
    let opts = settings::train_options(cli.scale);

    let ds = MtsDataset::generate(
        Benchmark::Electricity.scaled(max_entities, max_len),
        settings::seed_for("fig9", 0),
    );
    let mut cfg = FocusConfig::new(lookback, horizon);
    cfg.segment_len = 8;
    cfg.n_prototypes = 12;
    cfg.d = 24;

    let mut focus_model = Focus::fit_offline(&ds, cfg.clone(), settings::seed_for("fig9-m", 0));
    focus_model.train(&ds, &opts);
    let mut patch = PatchTst::new(lookback, horizon, cfg.segment_len, cfg.d, settings::seed_for("fig9-m", 1));
    patch.train(&ds, &opts);

    // Rank test windows by novelty against the training prototypes.
    let windows = ds.windows(Split::Test, lookback, horizon, horizon / 2);
    assert!(windows.len() >= 8, "need enough test windows, got {}", windows.len());
    let inputs: Vec<_> = windows.iter().map(|w| w.x.clone()).collect();
    let reference = focus_model.prototypes().centers();
    let cohort = (windows.len() / 4).max(2);
    let novel_idx = novelty::most_novel_windows(&inputs, reference, cfg.segment_len, cohort);

    let mut scores: Vec<(usize, f32)> = inputs
        .iter()
        .enumerate()
        .map(|(i, x)| (i, novelty::window_novelty(x, reference, cfg.segment_len)))
        .collect();
    scores.sort_by(|a, b| a.1.total_cmp(&b.1));
    let typical_idx: Vec<usize> = scores.iter().take(cohort).map(|s| s.0).collect();

    let eval = |model: &dyn Forecaster, idx: &[usize]| -> Metrics {
        let mut m = Metrics::new();
        for &i in idx {
            let w: &Window = &windows[i];
            m.update(&model.predict(&w.x), &w.y);
        }
        m
    };

    let mut table = Table::new(&["cohort", "model", "MSE", "MAE"]);
    for (label, idx) in [("typical", &typical_idx), ("unseen-segments", &novel_idx)] {
        for (name, model) in [
            ("FOCUS", &focus_model as &dyn Forecaster),
            ("PatchTST", &patch as &dyn Forecaster),
        ] {
            let m = eval(model, idx);
            table.row(vec![label.into(), name.into(), f4(m.mse()), f4(m.mae())]);
        }
    }

    println!("# Fig. 9 — generalization to unseen test segments (Electricity-like)\n");
    println!("cohort size: {cohort} windows each\n");
    println!("{}", table.to_markdown());
    println!("\npaper finding: on unseen-segment instances FOCUS follows the ground-truth");
    println!("trend better than PatchTST (smaller accuracy degradation), because the");
    println!("clustering step associates new segments with known prototypes.");

    if cli.csv {
        let path = table
            .save_csv(std::path::Path::new(env!("CARGO_MANIFEST_DIR")), "fig9")
            .expect("write csv");
        println!("csv: {}", path.display());
    }
}
