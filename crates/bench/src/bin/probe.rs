//! Developer probe: FOCUS hyper-parameter sensitivity on the Table III
//! PEMS08 setting, to pick the grid the table3 harness searches.

use focus_bench::settings;
use focus_core::{Focus, FocusConfig, Forecaster, TrainOptions};
use focus_data::{Benchmark, MtsDataset, Split};

fn main() {
    let ds = MtsDataset::generate(
        Benchmark::Pems08.scaled(16, 6_000),
        settings::seed_for("table3-data", Benchmark::Pems08 as u64),
    );
    let opts = TrainOptions {
        epochs: 40,
        max_windows: 96,
        patience: Some(10),
        ..Default::default()
    };
    for (p, k, d, layers) in [
        (8usize, 12usize, 32usize, 1usize), // current table3 config
        (8, 24, 32, 1),
        (8, 48, 32, 1),
        (16, 24, 32, 1),
        (8, 24, 48, 1),
        (8, 24, 32, 2),
        (12, 24, 32, 1),
    ] {
        let mut cfg = FocusConfig::new(192, 48);
        cfg.segment_len = p;
        cfg.n_prototypes = k;
        cfg.d = d;
        cfg.n_layers = layers;
        let mut model = Focus::fit_offline(&ds, cfg, settings::seed_for("table3-model", 48));
        let r = model.train(&ds, &opts);
        let m = model.evaluate(&ds, Split::Test, 48);
        println!(
            "p={p:<3} k={k:<3} d={d:<3} layers={layers}: MSE {:.4} MAE {:.4} (epochs {}, best {:?})",
            m.mse(),
            m.mae(),
            r.epoch_losses.len(),
            r.best_epoch
        );
    }
}
