//! Fig. 7: parameter study on the PEMS08-like dataset —
//! (a) prototype count `k`, (b) embedding size `d`, (c) input window `L`,
//! (d) patch length `p`. Each sweep reports accuracy (MSE/MAE) alongside
//! the analytic FLOPs and peak memory, mirroring the paper's twin-axis
//! plots.
//!
//! Usage: `cargo run --release -p focus-bench --bin fig7 [--part a|b|c|d] [--fast|--full] [--csv]`

use focus_bench::report::{f4, Table};
use focus_bench::settings::{self, Cli, Scale};
use focus_core::{Focus, FocusConfig, Forecaster};
use focus_data::{Benchmark, MtsDataset, Split};

fn main() {
    let cli = Cli::parse();
    let parts: Vec<char> = match cli.opt("part") {
        Some(p) => p.chars().collect(),
        None => vec!['a', 'b', 'c', 'd'],
    };
    let (max_entities, max_len) = settings::dataset_size(cli.scale);
    // Fixed budget across sweep points: the figure compares configurations,
    // so every point gets the identical training schedule.
    let opts = focus_core::TrainOptions {
        epochs: if cli.scale == Scale::Fast { 4 } else { 12 },
        max_windows: 64,
        patience: None,
        ..settings::train_options(cli.scale)
    };
    let ds = MtsDataset::generate(
        Benchmark::Pems08.scaled(max_entities, max_len),
        settings::seed_for("fig7", 1),
    );
    let entities = ds.spec().entities;

    let base = |lookback: usize| -> FocusConfig {
        let mut cfg = FocusConfig::new(lookback, 24);
        cfg.segment_len = 8;
        cfg.n_prototypes = 12;
        cfg.d = 24;
        cfg
    };
    let fast = cli.scale == Scale::Fast;

    let mut table = Table::new(&["part", "setting", "MSE", "MAE", "MFLOPs", "Mem(MiB)"]);
    let mut run = |part: char, setting: String, cfg: FocusConfig| {
        let mut model = Focus::fit_offline(&ds, cfg, settings::seed_for("fig7-model", part as u64));
        model.train(&ds, &opts);
        let m = model.evaluate(&ds, Split::Test, 24);
        let c = model.cost(entities);
        eprintln!("  {part}/{setting}: MSE {:.4} FLOPs {:.2}M", m.mse(), c.mflops());
        table.row(vec![
            part.to_string(),
            setting,
            f4(m.mse()),
            f4(m.mae()),
            format!("{:.2}", c.mflops()),
            format!("{:.3}", c.mem_mib()),
        ]);
    };

    for part in parts {
        match part {
            'a' => {
                eprintln!("== (a) prototype count k ==");
                let ks: &[usize] = if fast { &[4, 16] } else { &[4, 8, 16, 32, 64] };
                for &k in ks {
                    let mut cfg = base(96);
                    cfg.n_prototypes = k;
                    run('a', format!("k={k}"), cfg);
                }
            }
            'b' => {
                eprintln!("== (b) embedding size d ==");
                let dims: &[usize] = if fast { &[8, 32] } else { &[8, 16, 32, 64, 128] };
                for &d in dims {
                    let mut cfg = base(96);
                    cfg.d = d;
                    run('b', format!("d={d}"), cfg);
                }
            }
            'c' => {
                eprintln!("== (c) input window L ==");
                let ls: &[usize] = if fast { &[48, 96] } else { &[48, 96, 192, 384] };
                for &l in ls {
                    run('c', format!("L={l}"), base(l));
                }
            }
            'd' => {
                eprintln!("== (d) patch length p ==");
                let ps: &[usize] = if fast { &[8, 24] } else { &[4, 8, 12, 24, 48] };
                for &p in ps {
                    let mut cfg = base(96);
                    cfg.segment_len = p;
                    run('d', format!("p={p}"), cfg);
                }
            }
            other => eprintln!("unknown part {other:?}, skipping"),
        }
    }

    println!("\n# Fig. 7 — FOCUS parameter study (PEMS08-like)\n");
    println!("{}", table.to_markdown());
    println!("\npaper trends to check:");
    println!("  (a) FLOPs grow with k; accuracy gains plateau past a threshold");
    println!("  (b) FLOPs grow with d; accuracy improves with diminishing returns");
    println!("  (c) longer L steadily improves accuracy at higher cost");
    println!("  (d) shorter p improves accuracy but costs more");

    if cli.csv {
        let path = table
            .save_csv(std::path::Path::new(env!("CARGO_MANIFEST_DIR")), "fig7")
            .expect("write csv");
        println!("csv: {}", path.display());
    }
}
