//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and no crates.io cache, so the
//! workspace ships this minimal reimplementation of exactly the surface the
//! FOCUS crates use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen`/`gen_range`/`gen_bool`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — not the
//! ChaCha12 of upstream `StdRng`, so streams differ from crates.io `rand`,
//! but every use in this workspace only relies on *deterministic,
//! well-distributed* streams, never on upstream-exact values.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single word, expanding it internally.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f32`/`f64` uniform in `[0, 1)`, `bool` fair coin, integers uniform).
    fn gen<T>(&mut self) -> T
    where
        T: distributions::StandardSample,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Fast, 256-bit state, passes BigCrush; plenty for tests, initialisation
    /// and synthetic data. Seeded via SplitMix64 so any `u64` (including 0)
    /// yields a well-mixed state.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    pub mod mock {
        //! Deterministic non-random generators for tests.

        use super::RngCore;

        /// Yields `initial`, then increments by `increment` per call.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// A counter starting at `initial`, stepping by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { v: initial, increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Standard-distribution and range sampling, mirroring
    //! `rand::distributions` far enough for `gen`/`gen_range`.

    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types samplable by [`crate::Rng::gen`].
    pub trait StandardSample {
        /// Draws one value from the type's standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardSample for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
            // 24 high bits → uniform in [0, 1) with full f32 precision.
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl StandardSample for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardSample for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardSample for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl StandardSample for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    /// Ranges samplable by [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        ///
        /// # Panics
        /// If the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Uniform `u64` in `[0, n)` by widening multiply (negligible bias for
    /// the range sizes used here, and fully deterministic).
    fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
        ((rng.next_u64() as u128 * n as u128) >> 64) as u64
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(uniform_below(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_below(rng, span + 1) as $t)
                }
            }
        )*};
    }

    int_range!(usize, u64, u32, i64, i32);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = <$t as StandardSample>::sample_standard(rng);
                    let v = self.start + (self.end - self.start) * unit;
                    // `unit < 1` but rounding can still land on `end`; fold
                    // that measure-zero case back onto the valid endpoint.
                    if v < self.end { v } else { self.start }
                }
            }
        )*};
    }

    float_range!(f32, f64);
}

pub mod seq {
    //! Slice helpers, mirroring `rand::seq`.

    use super::distributions::SampleRange;
    use super::RngCore;

    /// Random reordering / selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let v = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&v));
            sum += v as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5f32..4.0);
            assert!((-2.5..4.0).contains(&f));
            let g = rng.gen_range(f32::MIN_POSITIVE..1.0);
            assert!(g > 0.0 && g < 1.0);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
