//! Property-based tests for the layer library.

use focus_autograd::{Graph, ParamStore};
use focus_nn::mlp::{Activation, Mlp};
use focus_nn::revin::{instance_denorm, instance_norm};
use focus_nn::{LayerNorm, Linear, SelfAttention};
use focus_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn matrix(m: usize, n: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-3.0f32..3.0, m * n).prop_map(move |v| Tensor::from_vec(v, &[m, n]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn linear_is_affine(x in matrix(4, 5), y in matrix(4, 5), a in -2.0f32..2.0) {
        // f(a·x + (1−a)·y) = a·f(x) + (1−a)·f(y) for an affine map.
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let lin = Linear::new(&mut ps, "l", 5, 3, &mut rng);
        let apply = |input: &Tensor| -> Tensor {
            let mut g = Graph::new();
            let pv = ps.register(&mut g);
            let xv = g.constant(input.clone());
            let out = lin.forward(&mut g, &pv, xv);
            g.value(out).clone()
        };
        let mixed = x.scale(a).add(&y.scale(1.0 - a));
        let lhs = apply(&mixed);
        let rhs = apply(&x).scale(a).add(&apply(&y).scale(1.0 - a));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn layer_norm_is_shift_and_scale_invariant(x in matrix(3, 6), shift in -5.0f32..5.0, scale in 0.5f32..3.0) {
        let mut ps = ParamStore::new();
        let ln = LayerNorm::new(&mut ps, "ln", 6);
        let apply = |input: &Tensor| -> Tensor {
            let mut g = Graph::new();
            let pv = ps.register(&mut g);
            let xv = g.constant(input.clone());
            let out = ln.forward(&mut g, &pv, xv);
            g.value(out).clone()
        };
        let base = apply(&x);
        let transformed = apply(&x.scale(scale).add_scalar(shift));
        // Row-wise standardisation kills affine transforms of the row.
        prop_assert!(base.max_abs_diff(&transformed) < 2e-2);
    }

    #[test]
    fn self_attention_rows_mix_but_shape_holds(x in matrix(6, 4)) {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let sa = SelfAttention::new(&mut ps, "sa", 4, &mut rng);
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let xv = g.constant(x.reshape(&[1, 6, 4]));
        let out = sa.forward(&mut g, &pv, xv);
        prop_assert_eq!(g.value(out).dims(), &[1, 6, 4]);
        prop_assert!(g.value(out).all_finite());
    }

    #[test]
    fn mlp_is_deterministic(x in matrix(5, 3)) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let mlp = Mlp::new(&mut ps, "m", 3, 7, 2, Activation::Gelu, &mut rng);
        let apply = || -> Tensor {
            let mut g = Graph::new();
            let pv = ps.register(&mut g);
            let xv = g.constant(x.clone());
            let out = mlp.forward(&mut g, &pv, xv);
            g.value(out).clone()
        };
        let first = apply();
        let second = apply();
        prop_assert_eq!(first.data(), second.data());
    }

    #[test]
    fn revin_round_trip(x in matrix(3, 12)) {
        let (normed, stats) = instance_norm(&x);
        prop_assert!(normed.all_finite());
        let back = instance_denorm(&normed, &stats);
        prop_assert!(back.max_abs_diff(&x) < 1e-3);
    }

    #[test]
    fn revin_output_is_standardised(x in matrix(2, 16)) {
        let (normed, _) = instance_norm(&x);
        for e in 0..2 {
            let row = normed.row(e);
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            prop_assert!(mean.abs() < 1e-4, "row {e} mean {mean}");
        }
    }
}
