//! # focus-nn
//!
//! The neural-network layer library shared by the FOCUS model
//! (`focus-core`) and all seven baseline forecasters (`focus-baselines`).
//!
//! Layers are plain structs holding [`focus_autograd::ParamId`]s into a
//! [`focus_autograd::ParamStore`]; their `forward` methods append ops to a
//! per-step [`focus_autograd::Graph`]. This split keeps parameters easy to
//! optimise, count and serialise.
//!
//! Two cross-cutting facilities live here as well:
//!
//! * [`cost`] — the analytic FLOPs / peak-activation-memory / parameter-count
//!   model behind the paper's efficiency comparisons (Fig. 6, Table IV).
//!   Counting is *architectural* (like `thop` for PyTorch): it depends only
//!   on tensor shapes, never on runtime, so the numbers are reproducible on
//!   any machine.
//! * [`revin`] — instance normalisation of forecast windows (RevIN-style),
//!   the standard distribution-shift guard used by PatchTST/DLinear-class
//!   models and by FOCUS's online phase.

#![forbid(unsafe_code)]

pub mod attention;
pub mod cost;
pub mod init;
pub mod linear;
pub mod mlp;
pub mod norm;
pub mod revin;

pub use attention::{MultiHeadAttention, SelfAttention};
pub use cost::CostReport;
pub use linear::Linear;
pub use mlp::Mlp;
pub use norm::LayerNorm;
