//! Two-layer feed-forward block.

use crate::cost::CostReport;
use crate::linear::Linear;
use focus_autograd::{Graph, ParamStore, ParamVars, Var};
use rand::Rng;

/// Nonlinearity choice for [`Mlp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// GELU (tanh approximation).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
}

/// `y = act(x·W₁ + b₁)·W₂ + b₂` over the trailing axis.
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
    act: Activation,
}

impl Mlp {
    /// An MLP `in_dim → hidden → out_dim` with the given activation.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut R,
    ) -> Self {
        Mlp {
            fc1: Linear::new(ps, &format!("{name}.fc1"), in_dim, hidden, rng),
            fc2: Linear::new(ps, &format!("{name}.fc2"), hidden, out_dim, rng),
            act,
        }
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.fc2.out_dim()
    }

    /// Applies the block.
    pub fn forward(&self, g: &mut Graph, pv: &ParamVars, x: Var) -> Var {
        let h = self.fc1.forward(g, pv, x);
        let a = match self.act {
            Activation::Relu => g.relu(h),
            Activation::Gelu => g.gelu(h),
            Activation::Tanh => g.tanh(h),
        };
        self.fc2.forward(g, pv, a)
    }

    /// Analytic cost over `rows` rows.
    pub fn cost(&self, rows: usize) -> CostReport {
        let c = self.fc1.cost(rows) + self.fc2.cost(rows);
        CostReport {
            // ~4 FLOPs per activation element.
            flops: c.flops + (rows * self.fc1.out_dim() * 4) as u64,
            ..c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_autograd::AdamW;
    use focus_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fits_a_nonlinear_function() {
        // y = x² on [-1, 1]: impossible for a linear map, easy for a small MLP.
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let mlp = Mlp::new(&mut ps, "mlp", 1, 16, 1, Activation::Gelu, &mut rng);
        let mut opt = AdamW::new(0.01, 0.0);
        let xs: Vec<f32> = (0..64).map(|i| -1.0 + 2.0 * i as f32 / 63.0).collect();
        let ys: Vec<f32> = xs.iter().map(|v| v * v).collect();
        let x = Tensor::from_vec(xs, &[64, 1]);
        let y = Tensor::from_vec(ys, &[64, 1]);
        let mut last = f32::MAX;
        for _ in 0..500 {
            let mut g = Graph::new();
            let pv = ps.register(&mut g);
            let xv = g.constant(x.clone());
            let yv = g.constant(y.clone());
            let pred = mlp.forward(&mut g, &pv, xv);
            let loss = g.mse(pred, yv);
            g.backward(loss);
            ps.step(&mut opt, &g, &pv);
            last = g.value(loss).item();
        }
        assert!(last < 5e-3, "loss {last}");
    }

    #[test]
    fn all_activations_run() {
        let mut rng = StdRng::seed_from_u64(4);
        for act in [Activation::Relu, Activation::Gelu, Activation::Tanh] {
            let mut ps = ParamStore::new();
            let mlp = Mlp::new(&mut ps, "mlp", 3, 5, 2, act, &mut rng);
            let mut g = Graph::new();
            let pv = ps.register(&mut g);
            let x = g.constant(Tensor::randn(&[4, 3], 1.0, &mut rng));
            let y = mlp.forward(&mut g, &pv, x);
            assert_eq!(g.value(y).dims(), &[4, 2]);
            assert!(g.value(y).all_finite());
        }
    }
}
