//! Fully connected layer.

use crate::cost::CostReport;
use crate::init;
use focus_autograd::{Graph, ParamId, ParamStore, ParamVars, Var};
use rand::Rng;

use focus_tensor::Tensor;

/// An affine map `y = x·W + b` over the trailing axis.
///
/// Accepts inputs of any rank; the trailing axis must equal `in_dim`. Inputs
/// of rank ≥ 3 are flattened to `[rows, in_dim]` for the matmul and restored
/// afterwards.
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// A linear layer with bias, Xavier-initialised.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = ps.add(format!("{name}.w"), init::xavier_uniform(in_dim, out_dim, rng));
        let b = ps.add(format!("{name}.b"), Tensor::zeros(&[out_dim]));
        Linear {
            w,
            b: Some(b),
            in_dim,
            out_dim,
        }
    }

    /// A bias-free linear layer (used for the Q/K/V projections, matching
    /// Eq. 14's plain projection matrices).
    pub fn new_no_bias<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = ps.add(format!("{name}.w"), init::xavier_uniform(in_dim, out_dim, rng));
        Linear {
            w,
            b: None,
            in_dim,
            out_dim,
        }
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to `x` (trailing axis = `in_dim`).
    pub fn forward(&self, g: &mut Graph, pv: &ParamVars, x: Var) -> Var {
        let dims = g.value(x).dims().to_vec();
        let rank = dims.len();
        assert_eq!(
            dims[rank - 1],
            self.in_dim,
            "Linear: input trailing dim {} != in_dim {}",
            dims[rank - 1],
            self.in_dim
        );
        let rows: usize = dims[..rank - 1].iter().product();
        let flat = if rank == 2 {
            x
        } else {
            g.reshape(x, &[rows, self.in_dim])
        };
        let mut y = g.matmul(flat, pv.var(self.w));
        if let Some(b) = self.b {
            y = g.add_row_broadcast(y, pv.var(b));
        }
        if rank == 2 {
            y
        } else {
            let mut out_dims = dims;
            out_dims[rank - 1] = self.out_dim;
            g.reshape(y, &out_dims)
        }
    }

    /// Analytic cost of applying this layer to `rows` rows.
    pub fn cost(&self, rows: usize) -> CostReport {
        let params = (self.in_dim * self.out_dim + if self.b.is_some() { self.out_dim } else { 0 }) as u64;
        CostReport {
            // 2 FLOPs per MAC, plus the bias adds.
            flops: 2 * (rows * self.in_dim * self.out_dim) as u64
                + if self.b.is_some() { (rows * self.out_dim) as u64 } else { 0 },
            params,
            peak_mem_bytes: (rows * self.out_dim * 4) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_autograd::Sgd;
    use focus_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_rank2_and_rank3() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let lin = Linear::new(&mut ps, "l", 4, 3, &mut rng);
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let x2 = g.constant(Tensor::ones(&[5, 4]));
        let y2 = lin.forward(&mut g, &pv, x2);
        assert_eq!(g.value(y2).dims(), &[5, 3]);
        let x3 = g.constant(Tensor::ones(&[2, 5, 4]));
        let y3 = lin.forward(&mut g, &pv, x3);
        assert_eq!(g.value(y3).dims(), &[2, 5, 3]);
        // Rank-3 application must equal per-slice rank-2 application.
        let y3b = g.value(y3).index_axis0(0);
        assert!(y3b.max_abs_diff(g.value(y2)) < 1e-6);
    }

    #[test]
    fn trains_to_fit_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let lin = Linear::new(&mut ps, "l", 3, 3, &mut rng);
        let mut opt = Sgd::new(0.3);
        let x = Tensor::from_vec(
            (0..30).map(|v| ((v * 7 % 13) as f32 - 6.0) / 6.0).collect(),
            &[10, 3],
        );
        let mut last = f32::MAX;
        for _ in 0..200 {
            let mut g = Graph::new();
            let pv = ps.register(&mut g);
            let xv = g.constant(x.clone());
            let y = lin.forward(&mut g, &pv, xv);
            let loss = g.mse(y, xv);
            g.backward(loss);
            ps.step(&mut opt, &g, &pv);
            last = g.value(loss).item();
        }
        assert!(last < 1e-3, "loss {last}");
    }

    #[test]
    fn cost_counts_macs_and_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let lin = Linear::new(&mut ps, "l", 10, 20, &mut rng);
        let c = lin.cost(5);
        assert_eq!(c.params, 10 * 20 + 20);
        assert_eq!(c.flops, 2 * 5 * 10 * 20 + 5 * 20);
        assert_eq!(ps.scalar_count(), c.params);
    }
}
