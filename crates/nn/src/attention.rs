//! Full softmax self-attention — the quadratic mechanism ProtoAttn replaces.
//!
//! Kept here because (a) the FOCUS-Attn ablation swaps it back in (Table IV),
//! and (b) the transformer-family baselines (PatchTST-lite, Crossformer-lite)
//! are built from it.

use crate::cost::CostReport;
use crate::linear::Linear;
use focus_autograd::{Graph, ParamStore, ParamVars, Var};
use rand::Rng;

/// Single-head scaled-dot-product self-attention with output projection.
///
/// Input/output shape `[B, l, d]`. Complexity is `O(B·l²·d)` — quadratic in
/// the sequence length, which is exactly the bottleneck the paper's offline
/// clustering removes.
pub struct SelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    d: usize,
}

impl SelfAttention {
    /// A self-attention block over feature width `d`.
    pub fn new<R: Rng + ?Sized>(ps: &mut ParamStore, name: &str, d: usize, rng: &mut R) -> Self {
        SelfAttention {
            wq: Linear::new_no_bias(ps, &format!("{name}.wq"), d, d, rng),
            wk: Linear::new_no_bias(ps, &format!("{name}.wk"), d, d, rng),
            wv: Linear::new_no_bias(ps, &format!("{name}.wv"), d, d, rng),
            wo: Linear::new_no_bias(ps, &format!("{name}.wo"), d, d, rng),
            d,
        }
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Applies attention to `x: [B, l, d]`, returning `[B, l, d]`.
    pub fn forward(&self, g: &mut Graph, pv: &ParamVars, x: Var) -> Var {
        assert_eq!(g.value(x).rank(), 3, "SelfAttention expects [B, l, d]");
        let q = self.wq.forward(g, pv, x);
        let k = self.wk.forward(g, pv, x);
        let v = self.wv.forward(g, pv, x);
        let scores = g.bmm_nt(q, k); // q·kᵀ → [B, l, l], no transposed copy
        let scaled = g.scale(scores, 1.0 / (self.d as f32).sqrt());
        let attn = g.softmax_last(scaled);
        let ctx = g.bmm(attn, v); // [B, l, d]
        self.wo.forward(g, pv, ctx)
    }

    /// Analytic cost for a batch of `b` sequences of length `l`.
    pub fn cost(&self, b: usize, l: usize) -> CostReport {
        let rows = b * l;
        let proj = self.wq.cost(rows) + self.wk.cost(rows) + self.wv.cost(rows) + self.wo.cost(rows);
        // scores + context: two B·l·l·d MACs; softmax ≈ 5 FLOPs/score.
        let attn_flops = 2 * (2 * b * l * l * self.d) as u64 + 5 * (b * l * l) as u64;
        // The l×l score matrix dominates peak activation memory.
        let attn_mem = (b * l * l * 4) as u64;
        CostReport {
            flops: proj.flops + attn_flops,
            params: proj.params,
            peak_mem_bytes: proj.peak_mem_bytes.max(attn_mem),
        }
    }
}

/// Multi-head scaled-dot-product self-attention.
///
/// Splits the `d`-wide projections into `h` heads of width `d/h`, attends
/// per head, concatenates and projects — the mechanism the transformer
/// baselines actually use. [`SelfAttention`] is the `h = 1` special case
/// kept for the ablation variants.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    d: usize,
    heads: usize,
}

impl MultiHeadAttention {
    /// A multi-head block over feature width `d` with `heads` heads.
    ///
    /// # Panics
    /// If `heads` does not divide `d`.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        name: &str,
        d: usize,
        heads: usize,
        rng: &mut R,
    ) -> Self {
        assert!(heads >= 1, "need at least one head");
        assert_eq!(d % heads, 0, "heads {heads} must divide d {d}");
        MultiHeadAttention {
            wq: Linear::new_no_bias(ps, &format!("{name}.wq"), d, d, rng),
            wk: Linear::new_no_bias(ps, &format!("{name}.wk"), d, d, rng),
            wv: Linear::new_no_bias(ps, &format!("{name}.wv"), d, d, rng),
            wo: Linear::new_no_bias(ps, &format!("{name}.wo"), d, d, rng),
            d,
            heads,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Applies attention to `x: [B, l, d]`, returning `[B, l, d]`.
    pub fn forward(&self, g: &mut Graph, pv: &ParamVars, x: Var) -> Var {
        assert_eq!(g.value(x).rank(), 3, "MultiHeadAttention expects [B, l, d]");
        let q = self.wq.forward(g, pv, x);
        let k = self.wk.forward(g, pv, x);
        let v = self.wv.forward(g, pv, x);
        let dh = self.d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut ctx: Option<Var> = None;
        for h in 0..self.heads {
            let (lo, hi) = (h * dh, (h + 1) * dh);
            let qh = g.slice_last(q, lo, hi); // [B, l, dh]
            let kh = g.slice_last(k, lo, hi);
            let vh = g.slice_last(v, lo, hi);
            let scores = g.bmm_nt(qh, kh); // qh·khᵀ, no transposed copy
            let scaled = g.scale(scores, scale);
            let attn = g.softmax_last(scaled);
            let head = g.bmm(attn, vh); // [B, l, dh]
            ctx = Some(match ctx {
                None => head,
                Some(acc) => g.concat_last(acc, head),
            });
        }
        self.wo.forward(g, pv, ctx.expect("at least one head"))
    }

    /// Analytic cost for a batch of `b` sequences of length `l`.
    ///
    /// Head splitting changes constants, not asymptotics: the score/context
    /// work totals the same `2·b·l²·d` MACs as single-head attention.
    pub fn cost(&self, b: usize, l: usize) -> CostReport {
        let rows = b * l;
        let proj = self.wq.cost(rows) + self.wk.cost(rows) + self.wv.cost(rows) + self.wo.cost(rows);
        let attn_flops = 2 * (2 * b * l * l * self.d) as u64 + 5 * (b * l * l * self.heads) as u64;
        let attn_mem = (b * l * l * self.heads * 4) as u64;
        CostReport {
            flops: proj.flops + attn_flops,
            params: proj.params,
            peak_mem_bytes: proj.peak_mem_bytes.max(attn_mem),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_autograd::Sgd;
    use focus_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let attn = SelfAttention::new(&mut ps, "attn", 8, &mut rng);
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let x = g.constant(Tensor::randn(&[2, 5, 8], 1.0, &mut rng));
        let y = attn.forward(&mut g, &pv, x);
        assert_eq!(g.value(y).dims(), &[2, 5, 8]);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn attention_can_learn_to_copy() {
        // A single attention layer can learn a near-identity map.
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let attn = SelfAttention::new(&mut ps, "attn", 4, &mut rng);
        let mut opt = Sgd::new(0.1);
        let x = Tensor::randn(&[1, 6, 4], 1.0, &mut rng);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..150 {
            let mut g = Graph::new();
            let pv = ps.register(&mut g);
            let xv = g.constant(x.clone());
            let y = attn.forward(&mut g, &pv, xv);
            let loss = g.mse(y, xv);
            g.backward(loss);
            ps.step(&mut opt, &g, &pv);
            if step == 0 {
                first = g.value(loss).item();
            }
            last = g.value(loss).item();
        }
        assert!(last < first * 0.5, "first {first}, last {last}");
    }

    #[test]
    fn multi_head_forward_shape_and_single_head_equivalence_class() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut ps, "mha", 8, 4, &mut rng);
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let x = g.constant(Tensor::randn(&[2, 5, 8], 1.0, &mut rng));
        let y = mha.forward(&mut g, &pv, x);
        assert_eq!(g.value(y).dims(), &[2, 5, 8]);
        assert!(g.value(y).all_finite());
        // Same parameter count as single-head at equal width.
        let mut ps1 = ParamStore::new();
        let sa = SelfAttention::new(&mut ps1, "sa", 8, &mut rng);
        let _ = sa;
        assert_eq!(ps.scalar_count(), ps1.scalar_count());
    }

    #[test]
    fn multi_head_gradients_reach_all_heads() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ps = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut ps, "mha", 6, 3, &mut rng);
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let x = g.constant(Tensor::randn(&[1, 4, 6], 1.0, &mut rng));
        let y = mha.forward(&mut g, &pv, x);
        let sq = g.mul(y, y);
        let loss = g.mean_all(sq);
        g.backward(loss);
        for (id, name, _) in ps.iter() {
            let grad = g.grad(pv.var(id)).unwrap_or_else(|| panic!("{name} missing grad"));
            assert!(grad.data().iter().any(|&v| v != 0.0), "{name} grad all-zero");
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn multi_head_rejects_indivisible_width() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ps = ParamStore::new();
        let _ = MultiHeadAttention::new(&mut ps, "mha", 8, 3, &mut rng);
    }

    #[test]
    fn cost_is_quadratic_in_length() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let attn = SelfAttention::new(&mut ps, "attn", 16, &mut rng);
        let c1 = attn.cost(1, 32);
        let c2 = attn.cost(1, 64);
        // Attention term dominates for l >> d; ratio should approach 4.
        let growth = c2.flops as f64 / c1.flops as f64;
        assert!(growth > 2.5, "growth {growth}");
        assert!(c2.peak_mem_bytes == 4 * c1.peak_mem_bytes);
    }
}
