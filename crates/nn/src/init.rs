//! Weight initialisation.

use focus_tensor::Tensor;
use rand::Rng;

/// Xavier/Glorot uniform initialisation for a `[fan_in, fan_out]` weight.
///
/// Samples `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`, the standard
/// choice for tanh/linear units and the one used by the transformer-family
/// baselines.
pub fn xavier_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(&[fan_in, fan_out], -a, a, rng)
}

/// Kaiming/He normal initialisation for ReLU/GELU stacks: `N(0, 2/fan_in)`.
pub fn kaiming_normal<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(&[fan_in, fan_out], std, rng)
}

/// Small-scale normal initialisation, `N(0, std²)`, for embeddings and
/// readout queries.
pub fn normal<R: Rng + ?Sized>(dims: &[usize], std: f32, rng: &mut R) -> Tensor {
    Tensor::randn(dims, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = xavier_uniform(64, 64, &mut rng);
        let a = (6.0 / 128.0f32).sqrt();
        assert!(w.data().iter().all(|&v| v > -a && v < a));
        assert_eq!(w.dims(), &[64, 64]);
    }

    #[test]
    fn kaiming_variance_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = kaiming_normal(100, 200, &mut rng);
        let var = w.var_all();
        assert!((var - 0.02).abs() < 0.005, "var {var}");
    }
}
