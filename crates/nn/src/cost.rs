//! Analytic cost accounting: FLOPs, peak activation memory and parameter
//! counts.
//!
//! The FOCUS paper evaluates efficiency with exactly these three
//! platform-independent metrics (§VIII-A, "Metrics"): FLOPs, peak memory and
//! parameter count, chosen "to minimize the impact of varying deep learning
//! platforms". We follow the `thop` convention the LightCTS authors used:
//! one multiply–accumulate = 2 FLOPs, pointwise ops ≈ a small constant per
//! element.
//!
//! Every model in this repository exposes `fn cost(&self, ...) -> CostReport`
//! built by summing layer costs; `CostReport` composes with `+` (sequential
//! composition: FLOPs and params add, peak memory takes the running max of
//! stage peaks).

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// Architectural cost of running a (sub)network once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Total floating-point operations for one forward pass.
    pub flops: u64,
    /// Trainable scalar parameters.
    pub params: u64,
    /// Peak live activation bytes during the forward pass (f32).
    pub peak_mem_bytes: u64,
}

impl CostReport {
    /// A zero-cost report (identity for `+`).
    pub const ZERO: CostReport = CostReport {
        flops: 0,
        params: 0,
        peak_mem_bytes: 0,
    };

    /// Cost of a plain matmul `[m, k] · [k, n]` with no parameters
    /// (e.g. attention scores).
    pub fn matmul(m: usize, k: usize, n: usize) -> CostReport {
        CostReport {
            flops: 2 * (m * k * n) as u64,
            params: 0,
            peak_mem_bytes: (m * n * 4) as u64,
        }
    }

    /// Cost of a pointwise op over `n` elements at `flops_per_elem` each.
    pub fn pointwise(n: usize, flops_per_elem: u64) -> CostReport {
        CostReport {
            flops: n as u64 * flops_per_elem,
            params: 0,
            peak_mem_bytes: (n * 4) as u64,
        }
    }

    /// Cost of a softmax over `rows` rows of width `n` (≈5 FLOPs/element).
    pub fn softmax(rows: usize, n: usize) -> CostReport {
        Self::pointwise(rows * n, 5)
    }

    /// Scales FLOPs and peak memory by a repetition count, keeping params
    /// (weight sharing: running the same layer `times` times).
    pub fn repeat_shared(self, times: u64) -> CostReport {
        CostReport {
            flops: self.flops * times,
            params: self.params,
            peak_mem_bytes: self.peak_mem_bytes,
        }
    }

    /// FLOPs in millions, as the paper's tables report them.
    pub fn mflops(&self) -> f64 {
        self.flops as f64 / 1e6
    }

    /// Peak memory in MiB.
    pub fn mem_mib(&self) -> f64 {
        self.peak_mem_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Parameters in thousands, as the paper's tables report them.
    pub fn kparams(&self) -> f64 {
        self.params as f64 / 1e3
    }
}

impl Add for CostReport {
    type Output = CostReport;

    /// Sequential composition: FLOPs and params accumulate; peak memory is
    /// the maximum of the two stage peaks (activations of one stage are freed
    /// before the next peaks).
    fn add(self, rhs: CostReport) -> CostReport {
        CostReport {
            flops: self.flops + rhs.flops,
            params: self.params + rhs.params,
            peak_mem_bytes: self.peak_mem_bytes.max(rhs.peak_mem_bytes),
        }
    }
}

impl Sum for CostReport {
    fn sum<I: Iterator<Item = CostReport>>(iter: I) -> CostReport {
        iter.fold(CostReport::ZERO, Add::add)
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} MFLOPs, {:.2} MiB peak, {:.1}K params",
            self.mflops(),
            self.mem_mib(),
            self.kparams()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_composes_sequentially() {
        let a = CostReport {
            flops: 100,
            params: 10,
            peak_mem_bytes: 400,
        };
        let b = CostReport {
            flops: 50,
            params: 5,
            peak_mem_bytes: 1000,
        };
        let c = a + b;
        assert_eq!(c.flops, 150);
        assert_eq!(c.params, 15);
        assert_eq!(c.peak_mem_bytes, 1000);
    }

    #[test]
    fn matmul_cost_is_2mkn() {
        let c = CostReport::matmul(3, 4, 5);
        assert_eq!(c.flops, 2 * 3 * 4 * 5);
        assert_eq!(c.peak_mem_bytes, 3 * 5 * 4);
    }

    #[test]
    fn repeat_shared_keeps_params() {
        let c = CostReport {
            flops: 10,
            params: 7,
            peak_mem_bytes: 3,
        };
        let r = c.repeat_shared(4);
        assert_eq!(r.flops, 40);
        assert_eq!(r.params, 7);
        assert_eq!(r.peak_mem_bytes, 3);
    }

    #[test]
    fn sum_over_iterator() {
        let total: CostReport = (0..3)
            .map(|_| CostReport {
                flops: 1,
                params: 1,
                peak_mem_bytes: 2,
            })
            .sum();
        assert_eq!(total.flops, 3);
        assert_eq!(total.peak_mem_bytes, 2);
    }

    #[test]
    fn unit_conversions() {
        let c = CostReport {
            flops: 2_000_000,
            params: 3_000,
            peak_mem_bytes: 2 * 1024 * 1024,
        };
        assert!((c.mflops() - 2.0).abs() < 1e-9);
        assert!((c.kparams() - 3.0).abs() < 1e-9);
        assert!((c.mem_mib() - 2.0).abs() < 1e-9);
    }
}
