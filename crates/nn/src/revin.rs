//! Instance normalisation of forecast windows (RevIN-style, Kim et al. 2021).
//!
//! Long-horizon forecasters — PatchTST, DLinear and FOCUS alike — normalise
//! each lookback window per entity before the network and de-normalise the
//! prediction afterwards, which removes the window-level distribution shift
//! that otherwise dominates the loss. The statistics are not learned, so this
//! lives outside the autograd graph.

use focus_tensor::Tensor;

/// Per-entity window statistics captured by [`instance_norm`].
#[derive(Clone, Debug)]
pub struct InstanceStats {
    /// Per-row (entity) means.
    pub means: Vec<f32>,
    /// Per-row (entity) standard deviations (≥ `eps` floor applied at use).
    pub stds: Vec<f32>,
}

const EPS: f32 = 1e-5;

/// Normalises each row of `x: [N, L]` to zero mean / unit variance.
///
/// Returns the normalised window and the statistics needed to invert the
/// transform on the forecast.
pub fn instance_norm(x: &Tensor) -> (Tensor, InstanceStats) {
    assert_eq!(x.rank(), 2, "instance_norm expects [entities, time]");
    let stats = x.row_mean_std();
    let l = x.dims()[1];
    let mut out = x.clone();
    for (i, &(mean, std)) in stats.iter().enumerate() {
        let denom = std.max(EPS);
        for v in &mut out.data_mut()[i * l..(i + 1) * l] {
            *v = (*v - mean) / denom;
        }
    }
    let (means, stds) = stats.into_iter().unzip();
    (out, InstanceStats { means, stds })
}

/// Inverts [`instance_norm`] on a forecast `y: [N, L_f]` using the lookback
/// window's statistics.
pub fn instance_denorm(y: &Tensor, stats: &InstanceStats) -> Tensor {
    assert_eq!(y.rank(), 2, "instance_denorm expects [entities, horizon]");
    assert_eq!(
        y.dims()[0],
        stats.means.len(),
        "instance_denorm: {} rows vs {} stats",
        y.dims()[0],
        stats.means.len()
    );
    let l = y.dims()[1];
    let mut out = y.clone();
    for i in 0..stats.means.len() {
        let std = stats.stds[i].max(EPS);
        let mean = stats.means[i];
        for v in &mut out.data_mut()[i * l..(i + 1) * l] {
            *v = *v * std + mean;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_then_denorm_is_identity() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[2, 4]);
        let (n, stats) = instance_norm(&x);
        for i in 0..2 {
            let row = n.row(i);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
        }
        let back = instance_denorm(&n, &stats);
        assert!(back.max_abs_diff(&x) < 1e-4);
    }

    #[test]
    fn constant_rows_do_not_blow_up() {
        let x = Tensor::from_vec(vec![5.0, 5.0, 5.0, 5.0], &[1, 4]);
        let (n, stats) = instance_norm(&x);
        assert!(n.all_finite());
        assert_eq!(n.data(), &[0.0, 0.0, 0.0, 0.0]);
        let y = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]);
        let back = instance_denorm(&y, &stats);
        assert!(back.all_finite());
        // Forecast is re-centred on the window mean.
        assert!((back.data()[0] - 5.0).abs() < 1e-3);
    }

    #[test]
    fn denorm_applies_to_different_horizon() {
        let x = Tensor::from_vec(vec![0.0, 2.0, 4.0, 6.0], &[1, 4]);
        let (_, stats) = instance_norm(&x);
        let pred = Tensor::zeros(&[1, 7]);
        let back = instance_denorm(&pred, &stats);
        // Zero in normalised space maps back to the window mean (3.0).
        assert!(back.data().iter().all(|&v| (v - 3.0).abs() < 1e-5));
    }
}
