//! Layer normalisation with learnable affine parameters.

use crate::cost::CostReport;
use focus_autograd::{Graph, ParamId, ParamStore, ParamVars, Var};
use focus_tensor::Tensor;

/// LayerNorm over the trailing axis, `y = γ ⊙ (x − μ)/√(σ² + ε) + β`.
///
/// Used after every ProtoAttn block (Algorithm 3 wraps the online modeling
/// output in `LayerNorm(· + residual)`).
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// LayerNorm over a trailing axis of width `dim` (γ=1, β=0, ε=1e−5).
    pub fn new(ps: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = ps.add(format!("{name}.gamma"), Tensor::ones(&[dim]));
        let beta = ps.add(format!("{name}.beta"), Tensor::zeros(&[dim]));
        LayerNorm {
            gamma,
            beta,
            dim,
            eps: 1e-5,
        }
    }

    /// Normalised feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies the normalisation.
    pub fn forward(&self, g: &mut Graph, pv: &ParamVars, x: Var) -> Var {
        assert_eq!(
            g.value(x).shape().last_dim(),
            self.dim,
            "LayerNorm: trailing dim {} != {}",
            g.value(x).shape().last_dim(),
            self.dim
        );
        g.layer_norm(x, pv.var(self.gamma), pv.var(self.beta), self.eps)
    }

    /// Analytic cost over `rows` rows.
    pub fn cost(&self, rows: usize) -> CostReport {
        CostReport {
            // mean, var, normalise, affine ≈ 8 FLOPs per element.
            flops: (rows * self.dim * 8) as u64,
            params: 2 * self.dim as u64,
            peak_mem_bytes: (rows * self.dim * 4) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_rows_are_standardised_at_init() {
        let mut ps = ParamStore::new();
        let ln = LayerNorm::new(&mut ps, "ln", 8);
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let x = g.constant(Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[2, 8]));
        let y = ln.forward(&mut g, &pv, x);
        for i in 0..2 {
            let row = g.value(y).row(i);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5);
        }
    }

    #[test]
    fn affine_params_are_trainable() {
        use focus_autograd::Sgd;
        let mut ps = ParamStore::new();
        let ln = LayerNorm::new(&mut ps, "ln", 4);
        let mut opt = Sgd::new(0.5);
        // Two rows whose normalised values differ at every feature make
        // (γ_j, β_j) identifiable per feature.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 2.0, 2.0, 5.0, 3.0], &[2, 4]);
        // Target: the initial normalised output shifted by +2 — the optimum
        // is γ = 1, β = 2.
        let target = {
            let mut g = Graph::new();
            let pv = ps.register(&mut g);
            let xv = g.constant(x.clone());
            let y = ln.forward(&mut g, &pv, xv);
            g.value(y).add_scalar(2.0)
        };
        for _ in 0..300 {
            let mut g = Graph::new();
            let pv = ps.register(&mut g);
            let xv = g.constant(x.clone());
            let y = ln.forward(&mut g, &pv, xv);
            let tv = g.constant(target.clone());
            let loss = g.mse(y, tv);
            g.backward(loss);
            ps.step(&mut opt, &g, &pv);
        }
        // β should be near 2; γ near 1.
        let (_, _, beta) = ps.iter().nth(1).expect("LayerNorm exposes gamma and beta");
        assert!((beta.mean_all() - 2.0).abs() < 0.1, "beta {:?}", beta);
    }
}
