//! # focus-cluster
//!
//! The offline phase of FOCUS (paper §V, Algorithm 1): cut every training
//! series into length-`p` segments, cluster them into `k` buckets under the
//! composite distance of Eq. 6, and optimise one *prototype* per bucket under
//! the combined reconstruction + correlation objective of Eq. 10.
//!
//! Two prototype-update rules are provided:
//!
//! * [`ProtoUpdate::AdamW`] — iterative gradient optimisation of
//!   `L = L_rec + α·L_corr`, exactly the paper's choice (it cites AdamW);
//! * [`ProtoUpdate::ClosedFormMean`] — the classic k-means mean update,
//!   optimal for the pure reconstruction loss and the natural baseline for
//!   the Fig. 8 *Rec Only* comparison.
//!
//! ```
//! use focus_cluster::{ClusterConfig, Objective, segment_matrix};
//! use focus_tensor::Tensor;
//!
//! // 32 sine-phase segments of length 8 → 4 prototypes.
//! let series: Vec<f32> = (0..256).map(|t| (t as f32 * 0.3).sin()).collect();
//! let segments = segment_matrix(&Tensor::from_vec(series, &[1, 256]), 8);
//! let cfg = ClusterConfig::new(4, 8).with_objective(Objective::rec_corr(0.2));
//! let protos = cfg.fit(&segments, 42);
//! assert_eq!(protos.centers().dims(), &[4, 8]);
//! let j = protos.assign(segments.row(0));
//! assert!(j < 4);
//! ```

#![forbid(unsafe_code)]

mod approx;
mod batch;
mod engine;
mod objective;
mod persist;

pub use approx::{reconstruct_row, ReconstructionReport};
pub use engine::{segment_matrix, ClusterConfig, FitTrace, ProtoUpdate, Prototypes};
pub use objective::Objective;
