//! Prototype persistence: a small self-describing text format.
//!
//! The offline phase runs once per dataset; its output — the prototype set —
//! is what the online phase loads. To keep the dependency set minimal we use
//! a line-oriented text format instead of pulling in a serialisation crate:
//!
//! ```text
//! focus-prototypes v1
//! k <k> p <p> objective <rec|reccorr> alpha <alpha>
//! <p floats of prototype 0, space-separated>
//! …
//! <p floats of prototype k-1>
//! ```

use crate::engine::Prototypes;
use crate::objective::Objective;
use focus_tensor::Tensor;
use std::fmt::Write as _;
use std::path::Path;

const MAGIC: &str = "focus-prototypes v1";

/// Errors from [`Prototypes::load`] / parsing.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid prototype dump (with a reason).
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl Prototypes {
    /// Serialises the prototype set to the text format.
    pub fn to_text(&self) -> String {
        let (k, p) = (self.k(), self.segment_len());
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        match self.objective() {
            Objective::RecOnly => {
                let _ = writeln!(out, "k {k} p {p} objective rec alpha 0");
            }
            Objective::RecCorr { alpha } => {
                let _ = writeln!(out, "k {k} p {p} objective reccorr alpha {alpha}");
            }
        }
        for j in 0..k {
            let row = self.centers().row(j);
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{v}");
            }
            out.push('\n');
        }
        out
    }

    /// Parses a prototype set from the text format.
    ///
    /// Every [`PersistError::Format`] message carries the 1-based line number
    /// it refers to (magic = line 1, header = line 2, prototype row `j` =
    /// line `3 + j`). Non-finite values (NaN, ±inf) are rejected: they would
    /// poison every distance computed against the loaded centers.
    pub fn from_text(text: &str) -> Result<Prototypes, PersistError> {
        let mut lines = text.lines();
        let magic = lines
            .next()
            .ok_or_else(|| PersistError::Format("line 1: empty file, expected magic".into()))?;
        if magic.trim() != MAGIC {
            return Err(PersistError::Format(format!("line 1: bad magic line: {magic:?}")));
        }
        let header = lines
            .next()
            .ok_or_else(|| PersistError::Format("line 2: missing header".into()))?;
        let fields: Vec<&str> = header.split_whitespace().collect();
        if fields.len() != 8 || fields[0] != "k" || fields[2] != "p" || fields[4] != "objective" || fields[6] != "alpha" {
            return Err(PersistError::Format(format!("line 2: bad header: {header:?}")));
        }
        let k: usize = fields[1]
            .parse()
            .map_err(|_| PersistError::Format(format!("line 2: bad k: {}", fields[1])))?;
        let p: usize = fields[3]
            .parse()
            .map_err(|_| PersistError::Format(format!("line 2: bad p: {}", fields[3])))?;
        let alpha: f32 = fields[7]
            .parse()
            .map_err(|_| PersistError::Format(format!("line 2: bad alpha: {}", fields[7])))?;
        if !alpha.is_finite() {
            return Err(PersistError::Format(format!("line 2: non-finite alpha: {}", fields[7])));
        }
        let objective = match fields[5] {
            "rec" => Objective::RecOnly,
            "reccorr" => Objective::RecCorr { alpha },
            other => return Err(PersistError::Format(format!("line 2: unknown objective: {other}"))),
        };
        let mut data = Vec::with_capacity(k * p);
        for j in 0..k {
            let lineno = 3 + j;
            let line = lines.next().ok_or_else(|| {
                PersistError::Format(format!("line {lineno}: missing prototype row {j}"))
            })?;
            let values: Result<Vec<f32>, _> = line.split_whitespace().map(str::parse).collect();
            let values = values
                .map_err(|_| PersistError::Format(format!("line {lineno}: bad float in row {j}")))?;
            if values.len() != p {
                return Err(PersistError::Format(format!(
                    "line {lineno}: row {j} has {} values, expected {p}",
                    values.len()
                )));
            }
            if let Some(pos) = values.iter().position(|v| !v.is_finite()) {
                return Err(PersistError::Format(format!(
                    "line {lineno}: non-finite value {} at column {} of row {j}",
                    values[pos],
                    pos + 1
                )));
            }
            data.extend_from_slice(&values);
        }
        Ok(Prototypes::from_centers(Tensor::from_vec(data, &[k, p]), objective))
    }

    /// Writes the prototype set to `path`.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        std::fs::write(path, self.to_text())?;
        Ok(())
    }

    /// Reads a prototype set from `path`.
    pub fn load(path: &Path) -> Result<Prototypes, PersistError> {
        let text = std::fs::read_to_string(path)?;
        Prototypes::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Prototypes {
        Prototypes::from_centers(
            Tensor::from_vec(vec![1.0, -2.5, 0.125, 3.0, 0.0, -1.0], &[2, 3]),
            Objective::rec_corr(0.2),
        )
    }

    #[test]
    fn text_round_trip_is_exact() {
        let p = sample();
        let text = p.to_text();
        let q = Prototypes::from_text(&text).expect("serialised prototype text parses back");
        assert_eq!(p.centers().data(), q.centers().data());
        assert_eq!(p.objective(), q.objective());
    }

    #[test]
    fn file_round_trip() {
        let p = sample();
        let dir = std::env::temp_dir().join("focus-cluster-test");
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        let path = dir.join("protos.txt");
        p.save(&path).expect("prototypes save to a writable temp file");
        let q = Prototypes::load(&path).expect("just-saved prototype file loads");
        assert_eq!(p.centers().data(), q.centers().data());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(Prototypes::from_text("").is_err());
        assert!(Prototypes::from_text("wrong magic\n").is_err());
        let p = sample();
        let mut text = p.to_text();
        text.push_str("trailing garbage is fine actually\n");
        // Trailing lines are ignored; truncation is not.
        assert!(Prototypes::from_text(&text).is_ok());
        let truncated: String = p.to_text().lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(Prototypes::from_text(&truncated).is_err());
    }

    fn format_message(r: Result<Prototypes, PersistError>) -> String {
        match r {
            Err(PersistError::Format(msg)) => msg,
            Err(other) => panic!("expected Format error, got {other}"),
            Ok(_) => panic!("expected Format error, got Ok"),
        }
    }

    #[test]
    fn rejects_non_finite_values_with_position() {
        let text = "focus-prototypes v1\nk 2 p 3 objective reccorr alpha 0.2\n1 2 3\n4 NaN 6\n";
        let msg = format_message(Prototypes::from_text(text));
        assert!(msg.contains("line 4"), "message lacks line number: {msg}");
        assert!(msg.contains("non-finite"), "message lacks cause: {msg}");
        assert!(msg.contains("column 2"), "message lacks column: {msg}");
        let inf = "focus-prototypes v1\nk 1 p 2 objective rec alpha 0\ninf 0\n";
        let msg = format_message(Prototypes::from_text(inf));
        assert!(msg.contains("line 3") && msg.contains("non-finite"), "{msg}");
        let neg = "focus-prototypes v1\nk 1 p 2 objective rec alpha 0\n0 -inf\n";
        assert!(format_message(Prototypes::from_text(neg)).contains("non-finite"));
    }

    #[test]
    fn rejects_non_finite_alpha() {
        let text = "focus-prototypes v1\nk 1 p 1 objective reccorr alpha NaN\n0\n";
        let msg = format_message(Prototypes::from_text(text));
        assert!(msg.contains("line 2") && msg.contains("non-finite alpha"), "{msg}");
    }

    #[test]
    fn every_format_error_names_its_line() {
        let cases: [(&str, &str); 6] = [
            ("", "line 1"),
            ("wrong magic\n", "line 1"),
            ("focus-prototypes v1\n", "line 2"),
            ("focus-prototypes v1\nk x p 3 objective rec alpha 0\n", "line 2"),
            ("focus-prototypes v1\nk 2 p 2 objective rec alpha 0\n1 2\n", "line 4"),
            ("focus-prototypes v1\nk 1 p 2 objective rec alpha 0\n1 oops\n", "line 3"),
        ];
        for (text, expect) in cases {
            let msg = format_message(Prototypes::from_text(text));
            assert!(msg.contains(expect), "{text:?}: expected {expect} in {msg:?}");
        }
    }

    #[test]
    fn rec_only_round_trip() {
        let p = Prototypes::from_centers(Tensor::zeros(&[1, 2]), Objective::RecOnly);
        let q = Prototypes::from_text(&p.to_text()).expect("serialised prototype text parses back");
        assert_eq!(q.objective(), Objective::RecOnly);
    }
}
