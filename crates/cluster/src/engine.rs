//! The clustering engine: Algorithm 1 of the paper.
//!
//! ```text
//! initialise k prototypes (k-means++ under the composite distance)
//! repeat
//!     assign every segment to its nearest prototype      (Eq. 6)
//!     update every prototype on its bucket's loss        (Eqs. 8–10)
//! until assignments stop changing or max_iters
//! ```

use crate::batch::{assign_batched, distance_matrix, CenterCache};
use crate::objective::{corr_grad_wrt_prototype, Objective};
use focus_tensor::{par, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Minimum distance-evaluation work (~`segments × k × p` flops) per thread
/// before the assignment sweeps go parallel.
const ASSIGN_GRAIN_FLOPS: usize = 64 * 1024;

/// Segments per thread for a sweep costing `cost_per_seg` flops each.
fn assign_grain(cost_per_seg: usize) -> usize {
    ASSIGN_GRAIN_FLOPS.div_ceil(cost_per_seg.max(1)).max(1)
}

/// Nearest prototype to `seg` among `centers: [k, p]`: `(index, distance)`.
fn nearest_center(seg: &[f32], centers: &Tensor, k: usize, objective: &Objective) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for j in 0..k {
        let d = objective.distance(seg, centers.row(j));
        if d < best_d {
            best_d = d;
            best = j;
        }
    }
    (best, best_d)
}

/// Cuts a `[N, T]` series matrix into non-overlapping length-`p` segments
/// from every entity, producing `[num_segments, p]`. Trailing partial
/// segments are dropped (the paper assumes `p | T`).
pub fn segment_matrix(series: &Tensor, p: usize) -> Tensor {
    assert_eq!(series.rank(), 2, "segment_matrix expects [entities, time]");
    assert!(p > 0, "segment length must be positive");
    let (n, t) = (series.dims()[0], series.dims()[1]);
    let per_entity = t / p;
    assert!(per_entity > 0, "series length {t} shorter than segment {p}");
    let mut data = Vec::with_capacity(n * per_entity * p);
    for e in 0..n {
        let row = series.row(e);
        for s in 0..per_entity {
            data.extend_from_slice(&row[s * p..(s + 1) * p]);
        }
    }
    Tensor::from_vec(data, &[n * per_entity, p])
}

/// How prototypes are re-estimated each outer iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProtoUpdate {
    /// Closed-form bucket mean — classic k-means, exact minimiser of the
    /// reconstruction loss alone.
    ClosedFormMean,
    /// AdamW gradient steps on `L_rec + α·L_corr` (the paper's §V choice).
    AdamW {
        /// Learning rate.
        lr: f32,
        /// Gradient steps per outer iteration.
        steps: usize,
        /// Decoupled weight decay.
        weight_decay: f32,
    },
}

impl ProtoUpdate {
    /// The paper-faithful default: AdamW, a handful of inner steps.
    pub fn paper_default() -> Self {
        ProtoUpdate::AdamW {
            lr: 0.05,
            steps: 8,
            weight_decay: 0.0,
        }
    }
}

/// Configuration of one clustering run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of prototypes `k`.
    pub k: usize,
    /// Segment length `p`.
    pub segment_len: usize,
    /// Assignment / optimisation objective.
    pub objective: Objective,
    /// Prototype update rule.
    pub update: ProtoUpdate,
    /// Maximum outer iterations.
    pub max_iters: usize,
}

impl ClusterConfig {
    /// A config with the paper's defaults (`Rec+Corr`, α = 0.2, AdamW).
    pub fn new(k: usize, segment_len: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(segment_len > 0, "segment_len must be positive");
        ClusterConfig {
            k,
            segment_len,
            objective: Objective::paper_default(),
            update: ProtoUpdate::paper_default(),
            max_iters: 30,
        }
    }

    /// Overrides the objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Overrides the prototype update rule.
    pub fn with_update(mut self, update: ProtoUpdate) -> Self {
        self.update = update;
        self
    }

    /// Overrides the outer iteration cap.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Runs Algorithm 1 on `segments: [n, p]`.
    ///
    /// # Panics
    /// If the segment width differs from `segment_len` or there are fewer
    /// segments than prototypes.
    pub fn fit(&self, segments: &Tensor, seed: u64) -> Prototypes {
        self.fit_traced(segments, seed).0
    }

    /// Like [`ClusterConfig::fit`] but also returns the per-iteration loss
    /// trace (used by tests and the Fig. 8 harness).
    pub fn fit_traced(&self, segments: &Tensor, seed: u64) -> (Prototypes, FitTrace) {
        assert_eq!(segments.rank(), 2, "segments must be [n, p]");
        let (n, p) = (segments.dims()[0], segments.dims()[1]);
        assert_eq!(p, self.segment_len, "segment width {p} != segment_len {}", self.segment_len);
        assert!(
            n >= self.k,
            "need at least k = {} segments, got {n}",
            self.k
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc1a5_7e12u64.rotate_left(3));
        focus_trace::span!("cluster/fit");

        let mut centers = {
            focus_trace::span!("cluster/init");
            kmeans_pp_init(segments, self.k, &self.objective, &mut rng)
        };
        let mut assignment = vec![usize::MAX; n];
        let mut trace = FitTrace::default();
        let mut adam = AdamState::new(self.k, p);

        let mut nearest = vec![(0usize, 0.0f32); n];
        for iter in 0..self.max_iters {
            // Assignment step (Eq. 6) via the blocked two-GEMM kernel; the
            // f64 loss is then folded serially in ascending segment order so
            // the trace is identical at any thread count.
            let cache = CenterCache::new(&centers, &self.objective);
            assign_batched(segments, &cache, &mut nearest);
            let mut changed = 0usize;
            let mut loss = 0.0f64;
            for (slot, &(best, best_d)) in assignment.iter_mut().zip(&nearest) {
                if *slot != best {
                    changed += 1;
                    *slot = best;
                }
                loss += best_d as f64;
            }
            trace.loss_per_iter.push(loss / n as f64);

            if changed == 0 && iter > 0 {
                trace.converged_at = Some(iter);
                break;
            }

            // Re-seed empty buckets from the farthest segment.
            reseed_empty_buckets(segments, &mut centers, &mut assignment, &self.objective);

            // Update step (Eqs. 8–10).
            focus_trace::span!("cluster/update");
            match self.update {
                ProtoUpdate::ClosedFormMean => {
                    update_mean(segments, &assignment, &mut centers);
                }
                ProtoUpdate::AdamW { lr, steps, weight_decay } => {
                    update_adamw(
                        segments,
                        &assignment,
                        &mut centers,
                        &self.objective,
                        &mut adam,
                        lr,
                        steps,
                        weight_decay,
                    );
                }
            }
        }

        (
            Prototypes {
                centers,
                objective: self.objective,
            },
            trace,
        )
    }
}

/// Per-iteration diagnostics of a [`ClusterConfig::fit_traced`] run.
#[derive(Default, Debug, Clone)]
pub struct FitTrace {
    /// Mean composite assignment distance after each assignment step.
    pub loss_per_iter: Vec<f64>,
    /// The iteration at which assignments stopped changing, if reached.
    pub converged_at: Option<usize>,
}

/// The learned prototype set `C = {c_1, …, c_k}`.
#[derive(Clone, Debug)]
pub struct Prototypes {
    pub(crate) centers: Tensor,
    pub(crate) objective: Objective,
}

impl Prototypes {
    /// Builds a prototype set directly (for tests and deserialisation).
    pub fn from_centers(centers: Tensor, objective: Objective) -> Self {
        assert_eq!(centers.rank(), 2, "centers must be [k, p]");
        Prototypes { centers, objective }
    }

    /// The prototype matrix, `[k, p]`.
    pub fn centers(&self) -> &Tensor {
        &self.centers
    }

    /// Number of prototypes `k`.
    pub fn k(&self) -> usize {
        self.centers.dims()[0]
    }

    /// Segment length `p`.
    pub fn segment_len(&self) -> usize {
        self.centers.dims()[1]
    }

    /// The objective the prototypes were fitted under.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Index of the nearest prototype to `segment` under the fitted
    /// objective (Eq. 6) — the online assignment of Algorithm 2, line 3.
    ///
    /// Single segments run through the same batched GEMM kernel as
    /// [`Prototypes::assign_all`] with `n = 1`, so one-off and bulk
    /// assignment can never disagree.
    pub fn assign(&self, segment: &[f32]) -> usize {
        assert_eq!(
            segment.len(),
            self.segment_len(),
            "segment length {} != prototype length {}",
            segment.len(),
            self.segment_len()
        );
        let seg = Tensor::from_vec(segment.to_vec(), &[1, segment.len()]);
        let mut out = [(0usize, 0.0f32)];
        assign_batched(&seg, &CenterCache::new(&self.centers, &self.objective), &mut out);
        out[0].0
    }

    /// Assigns every row of `segments: [n, p]`, returning the bucket index
    /// per segment.
    ///
    /// Computes the full `[n, k]` composite-distance matrix with two tiled
    /// GEMMs (`X·Cᵀ` on raw and on centred-normalised rows — see
    /// [`crate::batch`]) instead of a scalar pair loop. Distances agree with
    /// [`Prototypes::assign_all_scalar`] to f32 roundoff, argmins whenever
    /// the best/second-best margin exceeds it, and exact ties break to the
    /// lowest index on both paths. Identical at any thread count.
    pub fn assign_all(&self, segments: &Tensor) -> Vec<usize> {
        let n = segments.dims()[0];
        let mut nearest = vec![(0usize, 0.0f32); n];
        assign_batched(segments, &CenterCache::new(&self.centers, &self.objective), &mut nearest);
        nearest.into_iter().map(|(j, _)| j).collect()
    }

    /// Scalar-oracle assignment sweep: a straight per-pair
    /// [`Objective::distance`] loop with f64 accumulation. Kept as the
    /// ground-truth reference for the GEMM path (property tests, benchmark
    /// baselines); prefer [`Prototypes::assign_all`] everywhere else.
    pub fn assign_all_scalar(&self, segments: &Tensor) -> Vec<usize> {
        assert_eq!(segments.rank(), 2, "segments must be [n, p]");
        let n = segments.dims()[0];
        let mut out = vec![0usize; n];
        let grain = assign_grain(self.k() * self.segment_len());
        par::parallel_fill(&mut out, grain, |range, chunk| {
            for (i, o) in range.zip(chunk.iter_mut()) {
                *o = nearest_center(segments.row(i), &self.centers, self.k(), &self.objective).0;
            }
        });
        out
    }

    /// The full `[n, k]` composite-distance matrix from every row of
    /// `segments` to every prototype, via the batched GEMM kernel.
    pub fn distances(&self, segments: &Tensor) -> Tensor {
        distance_matrix(segments, &CenterCache::new(&self.centers, &self.objective))
    }

    /// The distance from `segment` to its nearest prototype.
    pub fn nearest_distance(&self, segment: &[f32]) -> f32 {
        let j = self.assign(segment);
        self.objective.distance(segment, self.centers.row(j))
    }
}

/// k-means++ seeding under the composite distance.
fn kmeans_pp_init(segments: &Tensor, k: usize, objective: &Objective, rng: &mut StdRng) -> Tensor {
    let (n, p) = (segments.dims()[0], segments.dims()[1]);
    let mut centers = Tensor::zeros(&[k, p]);
    let first = rng.gen_range(0..n);
    centers.data_mut()[..p].copy_from_slice(segments.row(first));

    // Distance sweeps below are per-segment independent (parallel, bitwise
    // identical to serial); the weighted pick itself stays serial so the RNG
    // stream and the f64 prefix scan keep their exact order.
    let grain = assign_grain(p);
    let mut dists = vec![0.0f32; n];
    par::parallel_fill(&mut dists, grain, |range, chunk| {
        for (i, d) in range.zip(chunk.iter_mut()) {
            *d = objective.distance(segments.row(i), centers.row(0));
        }
    });

    for j in 1..k {
        let total: f64 = dists.iter().map(|&d| d.max(0.0) as f64).sum();
        let pick = if total <= f64::EPSILON {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d.max(0.0) as f64;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centers.data_mut()[j * p..(j + 1) * p].copy_from_slice(segments.row(pick));
        let centers_ref = &centers;
        par::parallel_rows(&mut dists, 1, grain, 1, |i0, chunk| {
            for (off, d) in chunk.iter_mut().enumerate() {
                let nd = objective.distance(segments.row(i0 + off), centers_ref.row(j));
                if nd < *d {
                    *d = nd;
                }
            }
        });
    }
    centers
}

/// Moves any prototype with an empty bucket onto the segment currently
/// farthest from its assigned prototype.
fn reseed_empty_buckets(
    segments: &Tensor,
    centers: &mut Tensor,
    assignment: &mut [usize],
    objective: &Objective,
) {
    let k = centers.dims()[0];
    let p = centers.dims()[1];
    let mut counts = vec![0usize; k];
    for &a in assignment.iter() {
        counts[a] += 1;
    }
    for j in 0..k {
        if counts[j] > 0 {
            continue;
        }
        // Farthest segment from its own prototype.
        let (mut worst_i, mut worst_d) = (0usize, -1.0f32);
        for (i, &a) in assignment.iter().enumerate() {
            let d = objective.distance(segments.row(i), centers.row(a));
            if d > worst_d {
                worst_d = d;
                worst_i = i;
            }
        }
        centers.data_mut()[j * p..(j + 1) * p].copy_from_slice(segments.row(worst_i));
        counts[assignment[worst_i]] -= 1;
        assignment[worst_i] = j;
        counts[j] = 1;
    }
}

/// Closed-form mean update (classic k-means).
fn update_mean(segments: &Tensor, assignment: &[usize], centers: &mut Tensor) {
    let (k, p) = (centers.dims()[0], centers.dims()[1]);
    let mut sums = vec![0.0f64; k * p];
    let mut counts = vec![0usize; k];
    for (i, &a) in assignment.iter().enumerate() {
        counts[a] += 1;
        for (s, &v) in sums[a * p..(a + 1) * p].iter_mut().zip(segments.row(i)) {
            *s += v as f64;
        }
    }
    for j in 0..k {
        if counts[j] == 0 {
            continue;
        }
        let inv = 1.0 / counts[j] as f64;
        for (c, &s) in centers.data_mut()[j * p..(j + 1) * p].iter_mut().zip(&sums[j * p..(j + 1) * p]) {
            *c = (s * inv) as f32;
        }
    }
}

/// Per-prototype AdamW state.
struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl AdamState {
    fn new(k: usize, p: usize) -> Self {
        AdamState {
            m: vec![0.0; k * p],
            v: vec![0.0; k * p],
            t: 0,
        }
    }
}

/// AdamW steps on `L_j = ‖c_j − mean(B_j)‖² + α · (−|B_j|⁻¹ Σ corr)`,
/// following Eqs. 8–10.
#[allow(clippy::too_many_arguments)]
fn update_adamw(
    segments: &Tensor,
    assignment: &[usize],
    centers: &mut Tensor,
    objective: &Objective,
    adam: &mut AdamState,
    lr: f32,
    steps: usize,
    weight_decay: f32,
) {
    let (k, p) = (centers.dims()[0], centers.dims()[1]);
    let alpha = objective.alpha();

    // Bucket membership and means (the mean is constant during inner steps).
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &a) in assignment.iter().enumerate() {
        members[a].push(i);
    }
    let mut bucket_means = vec![0.0f32; k * p];
    for j in 0..k {
        if members[j].is_empty() {
            bucket_means[j * p..(j + 1) * p].copy_from_slice(centers.row(j));
            continue;
        }
        let inv = 1.0 / members[j].len() as f32;
        for &i in &members[j] {
            for (m, &v) in bucket_means[j * p..(j + 1) * p].iter_mut().zip(segments.row(i)) {
                *m += v * inv;
            }
        }
    }

    let (beta1, beta2, eps) = (0.9f32, 0.999f32, 1e-8f32);
    let mut grad = vec![0.0f32; p];
    let mut corr_g = vec![0.0f32; p];
    for _ in 0..steps {
        adam.t += 1;
        let bc1 = 1.0 - beta1.powi(adam.t as i32);
        let bc2 = 1.0 - beta2.powi(adam.t as i32);
        for j in 0..k {
            if members[j].is_empty() {
                continue;
            }
            // ∇L_rec = 2(c − mean(B_j))
            for ((g, &c), &m) in grad
                .iter_mut()
                .zip(centers.row(j))
                .zip(&bucket_means[j * p..(j + 1) * p])
            {
                *g = 2.0 * (c - m);
            }
            // ∇L_corr = −|B_j|⁻¹ Σ ∂corr/∂c
            if alpha > 0.0 {
                let inv = 1.0 / members[j].len() as f32;
                for &i in &members[j] {
                    corr_grad_wrt_prototype(segments.row(i), centers.row(j), &mut corr_g);
                    for (g, &cg) in grad.iter_mut().zip(&corr_g) {
                        *g -= alpha * inv * cg;
                    }
                }
            }
            // AdamW step with decoupled decay.
            let base = j * p;
            let row = &mut centers.data_mut()[base..base + p];
            for (idx, (c, &g)) in row.iter_mut().zip(&grad).enumerate() {
                if weight_decay > 0.0 {
                    *c *= 1.0 - lr * weight_decay;
                }
                let mi = &mut adam.m[base + idx];
                let vi = &mut adam.v[base + idx];
                *mi = beta1 * *mi + (1.0 - beta1) * g;
                *vi = beta2 * *vi + (1.0 - beta2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *c -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_tensor::stats;

    /// Three well-separated planted clusters of segments.
    fn planted(n_per: usize, p: usize) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(99);
        let shapes: [fn(f32) -> f32; 3] = [
            |u| (2.0 * std::f32::consts::PI * u).sin(),
            |u| 2.0 * u - 1.0,
            |u| if u > 0.5 { 1.0 } else { -1.0 },
        ];
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for (c, shape) in shapes.iter().enumerate() {
            for _ in 0..n_per {
                let noise: f32 = rng.gen_range(0.0..0.1);
                for i in 0..p {
                    let u = i as f32 / p as f32;
                    data.push(shape(u) + noise * rng.gen_range(-1.0f32..1.0));
                }
                labels.push(c);
            }
        }
        (Tensor::from_vec(data, &[3 * n_per, p]), labels)
    }

    /// Clustering accuracy up to label permutation (3 clusters).
    fn purity(assign: &[usize], truth: &[usize], k: usize) -> f64 {
        let mut count = vec![vec![0usize; 3]; k];
        for (&a, &t) in assign.iter().zip(truth) {
            count[a][t] += 1;
        }
        let correct: usize = count.iter().map(|c| c.iter().max().copied().unwrap_or(0)).sum();
        correct as f64 / assign.len() as f64
    }

    #[test]
    fn recovers_planted_clusters_with_mean_update() {
        let (segs, truth) = planted(40, 16);
        let cfg = ClusterConfig::new(3, 16)
            .with_objective(Objective::RecOnly)
            .with_update(ProtoUpdate::ClosedFormMean);
        let protos = cfg.fit(&segs, 1);
        let assign = protos.assign_all(&segs);
        assert!(purity(&assign, &truth, 3) > 0.95);
    }

    #[test]
    fn recovers_planted_clusters_with_adamw_update() {
        let (segs, truth) = planted(40, 16);
        let cfg = ClusterConfig::new(3, 16); // paper defaults: Rec+Corr, AdamW
        let protos = cfg.fit(&segs, 2);
        let assign = protos.assign_all(&segs);
        assert!(purity(&assign, &truth, 3) > 0.9);
    }

    #[test]
    fn loss_trace_is_monotone_nonincreasing_for_kmeans() {
        let (segs, _) = planted(30, 8);
        let cfg = ClusterConfig::new(4, 8)
            .with_objective(Objective::RecOnly)
            .with_update(ProtoUpdate::ClosedFormMean);
        let (_, trace) = cfg.fit_traced(&segs, 3);
        for w in trace.loss_per_iter.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "loss increased: {:?}", trace.loss_per_iter);
        }
    }

    #[test]
    fn converges_and_reports_iteration() {
        let (segs, _) = planted(30, 8);
        let cfg = ClusterConfig::new(3, 8)
            .with_objective(Objective::RecOnly)
            .with_update(ProtoUpdate::ClosedFormMean)
            .with_max_iters(50);
        let (_, trace) = cfg.fit_traced(&segs, 4);
        assert!(trace.converged_at.is_some(), "did not converge in 50 iters");
    }

    #[test]
    fn rec_corr_prototypes_align_in_shape() {
        // With a strong correlation weight, prototypes should correlate with
        // their members even when amplitudes vary.
        let p = 16;
        let mut data = Vec::new();
        for amp_i in 0..30 {
            let amp = 0.5 + amp_i as f32 * 0.1;
            for i in 0..p {
                let u = i as f32 / p as f32;
                data.push(amp * (2.0 * std::f32::consts::PI * u).sin());
            }
        }
        let segs = Tensor::from_vec(data, &[30, p]);
        let cfg = ClusterConfig::new(2, p).with_objective(Objective::rec_corr(2.0));
        let protos = cfg.fit(&segs, 5);
        let assign = protos.assign_all(&segs);
        for (i, &a) in assign.iter().enumerate() {
            let r = stats::pearson(segs.row(i), protos.centers().row(a));
            assert!(r > 0.8, "segment {i} corr {r}");
        }
    }

    #[test]
    fn segment_matrix_layout() {
        let series = Tensor::from_vec((0..20).map(|v| v as f32).collect(), &[2, 10]);
        let segs = segment_matrix(&series, 4);
        // 2 entities × 2 full segments each (tail of 2 dropped).
        assert_eq!(segs.dims(), &[4, 4]);
        assert_eq!(segs.row(0), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(segs.row(2), &[10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn deterministic_in_seed() {
        let (segs, _) = planted(20, 8);
        let cfg = ClusterConfig::new(3, 8);
        let a = cfg.fit(&segs, 7);
        let b = cfg.fit(&segs, 7);
        assert_eq!(a.centers().data(), b.centers().data());
    }

    #[test]
    fn assign_is_stable_under_refit_objective() {
        let (segs, _) = planted(20, 8);
        let protos = ClusterConfig::new(3, 8).fit(&segs, 8);
        for i in 0..segs.dims()[0] {
            let j = protos.assign(segs.row(i));
            assert!(j < 3);
            assert!(protos.nearest_distance(segs.row(i)).is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "need at least k")]
    fn rejects_more_prototypes_than_segments() {
        let segs = Tensor::zeros(&[2, 4]);
        let _ = ClusterConfig::new(3, 4).fit(&segs, 0);
    }
}
