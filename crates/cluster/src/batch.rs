//! Batched GEMM evaluation of the composite distance (Eq. 6).
//!
//! The scalar path walks every `(segment, prototype)` pair with a fused
//! distance loop — `O(n·k·p)` flops that never touch the tiled GEMM kernels.
//! This module restructures the same arithmetic so the bulk of the work *is*
//! a GEMM:
//!
//! ```text
//! ‖x − c‖²   = ‖x‖² − 2·x·c + ‖c‖²          (expand the square)
//! corr(x, c) = x̂ · ĉ,   v̂ = (v − mean(v)) / ‖v − mean(v)‖
//! ```
//!
//! so the full `[n, k]` distance matrix costs two tiled `X·Cᵀ` products (raw
//! rows for the reconstruction term, centred-normalised rows for the
//! correlation term) plus cached per-row norms and an `O(n·k)` epilogue.
//!
//! The GEMM path accumulates in `f32` where the scalar oracle
//! ([`Objective::distance`]) accumulates in `f64`, so distances agree to
//! roundoff (~1e-5 relative), not bitwise; argmin assignments agree whenever
//! the best/second-best margin exceeds that roundoff — in particular exact
//! ties (duplicate prototypes) resolve identically, because both paths scan
//! prototypes in ascending index with a strict `<`. Property tests in
//! `tests/properties.rs` pin both claims down.

use crate::objective::Objective;
use focus_tensor::{par, raw, stats, Tensor};

/// Rows of the distance matrix computed per block: bounds the live
/// `[block, k]` scratch while keeping each GEMM big enough to tile well.
const BLOCK_ROWS: usize = 4096;

/// Minimum epilogue elements (`rows × k`) per thread before the per-row
/// passes go parallel.
const EPILOGUE_GRAIN: usize = 16 * 1024;

/// Per-prototype data cached once per sweep: raw centers, squared norms and
/// centred-normalised copies.
pub(crate) struct CenterCache {
    k: usize,
    p: usize,
    /// Raw centers `[k, p]` (flat copy; the cache owns its layout).
    centers: Vec<f32>,
    /// `‖c_j‖²` per center, f64-accumulated.
    sq_norms: Vec<f32>,
    /// Centred-normalised centers `ĉ: [k, p]`; constant centers become zero
    /// rows so `x̂·ĉ = 0` reproduces the scalar convention `corr = 0`.
    /// Empty when `alpha == 0` (the correlation GEMM is skipped entirely).
    unit: Vec<f32>,
    /// Correlation weight of the objective.
    alpha: f32,
}

impl CenterCache {
    pub(crate) fn new(centers: &Tensor, objective: &Objective) -> CenterCache {
        assert_eq!(centers.rank(), 2, "centers must be [k, p]");
        let (k, p) = (centers.dims()[0], centers.dims()[1]);
        let alpha = objective.alpha();
        let data = centers.data().to_vec();
        let mut sq_norms = vec![0.0f32; k];
        for (j, out) in sq_norms.iter_mut().enumerate() {
            *out = sq_norm(&data[j * p..(j + 1) * p]);
        }
        let mut unit = Vec::new();
        if alpha > 0.0 {
            unit = vec![0.0f32; k * p];
            for j in 0..k {
                center_normalise(&data[j * p..(j + 1) * p], &mut unit[j * p..(j + 1) * p]);
            }
        }
        CenterCache {
            k,
            p,
            centers: data,
            sq_norms,
            unit,
            alpha,
        }
    }
}

/// `‖v‖²` with f64 accumulation (cast once, like the scalar kernels).
fn sq_norm(v: &[f32]) -> f32 {
    v.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>() as f32
}

/// Writes `(v − mean) / ‖v − mean‖` into `out`; all-zero when `v` is
/// (numerically) constant, matching `stats::pearson`'s zero-variance
/// convention — the shared scale-aware [`stats::zero_variance`] floor, so a
/// constant row of large magnitude (whose mean-rounding residue leaves
/// `sxx` tiny but positive) normalises to zero instead of a noise-only
/// garbage unit vector. Statistics accumulate in f64 like the scalar path.
fn center_normalise(v: &[f32], out: &mut [f32]) {
    let n = v.len() as f64;
    let mean = v.iter().map(|&x| x as f64).sum::<f64>() / n;
    let mut sxx = 0.0f64;
    let mut max_abs = 0.0f64;
    for &x in v {
        let d = x as f64 - mean;
        sxx += d * d;
        max_abs = max_abs.max((x as f64).abs());
    }
    if stats::zero_variance(sxx, v.len(), max_abs) {
        out.fill(0.0);
        return;
    }
    let inv = 1.0 / sxx.sqrt();
    for (o, &x) in out.iter_mut().zip(v) {
        *o = ((x as f64 - mean) * inv) as f32;
    }
}

/// Runs the blocked distance sweep over `segments: [n, p]`, invoking
/// `visit(first_row, rows, block)` with each finished `[rows, k]` distance
/// block (row-major, reused buffer — copy out what must outlive the call).
fn for_each_block<F>(segments: &Tensor, cache: &CenterCache, mut visit: F)
where
    F: FnMut(usize, usize, &[f32]),
{
    assert_eq!(segments.rank(), 2, "segments must be [n, p]");
    let (n, p) = (segments.dims()[0], segments.dims()[1]);
    assert_eq!(p, cache.p, "segment width {p} != prototype width {}", cache.p);
    let k = cache.k;
    let block = BLOCK_ROWS.min(n.max(1));
    let corr = cache.alpha > 0.0;

    let mut dist = vec![0.0f32; block * k];
    let mut dots = vec![0.0f32; if corr { block * k } else { 0 }];
    let mut unit_rows = vec![0.0f32; if corr { block * p } else { 0 }];
    let mut x2 = vec![0.0f32; block];

    let mut r0 = 0usize;
    while r0 < n {
        let rows = block.min(n - r0);
        let seg_block = &segments.data()[r0 * p..(r0 + rows) * p];

        // Per-row statistics (parallel over rows; each row independent).
        let stats_grain = EPILOGUE_GRAIN.div_ceil(p.max(1)).max(1);
        par::parallel_fill(&mut x2[..rows], stats_grain, |range, chunk| {
            for (i, o) in range.zip(chunk.iter_mut()) {
                *o = sq_norm(&seg_block[i * p..(i + 1) * p]);
            }
        });
        if corr {
            par::parallel_rows(&mut unit_rows[..rows * p], p, stats_grain, 1, |row0, chunk| {
                for (i, out) in chunk.chunks_exact_mut(p).enumerate() {
                    center_normalise(&seg_block[(row0 + i) * p..(row0 + i + 1) * p], out);
                }
            });
        }

        // Reconstruction dots: X·Cᵀ on the raw rows.
        dist[..rows * k].fill(0.0);
        raw::gemm_nt(rows, p, k, seg_block, &cache.centers, &mut dist[..rows * k]);
        // Correlation dots: X̂·Ĉᵀ on the centred-normalised rows.
        if corr {
            dots[..rows * k].fill(0.0);
            raw::gemm_nt(rows, p, k, &unit_rows[..rows * p], &cache.unit, &mut dots[..rows * k]);
        }

        // Epilogue: d = max(‖x‖² − 2·x·c + ‖c‖², 0) + α·(1 − clamp(corr)).
        {
            let (x2, dots, sq_norms, alpha) = (&x2, &dots, &cache.sq_norms, cache.alpha);
            let grain_rows = EPILOGUE_GRAIN.div_ceil(k.max(1)).max(1);
            par::parallel_rows(&mut dist[..rows * k], k, grain_rows, 1, |row0, chunk| {
                for (i, row) in chunk.chunks_exact_mut(k).enumerate() {
                    let xi2 = x2[row0 + i];
                    for (j, v) in row.iter_mut().enumerate() {
                        let rec = (xi2 - 2.0 * *v + sq_norms[j]).max(0.0);
                        *v = if corr {
                            let r = dots[(row0 + i) * k + j].clamp(-1.0, 1.0);
                            rec + alpha * (1.0 - r)
                        } else {
                            rec
                        };
                    }
                }
            });
        }

        visit(r0, rows, &dist[..rows * k]);
        r0 += rows;
    }
}

/// The full `[n, k]` composite distance matrix via the GEMM path.
pub(crate) fn distance_matrix(segments: &Tensor, cache: &CenterCache) -> Tensor {
    let n = segments.dims()[0];
    let mut out = Tensor::zeros(&[n, cache.k]);
    let k = cache.k;
    for_each_block(segments, cache, |r0, rows, block| {
        out.data_mut()[r0 * k..(r0 + rows) * k].copy_from_slice(block);
    });
    out
}

/// Nearest center per row of `segments` via the GEMM path: fills
/// `out[i] = (argmin_j d_ij, min_j d_ij)` with the lowest-index tie-break
/// (strict `<` over ascending `j`, exactly like the scalar oracle).
pub(crate) fn assign_batched(segments: &Tensor, cache: &CenterCache, out: &mut [(usize, f32)]) {
    focus_trace::span!("cluster/assign");
    let n = segments.dims()[0];
    focus_trace::counter_add("cluster/segments_assigned", n as u64);
    assert_eq!(out.len(), n, "output length {} != segment count {n}", out.len());
    let k = cache.k;
    for_each_block(segments, cache, |r0, rows, block| {
        let grain = EPILOGUE_GRAIN.div_ceil(k.max(1)).max(1);
        par::parallel_fill(&mut out[r0..r0 + rows], grain, |range, chunk| {
            for (i, o) in range.zip(chunk.iter_mut()) {
                let row = &block[i * k..(i + 1) * k];
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for (j, &d) in row.iter().enumerate() {
                    if d < best_d {
                        best_d = d;
                        best = j;
                    }
                }
                *o = (best, best_d);
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_case(n: usize, k: usize, p: usize, alpha: f32, seed: u64) -> (Tensor, Tensor, Objective) {
        let mut rng = StdRng::seed_from_u64(seed);
        let segs = Tensor::randn(&[n, p], 1.3, &mut rng);
        let centers = Tensor::randn(&[k, p], 1.0, &mut rng);
        let obj = if alpha > 0.0 { Objective::rec_corr(alpha) } else { Objective::RecOnly };
        (segs, centers, obj)
    }

    #[test]
    fn distance_matrix_matches_scalar_oracle() {
        for &(n, k, p, alpha, seed) in &[
            (7usize, 3usize, 5usize, 0.0f32, 1u64),
            (64, 8, 16, 0.2, 2),
            (130, 5, 32, 1.0, 3),
        ] {
            let (segs, centers, obj) = random_case(n, k, p, alpha, seed);
            let cache = CenterCache::new(&centers, &obj);
            let d = distance_matrix(&segs, &cache);
            for i in 0..n {
                for j in 0..k {
                    let scalar = obj.distance(segs.row(i), centers.row(j));
                    let gemm = d.at2(i, j);
                    let tol = 1e-4 * scalar.abs().max(1.0);
                    assert!(
                        (gemm - scalar).abs() <= tol,
                        "({n},{k},{p},{alpha}) d[{i},{j}]: gemm {gemm} vs scalar {scalar}"
                    );
                }
            }
        }
    }

    #[test]
    fn constant_rows_follow_zero_variance_convention() {
        // A flat segment against a flat center: rec = 0, corr defined as 0.
        let segs = Tensor::from_vec(vec![2.0, 2.0, 2.0, 2.0], &[1, 4]);
        let centers = Tensor::from_vec(vec![2.0, 2.0, 2.0, 2.0, 0.0, 1.0, 2.0, 3.0], &[2, 4]);
        let obj = Objective::rec_corr(0.5);
        let cache = CenterCache::new(&centers, &obj);
        let d = distance_matrix(&segs, &cache);
        assert!((d.at2(0, 0) - 0.5).abs() < 1e-6, "flat-vs-flat must cost α·(1−0)");
        let scalar = obj.distance(segs.row(0), centers.row(1));
        assert!((d.at2(0, 1) - scalar).abs() < 1e-4 * scalar.max(1.0));
    }

    #[test]
    fn large_magnitude_constant_rows_normalise_to_zero() {
        // A constant row at |v| ≈ 1e8: the f64 mean rounds, leaving residuals
        // of order ε₆₄·|v| whose sum of squares exceeded the old absolute
        // f64::EPSILON guard — the row then normalised to a noise-only
        // garbage "unit" vector. The scale-aware floor must zero it.
        let v = vec![1.0e8f32; 6];
        let mut out = vec![9.0f32; 6];
        center_normalise(&v, &mut out);
        assert_eq!(out, vec![0.0; 6], "constant row must normalise to all-zero");

        // One real f32 step at the same magnitude is signal, not noise: the
        // result must be a genuine unit vector.
        let step = f32::from_bits(1.0e8f32.to_bits() + 1);
        let w = [1.0e8, step, 1.0e8, step, 1.0e8, step];
        let mut unit = vec![0.0f32; 6];
        center_normalise(&w, &mut unit);
        let norm: f64 = unit.iter().map(|&x| (x as f64) * (x as f64)).sum();
        assert!((norm - 1.0).abs() < 1e-3, "stepped row must normalise to unit, norm² = {norm}");
    }

    #[test]
    fn large_magnitude_constant_rows_keep_distances_finite() {
        // End-to-end: the corr GEMM on guarded rows can never produce
        // NaN/inf, whatever the rec-term f32 cancellation does.
        let segs = Tensor::from_vec(vec![1.0e8; 6], &[1, 6]);
        let centers = Tensor::from_vec(
            vec![1.0e8, 1.0e8, 1.0e8, 1.0e8, 1.0e8, 1.0e8, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            &[2, 6],
        );
        let obj = Objective::rec_corr(0.5);
        let cache = CenterCache::new(&centers, &obj);
        let d = distance_matrix(&segs, &cache);
        for j in 0..2 {
            assert!(d.at2(0, j).is_finite(), "d[0,{j}] must be finite, got {}", d.at2(0, j));
        }
        // The flat-vs-flat corr contribution is exactly α·(1−0); only the
        // rec term carries f32 cancellation noise, which is bounded by the
        // accumulated rounding of the ‖x‖²-scale dot products.
        let rec_noise = 6.0 * f32::EPSILON * 2.0 * 6.0e16;
        assert!(
            (d.at2(0, 0) - 0.5).abs() <= rec_noise,
            "flat-vs-flat: {} should be α + rec-cancellation noise",
            d.at2(0, 0)
        );
    }

    #[test]
    fn exact_ties_resolve_to_lowest_index() {
        // Duplicate centers produce bit-identical distance columns in both
        // paths; the strict-< scan must pick the first.
        let mut rng = StdRng::seed_from_u64(9);
        let segs = Tensor::randn(&[40, 8], 1.0, &mut rng);
        let c = Tensor::randn(&[1, 8], 1.0, &mut rng);
        let mut dup = c.data().to_vec();
        dup.extend_from_slice(c.data());
        dup.extend_from_slice(c.data());
        let centers = Tensor::from_vec(dup, &[3, 8]);
        let cache = CenterCache::new(&centers, &Objective::rec_corr(0.2));
        let mut out = vec![(0usize, 0.0f32); 40];
        assign_batched(&segs, &cache, &mut out);
        for (i, &(j, _)) in out.iter().enumerate() {
            assert_eq!(j, 0, "segment {i} must tie-break to the lowest index");
        }
    }

    #[test]
    fn assign_batched_is_thread_count_invariant() {
        // `set_threads` is process-global: serialise against any other test
        // in this binary that sweeps the override.
        let _g = par::threads_guard();
        let (segs, centers, obj) = random_case(257, 6, 16, 0.2, 11);
        let cache = CenterCache::new(&centers, &obj);
        par::set_threads(1);
        let mut serial = vec![(0usize, 0.0f32); 257];
        assign_batched(&segs, &cache, &mut serial);
        for threads in [2, 4] {
            par::set_threads(threads);
            let mut t = vec![(0usize, 0.0f32); 257];
            assign_batched(&segs, &cache, &mut t);
            assert_eq!(t, serial, "{threads} threads");
        }
        par::set_threads(0);
    }
}
