//! Series approximation via prototypes (paper §VIII-G, Fig. 11).
//!
//! The case study decomposes a sequence into its assigned prototypes, "with
//! each prototype adjusted to maintain the original mean and standard
//! deviation" — i.e. each segment is replaced by its prototype re-scaled to
//! the segment's local first two moments. This module implements that
//! reconstruction and measures its fidelity.

use crate::engine::Prototypes;
use focus_tensor::stats;

/// Fidelity of a prototype reconstruction of one series.
#[derive(Clone, Debug)]
pub struct ReconstructionReport {
    /// The reconstructed series (same length as the input, truncated to a
    /// whole number of segments).
    pub reconstruction: Vec<f32>,
    /// Bucket index used for each segment.
    pub assignments: Vec<usize>,
    /// Mean squared reconstruction error.
    pub mse: f64,
    /// Pearson correlation between input and reconstruction.
    pub correlation: f32,
}

/// Reconstructs `row` from `prototypes`, segment by segment, re-scaling each
/// prototype to the segment's mean and standard deviation (Fig. 11).
///
/// Only `⌊len/p⌋·p` samples are reconstructed; a trailing partial segment is
/// ignored.
///
/// # Panics
/// If `row` is shorter than one segment.
pub fn reconstruct_row(row: &[f32], prototypes: &Prototypes) -> ReconstructionReport {
    let p = prototypes.segment_len();
    let n_segs = row.len() / p;
    assert!(n_segs > 0, "series of length {} shorter than segment {p}", row.len());
    let used = &row[..n_segs * p];

    let mut reconstruction = Vec::with_capacity(used.len());
    let mut assignments = Vec::with_capacity(n_segs);
    for seg in used.chunks_exact(p) {
        let j = prototypes.assign(seg);
        assignments.push(j);
        let proto = prototypes.centers().row(j);
        let (seg_mean, seg_std) = stats::mean_std(seg);
        let (proto_mean, proto_std) = stats::mean_std(proto);
        // Re-scale the prototype shape to the segment's local moments.
        let scale = if proto_std > 1e-6 { seg_std / proto_std } else { 0.0 };
        for &v in proto {
            reconstruction.push((v - proto_mean) * scale + seg_mean);
        }
    }

    let mse = used
        .iter()
        .zip(&reconstruction)
        .map(|(&a, &b)| {
            let d = (a - b) as f64;
            d * d
        })
        .sum::<f64>()
        / used.len() as f64;
    let correlation = stats::pearson(used, &reconstruction);
    ReconstructionReport {
        reconstruction,
        assignments,
        mse,
        correlation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{segment_matrix, ClusterConfig};
    use crate::objective::Objective;
    use focus_tensor::Tensor;

    fn periodic_series(len: usize) -> Vec<f32> {
        (0..len)
            .map(|t| {
                let u = t as f32 * 0.125;
                (2.0 * std::f32::consts::PI * u / 4.0).sin() + 0.3 * (t as f32 * 0.01).cos()
            })
            .collect()
    }

    #[test]
    fn reconstruction_preserves_local_moments() {
        let series = periodic_series(512);
        let segs = segment_matrix(&Tensor::from_vec(series.clone(), &[1, 512]), 16);
        let protos = ClusterConfig::new(8, 16).fit(&segs, 1);
        let rep = reconstruct_row(&series, &protos);
        assert_eq!(rep.reconstruction.len(), 512);
        // Each reconstructed segment keeps the segment's mean/std.
        for (seg_orig, seg_rec) in series.chunks_exact(16).zip(rep.reconstruction.chunks_exact(16)) {
            let (m0, s0) = stats::mean_std(seg_orig);
            let (m1, s1) = stats::mean_std(seg_rec);
            assert!((m0 - m1).abs() < 1e-4, "mean {m0} vs {m1}");
            assert!((s0 - s1).abs() < 1e-3, "std {s0} vs {s1}");
        }
    }

    #[test]
    fn k8_approximation_is_faithful() {
        // Fig. 11: k = 8 prototypes capture the essential patterns.
        let series = periodic_series(1_024);
        let segs = segment_matrix(&Tensor::from_vec(series.clone(), &[1, 1_024]), 16);
        let protos = ClusterConfig::new(8, 16).fit(&segs, 2);
        let rep = reconstruct_row(&series, &protos);
        assert!(rep.correlation > 0.9, "corr {}", rep.correlation);
        let var = Tensor::from_vec(series, &[1_024]).var_all() as f64;
        assert!(rep.mse < 0.3 * var, "mse {} vs var {var}", rep.mse);
    }

    #[test]
    fn more_prototypes_reconstruct_no_worse() {
        let series = periodic_series(1_024);
        let segs = segment_matrix(&Tensor::from_vec(series.clone(), &[1, 1_024]), 16);
        let small = ClusterConfig::new(2, 16)
            .with_objective(Objective::RecOnly)
            .fit(&segs, 3);
        let large = ClusterConfig::new(16, 16)
            .with_objective(Objective::RecOnly)
            .fit(&segs, 3);
        let rep_s = reconstruct_row(&series, &small);
        let rep_l = reconstruct_row(&series, &large);
        // Relative band plus an absolute slack: with a periodic series both
        // fits sit at the reconstruction noise floor (~1e-4), where a pure
        // 5% band is below seed-to-seed jitter of the AdamW prototype fit.
        assert!(
            rep_l.mse <= rep_s.mse * 1.05 + 1e-4,
            "k=16 mse {} vs k=2 mse {}",
            rep_l.mse,
            rep_s.mse
        );
    }

    #[test]
    fn assignments_cover_only_valid_buckets() {
        let series = periodic_series(256);
        let segs = segment_matrix(&Tensor::from_vec(series.clone(), &[1, 256]), 8);
        let protos = ClusterConfig::new(4, 8).fit(&segs, 4);
        let rep = reconstruct_row(&series, &protos);
        assert_eq!(rep.assignments.len(), 32);
        assert!(rep.assignments.iter().all(|&j| j < 4));
    }
}
