//! Clustering objectives: the composite distance of Eq. 6 and the gradients
//! of the prototype loss (Eqs. 8–10).

use focus_tensor::stats;

/// Which loss drives assignment and prototype optimisation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Objective {
    /// Pure Euclidean reconstruction (*Rec Only* in Fig. 8); equivalent to
    /// classic k-means.
    RecOnly,
    /// Reconstruction plus correlation alignment with weight `alpha`
    /// (*Rec+Corr*, Eq. 6/Eq. 10; the paper uses `alpha = 0.2`).
    RecCorr {
        /// Weight of the `1 − corr` term.
        alpha: f32,
    },
}

impl Objective {
    /// The paper's default: `Rec+Corr` with α = 0.2.
    pub fn paper_default() -> Objective {
        Objective::RecCorr { alpha: 0.2 }
    }

    /// Convenience constructor for `Rec+Corr`.
    pub fn rec_corr(alpha: f32) -> Objective {
        assert!(alpha >= 0.0, "alpha must be non-negative, got {alpha}");
        Objective::RecCorr { alpha }
    }

    /// The correlation weight (0 for [`Objective::RecOnly`]).
    pub fn alpha(&self) -> f32 {
        match self {
            Objective::RecOnly => 0.0,
            Objective::RecCorr { alpha } => *alpha,
        }
    }

    /// Composite assignment distance of Eq. 6:
    /// `‖x − c‖² + α · (1 − corr(x, c))`.
    pub fn distance(&self, segment: &[f32], prototype: &[f32]) -> f32 {
        let rec = stats::sq_euclidean(segment, prototype);
        match self {
            Objective::RecOnly => rec,
            Objective::RecCorr { alpha } => {
                rec + alpha * (1.0 - stats::pearson(segment, prototype))
            }
        }
    }
}

/// Gradient of `corr(s, c)` with respect to the prototype `c`.
///
/// With `s̃`, `c̃` the mean-centred vectors and `r = ⟨s̃, c̃⟩/(‖s̃‖‖c̃‖)`:
///
/// ```text
/// ∂r/∂c = s̃/(‖s̃‖‖c̃‖) − r · c̃/‖c̃‖²
/// ```
///
/// (the centring projection leaves already-centred vectors unchanged, so it
/// is absorbed). If either vector is (numerically) constant the correlation
/// is defined as 0 and the gradient as 0.
pub fn corr_grad_wrt_prototype(segment: &[f32], prototype: &[f32], out: &mut [f32]) {
    assert_eq!(segment.len(), prototype.len(), "length mismatch");
    assert_eq!(out.len(), prototype.len(), "output length mismatch");
    let n = segment.len() as f64;
    let ms: f64 = segment.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mc: f64 = prototype.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut dot = 0.0f64;
    let mut ns2 = 0.0f64;
    let mut nc2 = 0.0f64;
    let mut max_s = 0.0f64;
    let mut max_c = 0.0f64;
    for (&s, &c) in segment.iter().zip(prototype) {
        let st = s as f64 - ms;
        let ct = c as f64 - mc;
        dot += st * ct;
        ns2 += st * st;
        nc2 += ct * ct;
        max_s = max_s.max((s as f64).abs());
        max_c = max_c.max((c as f64).abs());
    }
    // Shared scale-aware floor (see `stats::zero_variance`): a constant
    // vector of large magnitude leaves mean-rounding residue in ns2/nc2 that
    // an absolute epsilon misses; dividing by it would make the gradient
    // noise-driven garbage where `corr = 0` defines it as zero.
    if stats::zero_variance(ns2, segment.len(), max_s)
        || stats::zero_variance(nc2, prototype.len(), max_c)
    {
        out.fill(0.0);
        return;
    }
    let ns = ns2.sqrt();
    let nc = nc2.sqrt();
    let r = dot / (ns * nc);
    for ((o, &s), &c) in out.iter_mut().zip(segment).zip(prototype) {
        let st = s as f64 - ms;
        let ct = c as f64 - mc;
        // Project through the centring: grad · (I − 11ᵀ/n). Because both
        // terms below are centred vectors, the projection is the identity.
        *o = ((st / (ns * nc)) - r * ct / nc2) as f32;
    }
    // Numerical centring: the exact gradient has zero mean.
    let mean: f32 = out.iter().sum::<f32>() / out.len() as f32;
    for o in out.iter_mut() {
        *o -= mean;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_tensor::stats;

    #[test]
    fn rec_only_is_euclidean() {
        let o = Objective::RecOnly;
        assert_eq!(o.distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(o.alpha(), 0.0);
    }

    #[test]
    fn corr_term_separates_paper_example() {
        // Example 2: A is Euclidean-equidistant from B and C, but the
        // composite distance must prefer the correlated B.
        let a = [9.0f32, 10.0, 11.0];
        let b = [7.0f32, 10.0, 13.0];
        let c = [11.0f32, 10.0, 9.0];
        let o = Objective::rec_corr(0.2);
        assert!(o.distance(&a, &b) < o.distance(&a, &c));
        // Rec-only cannot tell them apart.
        let r = Objective::RecOnly;
        assert!((r.distance(&a, &b) - r.distance(&a, &c)).abs() < 1e-6);
    }

    #[test]
    fn corr_gradient_matches_finite_differences() {
        let s = [0.3f32, -1.0, 2.0, 0.5, -0.8];
        let mut c = [1.0f32, 0.2, -0.5, 0.7, 0.1];
        let mut grad = [0.0f32; 5];
        corr_grad_wrt_prototype(&s, &c, &mut grad);
        let eps = 1e-3;
        for j in 0..5 {
            let orig = c[j];
            c[j] = orig + eps;
            let up = stats::pearson(&s, &c);
            c[j] = orig - eps;
            let dn = stats::pearson(&s, &c);
            c[j] = orig;
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (grad[j] - numeric).abs() < 1e-3,
                "j={j}: analytic {} vs numeric {numeric}",
                grad[j]
            );
        }
    }

    #[test]
    fn corr_gradient_is_zero_for_flat_inputs() {
        let flat = [1.0f32; 4];
        let c = [0.5f32, 1.0, -1.0, 0.2];
        let mut grad = [9.0f32; 4];
        corr_grad_wrt_prototype(&flat, &c, &mut grad);
        assert_eq!(grad, [0.0; 4]);
    }

    #[test]
    fn corr_gradient_is_zero_for_large_magnitude_flat_inputs() {
        // |v| ≈ 1e8: mean rounding leaves ns2 tiny-but-positive; the
        // scale-aware floor must still read the vector as flat.
        let flat = [1.0e8f32; 6];
        let c = [0.5f32, 1.0, -1.0, 0.2, 0.9, -0.3];
        let mut grad = [9.0f32; 6];
        corr_grad_wrt_prototype(&flat, &c, &mut grad);
        assert_eq!(grad, [0.0; 6]);
        let mut grad2 = [9.0f32; 6];
        corr_grad_wrt_prototype(&c, &flat, &mut grad2);
        assert_eq!(grad2, [0.0; 6]);
    }

    #[test]
    fn ascending_corr_gradient_increases_correlation() {
        let s = [1.0f32, 2.0, 3.0, 4.0];
        let mut c = [0.5f32, -0.2, 0.1, 0.3];
        let before = stats::pearson(&s, &c);
        for _ in 0..50 {
            let mut g = [0.0f32; 4];
            corr_grad_wrt_prototype(&s, &c, &mut g);
            for (cv, gv) in c.iter_mut().zip(&g) {
                *cv += 0.1 * gv;
            }
        }
        let after = stats::pearson(&s, &c);
        assert!(after > before + 0.1, "before {before}, after {after}");
    }
}
