//! Property-based tests for the clustering engine's invariants.

use focus_cluster::{segment_matrix, ClusterConfig, Objective, ProtoUpdate};
use focus_tensor::Tensor;
use proptest::prelude::*;

fn segments(n: usize, p: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-5.0f32..5.0, n * p).prop_map(move |v| Tensor::from_vec(v, &[n, p]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn assignment_is_nearest_under_objective(segs in segments(24, 6), alpha in 0.0f32..1.0) {
        let objective = if alpha < 0.05 { Objective::RecOnly } else { Objective::rec_corr(alpha) };
        let protos = ClusterConfig::new(4, 6)
            .with_objective(objective)
            .with_max_iters(8)
            .fit(&segs, 1);
        for i in 0..24 {
            let seg = segs.row(i);
            let assigned = protos.assign(seg);
            let d_assigned = objective.distance(seg, protos.centers().row(assigned));
            for j in 0..4 {
                let d = objective.distance(seg, protos.centers().row(j));
                prop_assert!(
                    d_assigned <= d + 1e-4,
                    "segment {i}: assigned bucket {assigned} at {d_assigned} but bucket {j} at {d}"
                );
            }
        }
    }

    #[test]
    fn prototypes_are_finite_and_shaped(segs in segments(16, 8)) {
        let protos = ClusterConfig::new(3, 8).with_max_iters(6).fit(&segs, 2);
        prop_assert_eq!(protos.centers().dims(), &[3, 8]);
        prop_assert!(protos.centers().all_finite());
    }

    #[test]
    fn every_bucket_is_used_when_data_has_spread(shift in 1.0f32..5.0) {
        // Three well-separated constant levels: every prototype must attract
        // at least one segment (the empty-bucket reseeding invariant).
        let mut data = Vec::new();
        for c in 0..3 {
            for _ in 0..10 {
                data.extend(std::iter::repeat_n(c as f32 * shift, 4));
            }
        }
        let segs = Tensor::from_vec(data, &[30, 4]);
        let protos = ClusterConfig::new(3, 4)
            .with_objective(Objective::RecOnly)
            .with_update(ProtoUpdate::ClosedFormMean)
            .with_max_iters(10)
            .fit(&segs, 3);
        let mut used = [false; 3];
        for a in protos.assign_all(&segs) {
            used[a] = true;
        }
        prop_assert!(used.iter().all(|&u| u), "unused bucket: {used:?}");
    }

    #[test]
    fn persistence_round_trip(segs in segments(12, 5)) {
        let protos = ClusterConfig::new(2, 5).with_max_iters(4).fit(&segs, 4);
        let restored = focus_cluster::Prototypes::from_text(&protos.to_text()).unwrap();
        prop_assert_eq!(protos.centers().data(), restored.centers().data());
        // Assignments must be identical after the round trip.
        for i in 0..12 {
            prop_assert_eq!(protos.assign(segs.row(i)), restored.assign(segs.row(i)));
        }
    }

    #[test]
    fn segment_matrix_row_count(entities in 1usize..5, t in 8usize..40, p in 2usize..8) {
        let series = Tensor::zeros(&[entities, t]);
        let segs = segment_matrix(&series, p);
        prop_assert_eq!(segs.dims(), &[entities * (t / p), p]);
    }

    #[test]
    fn assign_all_and_fit_bitwise_match_serial(segs in segments(900, 6), seed in 0u64..1 << 32) {
        // Parallel assignment sweeps must be indistinguishable from serial:
        // same bucket per segment from `assign_all`, and — because the fit
        // loop's assignment step and the k-means++ init also run on the pool
        // — bit-for-bit identical fitted prototypes at every thread count.
        // (900 segments is past the sweep's parallel grain, so threads > 1
        // genuinely engage.)
        let cfg = ClusterConfig::new(5, 6).with_max_iters(4);
        focus_tensor::par::set_threads(1);
        let protos_serial = cfg.fit(&segs, seed);
        let serial: Vec<usize> = (0..segs.dims()[0]).map(|i| protos_serial.assign(segs.row(i))).collect();
        for threads in [2usize, 4] {
            focus_tensor::par::set_threads(threads);
            let protos = cfg.fit(&segs, seed);
            prop_assert_eq!(
                protos.centers().data(), protos_serial.centers().data(),
                "fit diverged at {} threads", threads
            );
            prop_assert_eq!(&protos_serial.assign_all(&segs), &serial, "assign_all diverged at {} threads", threads);
        }
        focus_tensor::par::set_threads(0);
    }
}
