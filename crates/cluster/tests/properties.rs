//! Property-based tests for the clustering engine's invariants.

use focus_cluster::{segment_matrix, ClusterConfig, Objective, ProtoUpdate, Prototypes};
use focus_tensor::Tensor;
use proptest::prelude::*;

fn segments(n: usize, p: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-5.0f32..5.0, n * p).prop_map(move |v| Tensor::from_vec(v, &[n, p]))
}

/// Rows that may be exactly constant (wide magnitude range, including values
/// whose f64 mean rounds), near-constant (tiny noise on a base — at large
/// bases the noise vanishes below the f32 ulp, at small bases it survives),
/// or ordinary random rows. Exercises the zero-variance guard on both sides.
fn mixed_rows(n: usize, p: usize) -> impl Strategy<Value = Tensor> {
    let row = prop_oneof![
        (-1.0e8f32..1.0e8).prop_map(move |v| vec![v; p]),
        ((-1.0e4f32..1.0e4), prop::collection::vec(-1.0e-6f32..1.0e-6, p))
            .prop_map(|(base, noise)| noise.iter().map(|&e| base + e).collect()),
        prop::collection::vec(-5.0f32..5.0, p),
    ];
    prop::collection::vec(row, n).prop_map(move |rows| Tensor::from_vec(rows.concat(), &[n, p]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn assignment_is_nearest_under_objective(segs in segments(24, 6), alpha in 0.0f32..1.0) {
        let objective = if alpha < 0.05 { Objective::RecOnly } else { Objective::rec_corr(alpha) };
        let protos = ClusterConfig::new(4, 6)
            .with_objective(objective)
            .with_max_iters(8)
            .fit(&segs, 1);
        for i in 0..24 {
            let seg = segs.row(i);
            let assigned = protos.assign(seg);
            let d_assigned = objective.distance(seg, protos.centers().row(assigned));
            for j in 0..4 {
                let d = objective.distance(seg, protos.centers().row(j));
                prop_assert!(
                    d_assigned <= d + 1e-4,
                    "segment {i}: assigned bucket {assigned} at {d_assigned} but bucket {j} at {d}"
                );
            }
        }
    }

    #[test]
    fn prototypes_are_finite_and_shaped(segs in segments(16, 8)) {
        let protos = ClusterConfig::new(3, 8).with_max_iters(6).fit(&segs, 2);
        prop_assert_eq!(protos.centers().dims(), &[3, 8]);
        prop_assert!(protos.centers().all_finite());
    }

    #[test]
    fn every_bucket_is_used_when_data_has_spread(shift in 1.0f32..5.0) {
        // Three well-separated constant levels: every prototype must attract
        // at least one segment (the empty-bucket reseeding invariant).
        let mut data = Vec::new();
        for c in 0..3 {
            for _ in 0..10 {
                data.extend(std::iter::repeat_n(c as f32 * shift, 4));
            }
        }
        let segs = Tensor::from_vec(data, &[30, 4]);
        let protos = ClusterConfig::new(3, 4)
            .with_objective(Objective::RecOnly)
            .with_update(ProtoUpdate::ClosedFormMean)
            .with_max_iters(10)
            .fit(&segs, 3);
        let mut used = [false; 3];
        for a in protos.assign_all(&segs) {
            used[a] = true;
        }
        prop_assert!(used.iter().all(|&u| u), "unused bucket: {used:?}");
    }

    #[test]
    fn persistence_round_trip(segs in segments(12, 5)) {
        let protos = ClusterConfig::new(2, 5).with_max_iters(4).fit(&segs, 4);
        let restored = focus_cluster::Prototypes::from_text(&protos.to_text()).unwrap();
        prop_assert_eq!(protos.centers().data(), restored.centers().data());
        // Assignments must be identical after the round trip.
        for i in 0..12 {
            prop_assert_eq!(protos.assign(segs.row(i)), restored.assign(segs.row(i)));
        }
    }

    #[test]
    fn segment_matrix_row_count(entities in 1usize..5, t in 8usize..40, p in 2usize..8) {
        let series = Tensor::zeros(&[entities, t]);
        let segs = segment_matrix(&series, p);
        prop_assert_eq!(segs.dims(), &[entities * (t / p), p]);
    }

    #[test]
    fn assign_all_and_fit_bitwise_match_serial(segs in segments(900, 6), seed in 0u64..1 << 32) {
        // Parallel assignment sweeps must be indistinguishable from serial:
        // same bucket per segment from `assign_all`, and — because the fit
        // loop's assignment step and the k-means++ init also run on the pool
        // — bit-for-bit identical fitted prototypes at every thread count.
        // (900 segments is past the sweep's parallel grain, so threads > 1
        // genuinely engage.)
        let cfg = ClusterConfig::new(5, 6).with_max_iters(4);
        // Serialise the process-global thread override against other tests.
        let _g = focus_tensor::par::threads_guard();
        focus_tensor::par::set_threads(1);
        let protos_serial = cfg.fit(&segs, seed);
        let serial: Vec<usize> = (0..segs.dims()[0]).map(|i| protos_serial.assign(segs.row(i))).collect();
        for threads in [2usize, 4] {
            focus_tensor::par::set_threads(threads);
            let protos = cfg.fit(&segs, seed);
            prop_assert_eq!(
                protos.centers().data(), protos_serial.centers().data(),
                "fit diverged at {} threads", threads
            );
            prop_assert_eq!(&protos_serial.assign_all(&segs), &serial, "assign_all diverged at {} threads", threads);
        }
        focus_tensor::par::set_threads(0);
    }

    #[test]
    fn gemm_distances_match_scalar_oracle(
        segs in segments(37, 9),
        centers in segments(5, 9),
        alpha in 0.0f32..1.0,
    ) {
        // The batched two-GEMM distance kernel (‖x‖² − 2x·c + ‖c‖² plus the
        // normalised-dot correlation term) must agree with the scalar
        // per-pair oracle to f32 roundoff, and pick the same argmin whenever
        // the scalar best/second-best margin exceeds that roundoff.
        let objective = if alpha < 0.05 { Objective::RecOnly } else { Objective::rec_corr(alpha) };
        let protos = Prototypes::from_centers(centers, objective);
        let d = protos.distances(&segs);
        let assigned = protos.assign_all(&segs);
        for (i, &assigned_i) in assigned.iter().enumerate() {
            let mut scalar = [0.0f32; 5];
            for (j, s) in scalar.iter_mut().enumerate() {
                *s = objective.distance(segs.row(i), protos.centers().row(j));
            }
            let mut tol_max = 0.0f32;
            for (j, &s) in scalar.iter().enumerate() {
                let tol = 1e-4 * s.abs().max(1.0);
                tol_max = tol_max.max(tol);
                prop_assert!(
                    (d.at2(i, j) - s).abs() <= tol,
                    "d[{i},{j}] gemm {} vs scalar {s}", d.at2(i, j)
                );
            }
            let best = (0..5).min_by(|&a, &b| scalar[a].partial_cmp(&scalar[b]).unwrap()).unwrap();
            let runner_up = (0..5)
                .filter(|&j| j != best)
                .map(|j| scalar[j] - scalar[best])
                .fold(f32::INFINITY, f32::min);
            if runner_up > 2.0 * tol_max {
                prop_assert_eq!(
                    assigned_i, best,
                    "row {} (margin {}): gemm argmin diverged from scalar", i, runner_up
                );
            }
        }
    }

    #[test]
    fn gemm_and_scalar_sweeps_agree_on_separated_data(shift in 2.0f32..6.0, seed in 0u64..1 << 16) {
        // On data with real cluster structure (no engineered near-ties) the
        // GEMM sweep and the scalar oracle sweep must assign identically.
        let mut data = Vec::new();
        for c in 0..4 {
            for s in 0..24 {
                for t in 0..8 {
                    let wobble = ((seed as f32 + (s * 8 + t) as f32) * 0.37).sin() * 0.3;
                    data.push(c as f32 * shift + wobble);
                }
            }
        }
        let segs = Tensor::from_vec(data, &[96, 8]);
        let protos = ClusterConfig::new(4, 8).with_max_iters(6).fit(&segs, seed);
        prop_assert_eq!(protos.assign_all(&segs), protos.assign_all_scalar(&segs));
    }

    #[test]
    fn constant_and_near_constant_rows_assign_consistently(
        segs in mixed_rows(40, 8),
        centers in mixed_rows(6, 8),
        alpha in 0.0f32..1.0,
    ) {
        // Constant (zero-variance) rows previously slipped past the
        // normalisation guard at large magnitudes, feeding noise-only unit
        // vectors into the correlation GEMM. Every distance must now be
        // finite and agree with the scalar oracle to f32 roundoff of the
        // *cancelled* terms (‖x‖² and ‖c‖², not the small result), and the
        // two sweeps must assign identically wherever the scalar margin
        // exceeds that roundoff.
        let objective = if alpha < 0.05 { Objective::RecOnly } else { Objective::rec_corr(alpha) };
        let protos = Prototypes::from_centers(centers, objective);
        let d = protos.distances(&segs);
        let assigned = protos.assign_all(&segs);
        let scalar_assigned = protos.assign_all_scalar(&segs);
        let sq = |row: &[f32]| row.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
        for i in 0..40 {
            let x2 = sq(segs.row(i));
            let mut scalar = [0.0f32; 6];
            let mut tol_max = 0.0f32;
            for (j, s) in scalar.iter_mut().enumerate() {
                *s = objective.distance(segs.row(i), protos.centers().row(j));
                prop_assert!(s.is_finite(), "scalar d[{}, {}] not finite: {}", i, j, s);
                let g = d.at2(i, j);
                prop_assert!(g.is_finite(), "gemm d[{}, {}] not finite: {}", i, j, g);
                let tol = 1e-4 * ((x2 + sq(protos.centers().row(j))) as f32).max(1.0);
                prop_assert!(
                    (g - *s).abs() <= tol,
                    "d[{}, {}]: gemm {} vs scalar {} (tol {})", i, j, g, s, tol
                );
                tol_max = tol_max.max(tol);
            }
            let best = (0..6).min_by(|&a, &b| scalar[a].partial_cmp(&scalar[b]).expect("finite")).expect("non-empty");
            let margin = (0..6)
                .filter(|&j| j != best)
                .map(|j| scalar[j] - scalar[best])
                .fold(f32::INFINITY, f32::min);
            if margin > 2.0 * tol_max {
                prop_assert_eq!(assigned[i], best, "row {} (margin {}): gemm argmin diverged", i, margin);
                prop_assert_eq!(scalar_assigned[i], best, "row {} (margin {}): scalar argmin diverged", i, margin);
            }
        }
    }

    #[test]
    fn duplicate_prototypes_tie_break_to_lowest_index(segs in segments(20, 6)) {
        // Bit-identical distance columns (duplicated centers) must resolve to
        // the lowest index on both the GEMM and the scalar path.
        let proto_row: Vec<f32> = segs.row(0).to_vec();
        let mut stacked = Vec::new();
        for _ in 0..3 {
            stacked.extend_from_slice(&proto_row);
        }
        let protos = Prototypes::from_centers(Tensor::from_vec(stacked, &[3, 6]), Objective::rec_corr(0.2));
        let gemm = protos.assign_all(&segs);
        let scalar = protos.assign_all_scalar(&segs);
        prop_assert!(gemm.iter().all(|&j| j == 0), "gemm path broke the tie upward: {gemm:?}");
        prop_assert_eq!(gemm, scalar);
    }
}
