//! # focus-autograd
//!
//! A tape-based reverse-mode automatic differentiation engine over
//! [`focus_tensor::Tensor`], plus the optimizers the FOCUS paper trains with
//! (AdamW — §V cites Loshchilov's decoupled weight decay — alongside Adam and
//! SGD for comparison).
//!
//! ## Design
//!
//! A [`Graph`] is an append-only arena of nodes. Every operation records its
//! inputs and caches the values needed by its backward rule; [`Var`] is a
//! copyable index into the arena. A fresh graph is built for every training
//! step — parameters live outside the graph in a [`ParamStore`] and are
//! registered as trainable leaves at the start of each step. This keeps the
//! engine free of interior mutability and reference cycles.
//!
//! ```
//! use focus_autograd::Graph;
//! use focus_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
//! let y = g.mul(x, x);           // y = x²
//! let loss = g.mean_all(y);      // L = mean(x²)
//! g.backward(loss);
//! // dL/dx = 2x / n = x
//! assert_eq!(g.grad(x).expect("x is a trainable leaf").data(), &[1.0, 2.0]);
//! ```
//!
//! The op set is exactly what the FOCUS model, its ablations and the seven
//! baselines need: dense linear algebra (2-D and batched 3-D matmul with a
//! broadcast-LHS variant for prototype queries), softmax, LayerNorm,
//! pointwise nonlinearities, concatenation and the MSE/MAE reductions.
//! Gradient correctness is enforced by the finite-difference checker in
//! [`gradcheck`] which the test-suite runs over every op.

#![forbid(unsafe_code)]

mod backward;
mod graph;
mod optim;
pub mod verify;
mod vm;

pub mod gradcheck;
pub mod plan;

pub use graph::{Graph, Var};
pub use optim::{Adam, AdamW, Optimizer, ParamId, ParamStore, ParamVars, Sgd};

/// Selects the fused (`true`, default) or reference (`false`) backward,
/// GEMM-dispatch and optimizer kernels.
///
/// Forwards to [`focus_tensor::fused::set_enabled`] — the flag lives in the
/// tensor crate because the GEMM dispatch consults it too. The two paths are
/// bitwise-identical — this switch exists so the parity tests and benchmarks
/// can compare them in one process, not because they may disagree.
pub fn set_fused(on: bool) {
    focus_tensor::fused::set_enabled(on);
}

/// True when the fused kernel path is active (see [`set_fused`]).
pub fn fused_enabled() -> bool {
    focus_tensor::fused::enabled()
}
