//! Tape → plan compiler: lowers one recorded forward/backward step into a
//! flat instruction stream with pre-resolved buffer slots.
//!
//! The interpreter ([`Graph::backward`] + [`crate::ParamStore::step`]) walks
//! the tape every step: each op allocates its output through the tensor pool,
//! the backward pass re-derives the rule set node by node, and every
//! intermediate round-trips through pool lookups. For the steady-state
//! training loop — same window shapes, same routing layout, same parameter
//! set step after step — all of that bookkeeping is invariant. This module
//! compiles it away:
//!
//! 1. **Forward emission** walks the recorded nodes once and emits one
//!    [`Instr`] per kernel call ([`Op::Reshape`] emits nothing — it is a
//!    location alias).
//! 2. **Symbolic backward** mirrors the fused backward rules exactly —
//!    same kernels, same operand order, same accumulation order, including
//!    the scalar-gradient constant folding the interpreter performs through
//!    `f32` arithmetic — so a replay is bitwise-equal to an interpreted step.
//! 3. **Liveness + slot allocation** assigns every virtual register to a
//!    pool-class-sized slot (`numel.next_power_of_two()`) with a per-class
//!    free list, destinations allocated before dying operands are released.
//!    Steady-state replay then performs zero pool lookups and zero graph
//!    traversal: the VM (`crate::vm`) just dispatches the opcode match.
//!
//! Compilation requires the fused kernels (`crate::set_fused(true)`): the
//! emitted backward mirrors the fused rule set, so replaying a plan compiled
//! against the reference backward would not be bitwise-equal. [`PlanCache`]
//! gates on this.
//!
//! # Verification
//!
//! A tape records *values*, so a constant that happens to vary per window
//! (e.g. a soft routing matrix) would silently bake one window's data into
//! the plan. [`PlanCache`] therefore compiles twice — once each on the first
//! two interpreted steps — and promotes to replay only if both candidate
//! plans are bitwise-identical. Any mismatch with unchanged shapes turns the
//! cache [`off`](PlanCache::is_off) for the rest of the run; a shape change
//! restarts verification.
//!
//! # Serialization
//!
//! Plans round-trip through a versioned line-oriented text format
//! (`focus-plan v1`, see [`Plan::to_text`]) in the same idiom as
//! `cluster::persist`; floats are stored as `f32` bit patterns in hex so the
//! round trip is exact.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};

use focus_tensor::Tensor;

use crate::graph::{Graph, Op, Var};
use crate::optim::{Optimizer, ParamStore, ParamVars};
use crate::vm;

pub use crate::verify;

// ---------------------------------------------------------------------------
// Global toggle
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables plan compilation and replay process-wide.
///
/// With plans disabled, [`PlanCache`] never compiles and never replays, so
/// the training loop stays on the interpreter. Used by the benchmarks to
/// measure the interpreter and the plan VM under otherwise identical
/// settings.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True if plan compilation and replay are enabled (the default).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Plan IR
// ---------------------------------------------------------------------------

/// Operand location, pre-resolved at compile time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// A scratch slot owned by the plan (`slots[i]`).
    Slot(u32),
    /// A parameter tensor in the [`ParamStore`], read at its current value.
    Param(u32),
    /// A caller-provided input slice (`x_norm`, `y_norm`, …).
    Input(u8),
    /// A constant snapshot baked into the plan (e.g. prototypes).
    Static(u32),
}

impl Loc {
    fn token(self) -> String {
        match self {
            Loc::Slot(i) => format!("s{i}"),
            Loc::Param(i) => format!("p{i}"),
            Loc::Input(i) => format!("i{i}"),
            Loc::Static(i) => format!("c{i}"),
        }
    }

    fn from_token(t: &str) -> Option<Loc> {
        let (kind, rest) = t.split_at(1);
        let idx: u32 = rest.parse().ok()?;
        match kind {
            "s" => Some(Loc::Slot(idx)),
            "p" => Some(Loc::Param(idx)),
            "i" => Some(Loc::Input(u8::try_from(idx).ok()?)),
            "c" => Some(Loc::Static(idx)),
            _ => None,
        }
    }
}

/// The flat opcode set: one variant per tensor kernel the training step uses.
///
/// `dims` semantics per opcode are documented on the VM dispatch
/// (`crate::vm`); they always describe the *kernel call*, e.g. GEMM opcodes
/// carry `[m, k, n]` in dispatch order, not the tape node's shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpCode {
    ZipAdd,
    ZipSub,
    ZipMul,
    ZipReluBwd,
    ZipGeluBwd,
    ZipAbsBwd,
    ZipSigmoidBwd,
    ZipTanhBwd,
    MapScale,
    MapAddScalar,
    MapRelu,
    MapGelu,
    MapSigmoid,
    MapTanh,
    MapAbs,
    GemmNn,
    GemmNt,
    GemmTn,
    BmmNn,
    BmmNt,
    BmmTn,
    BcastNt,
    BcastNtDa,
    BcastNtDx,
    RouteGather,
    RouteScatter,
    AddRowBcast,
    BiasGrad,
    Softmax,
    SoftmaxBwd,
    LayerNormFwd,
    LayerNormBwd,
    Transpose2,
    TransposeLast2,
    Swap01,
    ConcatLast,
    SliceCols,
    ScatterCols,
    MeanAll,
    SumAll,
    Fill,
    Copy,
    Axpy,
}

impl OpCode {
    /// Every opcode, in declaration order. Public so the verifier, the parity
    /// corpus and coverage tooling can enumerate the instruction set.
    pub const ALL: [OpCode; 43] = [
        OpCode::ZipAdd,
        OpCode::ZipSub,
        OpCode::ZipMul,
        OpCode::ZipReluBwd,
        OpCode::ZipGeluBwd,
        OpCode::ZipAbsBwd,
        OpCode::ZipSigmoidBwd,
        OpCode::ZipTanhBwd,
        OpCode::MapScale,
        OpCode::MapAddScalar,
        OpCode::MapRelu,
        OpCode::MapGelu,
        OpCode::MapSigmoid,
        OpCode::MapTanh,
        OpCode::MapAbs,
        OpCode::GemmNn,
        OpCode::GemmNt,
        OpCode::GemmTn,
        OpCode::BmmNn,
        OpCode::BmmNt,
        OpCode::BmmTn,
        OpCode::BcastNt,
        OpCode::BcastNtDa,
        OpCode::BcastNtDx,
        OpCode::RouteGather,
        OpCode::RouteScatter,
        OpCode::AddRowBcast,
        OpCode::BiasGrad,
        OpCode::Softmax,
        OpCode::SoftmaxBwd,
        OpCode::LayerNormFwd,
        OpCode::LayerNormBwd,
        OpCode::Transpose2,
        OpCode::TransposeLast2,
        OpCode::Swap01,
        OpCode::ConcatLast,
        OpCode::SliceCols,
        OpCode::ScatterCols,
        OpCode::MeanAll,
        OpCode::SumAll,
        OpCode::Fill,
        OpCode::Copy,
        OpCode::Axpy,
    ];

    /// Stable snake_case mnemonic used by the text serializer and
    /// diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            OpCode::ZipAdd => "zip_add",
            OpCode::ZipSub => "zip_sub",
            OpCode::ZipMul => "zip_mul",
            OpCode::ZipReluBwd => "zip_relu_bwd",
            OpCode::ZipGeluBwd => "zip_gelu_bwd",
            OpCode::ZipAbsBwd => "zip_abs_bwd",
            OpCode::ZipSigmoidBwd => "zip_sigmoid_bwd",
            OpCode::ZipTanhBwd => "zip_tanh_bwd",
            OpCode::MapScale => "map_scale",
            OpCode::MapAddScalar => "map_add_scalar",
            OpCode::MapRelu => "map_relu",
            OpCode::MapGelu => "map_gelu",
            OpCode::MapSigmoid => "map_sigmoid",
            OpCode::MapTanh => "map_tanh",
            OpCode::MapAbs => "map_abs",
            OpCode::GemmNn => "gemm_nn",
            OpCode::GemmNt => "gemm_nt",
            OpCode::GemmTn => "gemm_tn",
            OpCode::BmmNn => "bmm_nn",
            OpCode::BmmNt => "bmm_nt",
            OpCode::BmmTn => "bmm_tn",
            OpCode::BcastNt => "bcast_nt",
            OpCode::BcastNtDa => "bcast_nt_da",
            OpCode::BcastNtDx => "bcast_nt_dx",
            OpCode::RouteGather => "route_gather",
            OpCode::RouteScatter => "route_scatter",
            OpCode::AddRowBcast => "add_row_bcast",
            OpCode::BiasGrad => "bias_grad",
            OpCode::Softmax => "softmax",
            OpCode::SoftmaxBwd => "softmax_bwd",
            OpCode::LayerNormFwd => "layer_norm_fwd",
            OpCode::LayerNormBwd => "layer_norm_bwd",
            OpCode::Transpose2 => "transpose2",
            OpCode::TransposeLast2 => "transpose_last2",
            OpCode::Swap01 => "swap01",
            OpCode::ConcatLast => "concat_last",
            OpCode::SliceCols => "slice_cols",
            OpCode::ScatterCols => "scatter_cols",
            OpCode::MeanAll => "mean_all",
            OpCode::SumAll => "sum_all",
            OpCode::Fill => "fill",
            OpCode::Copy => "copy",
            OpCode::Axpy => "axpy",
        }
    }

    fn from_name(s: &str) -> Option<OpCode> {
        OpCode::ALL.iter().copied().find(|o| o.name() == s)
    }
}

/// One kernel call with pre-resolved operand locations.
#[derive(Clone, Debug)]
pub struct Instr {
    pub op: OpCode,
    /// Destination slot ids. Most opcodes have one; `LayerNormFwd` has
    /// `[y, cache]`, `LayerNormBwd` has `[dx, dgamma, dbeta]`, `BcastNtDa`
    /// has `[da, scratch]`. `Axpy` reads *and* writes its destination.
    pub dsts: Vec<u32>,
    pub args: Vec<Loc>,
    /// Kernel-call geometry (see `crate::vm` dispatch for the per-opcode
    /// meaning).
    pub dims: Vec<u32>,
    /// Immediate scalar (scale factor, fill value, axpy alpha, LN epsilon).
    pub imm: f32,
}

impl PartialEq for Instr {
    fn eq(&self, other: &Self) -> bool {
        // Bitwise on the immediate: plan verification must distinguish any
        // baked-in constant change, including NaN payloads and signed zero.
        self.op == other.op
            && self.dsts == other.dsts
            && self.args == other.args
            && self.dims == other.dims
            && self.imm.to_bits() == other.imm.to_bits()
    }
}

/// One parameter update: which slot holds the accumulated gradient for which
/// parameter, and the dims the optimizer sees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateSpec {
    pub param: u32,
    pub grad_slot: u32,
    pub dims: Vec<usize>,
}

/// A compiled execution plan: flat instruction stream plus everything the VM
/// needs to replay it — slot capacities, baked constants, expected input /
/// route / parameter geometry, and the update list (train plans) or output
/// location (forward plans).
#[derive(Clone, Debug)]
pub struct Plan {
    pub(crate) instrs: Vec<Instr>,
    pub(crate) slot_caps: Vec<usize>,
    pub(crate) statics: Vec<(Vec<usize>, Vec<f32>)>,
    pub(crate) inputs: Vec<Vec<usize>>,
    pub(crate) route_lens: Vec<usize>,
    pub(crate) params: Vec<Vec<usize>>,
    pub(crate) updates: Vec<UpdateSpec>,
    pub(crate) loss_slot: Option<u32>,
    pub(crate) output: Option<(u32, Vec<usize>)>,
}

impl PartialEq for Plan {
    fn eq(&self, other: &Self) -> bool {
        fn statics_eq(a: &[(Vec<usize>, Vec<f32>)], b: &[(Vec<usize>, Vec<f32>)]) -> bool {
            a.len() == b.len()
                && a.iter().zip(b).all(|((da, va), (db, vb))| {
                    da == db
                        && va.len() == vb.len()
                        && va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits())
                })
        }
        self.instrs == other.instrs
            && self.slot_caps == other.slot_caps
            && statics_eq(&self.statics, &other.statics)
            && self.inputs == other.inputs
            && self.route_lens == other.route_lens
            && self.params == other.params
            && self.updates == other.updates
            && self.loss_slot == other.loss_slot
            && self.output == other.output
    }
}

impl Plan {
    /// Number of instructions in the flat stream.
    pub fn n_instrs(&self) -> usize {
        self.instrs.len()
    }

    /// Number of scratch slots the plan allocates.
    pub fn n_slots(&self) -> usize {
        self.slot_caps.len()
    }

    /// The flat instruction stream, in execution order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Runs the static dataflow verifier over this plan (see
    /// [`verify::verify_plan`]). The compiler already verifies everything it
    /// emits; this entry point is for plans deserialized from text.
    pub fn verify(&self) -> Result<(), verify::VerifyError> {
        verify::verify_plan(self)
    }

    /// True for training plans (backward + updates), false for forward-only.
    pub fn is_train(&self) -> bool {
        self.loss_slot.is_some()
    }

    /// True if the caller-side geometry still matches what the plan was
    /// compiled against: input dims, route index counts and parameter dims.
    pub fn matches(&self, inputs: &[&Tensor], routes: &[&[u32]], store: &ParamStore) -> bool {
        inputs.len() == self.inputs.len()
            && inputs.iter().zip(&self.inputs).all(|(t, d)| t.dims() == &d[..])
            && routes.len() == self.route_lens.len()
            && routes.iter().zip(&self.route_lens).all(|(r, &l)| r.len() == l)
            && store.len() == self.params.len()
            && (0..store.len()).all(|i| store.tensor_at(i).dims() == &self.params[i][..])
    }

    /// Shape-only signature used to distinguish "shapes changed during
    /// warmup" (restart verification) from "same shapes, different constants"
    /// (a per-window-varying constant — give up).
    fn shape_signature(&self) -> (&[Vec<usize>], &[usize], &[Vec<usize>]) {
        (&self.inputs, &self.route_lens, &self.params)
    }

    /// Allocates the slot buffers for replay. Plain `Vec`s on purpose: slots
    /// are owned by the plan for its whole lifetime and never touch the
    /// tensor pool.
    pub(crate) fn alloc_slots(&self) -> Vec<Vec<f32>> {
        // focus-lint: allow(pool-bypass) -- slots live as long as the plan and are deliberately off the pool
        self.slot_caps.iter().map(|&c| vec![0.0f32; c]).collect()
    }
}

// ---------------------------------------------------------------------------
// Compile errors
// ---------------------------------------------------------------------------

/// Why a tape could not be lowered to a plan. All of these are soft
/// failures: [`PlanCache`] falls back to the interpreter for the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A trainable leaf on the tape is not registered in the [`ParamStore`].
    UntrackedParamLeaf(usize),
    /// A `RouteOneHot` op's index vector matches none of the caller-provided
    /// route sources.
    UnmatchedRoute,
    /// A scalar-valued node received a non-constant gradient, so the
    /// `MeanAll`/`SumAll` fill value cannot be folded at compile time.
    NonConstScalarGrad,
    /// The loss node is not scalar.
    NonScalarLoss,
    /// More caller inputs than the `Input(u8)` encoding supports.
    TooManyInputs,
    /// The loss/output node did not lower to a slot-resident value.
    BadOutput,
    /// The compiled plan failed the static dataflow verifier — a compiler
    /// bug, not a property of the tape. See [`verify::verify_plan`].
    Rejected(verify::VerifyError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UntrackedParamLeaf(i) => {
                write!(f, "trainable leaf at node {i} is not in the parameter store")
            }
            CompileError::UnmatchedRoute => {
                write!(f, "route indices match no caller-provided route source")
            }
            CompileError::NonConstScalarGrad => {
                write!(f, "scalar node received a non-constant gradient")
            }
            CompileError::NonScalarLoss => write!(f, "loss node is not scalar"),
            CompileError::TooManyInputs => write!(f, "more than 255 plan inputs"),
            CompileError::BadOutput => {
                write!(f, "loss/output node did not lower to a slot value")
            }
            CompileError::Rejected(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

// ---------------------------------------------------------------------------
// Emitter: tape -> virtual-register instruction stream
// ---------------------------------------------------------------------------

/// Operand location before slot allocation: virtual register or external.
#[derive(Clone, Copy, Debug)]
enum VLoc {
    V(u32),
    Param(u32),
    Input(u8),
    Static(u32),
}

/// Gradient representation during the symbolic backward pass.
///
/// Scalar-valued nodes (the loss chain) keep their gradient as a compile-time
/// `f32` constant folded with the interpreter's exact arithmetic; everything
/// else lives in a virtual register.
#[derive(Clone, Copy, Debug)]
enum GradRepr {
    Const(f32),
    V(u32),
}

struct VInstr {
    op: OpCode,
    outs: Vec<u32>,
    ins: Vec<VLoc>,
    dims: Vec<u32>,
    imm: f32,
}

struct Emitter<'a> {
    g: &'a Graph,
    inputs: &'a [&'a Tensor],
    routes: &'a [&'a [u32]],
    /// node id -> param index, from the registration order of `ParamVars`.
    param_of: BTreeMap<usize, u32>,
    statics: Vec<(Vec<usize>, Vec<f32>)>,
    vnumel: Vec<usize>,
    instrs: Vec<VInstr>,
    node_loc: Vec<Option<VLoc>>,
    grad: Vec<Option<GradRepr>>,
    /// LayerNorm node id -> (mean, rstd) cache vreg from the forward pass.
    ln_cache: BTreeMap<usize, u32>,
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

impl<'a> Emitter<'a> {
    fn new(
        g: &'a Graph,
        pv: &ParamVars,
        inputs: &'a [&'a Tensor],
        routes: &'a [&'a [u32]],
    ) -> Emitter<'a> {
        let mut param_of = BTreeMap::new();
        for (pi, var) in pv.raw().iter().enumerate() {
            param_of.insert(var.0, pi as u32);
        }
        Emitter {
            g,
            inputs,
            routes,
            param_of,
            statics: Vec::new(),
            vnumel: Vec::new(),
            instrs: Vec::new(),
            node_loc: vec![None; g.nodes.len()],
            grad: vec![None; g.nodes.len()],
            ln_cache: BTreeMap::new(),
        }
    }

    fn fresh(&mut self, numel: usize) -> u32 {
        self.vnumel.push(numel);
        (self.vnumel.len() - 1) as u32
    }

    fn emit(&mut self, op: OpCode, outs: Vec<u32>, ins: Vec<VLoc>, dims: Vec<u32>, imm: f32) {
        self.instrs.push(VInstr { op, outs, ins, dims, imm });
    }

    fn loc(&self, v: Var) -> VLoc {
        self.node_loc[v.0].expect("plan emitter: operand node not yet lowered")
    }

    fn rg(&self, v: Var) -> bool {
        self.g.nodes[v.0].requires_grad
    }

    fn numel(&self, v: Var) -> usize {
        self.g.nodes[v.0].value.numel()
    }

    fn dims_of(&self, v: Var) -> &'a [usize] {
        // `self.g` outlives the emitter, so the borrow is 'a, not tied to
        // &self — the backward arms hold these across &mut self calls.
        self.g.nodes[v.0].value.dims()
    }

    /// Classifies a non-trainable leaf: caller input (by bitwise data match)
    /// or baked static (deduplicated by bits).
    fn classify_const(&mut self, value: &Tensor) -> VLoc {
        for (j, inp) in self.inputs.iter().enumerate() {
            if bits_eq(value.data(), inp.data()) {
                return VLoc::Input(j as u8);
            }
        }
        for (ci, (_, data)) in self.statics.iter().enumerate() {
            if bits_eq(value.data(), data) {
                return VLoc::Static(ci as u32);
            }
        }
        self.statics.push((value.dims().to_vec(), value.data().to_vec()));
        VLoc::Static((self.statics.len() - 1) as u32)
    }

    /// Materializes a node's gradient into a virtual register (emitting a
    /// `Fill` if it is currently a folded constant).
    fn grad_vreg(&mut self, i: usize) -> u32 {
        match self.grad[i].expect("plan emitter: gradient requested but absent") {
            GradRepr::V(r) => r,
            GradRepr::Const(c) => {
                let n = self.g.nodes[i].value.numel();
                let r = self.fresh(n);
                self.emit(OpCode::Fill, vec![r], vec![], vec![n as u32], c);
                self.grad[i] = Some(GradRepr::V(r));
                r
            }
        }
    }

    /// Mirror of the interpreter's fused `accum_scaled`: propagate `alpha ×
    /// grad(gi)` into `v`'s gradient with the exact same `f32` operations —
    /// clone/scale on first contribution, `axpy(alpha)` thereafter — folding
    /// through compile-time constants when the gradient is scalar.
    fn accum_scaled(&mut self, v: Var, alpha: f32, gi: usize) {
        if !self.rg(v) {
            return;
        }
        let gnumel = self.g.nodes[gi].value.numel();
        let gl = gnumel as u32;
        match self.grad[gi].expect("accum_scaled without a source gradient") {
            GradRepr::Const(c) => match self.grad[v.0] {
                None => {
                    // focus-lint: allow(float-hygiene) -- mirrors the interpreter's exact alpha==1.0 fast path; parity is bitwise
                    let folded = if alpha == 1.0 { c } else { c * alpha };
                    self.grad[v.0] = Some(GradRepr::Const(folded));
                }
                Some(GradRepr::Const(e)) => {
                    self.grad[v.0] = Some(GradRepr::Const(e + alpha * c));
                }
                Some(GradRepr::V(acc)) => {
                    let gr = self.grad_vreg(gi);
                    self.emit(OpCode::Axpy, vec![acc], vec![VLoc::V(gr)], vec![gl], alpha);
                }
            },
            GradRepr::V(gr) => match self.grad[v.0] {
                None => {
                    let r = self.fresh(gnumel);
                    // focus-lint: allow(float-hygiene) -- mirrors the interpreter's exact alpha==1.0 fast path; parity is bitwise
                    if alpha == 1.0 {
                        self.emit(OpCode::Copy, vec![r], vec![VLoc::V(gr)], vec![gl], 0.0);
                    } else {
                        self.emit(OpCode::MapScale, vec![r], vec![VLoc::V(gr)], vec![gl], alpha);
                    }
                    self.grad[v.0] = Some(GradRepr::V(r));
                }
                Some(GradRepr::V(acc)) => {
                    self.emit(OpCode::Axpy, vec![acc], vec![VLoc::V(gr)], vec![gl], alpha);
                }
                Some(GradRepr::Const(e)) => {
                    let acc = self.fresh(gnumel);
                    self.emit(OpCode::Fill, vec![acc], vec![], vec![gl], e);
                    self.grad[v.0] = Some(GradRepr::V(acc));
                    self.emit(OpCode::Axpy, vec![acc], vec![VLoc::V(gr)], vec![gl], alpha);
                }
            },
        }
    }

    /// Mirror of the interpreter's `accum` with a freshly computed
    /// contribution: first contribution takes ownership (register alias, no
    /// copy — exactly like the interpreter moving the tensor into the grad
    /// slot), later ones `axpy(1.0)` on top.
    fn accum_own(&mut self, v: Var, r: u32, numel: usize) {
        let nl = numel as u32;
        match self.grad[v.0] {
            None => self.grad[v.0] = Some(GradRepr::V(r)),
            Some(GradRepr::V(acc)) => {
                self.emit(OpCode::Axpy, vec![acc], vec![VLoc::V(r)], vec![nl], 1.0);
            }
            Some(GradRepr::Const(e)) => {
                let acc = self.fresh(numel);
                self.emit(OpCode::Fill, vec![acc], vec![], vec![nl], e);
                self.grad[v.0] = Some(GradRepr::V(acc));
                self.emit(OpCode::Axpy, vec![acc], vec![VLoc::V(r)], vec![nl], 1.0);
            }
        }
    }

    /// Lowers the forward tape: one instruction per kernel, `Reshape` as a
    /// pure location alias, leaves classified as params / inputs / statics.
    fn forward_pass(&mut self) -> Result<(), CompileError> {
        let g = self.g;
        for i in 0..g.nodes.len() {
            let node = &g.nodes[i];
            let vd = node.value.dims();
            let nl = node.value.numel();
            let out = match &node.op {
                Op::Leaf => {
                    if node.requires_grad {
                        match self.param_of.get(&i) {
                            Some(&pi) => VLoc::Param(pi),
                            None => return Err(CompileError::UntrackedParamLeaf(i)),
                        }
                    } else {
                        self.classify_const(&node.value)
                    }
                }
                Op::Add(a, b) => self.zip(OpCode::ZipAdd, *a, *b, nl),
                Op::Sub(a, b) => self.zip(OpCode::ZipSub, *a, *b, nl),
                Op::Mul(a, b) => self.zip(OpCode::ZipMul, *a, *b, nl),
                Op::Neg(a) => self.map(OpCode::MapScale, *a, nl, -1.0),
                Op::Scale(a, c) => self.map(OpCode::MapScale, *a, nl, *c),
                Op::AddScalar(a, c) => self.map(OpCode::MapAddScalar, *a, nl, *c),
                Op::Relu(a) => self.map(OpCode::MapRelu, *a, nl, 0.0),
                Op::Gelu(a) => self.map(OpCode::MapGelu, *a, nl, 0.0),
                Op::Sigmoid(a) => self.map(OpCode::MapSigmoid, *a, nl, 0.0),
                Op::Tanh(a) => self.map(OpCode::MapTanh, *a, nl, 0.0),
                Op::Abs(a) => self.map(OpCode::MapAbs, *a, nl, 0.0),
                Op::Matmul(a, b) => {
                    let (m, k) = (self.dims_of(*a)[0], self.dims_of(*a)[1]);
                    let n = self.dims_of(*b)[1];
                    let (la, lb) = (self.loc(*a), self.loc(*b));
                    let r = self.fresh(m * n);
                    self.emit(
                        OpCode::GemmNn,
                        vec![r],
                        vec![la, lb],
                        vec![m as u32, k as u32, n as u32],
                        0.0,
                    );
                    VLoc::V(r)
                }
                Op::Bmm(a, b) => {
                    let ad = self.dims_of(*a);
                    let n = self.dims_of(*b)[2];
                    let (bt, m, k) = (ad[0], ad[1], ad[2]);
                    let (la, lb) = (self.loc(*a), self.loc(*b));
                    let r = self.fresh(bt * m * n);
                    self.emit(
                        OpCode::BmmNn,
                        vec![r],
                        vec![la, lb],
                        vec![bt as u32, m as u32, k as u32, n as u32],
                        0.0,
                    );
                    VLoc::V(r)
                }
                Op::BmmNt(a, b) => {
                    let ad = self.dims_of(*a);
                    let n = self.dims_of(*b)[1];
                    let (bt, m, k) = (ad[0], ad[1], ad[2]);
                    let (la, lb) = (self.loc(*a), self.loc(*b));
                    let r = self.fresh(bt * m * n);
                    self.emit(
                        OpCode::BmmNt,
                        vec![r],
                        vec![la, lb],
                        vec![bt as u32, m as u32, k as u32, n as u32],
                        0.0,
                    );
                    VLoc::V(r)
                }
                Op::RouteOneHot { head, indices } => {
                    let src = self
                        .routes
                        .iter()
                        .position(|r| *r == &indices[..])
                        .ok_or(CompileError::UnmatchedRoute)? as u32;
                    let hd = self.dims_of(*head);
                    let (b, k, d) = (hd[0], hd[1], hd[2]);
                    let l = vd[1];
                    let lh = self.loc(*head);
                    let r = self.fresh(b * l * d);
                    self.emit(
                        OpCode::RouteGather,
                        vec![r],
                        vec![lh],
                        vec![src, b as u32, k as u32, d as u32, l as u32],
                        0.0,
                    );
                    VLoc::V(r)
                }
                Op::MatmulBroadcastNt(a, x) => {
                    let ad = self.dims_of(*a);
                    let xd = self.dims_of(*x);
                    let (k, d) = (ad[0], ad[1]);
                    let (bsz, l) = (xd[0], xd[1]);
                    let (la, lx) = (self.loc(*a), self.loc(*x));
                    let r = self.fresh(bsz * k * l);
                    self.emit(
                        OpCode::BcastNt,
                        vec![r],
                        vec![la, lx],
                        vec![bsz as u32, k as u32, d as u32, l as u32],
                        0.0,
                    );
                    VLoc::V(r)
                }
                Op::Transpose2(a) => {
                    let ad = self.dims_of(*a);
                    let la = self.loc(*a);
                    let r = self.fresh(nl);
                    self.emit(
                        OpCode::Transpose2,
                        vec![r],
                        vec![la],
                        vec![ad[0] as u32, ad[1] as u32],
                        0.0,
                    );
                    VLoc::V(r)
                }
                Op::TransposeLast2(a) => {
                    let ad = self.dims_of(*a);
                    let la = self.loc(*a);
                    let r = self.fresh(nl);
                    self.emit(
                        OpCode::TransposeLast2,
                        vec![r],
                        vec![la],
                        vec![ad[0] as u32, ad[1] as u32, ad[2] as u32],
                        0.0,
                    );
                    VLoc::V(r)
                }
                Op::SwapAxes01(a) => {
                    let ad = self.dims_of(*a);
                    let la = self.loc(*a);
                    let r = self.fresh(nl);
                    self.emit(
                        OpCode::Swap01,
                        vec![r],
                        vec![la],
                        vec![ad[0] as u32, ad[1] as u32, ad[2] as u32],
                        0.0,
                    );
                    VLoc::V(r)
                }
                Op::Reshape(a) => self.loc(*a),
                Op::AddRowBroadcast(x, bias) => {
                    let n = self.numel(*bias);
                    let rows = nl / n;
                    let (lx, lb) = (self.loc(*x), self.loc(*bias));
                    let r = self.fresh(nl);
                    self.emit(
                        OpCode::AddRowBcast,
                        vec![r],
                        vec![lx, lb],
                        vec![rows as u32, n as u32],
                        0.0,
                    );
                    VLoc::V(r)
                }
                Op::SoftmaxLast(a) => {
                    let n = *self.dims_of(*a).last().expect("tensor dims are never empty");
                    let rows = nl / n;
                    let la = self.loc(*a);
                    let r = self.fresh(nl);
                    self.emit(
                        OpCode::Softmax,
                        vec![r],
                        vec![la],
                        vec![rows as u32, n as u32],
                        0.0,
                    );
                    VLoc::V(r)
                }
                Op::LayerNormLast { x, gamma, beta, eps, .. } => {
                    let n = *self.dims_of(*x).last().expect("tensor dims are never empty");
                    let rows = nl / n;
                    let (lx, lg, lb) = (self.loc(*x), self.loc(*gamma), self.loc(*beta));
                    let y = self.fresh(nl);
                    let cache = self.fresh(rows * 2);
                    let eps = *eps;
                    self.emit(
                        OpCode::LayerNormFwd,
                        vec![y, cache],
                        vec![lx, lg, lb],
                        vec![rows as u32, n as u32],
                        eps,
                    );
                    self.ln_cache.insert(i, cache);
                    VLoc::V(y)
                }
                Op::ConcatLast(a, b, split) => {
                    let na = *split;
                    let nb = *self.dims_of(*b).last().expect("tensor dims are never empty");
                    let rows = self.numel(*a) / na;
                    let (la, lb) = (self.loc(*a), self.loc(*b));
                    let r = self.fresh(nl);
                    self.emit(
                        OpCode::ConcatLast,
                        vec![r],
                        vec![la, lb],
                        vec![rows as u32, na as u32, nb as u32],
                        0.0,
                    );
                    VLoc::V(r)
                }
                Op::SliceLast(a, start, end) => {
                    let n = *self.dims_of(*a).last().expect("tensor dims are never empty");
                    let rows = self.numel(*a) / n;
                    let (start, end) = (*start, *end);
                    let la = self.loc(*a);
                    let r = self.fresh(nl);
                    self.emit(
                        OpCode::SliceCols,
                        vec![r],
                        vec![la],
                        vec![rows as u32, n as u32, start as u32, end as u32],
                        0.0,
                    );
                    VLoc::V(r)
                }
                Op::MeanAll(a) => {
                    let n = self.numel(*a);
                    let la = self.loc(*a);
                    let r = self.fresh(1);
                    self.emit(OpCode::MeanAll, vec![r], vec![la], vec![n as u32], 0.0);
                    VLoc::V(r)
                }
                Op::SumAll(a) => {
                    let n = self.numel(*a);
                    let la = self.loc(*a);
                    let r = self.fresh(1);
                    self.emit(OpCode::SumAll, vec![r], vec![la], vec![n as u32], 0.0);
                    VLoc::V(r)
                }
            };
            self.node_loc[i] = Some(out);
        }
        Ok(())
    }

    fn zip(&mut self, op: OpCode, a: Var, b: Var, nl: usize) -> VLoc {
        let (la, lb) = (self.loc(a), self.loc(b));
        let r = self.fresh(nl);
        self.emit(op, vec![r], vec![la, lb], vec![nl as u32], 0.0);
        VLoc::V(r)
    }

    fn map(&mut self, op: OpCode, a: Var, nl: usize, imm: f32) -> VLoc {
        let la = self.loc(a);
        let r = self.fresh(nl);
        self.emit(op, vec![r], vec![la], vec![nl as u32], imm);
        VLoc::V(r)
    }

    /// Emits a fresh-register gradient contribution: `op(ins) -> r`, then
    /// folds `r` into `v`'s gradient.
    fn contrib(&mut self, v: Var, op: OpCode, ins: Vec<VLoc>, dims: Vec<u32>, numel: usize) {
        let r = self.fresh(numel);
        self.emit(op, vec![r], ins, dims, 0.0);
        self.accum_own(v, r, numel);
    }

    /// Symbolic mirror of the fused interpreter backward: identical kernels,
    /// operand order and accumulation order, so replay is bitwise-equal.
    fn backward_pass(&mut self, loss: Var) -> Result<(), CompileError> {
        let g = self.g;
        if g.nodes[loss.0].value.numel() != 1 {
            return Err(CompileError::NonScalarLoss);
        }
        self.grad[loss.0] = Some(GradRepr::Const(1.0));
        for i in (0..g.nodes.len()).rev() {
            if !g.nodes[i].requires_grad || self.grad[i].is_none() {
                continue;
            }
            let nl = g.nodes[i].value.numel();
            let vd = g.nodes[i].value.dims();
            match &g.nodes[i].op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    self.accum_scaled(a, 1.0, i);
                    self.accum_scaled(b, 1.0, i);
                }
                Op::Sub(a, b) => {
                    let (a, b) = (*a, *b);
                    self.accum_scaled(a, 1.0, i);
                    self.accum_scaled(b, -1.0, i);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let gr = self.grad_vreg(i);
                    let da = if self.rg(a) {
                        let lb = self.loc(b);
                        let r = self.fresh(nl);
                        self.emit(
                            OpCode::ZipMul,
                            vec![r],
                            vec![VLoc::V(gr), lb],
                            vec![nl as u32],
                            0.0,
                        );
                        Some(r)
                    } else {
                        None
                    };
                    let db = if self.rg(b) {
                        let la = self.loc(a);
                        let r = self.fresh(nl);
                        self.emit(
                            OpCode::ZipMul,
                            vec![r],
                            vec![VLoc::V(gr), la],
                            vec![nl as u32],
                            0.0,
                        );
                        Some(r)
                    } else {
                        None
                    };
                    if let Some(r) = da {
                        self.accum_own(a, r, nl);
                    }
                    if let Some(r) = db {
                        self.accum_own(b, r, nl);
                    }
                }
                Op::Neg(a) => self.accum_scaled(*a, -1.0, i),
                Op::Scale(a, c) => {
                    let (a, c) = (*a, *c);
                    self.accum_scaled(a, c, i);
                }
                Op::AddScalar(a, _) => self.accum_scaled(*a, 1.0, i),
                Op::Relu(a) => {
                    let a = *a;
                    if self.rg(a) {
                        let (la, gr) = (self.loc(a), self.grad_vreg(i));
                        self.contrib(a, OpCode::ZipReluBwd, vec![la, VLoc::V(gr)], vec![nl as u32], nl);
                    }
                }
                Op::Gelu(a) => {
                    let a = *a;
                    if self.rg(a) {
                        let (la, gr) = (self.loc(a), self.grad_vreg(i));
                        self.contrib(a, OpCode::ZipGeluBwd, vec![la, VLoc::V(gr)], vec![nl as u32], nl);
                    }
                }
                Op::Abs(a) => {
                    let a = *a;
                    if self.rg(a) {
                        let (la, gr) = (self.loc(a), self.grad_vreg(i));
                        self.contrib(a, OpCode::ZipAbsBwd, vec![la, VLoc::V(gr)], vec![nl as u32], nl);
                    }
                }
                Op::Sigmoid(a) => {
                    let a = *a;
                    if self.rg(a) {
                        // The rule reads the op's *output*, not its input.
                        let ly = self.node_loc[i].expect("forward pass locates every live node");
                        let gr = self.grad_vreg(i);
                        self.contrib(a, OpCode::ZipSigmoidBwd, vec![ly, VLoc::V(gr)], vec![nl as u32], nl);
                    }
                }
                Op::Tanh(a) => {
                    let a = *a;
                    if self.rg(a) {
                        let ly = self.node_loc[i].expect("forward pass locates every live node");
                        let gr = self.grad_vreg(i);
                        self.contrib(a, OpCode::ZipTanhBwd, vec![ly, VLoc::V(gr)], vec![nl as u32], nl);
                    }
                }
                Op::Matmul(a, b) => {
                    let (a, b) = (*a, *b);
                    let (m, k) = (self.dims_of(a)[0], self.dims_of(a)[1]);
                    let n = self.dims_of(b)[1];
                    let gr = self.grad_vreg(i);
                    let da = if self.rg(a) {
                        let lb = self.loc(b);
                        let r = self.fresh(m * k);
                        // da = g · bᵀ : dispatch (Nt, m, n, k).
                        self.emit(
                            OpCode::GemmNt,
                            vec![r],
                            vec![VLoc::V(gr), lb],
                            vec![m as u32, n as u32, k as u32],
                            0.0,
                        );
                        Some(r)
                    } else {
                        None
                    };
                    let db = if self.rg(b) {
                        let la = self.loc(a);
                        let r = self.fresh(k * n);
                        // db = aᵀ · g : dispatch (Tn, k, m, n).
                        self.emit(
                            OpCode::GemmTn,
                            vec![r],
                            vec![la, VLoc::V(gr)],
                            vec![k as u32, m as u32, n as u32],
                            0.0,
                        );
                        Some(r)
                    } else {
                        None
                    };
                    if let Some(r) = da {
                        self.accum_own(a, r, m * k);
                    }
                    if let Some(r) = db {
                        self.accum_own(b, r, k * n);
                    }
                }
                Op::Bmm(a, b) => {
                    let (a, b) = (*a, *b);
                    let ad = self.dims_of(a);
                    let (bt, m, k) = (ad[0], ad[1], ad[2]);
                    let n = self.dims_of(b)[2];
                    let gr = self.grad_vreg(i);
                    let da = if self.rg(a) {
                        let lb = self.loc(b);
                        let r = self.fresh(bt * m * k);
                        // da = g ·ᵇ bᵀ : dispatch (Nt, bt, m, n, k).
                        self.emit(
                            OpCode::BmmNt,
                            vec![r],
                            vec![VLoc::V(gr), lb],
                            vec![bt as u32, m as u32, n as u32, k as u32],
                            0.0,
                        );
                        Some(r)
                    } else {
                        None
                    };
                    let db = if self.rg(b) {
                        let la = self.loc(a);
                        let r = self.fresh(bt * k * n);
                        // db = aᵀ ·ᵇ g : dispatch (Tn, bt, k, m, n).
                        self.emit(
                            OpCode::BmmTn,
                            vec![r],
                            vec![la, VLoc::V(gr)],
                            vec![bt as u32, k as u32, m as u32, n as u32],
                            0.0,
                        );
                        Some(r)
                    } else {
                        None
                    };
                    if let Some(r) = da {
                        self.accum_own(a, r, bt * m * k);
                    }
                    if let Some(r) = db {
                        self.accum_own(b, r, bt * k * n);
                    }
                }
                Op::BmmNt(a, b) => {
                    let (a, b) = (*a, *b);
                    let ad = self.dims_of(a);
                    let (bt, m, k) = (ad[0], ad[1], ad[2]);
                    let n = self.dims_of(b)[1];
                    let gr = self.grad_vreg(i);
                    let da = if self.rg(a) {
                        let lb = self.loc(b);
                        let r = self.fresh(bt * m * k);
                        // da = g ·ᵇ b : dispatch (Nn, bt, m, n, k).
                        self.emit(
                            OpCode::BmmNn,
                            vec![r],
                            vec![VLoc::V(gr), lb],
                            vec![bt as u32, m as u32, n as u32, k as u32],
                            0.0,
                        );
                        Some(r)
                    } else {
                        None
                    };
                    let db = if self.rg(b) {
                        let la = self.loc(a);
                        let r = self.fresh(bt * n * k);
                        // db = gᵀ ·ᵇ a : dispatch (Tn, bt, n, m, k).
                        self.emit(
                            OpCode::BmmTn,
                            vec![r],
                            vec![VLoc::V(gr), la],
                            vec![bt as u32, n as u32, m as u32, k as u32],
                            0.0,
                        );
                        Some(r)
                    } else {
                        None
                    };
                    if let Some(r) = da {
                        self.accum_own(a, r, bt * m * k);
                    }
                    if let Some(r) = db {
                        self.accum_own(b, r, bt * n * k);
                    }
                }
                Op::RouteOneHot { head, indices } => {
                    let head = *head;
                    if self.rg(head) {
                        let src = self
                            .routes
                            .iter()
                            .position(|r| *r == &indices[..])
                            .ok_or(CompileError::UnmatchedRoute)? as u32;
                        let hd = self.dims_of(head);
                        let (b, k, d) = (hd[0], hd[1], hd[2]);
                        let l = vd[1];
                        let gr = self.grad_vreg(i);
                        self.contrib(
                            head,
                            OpCode::RouteScatter,
                            vec![VLoc::V(gr)],
                            vec![src, b as u32, l as u32, d as u32, k as u32],
                            b * k * d,
                        );
                    }
                }
                Op::MatmulBroadcastNt(a, x) => {
                    let (a, x) = (*a, *x);
                    let ad = self.dims_of(a);
                    let xd = self.dims_of(x);
                    let (k, d) = (ad[0], ad[1]);
                    let (bsz, l) = (xd[0], xd[1]);
                    let bdims = vec![bsz as u32, k as u32, l as u32, d as u32];
                    let gr = self.grad_vreg(i);
                    let da = if self.rg(a) {
                        let lx = self.loc(x);
                        let r = self.fresh(k * d);
                        let tmp = self.fresh(k * d);
                        self.emit(
                            OpCode::BcastNtDa,
                            vec![r, tmp],
                            vec![VLoc::V(gr), lx],
                            bdims.clone(),
                            0.0,
                        );
                        Some(r)
                    } else {
                        None
                    };
                    let dx = if self.rg(x) {
                        let la = self.loc(a);
                        let r = self.fresh(bsz * l * d);
                        self.emit(
                            OpCode::BcastNtDx,
                            vec![r],
                            vec![VLoc::V(gr), la],
                            bdims,
                            0.0,
                        );
                        Some(r)
                    } else {
                        None
                    };
                    if let Some(r) = da {
                        self.accum_own(a, r, k * d);
                    }
                    if let Some(r) = dx {
                        self.accum_own(x, r, bsz * l * d);
                    }
                }
                Op::Transpose2(a) => {
                    let a = *a;
                    if self.rg(a) {
                        let gr = self.grad_vreg(i);
                        self.contrib(
                            a,
                            OpCode::Transpose2,
                            vec![VLoc::V(gr)],
                            vec![vd[0] as u32, vd[1] as u32],
                            nl,
                        );
                    }
                }
                Op::TransposeLast2(a) => {
                    let a = *a;
                    if self.rg(a) {
                        let gr = self.grad_vreg(i);
                        self.contrib(
                            a,
                            OpCode::TransposeLast2,
                            vec![VLoc::V(gr)],
                            vec![vd[0] as u32, vd[1] as u32, vd[2] as u32],
                            nl,
                        );
                    }
                }
                Op::SwapAxes01(a) => {
                    let a = *a;
                    if self.rg(a) {
                        let gr = self.grad_vreg(i);
                        self.contrib(
                            a,
                            OpCode::Swap01,
                            vec![VLoc::V(gr)],
                            vec![vd[0] as u32, vd[1] as u32, vd[2] as u32],
                            nl,
                        );
                    }
                }
                // The interpreter's fused reshape rule is flat clone / flat
                // axpy — exactly `accum_scaled(·, 1.0)` at the slot level.
                Op::Reshape(a) => self.accum_scaled(*a, 1.0, i),
                Op::AddRowBroadcast(x, bias) => {
                    let (x, bias) = (*x, *bias);
                    self.accum_scaled(x, 1.0, i);
                    if self.rg(bias) {
                        let n = self.numel(bias);
                        let rows = nl / n;
                        let gr = self.grad_vreg(i);
                        self.contrib(
                            bias,
                            OpCode::BiasGrad,
                            vec![VLoc::V(gr)],
                            vec![rows as u32, n as u32],
                            n,
                        );
                    }
                }
                Op::SoftmaxLast(a) => {
                    let a = *a;
                    if self.rg(a) {
                        let n = *vd.last().expect("tensor dims are never empty");
                        let rows = nl / n;
                        let ly = self.node_loc[i].expect("forward pass locates every live node");
                        let gr = self.grad_vreg(i);
                        self.contrib(
                            a,
                            OpCode::SoftmaxBwd,
                            vec![ly, VLoc::V(gr)],
                            vec![rows as u32, n as u32],
                            nl,
                        );
                    }
                }
                Op::LayerNormLast { x, gamma, beta, .. } => {
                    let (x, gamma, beta) = (*x, *gamma, *beta);
                    if self.rg(x) || self.rg(gamma) || self.rg(beta) {
                        let n = *vd.last().expect("tensor dims are never empty");
                        let rows = nl / n;
                        let cache = self.ln_cache[&i];
                        let (lx, lg) = (self.loc(x), self.loc(gamma));
                        let gr = self.grad_vreg(i);
                        let dx = self.fresh(nl);
                        let dgamma = self.fresh(n);
                        let dbeta = self.fresh(n);
                        self.emit(
                            OpCode::LayerNormBwd,
                            vec![dx, dgamma, dbeta],
                            vec![lx, lg, VLoc::V(cache), VLoc::V(gr)],
                            vec![rows as u32, n as u32],
                            0.0,
                        );
                        if self.rg(x) {
                            self.accum_own(x, dx, nl);
                        }
                        if self.rg(gamma) {
                            self.accum_own(gamma, dgamma, n);
                        }
                        if self.rg(beta) {
                            self.accum_own(beta, dbeta, n);
                        }
                    }
                }
                Op::ConcatLast(a, b, split) => {
                    let (a, b, na) = (*a, *b, *split);
                    let nb = *self.dims_of(b).last().expect("tensor dims are never empty");
                    let rows = self.numel(a) / na;
                    let gr = self.grad_vreg(i);
                    let ga = if self.rg(a) {
                        let r = self.fresh(rows * na);
                        self.emit(
                            OpCode::SliceCols,
                            vec![r],
                            vec![VLoc::V(gr)],
                            vec![rows as u32, (na + nb) as u32, 0, na as u32],
                            0.0,
                        );
                        Some(r)
                    } else {
                        None
                    };
                    let gb = if self.rg(b) {
                        let r = self.fresh(rows * nb);
                        self.emit(
                            OpCode::SliceCols,
                            vec![r],
                            vec![VLoc::V(gr)],
                            vec![rows as u32, (na + nb) as u32, na as u32, (na + nb) as u32],
                            0.0,
                        );
                        Some(r)
                    } else {
                        None
                    };
                    if let Some(r) = ga {
                        self.accum_own(a, r, rows * na);
                    }
                    if let Some(r) = gb {
                        self.accum_own(b, r, rows * nb);
                    }
                }
                Op::SliceLast(a, start, end) => {
                    let (a, start, end) = (*a, *start, *end);
                    if self.rg(a) {
                        let n = *self.dims_of(a).last().expect("tensor dims are never empty");
                        let an = self.numel(a);
                        let rows = an / n;
                        let gr = self.grad_vreg(i);
                        self.contrib(
                            a,
                            OpCode::ScatterCols,
                            vec![VLoc::V(gr)],
                            vec![rows as u32, n as u32, start as u32, (end - start) as u32],
                            an,
                        );
                    }
                }
                Op::MeanAll(a) => {
                    let a = *a;
                    if self.rg(a) {
                        let GradRepr::Const(c) = self.grad[i].expect("scalar grad is seeded before the backward walk") else {
                            return Err(CompileError::NonConstScalarGrad);
                        };
                        let an = self.numel(a);
                        // Folded with the interpreter's exact arithmetic:
                        // `g.item() / n as f32`.
                        let imm = c / an as f32;
                        let r = self.fresh(an);
                        self.emit(OpCode::Fill, vec![r], vec![], vec![an as u32], imm);
                        self.accum_own(a, r, an);
                    }
                }
                Op::SumAll(a) => {
                    let a = *a;
                    if self.rg(a) {
                        let GradRepr::Const(c) = self.grad[i].expect("scalar grad is seeded before the backward walk") else {
                            return Err(CompileError::NonConstScalarGrad);
                        };
                        let an = self.numel(a);
                        let r = self.fresh(an);
                        self.emit(OpCode::Fill, vec![r], vec![], vec![an as u32], c);
                        self.accum_own(a, r, an);
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Dead-code elimination
// ---------------------------------------------------------------------------

/// Drops instructions whose results are not transitively needed by any
/// pinned sink (the loss, the update gradients, the output).
///
/// The forward emitter lowers *every* tape node, so a forward-only plan for a
/// mid-tape output — or any tape with computed-but-unconsumed values — would
/// otherwise carry dead kernels. Dead results are never read, so dropping
/// them cannot change any live value: replay stays bitwise-equal to the
/// interpreter while doing strictly less work. This sweep is also what makes
/// the verifier's dead-instruction check an invariant of compiled plans
/// rather than a heuristic.
///
/// Accumulator vregs are written by several instructions (`Fill`/`Copy` then
/// `Axpy`s); a vreg marked needed keeps all of its writers, which is exactly
/// right for read-modify-write accumulation.
fn eliminate_dead(vinstrs: Vec<VInstr>, nv: usize, pinned: &[u32]) -> Vec<VInstr> {
    let mut needed = vec![false; nv];
    for &p in pinned {
        needed[p as usize] = true;
    }
    let mut live = vec![false; vinstrs.len()];
    for (ii, vi) in vinstrs.iter().enumerate().rev() {
        if vi.outs.iter().any(|&o| needed[o as usize]) {
            live[ii] = true;
            for l in &vi.ins {
                if let VLoc::V(r) = *l {
                    needed[r as usize] = true;
                }
            }
        }
    }
    let mut keep = live.into_iter();
    let mut vinstrs = vinstrs;
    vinstrs.retain(|_| keep.next().expect("one liveness flag per instruction"));
    vinstrs
}

// ---------------------------------------------------------------------------
// Liveness + slot allocation
// ---------------------------------------------------------------------------

/// Linear-scan register allocation over pool-class-sized slots.
///
/// Classes are `numel.next_power_of_two()` element capacities with one free
/// list each. Destinations are assigned *before* an instruction's dying
/// operands are released, so a destination can never alias a same-instruction
/// argument. `pinned` vregs (parameter gradients, the loss, the output) are
/// never recycled.
///
/// Before returning, the assignment is checked against the virtual-register
/// live intervals it was derived from ([`verify::check_intervals`]): no two
/// vregs sharing a slot may have overlapping lifetimes. This is the one
/// lifetime property the plan-level verifier cannot reconstruct, because at
/// the slot level reads always attach to the most recent definition.
/// Allocation result: the lowered instructions, per-slot capacities, and the
/// vreg → slot map.
type Allocation = (Vec<Instr>, Vec<usize>, Vec<u32>);

fn allocate(
    vinstrs: &[VInstr],
    vnumel: &[usize],
    pinned: &[u32],
) -> Result<Allocation, verify::VerifyError> {
    let nv = vnumel.len();
    let mut last = vec![0usize; nv];
    for (ii, vi) in vinstrs.iter().enumerate() {
        for &o in &vi.outs {
            last[o as usize] = ii;
        }
        for l in &vi.ins {
            if let VLoc::V(r) = *l {
                last[r as usize] = ii;
            }
        }
    }
    for &p in pinned {
        last[p as usize] = usize::MAX;
    }

    let class = |numel: usize| numel.next_power_of_two().max(1);
    let mut slot_of = vec![u32::MAX; nv];
    let mut caps: Vec<usize> = Vec::new();
    let mut free: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
    let mut instrs = Vec::with_capacity(vinstrs.len());
    for (ii, vi) in vinstrs.iter().enumerate() {
        for &o in &vi.outs {
            let oi = o as usize;
            if slot_of[oi] == u32::MAX {
                let cap = class(vnumel[oi]);
                let s = free.get_mut(&cap).and_then(|v| v.pop()).unwrap_or_else(|| {
                    caps.push(cap);
                    (caps.len() - 1) as u32
                });
                slot_of[oi] = s;
            }
        }
        instrs.push(Instr {
            op: vi.op,
            dsts: vi.outs.iter().map(|&o| slot_of[o as usize]).collect(),
            args: vi
                .ins
                .iter()
                .map(|l| match *l {
                    VLoc::V(r) => Loc::Slot(slot_of[r as usize]),
                    VLoc::Param(p) => Loc::Param(p),
                    VLoc::Input(j) => Loc::Input(j),
                    VLoc::Static(s) => Loc::Static(s),
                })
                .collect(),
            dims: vi.dims.clone(),
            imm: vi.imm,
        });
        let mut dying: Vec<u32> = Vec::new();
        for l in &vi.ins {
            if let VLoc::V(r) = *l {
                if last[r as usize] == ii {
                    dying.push(r);
                }
            }
        }
        for &o in &vi.outs {
            if last[o as usize] == ii {
                dying.push(o);
            }
        }
        dying.sort_unstable();
        dying.dedup();
        for r in dying {
            free.entry(class(vnumel[r as usize])).or_default().push(slot_of[r as usize]);
        }
    }

    let mut first_def = vec![None; nv];
    for (ii, vi) in vinstrs.iter().enumerate() {
        for &o in &vi.outs {
            let oi = o as usize;
            if first_def[oi].is_none() {
                first_def[oi] = Some(ii);
            }
        }
    }
    verify::check_intervals(&slot_of, &first_def, &last)?;
    Ok((instrs, caps, slot_of))
}

// ---------------------------------------------------------------------------
// Compile entry points
// ---------------------------------------------------------------------------

fn compile(
    g: &Graph,
    pv: &ParamVars,
    store: &ParamStore,
    inputs: &[&Tensor],
    routes: &[&[u32]],
    loss: Option<Var>,
    output: Option<Var>,
) -> Result<Plan, CompileError> {
    focus_trace::span!("plan/compile");
    if inputs.len() > u8::MAX as usize + 1 {
        return Err(CompileError::TooManyInputs);
    }
    let mut em = Emitter::new(g, pv, inputs, routes);
    em.forward_pass()?;

    let mut pinned: Vec<u32> = Vec::new();
    let mut update_vregs: Vec<(u32, u32)> = Vec::new();
    let mut loss_vreg = None;
    let mut output_vreg = None;

    if let Some(loss) = loss {
        em.backward_pass(loss)?;
        for pi in 0..store.len() {
            let var = pv.raw()[pi];
            match em.grad[var.0] {
                None => {}
                Some(GradRepr::V(r)) => update_vregs.push((pi as u32, r)),
                Some(GradRepr::Const(c)) => {
                    let n = store.tensor_at(pi).numel();
                    let r = em.fresh(n);
                    em.emit(OpCode::Fill, vec![r], vec![], vec![n as u32], c);
                    update_vregs.push((pi as u32, r));
                }
            }
        }
        let VLoc::V(lv) = em.loc(loss) else {
            return Err(CompileError::BadOutput);
        };
        loss_vreg = Some(lv);
        pinned.push(lv);
        pinned.extend(update_vregs.iter().map(|&(_, r)| r));
    }
    if let Some(out) = output {
        let VLoc::V(ov) = em.loc(out) else {
            return Err(CompileError::BadOutput);
        };
        output_vreg = Some((ov, g.nodes[out.0].value.dims().to_vec()));
        pinned.push(ov);
    }

    let reject = |e: verify::VerifyError| {
        focus_trace::counter_add("plan/verify_rejects", 1);
        CompileError::Rejected(e)
    };
    let nv = em.vnumel.len();
    let vinstrs = eliminate_dead(std::mem::take(&mut em.instrs), nv, &pinned);
    let (instrs, slot_caps, slot_of) =
        allocate(&vinstrs, &em.vnumel, &pinned).map_err(reject)?;
    let plan = Plan {
        instrs,
        slot_caps,
        statics: em.statics,
        inputs: inputs.iter().map(|t| t.dims().to_vec()).collect(),
        route_lens: routes.iter().map(|r| r.len()).collect(),
        params: (0..store.len()).map(|i| store.tensor_at(i).dims().to_vec()).collect(),
        updates: update_vregs
            .into_iter()
            .map(|(pi, r)| UpdateSpec {
                param: pi,
                grad_slot: slot_of[r as usize],
                dims: store.tensor_at(pi as usize).dims().to_vec(),
            })
            .collect(),
        loss_slot: loss_vreg.map(|v| slot_of[v as usize]),
        output: output_vreg.map(|(v, dims)| (slot_of[v as usize], dims)),
    };
    // Static verification gates every compile: a plan that cannot be proven
    // safe never reaches the cache, and the cost stays inside this
    // `plan/compile` span — replay never pays it.
    verify::verify_plan(&plan).map_err(reject)?;
    focus_trace::counter_set("plan/instrs", plan.instrs.len() as u64);
    focus_trace::counter_set("plan/slots", plan.slot_caps.len() as u64);
    Ok(plan)
}

/// Compiles a recorded training step (forward + backward + updates) into a
/// plan.
///
/// Must be called on a tape recorded with the fused kernels enabled
/// ([`crate::set_fused`]); the emitted backward mirrors the fused rules.
pub fn compile_train(
    g: &Graph,
    loss: Var,
    pv: &ParamVars,
    store: &ParamStore,
    inputs: &[&Tensor],
    routes: &[&[u32]],
) -> Result<Plan, CompileError> {
    compile(g, pv, store, inputs, routes, Some(loss), None)
}

/// Compiles a recorded forward pass into an inference-only plan producing
/// the value of `output`.
pub fn compile_forward(
    g: &Graph,
    output: Var,
    pv: &ParamVars,
    store: &ParamStore,
    inputs: &[&Tensor],
    routes: &[&[u32]],
) -> Result<Plan, CompileError> {
    compile(g, pv, store, inputs, routes, None, Some(output))
}

// ---------------------------------------------------------------------------
// Serialization: "focus-plan v1" line-oriented text format
// ---------------------------------------------------------------------------

const MAGIC: &str = "focus-plan v1";

/// Parse failure for the plan text format. `line` is 1-based.
#[derive(Debug)]
pub struct PlanFormatError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for PlanFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan format error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for PlanFormatError {}

fn perr(line: usize, msg: impl Into<String>) -> PlanFormatError {
    PlanFormatError { line, msg: msg.into() }
}

fn write_dims(s: &mut String, dims: &[usize]) {
    let _ = write!(s, " {}", dims.len());
    for d in dims {
        let _ = write!(s, " {d}");
    }
}

impl Plan {
    /// Serializes the plan to the versioned `focus-plan v1` text format.
    ///
    /// Floats (instruction immediates, baked statics) are written as `f32`
    /// bit patterns in hex, so [`Plan::from_text`] round-trips bitwise.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{MAGIC}");
        let _ = writeln!(s, "mode {}", if self.is_train() { "train" } else { "forward" });
        let _ = writeln!(s, "slots {}", self.slot_caps.len());
        for cap in &self.slot_caps {
            let _ = writeln!(s, "slot {cap}");
        }
        let _ = writeln!(s, "statics {}", self.statics.len());
        for (dims, data) in &self.statics {
            let mut line = String::from("static");
            write_dims(&mut line, dims);
            line.push_str(" :");
            for v in data {
                let _ = write!(line, " {:08x}", v.to_bits());
            }
            let _ = writeln!(s, "{line}");
        }
        let _ = writeln!(s, "inputs {}", self.inputs.len());
        for dims in &self.inputs {
            let mut line = String::from("input");
            write_dims(&mut line, dims);
            let _ = writeln!(s, "{line}");
        }
        let _ = writeln!(s, "routes {}", self.route_lens.len());
        for len in &self.route_lens {
            let _ = writeln!(s, "route {len}");
        }
        let _ = writeln!(s, "params {}", self.params.len());
        for dims in &self.params {
            let mut line = String::from("param");
            write_dims(&mut line, dims);
            let _ = writeln!(s, "{line}");
        }
        let _ = writeln!(s, "instrs {}", self.instrs.len());
        for ins in &self.instrs {
            let mut line = format!("i {} d {}", ins.op.name(), ins.dsts.len());
            for d in &ins.dsts {
                let _ = write!(line, " {d}");
            }
            let _ = write!(line, " a {}", ins.args.len());
            for a in &ins.args {
                let _ = write!(line, " {}", a.token());
            }
            let _ = write!(line, " m {}", ins.dims.len());
            for d in &ins.dims {
                let _ = write!(line, " {d}");
            }
            let _ = write!(line, " imm {:08x}", ins.imm.to_bits());
            let _ = writeln!(s, "{line}");
        }
        let _ = writeln!(s, "updates {}", self.updates.len());
        for u in &self.updates {
            let mut line = format!("u {} {}", u.param, u.grad_slot);
            write_dims(&mut line, &u.dims);
            let _ = writeln!(s, "{line}");
        }
        if let Some(slot) = self.loss_slot {
            let _ = writeln!(s, "loss {slot}");
        }
        if let Some((slot, dims)) = &self.output {
            let mut line = format!("output {slot}");
            write_dims(&mut line, dims);
            let _ = writeln!(s, "{line}");
        }
        let _ = writeln!(s, "end");
        s
    }

    /// Parses the `focus-plan v1` text format written by [`Plan::to_text`].
    pub fn from_text(text: &str) -> Result<Plan, PlanFormatError> {
        let mut p = Parser { lines: text.lines().enumerate(), cur: 0 };
        p.expect_line(MAGIC)?;
        let (ln, toks) = p.next_tokens()?;
        let mode_train = match toks.as_slice() {
            ["mode", "train"] => true,
            ["mode", "forward"] => false,
            _ => return Err(perr(ln, "expected `mode train|forward`")),
        };
        let n_slots = p.counted_header("slots")?;
        let mut slot_caps = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let (ln, toks) = p.next_tokens()?;
            match toks.as_slice() {
                ["slot", cap] => slot_caps.push(parse_num(ln, cap)?),
                _ => return Err(perr(ln, "expected `slot <cap>`")),
            }
        }
        let n_statics = p.counted_header("statics")?;
        let mut statics = Vec::with_capacity(n_statics);
        for _ in 0..n_statics {
            let (ln, toks) = p.next_tokens()?;
            if toks.first() != Some(&"static") {
                return Err(perr(ln, "expected `static ...`"));
            }
            let mut it = toks[1..].iter();
            let dims = parse_dims(ln, &mut it)?;
            if it.next() != Some(&":") {
                return Err(perr(ln, "expected `:` before static data"));
            }
            let mut data = Vec::new();
            for tok in it {
                let bits = u32::from_str_radix(tok, 16)
                    .map_err(|_| perr(ln, format!("bad f32 bits `{tok}`")))?;
                data.push(f32::from_bits(bits));
            }
            if data.len() != dims.iter().product::<usize>() {
                return Err(perr(ln, "static data length does not match dims"));
            }
            statics.push((dims, data));
        }
        let n_inputs = p.counted_header("inputs")?;
        let mut inputs = Vec::with_capacity(n_inputs);
        for _ in 0..n_inputs {
            inputs.push(p.dims_line("input")?);
        }
        let n_routes = p.counted_header("routes")?;
        let mut route_lens = Vec::with_capacity(n_routes);
        for _ in 0..n_routes {
            let (ln, toks) = p.next_tokens()?;
            match toks.as_slice() {
                ["route", len] => route_lens.push(parse_num(ln, len)?),
                _ => return Err(perr(ln, "expected `route <len>`")),
            }
        }
        let n_params = p.counted_header("params")?;
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            params.push(p.dims_line("param")?);
        }
        let n_instrs = p.counted_header("instrs")?;
        let mut instrs = Vec::with_capacity(n_instrs);
        for _ in 0..n_instrs {
            let (ln, toks) = p.next_tokens()?;
            if toks.first() != Some(&"i") {
                return Err(perr(ln, "expected `i <op> ...`"));
            }
            let mut it = toks[1..].iter();
            let opname = it.next().ok_or_else(|| perr(ln, "missing opcode"))?;
            let op = OpCode::from_name(opname)
                .ok_or_else(|| perr(ln, format!("unknown opcode `{opname}`")))?;
            let dsts = parse_tagged_u32s(ln, &mut it, "d")?;
            if it.next() != Some(&"a") {
                return Err(perr(ln, "expected `a <n>` arg section"));
            }
            let na: usize = {
                let t = it.next().ok_or_else(|| perr(ln, "missing arg count"))?;
                parse_num(ln, t)?
            };
            let mut args = Vec::with_capacity(na);
            for _ in 0..na {
                let t = it.next().ok_or_else(|| perr(ln, "missing arg token"))?;
                args.push(
                    Loc::from_token(t).ok_or_else(|| perr(ln, format!("bad loc `{t}`")))?,
                );
            }
            let dims = parse_tagged_u32s(ln, &mut it, "m")?;
            if it.next() != Some(&"imm") {
                return Err(perr(ln, "expected `imm <hex>`"));
            }
            let immtok = it.next().ok_or_else(|| perr(ln, "missing imm"))?;
            let imm = f32::from_bits(
                u32::from_str_radix(immtok, 16)
                    .map_err(|_| perr(ln, format!("bad imm bits `{immtok}`")))?,
            );
            instrs.push(Instr { op, dsts, args, dims, imm });
        }
        let n_updates = p.counted_header("updates")?;
        let mut updates = Vec::with_capacity(n_updates);
        for _ in 0..n_updates {
            let (ln, toks) = p.next_tokens()?;
            if toks.first() != Some(&"u") || toks.len() < 3 {
                return Err(perr(ln, "expected `u <param> <grad_slot> <dims>`"));
            }
            let param = parse_num(ln, toks[1])?;
            let grad_slot = parse_num(ln, toks[2])?;
            let mut it = toks[3..].iter();
            let dims = parse_dims(ln, &mut it)?;
            updates.push(UpdateSpec { param, grad_slot, dims });
        }
        let (mut loss_slot, mut output) = (None, None);
        if mode_train {
            let (ln, toks) = p.next_tokens()?;
            match toks.as_slice() {
                ["loss", slot] => loss_slot = Some(parse_num(ln, slot)?),
                _ => return Err(perr(ln, "expected `loss <slot>`")),
            }
        } else {
            let (ln, toks) = p.next_tokens()?;
            if toks.first() != Some(&"output") || toks.len() < 3 {
                return Err(perr(ln, "expected `output <slot> <dims>`"));
            }
            let slot = parse_num(ln, toks[1])?;
            let mut it = toks[2..].iter();
            output = Some((slot, parse_dims(ln, &mut it)?));
        }
        p.expect_line("end")?;
        Ok(Plan {
            instrs,
            slot_caps,
            statics,
            inputs,
            route_lens,
            params,
            updates,
            loss_slot,
            output,
        })
    }
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    /// Last line number handed out (1-based), so a truncated stream reports
    /// the position where input ran out instead of a meaningless line 0.
    cur: usize,
}

impl<'a> Parser<'a> {
    fn next_tokens(&mut self) -> Result<(usize, Vec<&'a str>), PlanFormatError> {
        match self.lines.next() {
            Some((idx, line)) => {
                self.cur = idx + 1;
                Ok((idx + 1, line.split_whitespace().collect()))
            }
            None => Err(perr(self.cur + 1, "unexpected end of plan text")),
        }
    }

    fn expect_line(&mut self, want: &str) -> Result<(), PlanFormatError> {
        let (ln, toks) = self.next_tokens()?;
        if toks.join(" ") != want {
            return Err(perr(ln, format!("expected `{want}`")));
        }
        Ok(())
    }

    fn counted_header(&mut self, key: &str) -> Result<usize, PlanFormatError> {
        let (ln, toks) = self.next_tokens()?;
        match toks.as_slice() {
            [k, n] if *k == key => parse_num(ln, n),
            _ => Err(perr(ln, format!("expected `{key} <n>`"))),
        }
    }

    fn dims_line(&mut self, key: &str) -> Result<Vec<usize>, PlanFormatError> {
        let (ln, toks) = self.next_tokens()?;
        if toks.first() != Some(&key) {
            return Err(perr(ln, format!("expected `{key} <dims>`")));
        }
        let mut it = toks[1..].iter();
        parse_dims(ln, &mut it)
    }
}

fn parse_num<T: std::str::FromStr>(ln: usize, tok: &str) -> Result<T, PlanFormatError> {
    tok.parse().map_err(|_| perr(ln, format!("bad number `{tok}`")))
}

fn parse_dims(
    ln: usize,
    it: &mut std::slice::Iter<'_, &str>,
) -> Result<Vec<usize>, PlanFormatError> {
    let n: usize = {
        let t = it.next().ok_or_else(|| perr(ln, "missing dim count"))?;
        parse_num(ln, t)?
    };
    let mut dims = Vec::with_capacity(n);
    for _ in 0..n {
        let t = it.next().ok_or_else(|| perr(ln, "missing dim"))?;
        dims.push(parse_num(ln, t)?);
    }
    Ok(dims)
}

fn parse_tagged_u32s(
    ln: usize,
    it: &mut std::slice::Iter<'_, &str>,
    tag: &str,
) -> Result<Vec<u32>, PlanFormatError> {
    if it.next() != Some(&tag) {
        return Err(perr(ln, format!("expected `{tag} <n>` section")));
    }
    let n: usize = {
        let t = it.next().ok_or_else(|| perr(ln, "missing count"))?;
        parse_num(ln, t)?
    };
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let t = it.next().ok_or_else(|| perr(ln, "missing value"))?;
        out.push(parse_num(ln, t)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// PlanCache: compile → verify → replay state machine
// ---------------------------------------------------------------------------

enum CacheState {
    /// No candidate yet; the next observed step compiles one.
    Cold,
    /// One candidate compiled; the next observed step compiles again and
    /// promotes only on a bitwise match.
    Verify(Box<Plan>),
    /// Verified plan with its slot buffers; replay until shapes change.
    Ready(Box<Plan>, Vec<Vec<f32>>),
    /// Compilation failed or verification caught a per-window-varying
    /// constant; interpret for the rest of the run (sticky).
    Off,
}

/// Drives plan compilation, two-step verification and steady-state replay
/// for one training (or evaluation) loop.
///
/// Usage per step: first try [`PlanCache::try_replay_train`]; on `None`, run
/// the interpreted step and hand the tape to [`PlanCache::observe_train`]
/// (likewise `*_forward` for inference loops). The cache only engages when
/// both the fused kernels ([`crate::set_fused`]) and plans
/// ([`set_enabled`]) are on.
pub struct PlanCache {
    state: CacheState,
    /// Why the cache went sticky-off, for reports and tests. `None` while
    /// the cache can still make progress.
    off_reason: Option<String>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    pub fn new() -> PlanCache {
        PlanCache { state: CacheState::Cold, off_reason: None }
    }

    /// True while the cache can still make progress (not sticky-off and the
    /// global gates are open). Callers skip route extraction and tape
    /// bookkeeping once this goes false.
    pub fn active(&self) -> bool {
        !matches!(self.state, CacheState::Off) && crate::fused_enabled() && enabled()
    }

    /// True once a verified plan is installed.
    pub fn is_ready(&self) -> bool {
        matches!(self.state, CacheState::Ready(..))
    }

    /// True if the cache gave up for this run.
    pub fn is_off(&self) -> bool {
        matches!(self.state, CacheState::Off)
    }

    /// Why the cache went sticky-off (compile error, verifier rejection, or
    /// a per-window-varying constant), if it did.
    pub fn off_reason(&self) -> Option<&str> {
        self.off_reason.as_deref()
    }

    /// State name for reports and tests.
    pub fn state_name(&self) -> &'static str {
        match self.state {
            CacheState::Cold => "cold",
            CacheState::Verify(_) => "verify",
            CacheState::Ready(..) => "ready",
            CacheState::Off => "off",
        }
    }

    /// The installed plan, if verified.
    pub fn plan(&self) -> Option<&Plan> {
        match &self.state {
            CacheState::Ready(plan, _) => Some(plan),
            _ => None,
        }
    }

    /// Replays one training step if a verified plan matches the current
    /// geometry. Returns the loss, or `None` if the caller must interpret
    /// this step (cache cold/off, gates closed, or shapes changed — the
    /// latter also resets the cache so a new plan can be compiled).
    pub fn try_replay_train<O: Optimizer>(
        &mut self,
        inputs: &[&Tensor],
        routes: &[&[u32]],
        store: &mut ParamStore,
        opt: &mut O,
    ) -> Option<f32> {
        if !self.active() {
            return None;
        }
        match &mut self.state {
            CacheState::Ready(plan, slots) => {
                if plan.matches(inputs, routes, store) {
                    let data: Vec<&[f32]> = inputs.iter().map(|t| t.data()).collect();
                    Some(vm::replay_train(plan, slots, &data, routes, store, opt))
                } else {
                    self.state = CacheState::Cold;
                    None
                }
            }
            _ => None,
        }
    }

    /// Replays one forward pass if a verified plan matches, returning the
    /// output tensor.
    pub fn try_replay_forward(
        &mut self,
        inputs: &[&Tensor],
        routes: &[&[u32]],
        store: &ParamStore,
    ) -> Option<Tensor> {
        if !self.active() {
            return None;
        }
        match &mut self.state {
            CacheState::Ready(plan, slots) => {
                if plan.matches(inputs, routes, store) {
                    let data: Vec<&[f32]> = inputs.iter().map(|t| t.data()).collect();
                    Some(vm::replay_forward(plan, slots, &data, routes, store))
                } else {
                    self.state = CacheState::Cold;
                    None
                }
            }
            _ => None,
        }
    }

    /// Feeds one interpreted training step's tape to the compiler and
    /// advances the verification state machine.
    pub fn observe_train(
        &mut self,
        g: &Graph,
        loss: Var,
        pv: &ParamVars,
        store: &ParamStore,
        inputs: &[&Tensor],
        routes: &[&[u32]],
    ) {
        if !self.active() {
            return;
        }
        match compile_train(g, loss, pv, store, inputs, routes) {
            Ok(cand) => self.advance(cand),
            Err(e) => self.go_off(e.to_string()),
        }
    }

    /// Feeds one interpreted forward pass's tape to the compiler and
    /// advances the verification state machine.
    pub fn observe_forward(
        &mut self,
        g: &Graph,
        output: Var,
        pv: &ParamVars,
        store: &ParamStore,
        inputs: &[&Tensor],
        routes: &[&[u32]],
    ) {
        if !self.active() {
            return;
        }
        match compile_forward(g, output, pv, store, inputs, routes) {
            Ok(cand) => self.advance(cand),
            Err(e) => self.go_off(e.to_string()),
        }
    }

    fn go_off(&mut self, reason: String) {
        self.state = CacheState::Off;
        self.off_reason = Some(reason);
    }

    fn advance(&mut self, cand: Plan) {
        self.state = match std::mem::replace(&mut self.state, CacheState::Off) {
            CacheState::Cold | CacheState::Ready(..) => CacheState::Verify(Box::new(cand)),
            CacheState::Verify(prev) => {
                if *prev == cand {
                    let slots = cand.alloc_slots();
                    CacheState::Ready(Box::new(cand), slots)
                } else if prev.shape_signature() != cand.shape_signature() {
                    // Shapes moved during warmup — restart verification on
                    // the new geometry.
                    CacheState::Verify(Box::new(cand))
                } else {
                    // Same shapes, different contents: some baked constant
                    // varies per window. Replaying would be wrong; give up.
                    self.off_reason =
                        Some("a baked constant varies per window with unchanged shapes".into());
                    CacheState::Off
                }
            }
            CacheState::Off => CacheState::Off,
        };
    }
}
