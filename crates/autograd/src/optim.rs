//! Parameter storage and optimizers.
//!
//! Parameters live outside the per-step [`Graph`] in a [`ParamStore`]. Each
//! training step registers them as trainable leaves, runs forward/backward,
//! then hands the collected gradients to an [`Optimizer`].
//!
//! The FOCUS paper optimises both the offline prototypes (§V) and the online
//! network with AdamW; [`Adam`] and [`Sgd`] are provided for the ablations
//! and for tests.

use crate::{Graph, Var};
use focus_tensor::{fused, Tensor};

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// A named collection of trainable tensors.
#[derive(Default)]
pub struct ParamStore {
    tensors: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, t: Tensor) -> ParamId {
        self.tensors.push(t);
        self.names.push(name.into());
        ParamId(self.tensors.len() - 1)
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True if the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar parameters, for the paper's `Param` metric.
    pub fn scalar_count(&self) -> u64 {
        self.tensors.iter().map(|t| t.numel() as u64).sum()
    }

    /// Read a parameter tensor.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access to a parameter tensor.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// The name a parameter was registered with.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Deep copy of all parameter tensors (for early-stopping snapshots).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.tensors.clone()
    }

    /// Restores a snapshot taken by [`ParamStore::snapshot`].
    ///
    /// # Panics
    /// If the snapshot's length or tensor shapes disagree with the store.
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        assert_eq!(
            snapshot.len(),
            self.tensors.len(),
            "snapshot holds {} tensors, store has {}",
            snapshot.len(),
            self.tensors.len()
        );
        for (dst, src) in self.tensors.iter_mut().zip(snapshot) {
            assert!(
                dst.shape().same_as(src.shape()),
                "snapshot shape {} != parameter shape {}",
                src.shape(),
                dst.shape()
            );
            dst.data_mut().copy_from_slice(src.data());
        }
    }

    /// Iterates over `(id, name, tensor)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.tensors
            .iter()
            .zip(&self.names)
            .enumerate()
            .map(|(i, (t, n))| (ParamId(i), n.as_str(), t))
    }

    /// Registers every parameter as a trainable leaf in `g`, in id order.
    ///
    /// The returned vector is indexed by `ParamId`, so
    /// `vars[id] == leaf-for-id`.
    pub fn register(&self, g: &mut Graph) -> ParamVars {
        let vars = self.tensors.iter().map(|t| g.leaf(t.clone())).collect();
        ParamVars { vars }
    }

    /// Applies one optimizer step from the gradients recorded in `g`.
    ///
    /// Parameters whose leaves received no gradient (unused in this step's
    /// forward pass) are left untouched.
    pub fn step<O: Optimizer>(&mut self, opt: &mut O, g: &Graph, vars: &ParamVars) {
        focus_trace::span!("autograd/optimizer");
        opt.begin_step(self.tensors.len());
        for (i, var) in vars.vars.iter().enumerate() {
            if let Some(grad) = g.grad(*var) {
                opt.update(i, &mut self.tensors[i], grad);
            }
        }
    }

    /// Parameter tensor by raw index, for the plan VM's update loop.
    pub(crate) fn tensor_at(&self, i: usize) -> &Tensor {
        &self.tensors[i]
    }

    /// Mutable parameter tensor by raw index, for the plan VM's update loop.
    pub(crate) fn tensor_mut_at(&mut self, i: usize) -> &mut Tensor {
        &mut self.tensors[i]
    }

    /// Global L2 norm of all gradients in `g` for this store's leaves.
    pub fn grad_norm(&self, g: &Graph, vars: &ParamVars) -> f32 {
        let mut ss = 0.0f64;
        for var in &vars.vars {
            if let Some(grad) = g.grad(*var) {
                ss += grad.data().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
            }
        }
        ss.sqrt() as f32
    }
}

/// The graph leaves for one registration of a [`ParamStore`].
pub struct ParamVars {
    vars: Vec<Var>,
}

impl ParamVars {
    /// The leaf for parameter `id`.
    pub fn var(&self, id: ParamId) -> Var {
        self.vars[id.0]
    }

    /// All leaves in id order, for the plan compiler's leaf classification.
    pub(crate) fn raw(&self) -> &[Var] {
        &self.vars
    }
}

/// A first-order optimizer updating one parameter tensor at a time.
pub trait Optimizer {
    /// Called once per [`ParamStore::step`] with the parameter count, so
    /// implementations can lazily size their state.
    fn begin_step(&mut self, n_params: usize);

    /// Updates parameter `idx` in place given its gradient.
    fn update(&mut self, idx: usize, param: &mut Tensor, grad: &Tensor);
}

/// Plain stochastic gradient descent: `θ ← θ − lr · ∇`.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn begin_step(&mut self, _n: usize) {}

    fn update(&mut self, _idx: usize, param: &mut Tensor, grad: &Tensor) {
        param.axpy(-self.lr, grad);
    }
}

/// Per-parameter first/second moment state shared by Adam and AdamW.
#[derive(Default)]
struct Moments {
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Moments {
    fn ensure(&mut self, n: usize) {
        // Lazily sized on first use; shapes are filled in per update.
        while self.m.len() < n {
            self.m.push(Tensor::zeros(&[0]));
            self.v.push(Tensor::zeros(&[0]));
        }
    }

    fn ensure_shape(&mut self, idx: usize, grad: &Tensor) {
        if self.m[idx].numel() != grad.numel() {
            self.m[idx] = Tensor::zeros(grad.dims());
            self.v[idx] = Tensor::zeros(grad.dims());
        }
    }

    /// One fused update: decoupled decay, moment updates, bias correction and
    /// the parameter write-back in a single pass over the buffers — no `dir`
    /// temporary. `weight_decay = 0` gives plain Adam. Bitwise-identical to
    /// [`Moments::direction`] + decay + axpy.
    #[allow(clippy::too_many_arguments)]
    fn fused_update(
        &mut self,
        idx: usize,
        param: &mut Tensor,
        grad: &Tensor,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    ) {
        self.ensure_shape(idx, grad);
        fused::adamw_step(
            param.data_mut(),
            grad.data(),
            self.m[idx].data_mut(),
            self.v[idx].data_mut(),
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            self.t,
        );
    }

    /// Returns the bias-corrected update direction `m̂ / (√v̂ + eps)` — the
    /// unfused reference path behind [`crate::set_fused`]`(false)`.
    fn direction(&mut self, idx: usize, grad: &Tensor, beta1: f32, beta2: f32, eps: f32) -> Tensor {
        self.ensure_shape(idx, grad);
        let m = &mut self.m[idx];
        for (mv, &gv) in m.data_mut().iter_mut().zip(grad.data()) {
            *mv = beta1 * *mv + (1.0 - beta1) * gv;
        }
        let v = &mut self.v[idx];
        for (vv, &gv) in v.data_mut().iter_mut().zip(grad.data()) {
            *vv = beta2 * *vv + (1.0 - beta2) * gv * gv;
        }
        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);
        let mut dir = Tensor::zeros(grad.dims());
        for ((d, mv), vv) in dir
            .data_mut()
            .iter_mut()
            .zip(self.m[idx].data())
            .zip(self.v[idx].data())
        {
            let mhat = mv / bc1;
            let vhat = vv / bc2;
            *d = mhat / (vhat.sqrt() + eps);
        }
        dir
    }
}

/// Adam (Kingma & Ba) with coupled L2 regularisation folded into the gradient.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    state: Moments,
    step_started: bool,
}

impl Adam {
    /// Adam with the conventional `(0.9, 0.999, 1e-8)` hyper-parameters.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            state: Moments::default(),
            step_started: false,
        }
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self, n: usize) {
        self.state.ensure(n);
        self.state.t += 1;
        self.step_started = true;
    }

    fn update(&mut self, idx: usize, param: &mut Tensor, grad: &Tensor) {
        debug_assert!(self.step_started, "begin_step must precede update");
        if crate::fused_enabled() {
            self.state
                .fused_update(idx, param, grad, self.lr, self.beta1, self.beta2, self.eps, 0.0);
            return;
        }
        let dir = self.state.direction(idx, grad, self.beta1, self.beta2, self.eps);
        param.axpy(-self.lr, &dir);
    }
}

/// AdamW (Loshchilov & Hutter): Adam with *decoupled* weight decay, the
/// optimizer used for both phases of FOCUS.
pub struct AdamW {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled weight-decay coefficient λ; applied as `θ ← θ(1 − lr·λ)`.
    pub weight_decay: f32,
    state: Moments,
    step_started: bool,
}

impl AdamW {
    /// AdamW with conventional moments and the given decay.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            state: Moments::default(),
            step_started: false,
        }
    }
}

impl Optimizer for AdamW {
    fn begin_step(&mut self, n: usize) {
        self.state.ensure(n);
        self.state.t += 1;
        self.step_started = true;
    }

    fn update(&mut self, idx: usize, param: &mut Tensor, grad: &Tensor) {
        debug_assert!(self.step_started, "begin_step must precede update");
        if crate::fused_enabled() {
            self.state.fused_update(
                idx,
                param,
                grad,
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                self.weight_decay,
            );
            return;
        }
        // Decoupled decay first (does not enter the moment estimates).
        if self.weight_decay > 0.0 {
            let shrink = 1.0 - self.lr * self.weight_decay;
            for p in param.data_mut() {
                *p *= shrink;
            }
        }
        let dir = self.state.direction(idx, grad, self.beta1, self.beta2, self.eps);
        param.axpy(-self.lr, &dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// Minimises L(w) = mean((w·x − y)²) and checks convergence.
    fn converges<O: Optimizer>(mut opt: O, steps: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(&[1, 2]));
        // Well-conditioned design matrix (near-orthogonal rows).
        let x = Tensor::from_vec(vec![1.0, 0.5, -0.3, -0.5, 1.0, 0.4], &[2, 3]);
        let target = Tensor::from_vec(vec![2.0, 1.0, -0.6], &[1, 3]); // exact w* = [2, 0]
        let mut last = f32::MAX;
        for _ in 0..steps {
            let mut g = Graph::new();
            let vars = store.register(&mut g);
            let xv = g.constant(x.clone());
            let tv = g.constant(target.clone());
            let pred = g.matmul(vars.var(w), xv);
            let loss = g.mse(pred, tv);
            g.backward(loss);
            store.step(&mut opt, &g, &vars);
            last = g.value(loss).item();
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_problem() {
        assert!(converges(Sgd::new(0.1), 300) < 1e-3);
    }

    #[test]
    fn adam_converges_on_linear_problem() {
        assert!(converges(Adam::new(0.05), 400) < 1e-3);
    }

    #[test]
    fn adamw_converges_on_linear_problem() {
        assert!(converges(AdamW::new(0.05, 1e-4), 400) < 1e-2);
    }

    #[test]
    fn adamw_decay_shrinks_unused_direction() {
        // With zero gradient signal, AdamW decay alone should shrink weights.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::ones(&[4]));
        let mut opt = AdamW::new(0.1, 0.5);
        for _ in 0..10 {
            let mut g = Graph::new();
            let vars = store.register(&mut g);
            let s = g.sum_all(vars.var(w));
            let zero = g.scale(s, 0.0);
            g.backward(zero);
            store.step(&mut opt, &g, &vars);
        }
        assert!(store.get(w).data()[0] < 0.7);
    }

    #[test]
    fn param_store_bookkeeping() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::zeros(&[2, 3]));
        let b = store.add("b", Tensor::zeros(&[5]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.scalar_count(), 11);
        assert_eq!(store.name(a), "a");
        assert_eq!(store.get(b).numel(), 5);
    }

    #[test]
    fn unused_params_are_untouched_by_step() {
        let mut store = ParamStore::new();
        let used = store.add("used", Tensor::ones(&[1]));
        let unused = store.add("unused", Tensor::ones(&[1]));
        let mut opt = Sgd::new(1.0);
        let mut g = Graph::new();
        let vars = store.register(&mut g);
        let loss = g.sum_all(vars.var(used));
        g.backward(loss);
        store.step(&mut opt, &g, &vars);
        assert_eq!(store.get(used).data()[0], 0.0);
        assert_eq!(store.get(unused).data()[0], 1.0);
    }
}
