//! Static dataflow verifier over the flat [`Plan`] IR.
//!
//! [`PlanCache`](crate::plan::PlanCache) proves "two compiles agree bitwise",
//! which catches per-window-varying constants but cannot catch a compiler bug
//! both copies share: a use-before-def slot, a stale read whose bytes happen
//! to be in bounds, a leaked buffer, a shape the allocator sized wrong. This
//! module closes that gap with a linear abstract interpretation of the
//! instruction stream that every plan must pass before it is trusted — at
//! compile time (so the cost lands under the `plan/compile` span, never on
//! the replay path) and for any plan deserialized from the `focus-plan v1`
//! text format.
//!
//! What each analysis proves:
//!
//! 1. **Def-before-use / single initialization.** Every slot read must see a
//!    value previously written by a full (defining) write; `Axpy` is the one
//!    read-modify-write opcode and *requires* an existing definition. A slot
//!    definition is the unique owner of the live value until it is overwritten.
//! 2. **Abstract shape interpretation.** Each instruction's operand and
//!    result element counts are re-derived from its `dims` using the exact
//!    per-opcode kernel geometry the VM dispatches with. A slot read must
//!    match the live value's element count bitwise-for-bitwise (no partial or
//!    oversized reads); external reads (params / inputs / statics) must match
//!    the recorded geometry tables; every write must agree with the
//!    allocator's recorded slot capacity (`numel.next_power_of_two()` — the
//!    pool-class invariant).
//! 3. **Slot lifetime.** At the virtual-register layer (inside
//!    [`check_intervals`], run during compilation where liveness is known),
//!    no two values assigned to one slot may have overlapping live intervals,
//!    and a freed slot can only be redefined strictly after its previous
//!    value's last use. At the plan layer, nothing may be read after its
//!    defining value was overwritten (the overwrite installs a new value, and
//!    the element-count equality pins reads to the value they were compiled
//!    against).
//! 4. **Dead / leaked results.** An instruction none of whose results are
//!    ever consumed — by a later instruction or by a plan sink (the loss
//!    scalar, the declared output, an update's gradient slot) — is reported
//!    through the `plan/verify_dead` trace counter and rejects the plan,
//!    positioned at the offending instruction. A slot that no instruction
//!    ever defines is a leak of the allocator itself and is likewise
//!    rejected.
//!
//! The verifier is deliberately pessimistic: anything it cannot prove safe is
//! an error, and every error carries the offending instruction index so a
//! corrupted plan names its own corruption site.

use std::fmt;

use crate::plan::{Instr, Loc, OpCode, Plan};

// ---------------------------------------------------------------------------
// Failpoint (tests only)
// ---------------------------------------------------------------------------

use std::sync::atomic::{AtomicBool, Ordering};

static FAIL_ALL: AtomicBool = AtomicBool::new(false);

/// Test-only failpoint: while enabled, [`verify_plan`] rejects every plan as
/// if the compiler had emitted an unverifiable stream. Lets integration tests
/// prove that verifier rejection trips the cache's sticky Off fallback
/// without having to corrupt a real compile in-process.
pub fn set_fail_all(on: bool) {
    FAIL_ALL.store(on, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Error type
// ---------------------------------------------------------------------------

/// Classification of a verification failure (stable across message edits, so
/// tests assert on the kind and humans read the message).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// A slot was read before any instruction defined it (`Axpy` on an
    /// undefined accumulator counts: it is a read).
    UseBeforeDef,
    /// A slot / param / input / static / route index is outside the plan's
    /// recorded tables.
    OutOfRange,
    /// Wrong number of destinations, arguments or dims for the opcode.
    Arity,
    /// A derived operand or result element count disagrees with the live
    /// value, an external's recorded dims, or the dims themselves are
    /// degenerate (zero-sized or overflowing).
    ShapeMismatch,
    /// A written value's pool class does not equal the allocator's recorded
    /// slot capacity — the slot is hosting a value it was never sized for.
    CapMismatch,
    /// An instruction's argument aliases one of its destinations (the VM
    /// `mem::take`s destinations, so such a read would see an empty buffer).
    Aliasing,
    /// An instruction's results are never consumed and the stream overwrites
    /// them — pure wasted work that the emitter should never produce.
    DeadInstr,
    /// An instruction's results are never consumed and survive to plan exit
    /// without being a declared sink.
    LeakedValue,
    /// A slot in the capacity table that no instruction ever defines.
    UnwrittenSlot,
    /// The loss / output / update sink declarations are inconsistent with
    /// the instruction stream (missing value, wrong size, duplicate slots).
    BadSink,
    /// Two virtual registers with overlapping live intervals were assigned
    /// the same slot (compile-time check; see [`check_intervals`]).
    OverlappingLiveRange,
    /// The [`set_fail_all`] test failpoint is enabled.
    Injected,
}

/// A verification failure: the offending instruction index (when one exists
/// — table-level failures like an unwritten slot have none), a stable kind,
/// and a human-readable diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Index into the plan's instruction stream, when the failure is
    /// attributable to one instruction.
    pub instr: Option<usize>,
    pub kind: VerifyErrorKind,
    pub msg: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.instr {
            Some(i) => write!(f, "plan verify: instr {i}: {}", self.msg),
            None => write!(f, "plan verify: {}", self.msg),
        }
    }
}

impl std::error::Error for VerifyError {}

fn verr(instr: Option<usize>, kind: VerifyErrorKind, msg: impl Into<String>) -> VerifyError {
    VerifyError { instr, kind, msg: msg.into() }
}

// ---------------------------------------------------------------------------
// Per-opcode kernel geometry
// ---------------------------------------------------------------------------

/// The abstract effect of one instruction: how many elements each argument
/// reads and each destination writes, whether the first destination is
/// read-modify-write, and which route source (with its expected index count)
/// the kernel consumes. Mirrors the VM dispatch geometry exactly.
struct Effects {
    arg_n: Vec<usize>,
    dst_n: Vec<usize>,
    rmw: bool,
    route: Option<(usize, usize)>,
}

/// Overflow-checked product of kernel dims (a corrupted plan must produce a
/// diagnostic, not a wrapped multiply).
fn prod(ii: usize, ds: &[u32]) -> Result<usize, VerifyError> {
    let mut n = 1usize;
    for &d in ds {
        n = n
            .checked_mul(d as usize)
            .ok_or_else(|| verr(Some(ii), VerifyErrorKind::ShapeMismatch, "dims product overflows"))?;
    }
    Ok(n)
}

fn arity(
    ii: usize,
    instr: &Instr,
    dsts: usize,
    args: usize,
    dims: usize,
) -> Result<(), VerifyError> {
    if instr.dsts.len() != dsts || instr.args.len() != args || instr.dims.len() != dims {
        return Err(verr(
            Some(ii),
            VerifyErrorKind::Arity,
            format!(
                "{} expects {dsts} dsts / {args} args / {dims} dims, got {} / {} / {}",
                instr.op.name(),
                instr.dsts.len(),
                instr.args.len(),
                instr.dims.len()
            ),
        ));
    }
    Ok(())
}

/// Derives the kernel-call geometry for one instruction, checking operand
/// arity and dims validity. The arm order and formulas mirror
/// `crate::vm::exec_instr` one-for-one; a divergence here is a divergence in
/// what the VM would actually touch.
fn effects(ii: usize, instr: &Instr) -> Result<Effects, VerifyError> {
    let d = &instr.dims;
    let du = |i: usize| d[i] as usize;
    let eff = match instr.op {
        OpCode::ZipAdd
        | OpCode::ZipSub
        | OpCode::ZipMul
        | OpCode::ZipReluBwd
        | OpCode::ZipGeluBwd
        | OpCode::ZipAbsBwd
        | OpCode::ZipSigmoidBwd
        | OpCode::ZipTanhBwd => {
            arity(ii, instr, 1, 2, 1)?;
            let n = du(0);
            Effects { arg_n: vec![n, n], dst_n: vec![n], rmw: false, route: None }
        }
        OpCode::MapScale
        | OpCode::MapAddScalar
        | OpCode::MapRelu
        | OpCode::MapGelu
        | OpCode::MapSigmoid
        | OpCode::MapTanh
        | OpCode::MapAbs
        | OpCode::Copy => {
            arity(ii, instr, 1, 1, 1)?;
            let n = du(0);
            Effects { arg_n: vec![n], dst_n: vec![n], rmw: false, route: None }
        }
        OpCode::Axpy => {
            arity(ii, instr, 1, 1, 1)?;
            let n = du(0);
            Effects { arg_n: vec![n], dst_n: vec![n], rmw: true, route: None }
        }
        OpCode::Fill => {
            arity(ii, instr, 1, 0, 1)?;
            Effects { arg_n: vec![], dst_n: vec![du(0)], rmw: false, route: None }
        }
        OpCode::GemmNn | OpCode::GemmNt | OpCode::GemmTn => {
            arity(ii, instr, 1, 2, 3)?;
            let (m, k, n) = (d[0], d[1], d[2]);
            let (an, bn) = match instr.op {
                OpCode::GemmNn => (prod(ii, &[m, k])?, prod(ii, &[k, n])?),
                OpCode::GemmNt => (prod(ii, &[m, k])?, prod(ii, &[n, k])?),
                _ => (prod(ii, &[k, m])?, prod(ii, &[k, n])?),
            };
            Effects { arg_n: vec![an, bn], dst_n: vec![prod(ii, &[m, n])?], rmw: false, route: None }
        }
        OpCode::BmmNn | OpCode::BmmNt | OpCode::BmmTn => {
            arity(ii, instr, 1, 2, 4)?;
            let (bt, m, k, n) = (d[0], d[1], d[2], d[3]);
            let (an, bn) = match instr.op {
                OpCode::BmmNn => (prod(ii, &[bt, m, k])?, prod(ii, &[bt, k, n])?),
                OpCode::BmmNt => (prod(ii, &[bt, m, k])?, prod(ii, &[bt, n, k])?),
                _ => (prod(ii, &[bt, k, m])?, prod(ii, &[bt, k, n])?),
            };
            Effects {
                arg_n: vec![an, bn],
                dst_n: vec![prod(ii, &[bt, m, n])?],
                rmw: false,
                route: None,
            }
        }
        OpCode::BcastNt => {
            arity(ii, instr, 1, 2, 4)?;
            let (bsz, k, dd, l) = (d[0], d[1], d[2], d[3]);
            Effects {
                arg_n: vec![prod(ii, &[k, dd])?, prod(ii, &[bsz, l, dd])?],
                dst_n: vec![prod(ii, &[bsz, k, l])?],
                rmw: false,
                route: None,
            }
        }
        OpCode::BcastNtDa => {
            arity(ii, instr, 2, 2, 4)?;
            let (bsz, k, l, dd) = (d[0], d[1], d[2], d[3]);
            let kd = prod(ii, &[k, dd])?;
            Effects {
                arg_n: vec![prod(ii, &[bsz, k, l])?, prod(ii, &[bsz, l, dd])?],
                dst_n: vec![kd, kd],
                rmw: false,
                route: None,
            }
        }
        OpCode::BcastNtDx => {
            arity(ii, instr, 1, 2, 4)?;
            let (bsz, k, l, dd) = (d[0], d[1], d[2], d[3]);
            Effects {
                arg_n: vec![prod(ii, &[bsz, k, l])?, prod(ii, &[k, dd])?],
                dst_n: vec![prod(ii, &[bsz, l, dd])?],
                rmw: false,
                route: None,
            }
        }
        OpCode::RouteGather => {
            arity(ii, instr, 1, 1, 5)?;
            let (src, b, k, dd, l) = (du(0), d[1], d[2], d[3], d[4]);
            Effects {
                arg_n: vec![prod(ii, &[b, k, dd])?],
                dst_n: vec![prod(ii, &[b, l, dd])?],
                rmw: false,
                route: Some((src, prod(ii, &[b, l])?)),
            }
        }
        OpCode::RouteScatter => {
            arity(ii, instr, 1, 1, 5)?;
            let (src, b, l, dd, k) = (du(0), d[1], d[2], d[3], d[4]);
            Effects {
                arg_n: vec![prod(ii, &[b, l, dd])?],
                dst_n: vec![prod(ii, &[b, k, dd])?],
                rmw: false,
                route: Some((src, prod(ii, &[b, l])?)),
            }
        }
        OpCode::AddRowBcast => {
            arity(ii, instr, 1, 2, 2)?;
            let (rows, n) = (d[0], d[1]);
            let rn = prod(ii, &[rows, n])?;
            Effects { arg_n: vec![rn, n as usize], dst_n: vec![rn], rmw: false, route: None }
        }
        OpCode::BiasGrad => {
            arity(ii, instr, 1, 1, 2)?;
            let (rows, n) = (d[0], d[1]);
            Effects {
                arg_n: vec![prod(ii, &[rows, n])?],
                dst_n: vec![n as usize],
                rmw: false,
                route: None,
            }
        }
        OpCode::Softmax => {
            arity(ii, instr, 1, 1, 2)?;
            let rn = prod(ii, &[d[0], d[1]])?;
            Effects { arg_n: vec![rn], dst_n: vec![rn], rmw: false, route: None }
        }
        OpCode::SoftmaxBwd => {
            arity(ii, instr, 1, 2, 2)?;
            let rn = prod(ii, &[d[0], d[1]])?;
            Effects { arg_n: vec![rn, rn], dst_n: vec![rn], rmw: false, route: None }
        }
        OpCode::LayerNormFwd => {
            arity(ii, instr, 2, 3, 2)?;
            let (rows, n) = (d[0], d[1]);
            let rn = prod(ii, &[rows, n])?;
            Effects {
                arg_n: vec![rn, n as usize, n as usize],
                dst_n: vec![rn, prod(ii, &[rows, 2])?],
                rmw: false,
                route: None,
            }
        }
        OpCode::LayerNormBwd => {
            arity(ii, instr, 3, 4, 2)?;
            let (rows, n) = (d[0], d[1]);
            let rn = prod(ii, &[rows, n])?;
            Effects {
                arg_n: vec![rn, n as usize, prod(ii, &[rows, 2])?, rn],
                dst_n: vec![rn, n as usize, n as usize],
                rmw: false,
                route: None,
            }
        }
        OpCode::Transpose2 => {
            arity(ii, instr, 1, 1, 2)?;
            let mn = prod(ii, &[d[0], d[1]])?;
            Effects { arg_n: vec![mn], dst_n: vec![mn], rmw: false, route: None }
        }
        OpCode::TransposeLast2 | OpCode::Swap01 => {
            arity(ii, instr, 1, 1, 3)?;
            let n = prod(ii, &[d[0], d[1], d[2]])?;
            Effects { arg_n: vec![n], dst_n: vec![n], rmw: false, route: None }
        }
        OpCode::ConcatLast => {
            arity(ii, instr, 1, 2, 3)?;
            let (rows, na, nb) = (d[0], d[1], d[2]);
            let total = (na as usize)
                .checked_add(nb as usize)
                .and_then(|w| w.checked_mul(rows as usize))
                .ok_or_else(|| {
                    verr(Some(ii), VerifyErrorKind::ShapeMismatch, "dims product overflows")
                })?;
            Effects {
                arg_n: vec![prod(ii, &[rows, na])?, prod(ii, &[rows, nb])?],
                dst_n: vec![total],
                rmw: false,
                route: None,
            }
        }
        OpCode::SliceCols => {
            arity(ii, instr, 1, 1, 4)?;
            let (rows, n, from, to) = (d[0], d[1], d[2], d[3]);
            if from > to || to > n {
                return Err(verr(
                    Some(ii),
                    VerifyErrorKind::ShapeMismatch,
                    format!("slice_cols range {from}..{to} out of 0..{n}"),
                ));
            }
            Effects {
                arg_n: vec![prod(ii, &[rows, n])?],
                dst_n: vec![prod(ii, &[rows, to - from])?],
                rmw: false,
                route: None,
            }
        }
        OpCode::ScatterCols => {
            arity(ii, instr, 1, 1, 4)?;
            let (rows, n, start, w) = (d[0], d[1], d[2], d[3]);
            if start.checked_add(w).is_none_or(|end| end > n) {
                return Err(verr(
                    Some(ii),
                    VerifyErrorKind::ShapeMismatch,
                    format!("scatter_cols window {start}+{w} out of 0..{n}"),
                ));
            }
            Effects {
                arg_n: vec![prod(ii, &[rows, w])?],
                dst_n: vec![prod(ii, &[rows, n])?],
                rmw: false,
                route: None,
            }
        }
        OpCode::MeanAll | OpCode::SumAll => {
            arity(ii, instr, 1, 1, 1)?;
            Effects { arg_n: vec![du(0)], dst_n: vec![1], rmw: false, route: None }
        }
    };
    for (&n, what) in eff.arg_n.iter().zip(std::iter::repeat("argument")).chain(
        eff.dst_n.iter().zip(std::iter::repeat("result")),
    ) {
        if n == 0 {
            return Err(verr(
                Some(ii),
                VerifyErrorKind::ShapeMismatch,
                format!("{} {what} is zero-sized", instr.op.name()),
            ));
        }
    }
    Ok(eff)
}

// ---------------------------------------------------------------------------
// Plan-level dataflow walk
// ---------------------------------------------------------------------------

/// The live value held by a slot during the abstract walk.
#[derive(Clone, Copy)]
struct Value {
    numel: usize,
    def_instr: usize,
}

/// Pool-class capacity for a value: the allocator's sizing rule.
fn class(numel: usize) -> usize {
    numel.next_power_of_two().max(1)
}

fn dims_numel(dims: &[usize]) -> Option<usize> {
    dims.iter().try_fold(1usize, |n, &d| n.checked_mul(d))
}

/// Verifies a plan with the static dataflow analysis described in the module
/// docs. On success the plan is safe for the VM to replay: every read sees a
/// defined value of exactly the size the kernel will touch, every write fits
/// its slot, the declared sinks exist, and no instruction is wasted work.
///
/// Emits the `plan/verify_dead` trace counter (number of dead instructions
/// found, normally 0) and runs under a `plan/verify` span; callers invoke it
/// from `plan/compile`, keeping the cost off the replay path.
pub fn verify_plan(plan: &Plan) -> Result<(), VerifyError> {
    focus_trace::span!("plan/verify");
    if FAIL_ALL.load(Ordering::SeqCst) {
        return Err(verr(None, VerifyErrorKind::Injected, "verification failpoint enabled"));
    }

    let n_slots = plan.slot_caps.len();
    for (s, &cap) in plan.slot_caps.iter().enumerate() {
        if cap == 0 || !cap.is_power_of_two() {
            return Err(verr(
                None,
                VerifyErrorKind::CapMismatch,
                format!("slot {s} capacity {cap} is not a pool class (power of two)"),
            ));
        }
    }
    for (ci, (dims, data)) in plan.statics.iter().enumerate() {
        if dims_numel(dims) != Some(data.len()) {
            return Err(verr(
                None,
                VerifyErrorKind::ShapeMismatch,
                format!("static {ci} data length {} does not match its dims", data.len()),
            ));
        }
    }

    let mut slot_val: Vec<Option<Value>> = vec![None; n_slots];
    let mut ever_written = vec![false; n_slots];
    let mut instr_used = vec![false; plan.instrs.len()];

    for (ii, instr) in plan.instrs.iter().enumerate() {
        let eff = effects(ii, instr)?;

        // No argument may alias a destination: the VM `mem::take`s every
        // destination buffer before resolving arguments, so an aliased read
        // would see an empty slice. Destinations must also be distinct.
        for (di, &ds) in instr.dsts.iter().enumerate() {
            if instr.dsts[..di].contains(&ds) {
                return Err(verr(
                    Some(ii),
                    VerifyErrorKind::Aliasing,
                    format!("{} writes slot {ds} twice", instr.op.name()),
                ));
            }
            if instr.args.contains(&Loc::Slot(ds)) {
                return Err(verr(
                    Some(ii),
                    VerifyErrorKind::Aliasing,
                    format!("{} reads slot {ds} it is also writing", instr.op.name()),
                ));
            }
        }

        // Route geometry against the recorded route table.
        if let Some((src, want)) = eff.route {
            let got = *plan.route_lens.get(src).ok_or_else(|| {
                verr(
                    Some(ii),
                    VerifyErrorKind::OutOfRange,
                    format!("{} route source {src} out of range", instr.op.name()),
                )
            })?;
            if got != want {
                return Err(verr(
                    Some(ii),
                    VerifyErrorKind::ShapeMismatch,
                    format!(
                        "{} needs {want} route indices from source {src}, table records {got}",
                        instr.op.name()
                    ),
                ));
            }
        }

        // Argument reads: defined, in range, and exactly the size the kernel
        // will slice.
        for (ai, (&loc, &need)) in instr.args.iter().zip(&eff.arg_n).enumerate() {
            let have = match loc {
                Loc::Slot(s) => {
                    let si = s as usize;
                    if si >= n_slots {
                        return Err(verr(
                            Some(ii),
                            VerifyErrorKind::OutOfRange,
                            format!("{} arg {ai} slot {s} out of range", instr.op.name()),
                        ));
                    }
                    let val = slot_val[si].ok_or_else(|| {
                        verr(
                            Some(ii),
                            VerifyErrorKind::UseBeforeDef,
                            format!("{} arg {ai} reads slot {s} before any write", instr.op.name()),
                        )
                    })?;
                    instr_used[val.def_instr] = true;
                    val.numel
                }
                Loc::Param(p) => {
                    let dims = plan.params.get(p as usize).ok_or_else(|| {
                        verr(
                            Some(ii),
                            VerifyErrorKind::OutOfRange,
                            format!("{} arg {ai} param {p} out of range", instr.op.name()),
                        )
                    })?;
                    dims_numel(dims).unwrap_or(0)
                }
                Loc::Input(j) => {
                    let dims = plan.inputs.get(j as usize).ok_or_else(|| {
                        verr(
                            Some(ii),
                            VerifyErrorKind::OutOfRange,
                            format!("{} arg {ai} input {j} out of range", instr.op.name()),
                        )
                    })?;
                    dims_numel(dims).unwrap_or(0)
                }
                Loc::Static(c) => {
                    let (_, data) = plan.statics.get(c as usize).ok_or_else(|| {
                        verr(
                            Some(ii),
                            VerifyErrorKind::OutOfRange,
                            format!("{} arg {ai} static {c} out of range", instr.op.name()),
                        )
                    })?;
                    data.len()
                }
            };
            if have != need {
                return Err(verr(
                    Some(ii),
                    VerifyErrorKind::ShapeMismatch,
                    format!(
                        "{} arg {ai} needs {need} elements, {} holds {have}",
                        instr.op.name(),
                        loc_desc(loc),
                    ),
                ));
            }
        }

        // Destination writes. `Axpy` reads-modifies-writes: the accumulator
        // must already hold a value of the same size, and the instruction
        // takes over ownership of it (so an accumulation nobody reads is
        // still flagged dead).
        for (di, (&ds, &numel)) in instr.dsts.iter().zip(&eff.dst_n).enumerate() {
            let si = ds as usize;
            if si >= n_slots {
                return Err(verr(
                    Some(ii),
                    VerifyErrorKind::OutOfRange,
                    format!("{} dst {di} slot {ds} out of range", instr.op.name()),
                ));
            }
            if eff.rmw {
                let val = slot_val[si].ok_or_else(|| {
                    verr(
                        Some(ii),
                        VerifyErrorKind::UseBeforeDef,
                        format!("{} accumulates into slot {ds} before any write", instr.op.name()),
                    )
                })?;
                if val.numel != numel {
                    return Err(verr(
                        Some(ii),
                        VerifyErrorKind::ShapeMismatch,
                        format!(
                            "{} accumulates {numel} elements into slot {ds} holding {}",
                            instr.op.name(),
                            val.numel
                        ),
                    ));
                }
                instr_used[val.def_instr] = true;
            }
            if class(numel) != plan.slot_caps[si] {
                return Err(verr(
                    Some(ii),
                    VerifyErrorKind::CapMismatch,
                    format!(
                        "{} writes {numel} elements (class {}) into slot {ds} of capacity {}",
                        instr.op.name(),
                        class(numel),
                        plan.slot_caps[si]
                    ),
                ));
            }
            ever_written[si] = true;
            slot_val[si] = Some(Value { numel, def_instr: ii });
        }
    }

    check_sinks(plan, &slot_val, &mut instr_used)?;

    // Dead / leaked results. `instr_used` now covers instruction-stream reads
    // and sink reads; anything unmarked produced a value nobody will ever
    // look at.
    let dead: Vec<usize> =
        (0..plan.instrs.len()).filter(|&ii| !instr_used[ii]).collect();
    focus_trace::counter_set("plan/verify_dead", dead.len() as u64);
    if let Some(&ii) = dead.first() {
        let at_exit = plan.instrs[ii]
            .dsts
            .iter()
            .any(|&ds| slot_val[ds as usize].is_some_and(|v| v.def_instr == ii));
        let (kind, how) = if at_exit {
            (VerifyErrorKind::LeakedValue, "leaked live at plan exit")
        } else {
            (VerifyErrorKind::DeadInstr, "overwritten without ever being read")
        };
        return Err(verr(
            Some(ii),
            kind,
            format!(
                "{} result is never consumed and is not a plan sink ({how})",
                plan.instrs[ii].op.name()
            ),
        ));
    }

    if let Some(s) = ever_written.iter().position(|&w| !w) {
        return Err(verr(
            None,
            VerifyErrorKind::UnwrittenSlot,
            format!("slot {s} is allocated but no instruction ever defines it"),
        ));
    }
    Ok(())
}

fn loc_desc(loc: Loc) -> String {
    match loc {
        Loc::Slot(i) => format!("slot {i}"),
        Loc::Param(i) => format!("param {i}"),
        Loc::Input(i) => format!("input {i}"),
        Loc::Static(i) => format!("static {i}"),
    }
}

/// Validates the plan's declared sinks against the final abstract state and
/// marks their defining instructions as consumed.
fn check_sinks(
    plan: &Plan,
    slot_val: &[Option<Value>],
    instr_used: &mut [bool],
) -> Result<(), VerifyError> {
    let sink_err = |msg: String| verr(None, VerifyErrorKind::BadSink, msg);
    let live = |slot: u32, what: &str| -> Result<Value, VerifyError> {
        slot_val
            .get(slot as usize)
            .copied()
            .ok_or_else(|| sink_err(format!("{what} slot {slot} out of range")))?
            .ok_or_else(|| sink_err(format!("{what} slot {slot} holds no value at plan exit")))
    };

    match (plan.loss_slot, &plan.output) {
        (Some(_), Some(_)) => {
            return Err(sink_err("plan declares both a loss and an output sink".into()))
        }
        (None, None) => {
            return Err(sink_err("plan declares neither a loss nor an output sink".into()))
        }
        (Some(loss), None) => {
            let val = live(loss, "loss")?;
            if val.numel != 1 {
                return Err(sink_err(format!(
                    "loss slot {loss} holds {} elements, expected a scalar",
                    val.numel
                )));
            }
            instr_used[val.def_instr] = true;
        }
        (None, Some((out, dims))) => {
            if !plan.updates.is_empty() {
                return Err(sink_err("forward plan declares parameter updates".into()));
            }
            let val = live(*out, "output")?;
            if dims_numel(dims) != Some(val.numel) {
                return Err(sink_err(format!(
                    "output slot {out} holds {} elements, dims want {dims:?}",
                    val.numel
                )));
            }
            instr_used[val.def_instr] = true;
        }
    }

    let mut sink_slots: Vec<u32> = plan.loss_slot.into_iter().collect();
    let mut seen_params: Vec<u32> = Vec::new();
    for u in &plan.updates {
        let pdims = plan
            .params
            .get(u.param as usize)
            .ok_or_else(|| sink_err(format!("update param {} out of range", u.param)))?;
        if seen_params.contains(&u.param) {
            return Err(sink_err(format!("param {} updated twice", u.param)));
        }
        seen_params.push(u.param);
        let want = dims_numel(&u.dims).unwrap_or(0);
        if dims_numel(pdims) != Some(want) {
            return Err(sink_err(format!(
                "update for param {} disagrees with the parameter's recorded dims",
                u.param
            )));
        }
        let val = live(u.grad_slot, "gradient")?;
        if val.numel != want {
            return Err(sink_err(format!(
                "gradient slot {} holds {} elements, param {} wants {want}",
                u.grad_slot, val.numel, u.param
            )));
        }
        if sink_slots.contains(&u.grad_slot) {
            return Err(sink_err(format!("sink slot {} declared twice", u.grad_slot)));
        }
        sink_slots.push(u.grad_slot);
        instr_used[val.def_instr] = true;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Compile-time interval check
// ---------------------------------------------------------------------------

/// Checks that no two virtual registers assigned to the same slot have
/// overlapping live intervals, and that a slot is only recycled *strictly
/// after* its previous occupant's last use.
///
/// This is the one lifetime property the plan-level walk cannot observe: at
/// the slot level, a read always attaches to the most recent definition, so
/// an overwrite-while-live is indistinguishable from a legitimate recycle.
/// Only the compiler knows the virtual-register liveness it allocated from,
/// so this check runs during compilation, on that data.
pub(crate) fn check_intervals(
    slot_of: &[u32],
    first_def: &[Option<usize>],
    last_use: &[usize],
) -> Result<(), VerifyError> {
    // Group vreg intervals per slot, ordered by first definition.
    let mut by_slot: std::collections::BTreeMap<u32, Vec<(usize, usize, usize)>> =
        std::collections::BTreeMap::new();
    for (v, &s) in slot_of.iter().enumerate() {
        if s == u32::MAX {
            continue;
        }
        let Some(def) = first_def[v] else { continue };
        by_slot.entry(s).or_default().push((def, last_use[v], v));
    }
    for (slot, mut ivs) in by_slot {
        ivs.sort_unstable();
        for w in ivs.windows(2) {
            let (_, prev_end, prev_v) = w[0];
            let (next_def, _, next_v) = w[1];
            if next_def <= prev_end {
                return Err(verr(
                    Some(next_def),
                    VerifyErrorKind::OverlappingLiveRange,
                    format!(
                        "slot {slot} rebound to v{next_v} at instr {next_def} while v{prev_v} \
                         is live until instr {prev_end}"
                    ),
                ));
            }
        }
    }
    Ok(())
}
