//! The tape: node arena, op records and forward evaluation.

use focus_tensor::Tensor;

/// Index of a node in a [`Graph`]. Cheap to copy; only valid for the graph
/// that created it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Operation record: which rule produced a node and from which inputs.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// Input tensor (parameter or constant; `requires_grad` on the node
    /// distinguishes them).
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Neg(Var),
    Scale(Var, f32),
    AddScalar(Var, f32),
    /// 2-D `a · b`.
    Matmul(Var, Var),
    /// Batched 3-D `a · b`.
    Bmm(Var, Var),
    /// Batched 3-D `a · bᵀ` without materialising the transpose:
    /// `[B, m, k] · [B, n, k]ᵀ → [B, m, n]`.
    BmmNt(Var, Var),
    /// Sparse one-hot routing `A · head` carried as a `[B·l]` index vector
    /// instead of the dense `[B, l, k]` one-hot matrix: forward is a row
    /// gather, backward a deterministic scatter-add (ProtoAttn Eq. 18 on the
    /// hard-assignment path).
    RouteOneHot {
        /// The `[B, k, d]` attention summaries being routed.
        head: Var,
        /// Row-major `[B, l]` prototype index per segment slot.
        indices: Box<[u32]>,
    },
    /// `out[b] = a · x[b]ᵀ` with a shared 2-D LHS `a: [k, d]` and a batched
    /// RHS `x: [B, l, d]`, producing `[B, k, l]`. This is the prototype-query
    /// score computation of ProtoAttn (Eq. 16) batched over entities.
    MatmulBroadcastNt(Var, Var),
    Transpose2(Var),
    TransposeLast2(Var),
    /// Swap the first two axes of a rank-3 tensor: `[a, b, c] → [b, a, c]`.
    SwapAxes01(Var),
    /// Shape change, data untouched.
    Reshape(Var),
    /// `x + bias` where `bias` has the length of `x`'s trailing axis.
    AddRowBroadcast(Var, Var),
    SoftmaxLast(Var),
    /// LayerNorm over the trailing axis with affine `gamma`/`beta`.
    /// `cache` is a `[rows, 2]` tensor of interleaved `(mean, rstd)` per row.
    LayerNormLast {
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
        cache: Tensor,
    },
    Relu(Var),
    Gelu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Abs(Var),
    /// Concatenation along the trailing axis; `split` is the LHS width.
    ConcatLast(Var, Var, usize),
    /// Columns `[start, end)` of the trailing axis.
    SliceLast(Var, usize, usize),
    MeanAll(Var),
    SumAll(Var),
}

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
    pub requires_grad: bool,
}

/// An append-only computation tape.
///
/// Build the forward pass with the op methods, call [`Graph::backward`] once
/// on a scalar node, then read gradients with [`Graph::grad`].
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) grads: Vec<Option<Tensor>>,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Clears the tape for reuse, keeping the node and gradient arena
    /// allocations.
    ///
    /// Per-step training loops build a fresh graph every window; resetting
    /// instead of re-allocating lets the arenas reach steady-state capacity
    /// once and stay there. All `Var` handles from before the reset are
    /// invalidated.
    pub fn reset(&mut self) {
        // Dropping the node tensors hands their buffers back to the pool, so
        // this span is where per-step reclamation cost shows up.
        focus_trace::span!("pool/reclaim");
        self.nodes.clear();
        self.grads.clear();
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    #[inline]
    pub(crate) fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Registers a trainable leaf (a parameter). Its gradient is available
    /// after [`Graph::backward`].
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, true)
    }

    /// Registers a constant leaf (input data). No gradient is computed for it.
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, false)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of the loss w.r.t. node `v`, if one was computed.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    // ---- arithmetic ----

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Add(a, b), rg)
    }

    /// Elementwise `a - b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Sub(a, b), rg)
    }

    /// Elementwise `a ⊙ b` (same shape).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Mul(a, b), rg)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = self.value(a).scale(-1.0);
        let rg = self.rg(a);
        self.push(v, Op::Neg(a), rg)
    }

    /// Multiplies every element by the constant `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).scale(c);
        let rg = self.rg(a);
        self.push(v, Op::Scale(a, c), rg)
    }

    /// Adds the constant `c` to every element.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).add_scalar(c);
        let rg = self.rg(a);
        self.push(v, Op::AddScalar(a, c), rg)
    }

    // ---- linear algebra ----

    /// 2-D matrix product `[m, k] · [k, n] → [m, n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Matmul(a, b), rg)
    }

    /// Batched 3-D matrix product `[B, m, k] · [B, k, n] → [B, m, n]`.
    pub fn bmm(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).bmm(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Bmm(a, b), rg)
    }

    /// Batched product against a transposed RHS, `[B, m, k] · [B, n, k]ᵀ →
    /// [B, m, n]`, reading `b` in its stored layout — use instead of
    /// `transpose_last2` + [`Graph::bmm`] (same result, no transposed copy
    /// on the tape and no `TransposeLast2` backward step).
    pub fn bmm_nt(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).bmm_nt(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::BmmNt(a, b), rg)
    }

    /// Sparse one-hot routing: `out[b, i, :] = head[b, indices[b·l + i], :]`
    /// for `head: [B, k, d]`, producing `[B, l, d]`.
    ///
    /// Bitwise-equivalent to `bmm(A, head)` with the one-hot `A` the indices
    /// stand for — forward and backward both (see `focus_tensor::route`) —
    /// at `O(B·l·d)` instead of `O(B·l·k·d)`. The indices are data, not a
    /// differentiable input; only `head` receives a gradient.
    pub fn route_one_hot(&mut self, head: Var, indices: &[u32], l: usize) -> Var {
        let v = focus_tensor::route::route_gather(self.value(head), indices, l);
        let rg = self.rg(head);
        self.push(
            v,
            Op::RouteOneHot {
                head,
                indices: indices.into(),
            },
            rg,
        )
    }

    /// Broadcast score kernel: `out[b] = a · x[b]ᵀ` for 2-D `a: [k, d]` and
    /// 3-D `x: [B, l, d]`, producing `[B, k, l]`.
    pub fn matmul_broadcast_nt(&mut self, a: Var, x: Var) -> Var {
        let at = self.value(a);
        let xt = self.value(x);
        assert_eq!(at.rank(), 2, "matmul_broadcast_nt lhs must be rank 2");
        assert_eq!(xt.rank(), 3, "matmul_broadcast_nt rhs must be rank 3");
        let (k, d) = (at.dims()[0], at.dims()[1]);
        let (bsz, l, d2) = (xt.dims()[0], xt.dims()[1], xt.dims()[2]);
        assert_eq!(d, d2, "matmul_broadcast_nt inner dims: {d} vs {d2}");
        let mut out = Tensor::zeros(&[bsz, k, l]);
        if crate::fused_enabled() {
            // One batched sweep straight over slices of `x` and `out` — no
            // per-batch index copy, no result temporary, shared packing
            // scratch across batches. Bitwise-identical to the reference
            // loop: same kernel, same zeroed destination.
            focus_tensor::raw::gemm_nt_bcast(
                bsz,
                k,
                d,
                l,
                at.data(),
                xt.data(),
                out.data_mut(),
            );
        } else {
            for b in 0..bsz {
                let slice = xt.index_axis0(b);
                let s = at.matmul_nt(&slice);
                out.data_mut()[b * k * l..(b + 1) * k * l].copy_from_slice(s.data());
            }
        }
        let rg = self.rg(a) || self.rg(x);
        self.push(out, Op::MatmulBroadcastNt(a, x), rg)
    }

    /// Transpose of a rank-2 node.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        let rg = self.rg(a);
        self.push(v, Op::Transpose2(a), rg)
    }

    /// Swap the last two axes of a rank-3 node.
    pub fn transpose_last2(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose_last2();
        let rg = self.rg(a);
        self.push(v, Op::TransposeLast2(a), rg)
    }

    /// Swaps the first two axes of a rank-3 node: `[a, b, c] → [b, a, c]`.
    pub fn swap_axes01(&mut self, a: Var) -> Var {
        let v = swap01(self.value(a));
        let rg = self.rg(a);
        self.push(v, Op::SwapAxes01(a), rg)
    }

    /// Shape change without data movement.
    pub fn reshape(&mut self, a: Var, dims: &[usize]) -> Var {
        let v = self.value(a).reshape(dims);
        let rg = self.rg(a);
        self.push(v, Op::Reshape(a), rg)
    }

    /// Adds a trailing-axis-length `bias` vector to every row of `x`.
    pub fn add_row_broadcast(&mut self, x: Var, bias: Var) -> Var {
        let v = self.value(x).add_row_broadcast(self.value(bias));
        let rg = self.rg(x) || self.rg(bias);
        self.push(v, Op::AddRowBroadcast(x, bias), rg)
    }

    // ---- normalisation / attention ----

    /// Numerically stable softmax over the trailing axis.
    pub fn softmax_last(&mut self, a: Var) -> Var {
        let v = self.value(a).softmax_last();
        let rg = self.rg(a);
        self.push(v, Op::SoftmaxLast(a), rg)
    }

    /// LayerNorm over the trailing axis with affine parameters.
    ///
    /// `gamma`/`beta` must be rank-1 with the length of `x`'s trailing axis.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let xt = self.value(x);
        let n = xt.shape().last_dim();
        assert_eq!(self.value(gamma).numel(), n, "layer_norm gamma length");
        assert_eq!(self.value(beta).numel(), n, "layer_norm beta length");
        let (out, cache) = if crate::fused_enabled() {
            focus_tensor::fused::layer_norm_fwd(
                xt,
                self.value(gamma).data(),
                self.value(beta).data(),
                eps,
            )
        } else {
            // Unfused reference: clone the input, normalise in place.
            let rows = xt.shape().leading();
            let mut cache = vec![0.0f32; 2 * rows]; // focus-lint: allow(pool-bypass) -- reference path, deliberately heap-allocated for parity with pre-pool code
            let mut out = xt.clone();
            let gdata = self.value(gamma).data().to_vec();
            let bdata = self.value(beta).data().to_vec();
            for i in 0..rows {
                let row = &mut out.data_mut()[i * n..(i + 1) * n];
                let mean = row.iter().sum::<f32>() / n as f32;
                let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
                let rstd = 1.0 / (var + eps).sqrt();
                cache[2 * i] = mean;
                cache[2 * i + 1] = rstd;
                for (j, v) in row.iter_mut().enumerate() {
                    *v = (*v - mean) * rstd * gdata[j] + bdata[j];
                }
            }
            (out, Tensor::from_vec(cache, &[rows, 2]))
        };
        let rg = self.rg(x) || self.rg(gamma) || self.rg(beta);
        self.push(
            out,
            Op::LayerNormLast {
                x,
                gamma,
                beta,
                eps,
                cache,
            },
            rg,
        )
    }

    // ---- nonlinearities ----

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|v| v.max(0.0));
        let rg = self.rg(a);
        self.push(v, Op::Relu(a), rg)
    }

    /// GELU with the tanh approximation.
    pub fn gelu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(gelu_fwd);
        let rg = self.rg(a);
        self.push(v, Op::Gelu(a), rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|v| 1.0 / (1.0 + (-v).exp()));
        let rg = self.rg(a);
        self.push(v, Op::Sigmoid(a), rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        let rg = self.rg(a);
        self.push(v, Op::Tanh(a), rg)
    }

    /// Elementwise absolute value (subgradient 0 at the kink).
    pub fn abs(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::abs);
        let rg = self.rg(a);
        self.push(v, Op::Abs(a), rg)
    }

    // ---- structure ----

    /// Concatenates along the trailing axis.
    pub fn concat_last(&mut self, a: Var, b: Var) -> Var {
        let split = self.value(a).shape().last_dim();
        let v = self.value(a).concat_last(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::ConcatLast(a, b, split), rg)
    }

    /// Slices columns `[start, end)` of the trailing axis.
    pub fn slice_last(&mut self, a: Var, start: usize, end: usize) -> Var {
        let n = self.value(a).shape().last_dim();
        assert!(start < end && end <= n, "slice [{start}, {end}) out of trailing dim {n}");
        let (left, _) = self.value(a).split_last(end);
        let (_, v) = left.split_last(start);
        let rg = self.rg(a);
        self.push(v, Op::SliceLast(a, start, end), rg)
    }

    // ---- reductions / losses ----

    /// Scalar mean of all elements.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).mean_all());
        let rg = self.rg(a);
        self.push(v, Op::MeanAll(a), rg)
    }

    /// Scalar sum of all elements.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum_all());
        let rg = self.rg(a);
        self.push(v, Op::SumAll(a), rg)
    }

    /// Mean squared error between two same-shape nodes (scalar).
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let sq = self.mul(d, d);
        self.mean_all(sq)
    }

    /// Mean absolute error between two same-shape nodes (scalar).
    pub fn mae(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let a = self.abs(d);
        self.mean_all(a)
    }
}

/// Swap the first two axes of a rank-3 tensor (shared by forward/backward).
pub(crate) fn swap01(t: &Tensor) -> Tensor {
    assert_eq!(t.rank(), 3, "swap_axes01 requires rank 3, got {}", t.shape());
    let (a, b, c) = (t.dims()[0], t.dims()[1], t.dims()[2]);
    let mut out = Tensor::zeros(&[b, a, c]);
    for i in 0..a {
        for j in 0..b {
            let src = (i * b + j) * c;
            let dst = (j * a + i) * c;
            out.data_mut()[dst..dst + c].copy_from_slice(&t.data()[src..src + c]);
        }
    }
    out
}

// The GELU scalar pair lives beside the fused kernels so the forward map,
// both backward paths and the parity tests all share one definition.
pub(crate) use focus_tensor::fused::{gelu_bwd, gelu_fwd};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_match_tensor_ops() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = g.constant(Tensor::eye(2));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c).data(), g.value(a).data());
        let s = g.softmax_last(a);
        assert!((g.value(s).row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn requires_grad_propagates() {
        let mut g = Graph::new();
        let c = g.constant(Tensor::ones(&[2]));
        let p = g.leaf(Tensor::ones(&[2]));
        let s1 = g.add(c, c);
        let s2 = g.add(c, p);
        assert!(!g.rg(s1));
        assert!(g.rg(s2));
    }

    #[test]
    fn broadcast_nt_matches_per_batch() {
        let mut rng = rand::rngs::mock::StepRng::new(1, 7);
        let _ = &mut rng;
        let a = Tensor::from_vec((0..6).map(|v| v as f32 * 0.1).collect(), &[2, 3]);
        let x = Tensor::from_vec((0..24).map(|v| v as f32 * 0.05).collect(), &[2, 4, 3]);
        let mut g = Graph::new();
        let av = g.constant(a.clone());
        let xv = g.constant(x.clone());
        let s = g.matmul_broadcast_nt(av, xv);
        assert_eq!(g.value(s).dims(), &[2, 2, 4]);
        for b in 0..2 {
            let expect = a.matmul_nt(&x.index_axis0(b));
            assert!(g.value(s).index_axis0(b).max_abs_diff(&expect) < 1e-6);
        }
    }

    #[test]
    fn layer_norm_rows_are_normalised() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[2, 4]));
        let gamma = g.constant(Tensor::ones(&[4]));
        let beta = g.constant(Tensor::zeros(&[4]));
        let y = g.layer_norm(x, gamma, beta, 1e-5);
        for i in 0..2 {
            let row = g.value(y).row(i);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn reset_clears_state_and_tape_is_reusable() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2.0], &[1]));
        let sq = g.mul(x, x);
        let loss = g.mean_all(sq);
        g.backward(loss);
        assert!(g.grad(x).is_some());
        g.reset();
        assert!(g.is_empty());
        // A fresh pass on the reset tape behaves exactly like a new graph.
        let y = g.leaf(Tensor::from_vec(vec![3.0], &[1]));
        let sq = g.mul(y, y);
        let loss = g.mean_all(sq);
        g.backward(loss);
        assert_eq!(g.grad(y).expect("y is a trainable leaf").data(), &[6.0]);
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh approximation.
        assert!((gelu_fwd(0.0)).abs() < 1e-7);
        assert!((gelu_fwd(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu_fwd(-1.0) + 0.1588).abs() < 1e-3);
    }
}
