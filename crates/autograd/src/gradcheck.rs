//! Finite-difference gradient checking.
//!
//! Every op's backward rule is validated against a central-difference
//! estimate. Because the engine runs in `f32`, comparisons use a combined
//! absolute/relative tolerance.

use crate::{Graph, Var};
use focus_tensor::Tensor;

/// Result of a gradient check: the worst elementwise discrepancy found.
#[derive(Debug, Clone, Copy)]
pub struct CheckReport {
    /// Largest `|analytic − numeric| / max(1, |numeric|)` over all elements.
    pub max_rel_err: f32,
}

/// Checks the analytic gradient of `f` at `inputs` against central
/// differences.
///
/// `f` receives the graph and one leaf per input tensor and must return a
/// scalar node. Each input is treated as trainable.
///
/// # Panics
/// Panics (with context) if `f` does not produce a scalar.
pub fn check<F>(inputs: &[Tensor], eps: f32, f: F) -> CheckReport
where
    F: Fn(&mut Graph, &[Var]) -> Var,
{
    // Analytic gradients.
    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.leaf(t.clone())).collect();
    let loss = f(&mut g, &vars);
    g.backward(loss);

    let mut max_rel_err = 0.0f32;
    for (idx, input) in inputs.iter().enumerate() {
        let analytic = g
            .grad(vars[idx])
            .cloned()
            .unwrap_or_else(|| Tensor::zeros(input.dims()));
        for j in 0..input.numel() {
            let numeric = central_difference(inputs, idx, j, eps, &f);
            let a = analytic.data()[j];
            let rel = (a - numeric).abs() / numeric.abs().max(1.0);
            if rel > max_rel_err {
                max_rel_err = rel;
            }
        }
    }
    CheckReport { max_rel_err }
}

fn central_difference<F>(inputs: &[Tensor], idx: usize, j: usize, eps: f32, f: &F) -> f32
where
    F: Fn(&mut Graph, &[Var]) -> Var,
{
    let eval = |delta: f32| -> f32 {
        let mut perturbed: Vec<Tensor> = inputs.to_vec();
        perturbed[idx].data_mut()[j] += delta;
        let mut g = Graph::new();
        let vars: Vec<Var> = perturbed.iter().map(|t| g.leaf(t.clone())).collect();
        let loss = f(&mut g, &vars);
        g.value(loss).item()
    };
    (eval(eps) - eval(-eps)) / (2.0 * eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f32 = 1e-2;
    const TOL: f32 = 2e-2;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn check_matmul_chain() {
        let mut r = rng();
        let a = Tensor::randn(&[3, 4], 0.5, &mut r);
        let b = Tensor::randn(&[4, 2], 0.5, &mut r);
        let rep = check(&[a, b], EPS, |g, v| {
            let m = g.matmul(v[0], v[1]);
            g.mean_all(m)
        });
        assert!(rep.max_rel_err < TOL, "rel err {}", rep.max_rel_err);
    }

    #[test]
    fn check_bmm() {
        let mut r = rng();
        let a = Tensor::randn(&[2, 3, 4], 0.5, &mut r);
        let b = Tensor::randn(&[2, 4, 2], 0.5, &mut r);
        let rep = check(&[a, b], EPS, |g, v| {
            let m = g.bmm(v[0], v[1]);
            let s = g.mul(m, m);
            g.mean_all(s)
        });
        assert!(rep.max_rel_err < TOL, "rel err {}", rep.max_rel_err);
    }

    #[test]
    fn check_matmul_broadcast_nt() {
        let mut r = rng();
        let a = Tensor::randn(&[3, 4], 0.5, &mut r);
        let x = Tensor::randn(&[2, 5, 4], 0.5, &mut r);
        let rep = check(&[a, x], EPS, |g, v| {
            let s = g.matmul_broadcast_nt(v[0], v[1]);
            let sq = g.mul(s, s);
            g.mean_all(sq)
        });
        assert!(rep.max_rel_err < TOL, "rel err {}", rep.max_rel_err);
    }

    #[test]
    fn check_softmax() {
        let mut r = rng();
        let x = Tensor::randn(&[3, 5], 1.0, &mut r);
        let w = Tensor::randn(&[3, 5], 1.0, &mut r);
        let rep = check(&[x, w.clone()], EPS, |g, v| {
            let s = g.softmax_last(v[0]);
            let weighted = g.mul(s, v[1]);
            g.sum_all(weighted)
        });
        assert!(rep.max_rel_err < TOL, "rel err {}", rep.max_rel_err);
    }

    #[test]
    fn check_layer_norm() {
        let mut r = rng();
        let x = Tensor::randn(&[4, 6], 1.0, &mut r);
        let gamma = Tensor::rand_uniform(&[6], 0.5, 1.5, &mut r);
        let beta = Tensor::randn(&[6], 0.3, &mut r);
        let w = Tensor::randn(&[4, 6], 1.0, &mut r);
        let rep = check(&[x, gamma, beta, w.clone()], EPS, |g, v| {
            let y = g.layer_norm(v[0], v[1], v[2], 1e-5);
            let weighted = g.mul(y, v[3]);
            g.mean_all(weighted)
        });
        assert!(rep.max_rel_err < TOL, "rel err {}", rep.max_rel_err);
    }

    #[test]
    fn check_nonlinearities() {
        let mut r = rng();
        // Keep away from the ReLU/abs kinks: finite differences misbehave there.
        let base = Tensor::rand_uniform(&[3, 4], 0.2, 2.0, &mut r);
        let neg = base.scale(-1.0);
        for (name, f) in [
            ("relu", 0usize),
            ("gelu", 1),
            ("sigmoid", 2),
            ("tanh", 3),
            ("abs", 4),
        ] {
            for input in [&base, &neg] {
                let rep = check(std::slice::from_ref(input), EPS, |g, v| {
                    let y = match f {
                        0 => g.relu(v[0]),
                        1 => g.gelu(v[0]),
                        2 => g.sigmoid(v[0]),
                        3 => g.tanh(v[0]),
                        _ => g.abs(v[0]),
                    };
                    g.mean_all(y)
                });
                assert!(rep.max_rel_err < TOL, "{name}: rel err {}", rep.max_rel_err);
            }
        }
    }

    #[test]
    fn check_structure_ops() {
        let mut r = rng();
        let a = Tensor::randn(&[3, 4], 0.5, &mut r);
        let b = Tensor::randn(&[3, 2], 0.5, &mut r);
        let rep = check(&[a, b], EPS, |g, v| {
            let c = g.concat_last(v[0], v[1]);
            let t = g.transpose(c);
            let sq = g.mul(t, t);
            g.mean_all(sq)
        });
        assert!(rep.max_rel_err < TOL, "rel err {}", rep.max_rel_err);
    }

    #[test]
    fn check_broadcast_bias_and_reshape() {
        let mut r = rng();
        let x = Tensor::randn(&[4, 3], 0.5, &mut r);
        let bias = Tensor::randn(&[3], 0.5, &mut r);
        let rep = check(&[x, bias], EPS, |g, v| {
            let y = g.add_row_broadcast(v[0], v[1]);
            let z = g.reshape(y, &[2, 6]);
            let sq = g.mul(z, z);
            g.mean_all(sq)
        });
        assert!(rep.max_rel_err < TOL, "rel err {}", rep.max_rel_err);
    }

    #[test]
    fn check_swap_axes01() {
        let mut r = rng();
        let x = Tensor::randn(&[2, 3, 4], 0.5, &mut r);
        let w = Tensor::randn(&[3, 2, 4], 0.5, &mut r);
        let rep = check(&[x, w], EPS, |g, v| {
            let s = g.swap_axes01(v[0]);
            let m = g.mul(s, v[1]);
            g.mean_all(m)
        });
        assert!(rep.max_rel_err < TOL, "rel err {}", rep.max_rel_err);
    }

    #[test]
    fn check_transpose_last2() {
        let mut r = rng();
        let x = Tensor::randn(&[2, 3, 4], 0.5, &mut r);
        let rep = check(&[x], EPS, |g, v| {
            let t = g.transpose_last2(v[0]);
            let sq = g.mul(t, t);
            g.mean_all(sq)
        });
        assert!(rep.max_rel_err < TOL, "rel err {}", rep.max_rel_err);
    }

    #[test]
    fn check_slice_last() {
        let mut r = rng();
        let x = Tensor::randn(&[3, 6], 0.5, &mut r);
        let rep = check(&[x], EPS, |g, v| {
            let a = g.slice_last(v[0], 1, 4);
            let sq = g.mul(a, a);
            g.mean_all(sq)
        });
        assert!(rep.max_rel_err < TOL, "rel err {}", rep.max_rel_err);
    }

    #[test]
    fn check_route_one_hot() {
        let mut r = rng();
        let head = Tensor::randn(&[2, 3, 4], 0.5, &mut r);
        let indices: Vec<u32> = vec![0, 2, 1, 1, 0, 2, 2, 1, 0, 0]; // [B=2, l=5]
        let rep = check(&[head], EPS, |g, v| {
            let routed = g.route_one_hot(v[0], &indices, 5);
            let sq = g.mul(routed, routed);
            g.mean_all(sq)
        });
        assert!(rep.max_rel_err < TOL, "rel err {}", rep.max_rel_err);
    }

    /// The sparse routing op must be indistinguishable from the dense
    /// one-hot `bmm` it replaces — forward and gradient, bit for bit, at
    /// every thread count (the determinism + sparsity contract of PR 1's
    /// kernels carried over to the index-vector fast path).
    #[test]
    fn route_one_hot_matches_dense_bmm_bitwise_across_threads() {
        use focus_tensor::{par, route};
        let mut r = rng();
        let (b, l, k, d) = (3usize, 32usize, 6usize, 8usize);
        let head = Tensor::randn(&[b, k, d], 0.7, &mut r);
        let w = Tensor::randn(&[b, l, d], 0.5, &mut r);
        let indices: Vec<u32> = (0..b * l).map(|i| ((i * 7 + 3) % k) as u32).collect();
        let dense_a = route::one_hot_matrix(&indices, b, l, k);
        let run = |sparse: bool| -> (Vec<f32>, Vec<f32>) {
            let mut g = Graph::new();
            let h = g.leaf(head.clone());
            let wv = g.constant(w.clone());
            let routed = if sparse {
                g.route_one_hot(h, &indices, l)
            } else {
                let a = g.constant(dense_a.clone());
                g.bmm(a, h)
            };
            let m = g.mul(routed, wv);
            let loss = g.sum_all(m);
            g.backward(loss);
            (
                g.value(routed).data().to_vec(),
                g.grad(h).expect("head is a trainable leaf").data().to_vec(),
            )
        };
        // Serialise the process-global thread override against other tests.
        let _g = par::threads_guard();
        par::set_threads(1);
        let (fwd_ref, grad_ref) = run(false);
        for threads in [1usize, 2, 4] {
            par::set_threads(threads);
            let (fwd, grad) = run(true);
            assert_eq!(fwd, fwd_ref, "forward diverged at {threads} threads");
            assert_eq!(grad, grad_ref, "gradient diverged at {threads} threads");
        }
        par::set_threads(0);
    }

    #[test]
    fn check_composite_attention_block() {
        // A miniature ProtoAttn-shaped computation exercises op interplay.
        let mut r = rng();
        let c = Tensor::randn(&[2, 3], 0.5, &mut r); // prototypes [k, d]
        let k = Tensor::randn(&[2, 4, 3], 0.5, &mut r); // keys [B, l, d]
        let v = Tensor::randn(&[2, 4, 3], 0.5, &mut r); // values [B, l, d]
        let rep = check(&[c, k, v], EPS, |g, vars| {
            let scores = g.matmul_broadcast_nt(vars[0], vars[1]); // [B, k, l]
            let scaled = g.scale(scores, 1.0 / (3.0f32).sqrt());
            let attn = g.softmax_last(scaled);
            let out = g.bmm(attn, vars[2]); // [B, k, d]
            let sq = g.mul(out, out);
            g.mean_all(sq)
        });
        assert!(rep.max_rel_err < TOL, "rel err {}", rep.max_rel_err);
    }
}
