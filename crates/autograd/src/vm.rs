//! Plan VM: replays a compiled [`Plan`] through a compact opcode dispatch.
//!
//! Every instruction calls the same `focus_tensor::exec` slice kernels the
//! interpreter's tensor ops bottom out in, with identical operand order and
//! geometry, so a replayed step is bitwise-equal to the interpreted step the
//! plan was compiled from — at any thread count.
//!
//! Slot buffers are plain `Vec<f32>`s owned by the caller (allocated once at
//! plan promotion); the dispatch `mem::take`s an instruction's destinations,
//! borrows its arguments immutably, runs the kernel, and puts the
//! destinations back. No tensor-pool traffic happens anywhere on this path —
//! `replay_train` measures the pool-lookup delta around the whole step and
//! publishes it as `plan/pool_lookups_steady` (expected: 0).

use focus_tensor::{exec, pool, Tensor};

use crate::optim::{Optimizer, ParamStore};
use crate::plan::{Instr, Loc, OpCode, Plan};

/// Resolves an argument location to a slice of exactly `n` elements.
#[inline]
fn arg<'s>(
    loc: Loc,
    n: usize,
    slots: &'s [Vec<f32>],
    plan: &'s Plan,
    inputs: &'s [&'s [f32]],
    store: &'s ParamStore,
) -> &'s [f32] {
    match loc {
        Loc::Slot(i) => &slots[i as usize][..n],
        Loc::Param(i) => &store.tensor_at(i as usize).data()[..n],
        Loc::Input(i) => &inputs[i as usize][..n],
        Loc::Static(i) => &plan.statics[i as usize].1[..n],
    }
}

#[inline]
fn take(slots: &mut [Vec<f32>], slot: u32) -> Vec<f32> {
    std::mem::take(&mut slots[slot as usize])
}

#[inline]
fn put(slots: &mut [Vec<f32>], slot: u32, buf: Vec<f32>) {
    slots[slot as usize] = buf;
}

/// Executes one instruction. `dims` semantics per opcode match what the
/// compiler emitted (kernel-call geometry, not tape-node shape).
fn exec_instr(
    instr: &Instr,
    plan: &Plan,
    slots: &mut [Vec<f32>],
    inputs: &[&[f32]],
    routes: &[&[u32]],
    store: &ParamStore,
) {
    let d = &instr.dims;
    let du = |i: usize| d[i] as usize;
    match instr.op {
        // dims [numel]
        OpCode::ZipAdd
        | OpCode::ZipSub
        | OpCode::ZipMul
        | OpCode::ZipReluBwd
        | OpCode::ZipGeluBwd
        | OpCode::ZipAbsBwd
        | OpCode::ZipSigmoidBwd
        | OpCode::ZipTanhBwd => {
            let n = du(0);
            let mut dst = take(slots, instr.dsts[0]);
            {
                let a = arg(instr.args[0], n, slots, plan, inputs, store);
                let b = arg(instr.args[1], n, slots, plan, inputs, store);
                let out = &mut dst[..n];
                match instr.op {
                    OpCode::ZipAdd => exec::zip_add(a, b, out),
                    OpCode::ZipSub => exec::zip_sub(a, b, out),
                    OpCode::ZipMul => exec::zip_mul(a, b, out),
                    OpCode::ZipReluBwd => exec::zip_relu_bwd(a, b, out),
                    OpCode::ZipGeluBwd => exec::zip_gelu_bwd(a, b, out),
                    OpCode::ZipAbsBwd => exec::zip_abs_bwd(a, b, out),
                    OpCode::ZipSigmoidBwd => exec::zip_sigmoid_bwd(a, b, out),
                    OpCode::ZipTanhBwd => exec::zip_tanh_bwd(a, b, out),
                    _ => unreachable!(),
                }
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [numel]
        OpCode::MapScale
        | OpCode::MapAddScalar
        | OpCode::MapRelu
        | OpCode::MapGelu
        | OpCode::MapSigmoid
        | OpCode::MapTanh
        | OpCode::MapAbs
        | OpCode::Copy => {
            let n = du(0);
            let mut dst = take(slots, instr.dsts[0]);
            {
                let src = arg(instr.args[0], n, slots, plan, inputs, store);
                let out = &mut dst[..n];
                match instr.op {
                    OpCode::MapScale => exec::map_scale(src, instr.imm, out),
                    OpCode::MapAddScalar => exec::map_add_scalar(src, instr.imm, out),
                    OpCode::MapRelu => exec::map_relu(src, out),
                    OpCode::MapGelu => exec::map_gelu(src, out),
                    OpCode::MapSigmoid => exec::map_sigmoid(src, out),
                    OpCode::MapTanh => exec::map_tanh(src, out),
                    OpCode::MapAbs => exec::map_abs(src, out),
                    OpCode::Copy => exec::copy(src, out),
                    _ => unreachable!(),
                }
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [numel]; imm = alpha; destination is read-modify-write
        OpCode::Axpy => {
            let n = du(0);
            let mut dst = take(slots, instr.dsts[0]);
            {
                let src = arg(instr.args[0], n, slots, plan, inputs, store);
                exec::axpy(&mut dst[..n], instr.imm, src);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [numel]; imm = value; no args
        OpCode::Fill => {
            let n = du(0);
            let mut dst = take(slots, instr.dsts[0]);
            exec::fill(&mut dst[..n], instr.imm);
            put(slots, instr.dsts[0], dst);
        }
        // dims [m, k, n] in dispatch order
        OpCode::GemmNn | OpCode::GemmNt | OpCode::GemmTn => {
            let (m, k, n) = (du(0), du(1), du(2));
            let (an, bn, trans) = match instr.op {
                OpCode::GemmNn => (m * k, k * n, exec::Trans::Nn),
                OpCode::GemmNt => (m * k, n * k, exec::Trans::Nt),
                OpCode::GemmTn => (k * m, k * n, exec::Trans::Tn),
                _ => unreachable!(),
            };
            let mut dst = take(slots, instr.dsts[0]);
            {
                let a = arg(instr.args[0], an, slots, plan, inputs, store);
                let b = arg(instr.args[1], bn, slots, plan, inputs, store);
                exec::gemm(trans, m, k, n, a, b, &mut dst[..m * n]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [bt, m, k, n] in dispatch order
        OpCode::BmmNn | OpCode::BmmNt | OpCode::BmmTn => {
            let (bt, m, k, n) = (du(0), du(1), du(2), du(3));
            let (an, bn, trans) = match instr.op {
                OpCode::BmmNn => (bt * m * k, bt * k * n, exec::Trans::Nn),
                OpCode::BmmNt => (bt * m * k, bt * n * k, exec::Trans::Nt),
                OpCode::BmmTn => (bt * k * m, bt * k * n, exec::Trans::Tn),
                _ => unreachable!(),
            };
            let mut dst = take(slots, instr.dsts[0]);
            {
                let a = arg(instr.args[0], an, slots, plan, inputs, store);
                let b = arg(instr.args[1], bn, slots, plan, inputs, store);
                exec::bmm(trans, bt, m, k, n, a, b, &mut dst[..bt * m * n]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [bsz, k, d, l]: args [a: k*d, x: bsz*l*d] -> dst bsz*k*l
        OpCode::BcastNt => {
            let (bsz, k, dd, l) = (du(0), du(1), du(2), du(3));
            let mut dst = take(slots, instr.dsts[0]);
            {
                let a = arg(instr.args[0], k * dd, slots, plan, inputs, store);
                let x = arg(instr.args[1], bsz * l * dd, slots, plan, inputs, store);
                exec::bcast_nt(bsz, k, dd, l, a, x, &mut dst[..bsz * k * l]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [bsz, k, l, d]: args [g: bsz*k*l, x: bsz*l*d] -> dsts [da: k*d, tmp: k*d]
        OpCode::BcastNtDa => {
            let (bsz, k, l, dd) = (du(0), du(1), du(2), du(3));
            let mut da = take(slots, instr.dsts[0]);
            let mut tmp = take(slots, instr.dsts[1]);
            {
                let g = arg(instr.args[0], bsz * k * l, slots, plan, inputs, store);
                let x = arg(instr.args[1], bsz * l * dd, slots, plan, inputs, store);
                exec::bcast_nt_da(g, x, bsz, k, l, dd, &mut da[..k * dd], &mut tmp[..k * dd]);
            }
            put(slots, instr.dsts[0], da);
            put(slots, instr.dsts[1], tmp);
        }
        // dims [bsz, k, l, d]: args [g: bsz*k*l, a: k*d] -> dst bsz*l*d
        OpCode::BcastNtDx => {
            let (bsz, k, l, dd) = (du(0), du(1), du(2), du(3));
            let mut dst = take(slots, instr.dsts[0]);
            {
                let g = arg(instr.args[0], bsz * k * l, slots, plan, inputs, store);
                let a = arg(instr.args[1], k * dd, slots, plan, inputs, store);
                exec::bcast_nt_dx(g, a, bsz, k, l, dd, &mut dst[..bsz * l * dd]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [route_src, b, k, d, l]: arg [head: b*k*d] -> dst b*l*d
        OpCode::RouteGather => {
            let (src, b, k, dd, l) = (du(0), du(1), du(2), du(3), du(4));
            let mut dst = take(slots, instr.dsts[0]);
            {
                let head = arg(instr.args[0], b * k * dd, slots, plan, inputs, store);
                exec::route_gather(head, routes[src], b, k, dd, l, &mut dst[..b * l * dd]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [route_src, b, l, d, k]: arg [g: b*l*d] -> dst b*k*d
        OpCode::RouteScatter => {
            let (src, b, l, dd, k) = (du(0), du(1), du(2), du(3), du(4));
            let mut dst = take(slots, instr.dsts[0]);
            {
                let g = arg(instr.args[0], b * l * dd, slots, plan, inputs, store);
                exec::route_scatter_add(g, routes[src], b, l, dd, k, &mut dst[..b * k * dd]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [rows, n]: args [x: rows*n, row: n]
        OpCode::AddRowBcast => {
            let (rows, n) = (du(0), du(1));
            let mut dst = take(slots, instr.dsts[0]);
            {
                let x = arg(instr.args[0], rows * n, slots, plan, inputs, store);
                let row = arg(instr.args[1], n, slots, plan, inputs, store);
                exec::add_row_broadcast(x, row, n, &mut dst[..rows * n]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [rows, n]: arg [g: rows*n] -> dst n
        OpCode::BiasGrad => {
            let (rows, n) = (du(0), du(1));
            let mut dst = take(slots, instr.dsts[0]);
            {
                let g = arg(instr.args[0], rows * n, slots, plan, inputs, store);
                exec::bias_grad(g, rows, n, &mut dst[..n]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [rows, n]
        OpCode::Softmax => {
            let (rows, n) = (du(0), du(1));
            let mut dst = take(slots, instr.dsts[0]);
            {
                let src = arg(instr.args[0], rows * n, slots, plan, inputs, store);
                exec::softmax_last(src, n, &mut dst[..rows * n]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [rows, n]: args [y, g]
        OpCode::SoftmaxBwd => {
            let (rows, n) = (du(0), du(1));
            let mut dst = take(slots, instr.dsts[0]);
            {
                let y = arg(instr.args[0], rows * n, slots, plan, inputs, store);
                let g = arg(instr.args[1], rows * n, slots, plan, inputs, store);
                exec::softmax_last_bwd(y, g, n, &mut dst[..rows * n]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [rows, n]; imm = eps: args [x, gamma, beta] -> dsts [y, cache]
        OpCode::LayerNormFwd => {
            let (rows, n) = (du(0), du(1));
            let mut y = take(slots, instr.dsts[0]);
            let mut cache = take(slots, instr.dsts[1]);
            {
                let x = arg(instr.args[0], rows * n, slots, plan, inputs, store);
                let gamma = arg(instr.args[1], n, slots, plan, inputs, store);
                let beta = arg(instr.args[2], n, slots, plan, inputs, store);
                exec::layer_norm_fwd(
                    x,
                    n,
                    gamma,
                    beta,
                    instr.imm,
                    &mut y[..rows * n],
                    &mut cache[..rows * 2],
                );
            }
            put(slots, instr.dsts[0], y);
            put(slots, instr.dsts[1], cache);
        }
        // dims [rows, n]: args [x, gamma, cache, g] -> dsts [dx, dgamma, dbeta]
        OpCode::LayerNormBwd => {
            let (rows, n) = (du(0), du(1));
            let mut dx = take(slots, instr.dsts[0]);
            let mut dgamma = take(slots, instr.dsts[1]);
            let mut dbeta = take(slots, instr.dsts[2]);
            {
                let x = arg(instr.args[0], rows * n, slots, plan, inputs, store);
                let gamma = arg(instr.args[1], n, slots, plan, inputs, store);
                let cache = arg(instr.args[2], rows * 2, slots, plan, inputs, store);
                let g = arg(instr.args[3], rows * n, slots, plan, inputs, store);
                exec::layer_norm_bwd(
                    x,
                    n,
                    gamma,
                    cache,
                    g,
                    &mut dx[..rows * n],
                    &mut dgamma[..n],
                    &mut dbeta[..n],
                );
            }
            put(slots, instr.dsts[0], dx);
            put(slots, instr.dsts[1], dgamma);
            put(slots, instr.dsts[2], dbeta);
        }
        // dims [m, n] of the source
        OpCode::Transpose2 => {
            let (m, n) = (du(0), du(1));
            let mut dst = take(slots, instr.dsts[0]);
            {
                let src = arg(instr.args[0], m * n, slots, plan, inputs, store);
                exec::transpose2(src, m, n, &mut dst[..m * n]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [b, m, n] of the source
        OpCode::TransposeLast2 => {
            let (b, m, n) = (du(0), du(1), du(2));
            let mut dst = take(slots, instr.dsts[0]);
            {
                let src = arg(instr.args[0], b * m * n, slots, plan, inputs, store);
                exec::transpose_last2(src, b, m, n, &mut dst[..b * m * n]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [a, b, c] of the source
        OpCode::Swap01 => {
            let (a0, b0, c0) = (du(0), du(1), du(2));
            let mut dst = take(slots, instr.dsts[0]);
            {
                let src = arg(instr.args[0], a0 * b0 * c0, slots, plan, inputs, store);
                exec::swap01(src, a0, b0, c0, &mut dst[..a0 * b0 * c0]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [rows, na, nb]: args [a: rows*na, b: rows*nb]
        OpCode::ConcatLast => {
            let (rows, na, nb) = (du(0), du(1), du(2));
            let mut dst = take(slots, instr.dsts[0]);
            {
                let a = arg(instr.args[0], rows * na, slots, plan, inputs, store);
                let b = arg(instr.args[1], rows * nb, slots, plan, inputs, store);
                exec::concat_last(a, b, na, nb, rows, &mut dst[..rows * (na + nb)]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [rows, n, from, to]: arg [src: rows*n] -> dst rows*(to-from)
        OpCode::SliceCols => {
            let (rows, n, from, to) = (du(0), du(1), du(2), du(3));
            let mut dst = take(slots, instr.dsts[0]);
            {
                let src = arg(instr.args[0], rows * n, slots, plan, inputs, store);
                exec::slice_cols(src, n, from, to, rows, &mut dst[..rows * (to - from)]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [rows, n, start, w]: arg [g: rows*w] -> dst rows*n
        OpCode::ScatterCols => {
            let (rows, n, start, w) = (du(0), du(1), du(2), du(3));
            let mut dst = take(slots, instr.dsts[0]);
            {
                let g = arg(instr.args[0], rows * w, slots, plan, inputs, store);
                exec::scatter_cols(g, n, start, w, rows, &mut dst[..rows * n]);
            }
            put(slots, instr.dsts[0], dst);
        }
        // dims [numel] -> dst 1
        OpCode::MeanAll | OpCode::SumAll => {
            let n = du(0);
            let mut dst = take(slots, instr.dsts[0]);
            {
                let src = arg(instr.args[0], n, slots, plan, inputs, store);
                dst[0] = match instr.op {
                    OpCode::MeanAll => exec::mean_all(src),
                    OpCode::SumAll => exec::sum_all(src),
                    _ => unreachable!(),
                };
            }
            put(slots, instr.dsts[0], dst);
        }
    }
}

/// Replays one full training step — forward, backward and optimizer updates
/// — returning the loss.
///
/// The pool-lookup delta across the whole replay (kernels *and* updates) is
/// published as `plan/pool_lookups_steady`; on the steady-state path it is
/// zero, which is the whole point of pre-resolved slots.
pub(crate) fn replay_train<O: Optimizer>(
    plan: &Plan,
    slots: &mut [Vec<f32>],
    inputs: &[&[f32]],
    routes: &[&[u32]],
    store: &mut ParamStore,
    opt: &mut O,
) -> f32 {
    focus_trace::counter_add("plan/replays", 1);
    let lookups0 = pool::lookups();
    {
        focus_trace::span!("plan/replay");
        for instr in &plan.instrs {
            exec_instr(instr, plan, slots, inputs, routes, store);
        }
    }
    let loss = slots[plan.loss_slot.expect("replay_train on a forward plan") as usize][0];
    {
        focus_trace::span!("autograd/optimizer");
        opt.begin_step(plan.params.len());
        for u in &plan.updates {
            // Move the gradient slot into a Tensor without touching the
            // pool: `from_vec`/`into_vec` wrap and unwrap the same buffer,
            // and the emptied slot Vec has capacity 0, so nothing is
            // reclaimed when it is shadowed.
            let mut gv = take(slots, u.grad_slot);
            let cap = gv.len();
            let numel: usize = u.dims.iter().product();
            gv.truncate(numel);
            let gt = Tensor::from_vec(gv, &u.dims);
            opt.update(u.param as usize, store.tensor_mut_at(u.param as usize), &gt);
            let mut gv = gt.into_vec();
            gv.resize(cap, 0.0);
            put(slots, u.grad_slot, gv);
        }
    }
    focus_trace::counter_set("plan/pool_lookups_steady", pool::lookups() - lookups0);
    loss
}

/// Replays a forward-only plan, returning the output tensor.
pub(crate) fn replay_forward(
    plan: &Plan,
    slots: &mut [Vec<f32>],
    inputs: &[&[f32]],
    routes: &[&[u32]],
    store: &ParamStore,
) -> Tensor {
    focus_trace::counter_add("plan/replays", 1);
    let lookups0 = pool::lookups();
    {
        focus_trace::span!("plan/replay");
        for instr in &plan.instrs {
            exec_instr(instr, plan, slots, inputs, routes, store);
        }
    }
    let (slot, dims) = plan.output.as_ref().expect("replay_forward on a train plan");
    let numel: usize = dims.iter().product();
    let out = Tensor::from_vec(slots[*slot as usize][..numel].to_vec(), dims);
    focus_trace::counter_set("plan/pool_lookups_steady", pool::lookups() - lookups0);
    out
}
