//! The reverse pass: one adjoint rule per op.

use crate::graph::{gelu_bwd, Graph, Op, Var};
use focus_tensor::Tensor;

impl Graph {
    /// Runs reverse-mode differentiation from the scalar node `loss`.
    ///
    /// Gradients are accumulated for every node on a path from a
    /// gradient-requiring leaf to `loss`; read them with [`Graph::grad`].
    /// Calling `backward` replaces any gradients from a previous call.
    ///
    /// # Panics
    /// If `loss` is not a single-element tensor.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward requires a scalar loss, got shape {}",
            self.nodes[loss.0].value.shape()
        );
        // Reuse the gradient arena across calls (and across `Graph::reset`):
        // clear + resize keeps the Vec's capacity.
        self.grads.clear();
        self.grads.resize(self.nodes.len(), None);
        self.grads[loss.0] = Some(Tensor::full(self.nodes[loss.0].value.dims(), 1.0));

        for i in (0..self.nodes.len()).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(g) = self.grads[i].take() else {
                continue;
            };
            self.apply_rule(i, &g);
            self.grads[i] = Some(g);
        }
    }

    /// Accumulates `delta` into the gradient slot of `v`, if `v` needs one.
    fn accum(&mut self, v: Var, delta: Tensor) {
        if !self.nodes[v.0].requires_grad {
            return;
        }
        match &mut self.grads[v.0] {
            Some(existing) => existing.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn apply_rule(&mut self, i: usize, g: &Tensor) {
        let op = self.nodes[i].op.clone();
        match op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.accum(a, g.clone());
                self.accum(b, g.clone());
            }
            Op::Sub(a, b) => {
                self.accum(a, g.clone());
                self.accum(b, g.scale(-1.0));
            }
            Op::Mul(a, b) => {
                let da = g.mul(&self.nodes[b.0].value);
                let db = g.mul(&self.nodes[a.0].value);
                self.accum(a, da);
                self.accum(b, db);
            }
            Op::Neg(a) => self.accum(a, g.scale(-1.0)),
            Op::Scale(a, c) => self.accum(a, g.scale(c)),
            Op::AddScalar(a) => self.accum(a, g.clone()),
            Op::Matmul(a, b) => {
                // y = a·b  ⇒  da = g·bᵀ, db = aᵀ·g
                let da = g.matmul_nt(&self.nodes[b.0].value);
                let db = self.nodes[a.0].value.matmul_tn(g);
                self.accum(a, da);
                self.accum(b, db);
            }
            Op::Bmm(a, b) => {
                let da = g.bmm_nt(&self.nodes[b.0].value);
                let db = self.nodes[a.0].value.bmm_tn(g);
                self.accum(a, da);
                self.accum(b, db);
            }
            Op::RouteOneHot { head, indices } => {
                // Indices are data; only the routed summaries get a gradient:
                // dhead[b, j, :] = Σ_{i: idx=j} g[b, i, :], ascending i — the
                // dense `Aᵀ·g` chain, without materialising A or computing dA.
                let k = self.nodes[head.0].value.dims()[1];
                self.accum(head, focus_tensor::route::route_scatter_add(g, &indices, k));
            }
            Op::MatmulBroadcastNt(a, x) => {
                // out[b] = a · x[b]ᵀ, a: [k,d], x: [B,l,d], g: [B,k,l]
                // da += Σ_b g[b]·x[b];  dx[b] = g[b]ᵀ·a
                let aval = self.nodes[a.0].value.clone();
                let xval = self.nodes[x.0].value.clone();
                let (bsz, l, d) = (xval.dims()[0], xval.dims()[1], xval.dims()[2]);
                let k = aval.dims()[0];
                if self.nodes[a.0].requires_grad {
                    let mut da = Tensor::zeros(&[k, d]);
                    for b in 0..bsz {
                        let gb = g.index_axis0(b); // [k, l]
                        let xb = xval.index_axis0(b); // [l, d]
                        da.axpy(1.0, &gb.matmul(&xb));
                    }
                    self.accum(a, da);
                }
                if self.nodes[x.0].requires_grad {
                    let mut dx = Tensor::zeros(&[bsz, l, d]);
                    for b in 0..bsz {
                        let gb = g.index_axis0(b); // [k, l]
                        let slice = gb.matmul_tn(&aval); // gbᵀ·a → [l, d]
                        dx.data_mut()[b * l * d..(b + 1) * l * d].copy_from_slice(slice.data());
                    }
                    self.accum(x, dx);
                }
            }
            Op::Transpose2(a) => self.accum(a, g.transpose()),
            Op::TransposeLast2(a) => self.accum(a, g.transpose_last2()),
            Op::SwapAxes01(a) => self.accum(a, crate::graph::swap01(g)),
            Op::Reshape(a) => {
                let dims = self.nodes[a.0].value.dims().to_vec();
                self.accum(a, g.reshape(&dims));
            }
            Op::AddRowBroadcast(x, bias) => {
                self.accum(x, g.clone());
                if self.nodes[bias.0].requires_grad {
                    let n = g.shape().last_dim();
                    let rows = g.shape().leading();
                    let mut db = vec![0.0f32; n];
                    for r in 0..rows {
                        for (o, &v) in db.iter_mut().zip(&g.data()[r * n..(r + 1) * n]) {
                            *o += v;
                        }
                    }
                    let dims = self.nodes[bias.0].value.dims().to_vec();
                    self.accum(bias, Tensor::from_vec(db, &dims));
                }
            }
            Op::SoftmaxLast(a) => {
                // dx = y ⊙ (g − ⟨g, y⟩_row)
                let y = &self.nodes[i].value;
                let n = y.shape().last_dim();
                let rows = y.shape().leading();
                let mut dx = Tensor::zeros(y.dims());
                for r in 0..rows {
                    let yr = &y.data()[r * n..(r + 1) * n];
                    let gr = &g.data()[r * n..(r + 1) * n];
                    let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                    for (o, (yv, gv)) in dx.data_mut()[r * n..(r + 1) * n]
                        .iter_mut()
                        .zip(yr.iter().zip(gr))
                    {
                        *o = yv * (gv - dot);
                    }
                }
                self.accum(a, dx);
            }
            Op::LayerNormLast { x, gamma, beta, cache } => {
                let xval = self.nodes[x.0].value.clone();
                let gval = self.nodes[gamma.0].value.clone();
                let n = xval.shape().last_dim();
                let rows = xval.shape().leading();
                let (means, rstds) = cache.split_at(rows);

                let mut dgamma = vec![0.0f32; n];
                let mut dbeta = vec![0.0f32; n];
                let mut dx = Tensor::zeros(xval.dims());
                for r in 0..rows {
                    let xr = &xval.data()[r * n..(r + 1) * n];
                    let gr = &g.data()[r * n..(r + 1) * n];
                    let (mu, rstd) = (means[r], rstds[r]);
                    // dŷ = g ⊙ γ; accumulate row statistics for dx.
                    let mut sum_dy = 0.0f32;
                    let mut sum_dy_xhat = 0.0f32;
                    for j in 0..n {
                        let xhat = (xr[j] - mu) * rstd;
                        let dy = gr[j] * gval.data()[j];
                        sum_dy += dy;
                        sum_dy_xhat += dy * xhat;
                        dgamma[j] += gr[j] * xhat;
                        dbeta[j] += gr[j];
                    }
                    let inv_n = 1.0 / n as f32;
                    for j in 0..n {
                        let xhat = (xr[j] - mu) * rstd;
                        let dy = gr[j] * gval.data()[j];
                        dx.data_mut()[r * n + j] =
                            rstd * (dy - sum_dy * inv_n - xhat * sum_dy_xhat * inv_n);
                    }
                }
                self.accum(x, dx);
                if self.nodes[gamma.0].requires_grad {
                    let dims = self.nodes[gamma.0].value.dims().to_vec();
                    self.accum(gamma, Tensor::from_vec(dgamma, &dims));
                }
                if self.nodes[beta.0].requires_grad {
                    let dims = self.nodes[beta.0].value.dims().to_vec();
                    self.accum(beta, Tensor::from_vec(dbeta, &dims));
                }
            }
            Op::Relu(a) => {
                let x = &self.nodes[a.0].value;
                let dx = Tensor::from_vec(
                    x.data()
                        .iter()
                        .zip(g.data())
                        .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
                        .collect(),
                    x.dims(),
                );
                self.accum(a, dx);
            }
            Op::Gelu(a) => {
                let x = &self.nodes[a.0].value;
                let dx = Tensor::from_vec(
                    x.data()
                        .iter()
                        .zip(g.data())
                        .map(|(&x, &g)| g * gelu_bwd(x))
                        .collect(),
                    x.dims(),
                );
                self.accum(a, dx);
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[i].value;
                let dx = Tensor::from_vec(
                    y.data()
                        .iter()
                        .zip(g.data())
                        .map(|(&y, &g)| g * y * (1.0 - y))
                        .collect(),
                    y.dims(),
                );
                self.accum(a, dx);
            }
            Op::Tanh(a) => {
                let y = &self.nodes[i].value;
                let dx = Tensor::from_vec(
                    y.data()
                        .iter()
                        .zip(g.data())
                        .map(|(&y, &g)| g * (1.0 - y * y))
                        .collect(),
                    y.dims(),
                );
                self.accum(a, dx);
            }
            Op::Abs(a) => {
                let x = &self.nodes[a.0].value;
                let dx = Tensor::from_vec(
                    x.data()
                        .iter()
                        .zip(g.data())
                        .map(|(&x, &g)| {
                            if x > 0.0 {
                                g
                            } else if x < 0.0 {
                                -g
                            } else {
                                0.0
                            }
                        })
                        .collect(),
                    x.dims(),
                );
                self.accum(a, dx);
            }
            Op::ConcatLast(a, b, split) => {
                let (ga, gb) = g.split_last(split);
                // split_last keeps the leading dims; reshape to exact input dims
                // (identical by construction).
                self.accum(a, ga);
                self.accum(b, gb);
            }
            Op::SliceLast(a, start, end) => {
                // Scatter the gradient back into a zero tensor of the input
                // shape.
                let in_dims = self.nodes[a.0].value.dims().to_vec();
                let n = *in_dims.last().expect("rank >= 1");
                let width = end - start;
                let rows = self.nodes[a.0].value.shape().leading();
                let mut dx = Tensor::zeros(&in_dims);
                for r in 0..rows {
                    dx.data_mut()[r * n + start..r * n + end]
                        .copy_from_slice(&g.data()[r * width..(r + 1) * width]);
                }
                self.accum(a, dx);
            }
            Op::MeanAll(a) => {
                let n = self.nodes[a.0].value.numel();
                let dims = self.nodes[a.0].value.dims().to_vec();
                self.accum(a, Tensor::full(&dims, g.item() / n as f32));
            }
            Op::SumAll(a) => {
                let dims = self.nodes[a.0].value.dims().to_vec();
                self.accum(a, Tensor::full(&dims, g.item()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Graph;
    use focus_tensor::Tensor;

    #[test]
    fn linear_regression_gradient() {
        // L = mean((w·x - y)²); with w = 0, x = [1, 2], y = [1, 2]:
        // dL/dw = mean over samples of 2(wx−y)x = -(1·1 + 2·2) = -5.
        let mut g = Graph::new();
        let w = g.leaf(Tensor::zeros(&[1, 1]));
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
        let y = g.constant(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
        let pred = g.matmul(w, x);
        let loss = g.mse(pred, y);
        g.backward(loss);
        let dw = g.grad(w).expect("w is a trainable leaf in the graph");
        assert!((dw.data()[0] + 5.0).abs() < 1e-5);
    }

    #[test]
    fn gradient_accumulates_across_paths() {
        // L = mean(x + x) ⇒ dL/dx = 2/n each.
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let s = g.add(x, x);
        let loss = g.mean_all(s);
        g.backward(loss);
        assert_eq!(g.grad(x).expect("x is a trainable leaf in the graph").data(), &[1.0, 1.0]);
    }

    #[test]
    fn constants_get_no_gradient() {
        let mut g = Graph::new();
        let c = g.constant(Tensor::ones(&[2]));
        let p = g.leaf(Tensor::ones(&[2]));
        let s = g.mul(c, p);
        let loss = g.sum_all(s);
        g.backward(loss);
        assert!(g.grad(c).is_none());
        assert_eq!(g.grad(p).expect("p is a trainable leaf in the graph").data(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[2]));
        g.backward(x);
    }

    #[test]
    fn second_backward_replaces_gradients() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2.0], &[1]));
        let sq = g.mul(x, x);
        let l1 = g.mean_all(sq);
        g.backward(l1);
        let first = g.grad(x).expect("x is a trainable leaf in the graph").data()[0];
        assert!((first - 4.0).abs() < 1e-6);
        // Extend the graph and backward from a different loss: gradients are
        // replaced, not accumulated across calls.
        let tripled = g.scale(sq, 3.0);
        let l2 = g.mean_all(tripled);
        g.backward(l2);
        let second = g.grad(x).expect("x is a trainable leaf in the graph").data()[0];
        assert!((second - 12.0).abs() < 1e-6, "got {second}");
    }

    #[test]
    fn disconnected_leaf_has_no_gradient() {
        let mut g = Graph::new();
        let used = g.leaf(Tensor::ones(&[2]));
        let unused = g.leaf(Tensor::ones(&[2]));
        let loss = g.sum_all(used);
        g.backward(loss);
        assert!(g.grad(used).is_some());
        assert!(g.grad(unused).is_none());
    }

    #[test]
    fn mae_gradient_is_sign_over_n() {
        let mut g = Graph::new();
        let p = g.leaf(Tensor::from_vec(vec![2.0, -1.0, 0.0], &[3]));
        let t = g.constant(Tensor::zeros(&[3]));
        let loss = g.mae(p, t);
        g.backward(loss);
        let gr = g.grad(p).expect("p is a trainable leaf in the graph");
        let third = 1.0 / 3.0;
        assert!((gr.data()[0] - third).abs() < 1e-6);
        assert!((gr.data()[1] + third).abs() < 1e-6);
        assert_eq!(gr.data()[2], 0.0);
    }
}
