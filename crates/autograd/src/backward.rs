//! The reverse pass: one adjoint rule per op.
//!
//! Each rule has two implementations selected by [`crate::set_fused`]: the
//! fused path calls the single-pass parallel kernels in
//! [`focus_tensor::fused`] (and the pooled elementwise helpers), the
//! reference path keeps the original serial loops. The parity tests pin the
//! two bitwise-equal; the reference path also serves as the "before"
//! configuration of the train-step benchmark.

use crate::graph::{gelu_bwd, Graph, Op, Var};
use focus_tensor::{fused, par, Tensor};

impl Graph {
    /// Runs reverse-mode differentiation from the scalar node `loss`.
    ///
    /// Gradients are accumulated for every node on a path from a
    /// gradient-requiring leaf to `loss`; read them with [`Graph::grad`].
    /// Calling `backward` replaces any gradients from a previous call.
    ///
    /// # Panics
    /// If `loss` is not a single-element tensor.
    pub fn backward(&mut self, loss: Var) {
        focus_trace::span!("autograd/backward");
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward requires a scalar loss, got shape {}",
            self.nodes[loss.0].value.shape()
        );
        // Reuse the gradient arena across calls (and across `Graph::reset`):
        // clear + resize keeps the Vec's capacity.
        self.grads.clear();
        self.grads.resize(self.nodes.len(), None);
        self.grads[loss.0] = Some(Tensor::full(self.nodes[loss.0].value.dims(), 1.0));

        for i in (0..self.nodes.len()).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(g) = self.grads[i].take() else {
                continue;
            };
            self.apply_rule(i, &g);
            self.grads[i] = Some(g);
        }
    }

    /// Accumulates `delta` into the gradient slot of `v`, if `v` needs one.
    fn accum(&mut self, v: Var, delta: Tensor) {
        if !self.nodes[v.0].requires_grad {
            return;
        }
        match &mut self.grads[v.0] {
            Some(existing) => existing.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    /// Accumulates `alpha · g` into the gradient slot of `v` without
    /// materialising the scaled temporary when a slot already exists (fused
    /// path only — the reference path always builds it, like the pre-fusion
    /// engine did). `axpy(alpha, g)` and `axpy(1.0, scale(alpha, g))` round
    /// each element once in the same place, so the bits agree.
    fn accum_scaled(&mut self, v: Var, alpha: f32, g: &Tensor) {
        // focus-lint: allow(float-hygiene) -- exact-literal test picks memcpy over a multiply pass; `scale(1.0)` yields the same bits
        let copy = |g: &Tensor| if alpha == 1.0 { g.clone() } else { g.scale(alpha) };
        if !crate::fused_enabled() {
            self.accum(v, copy(g));
            return;
        }
        if !self.nodes[v.0].requires_grad {
            return;
        }
        match &mut self.grads[v.0] {
            Some(existing) => existing.axpy(alpha, g),
            slot @ None => *slot = Some(copy(g)),
        }
    }

    fn apply_rule(&mut self, i: usize, g: &Tensor) {
        // Take the op out of the arena for the duration of the rule so it can
        // be matched by reference — no per-node clone of cached state (the
        // LayerNorm statistics, the routing indices) on every backward.
        let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
        self.run_rule(i, &op, g);
        self.nodes[i].op = op;
    }

    fn run_rule(&mut self, i: usize, op: &Op, g: &Tensor) {
        match op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.accum_scaled(*a, 1.0, g);
                self.accum_scaled(*b, 1.0, g);
            }
            Op::Sub(a, b) => {
                self.accum_scaled(*a, 1.0, g);
                self.accum_scaled(*b, -1.0, g);
            }
            Op::Mul(a, b) => {
                let da = g.mul(&self.nodes[b.0].value);
                let db = g.mul(&self.nodes[a.0].value);
                self.accum(*a, da);
                self.accum(*b, db);
            }
            Op::Neg(a) => self.accum_scaled(*a, -1.0, g),
            Op::Scale(a, c) => self.accum_scaled(*a, *c, g),
            Op::AddScalar(a, _) => self.accum_scaled(*a, 1.0, g),
            Op::Matmul(a, b) => {
                // y = a·b  ⇒  da = g·bᵀ, db = aᵀ·g. On the fused path a
                // product whose input doesn't require grad (the data side of
                // an embedding, say) is skipped outright — `accum` would drop
                // it unused, after paying for the GEMM.
                let fused_on = crate::fused_enabled();
                if !fused_on || self.nodes[a.0].requires_grad {
                    let da = g.matmul_nt(&self.nodes[b.0].value);
                    self.accum(*a, da);
                }
                if !fused_on || self.nodes[b.0].requires_grad {
                    let db = self.nodes[a.0].value.matmul_tn(g);
                    self.accum(*b, db);
                }
            }
            Op::Bmm(a, b) => {
                let fused_on = crate::fused_enabled();
                if !fused_on || self.nodes[a.0].requires_grad {
                    let da = g.bmm_nt(&self.nodes[b.0].value);
                    self.accum(*a, da);
                }
                if !fused_on || self.nodes[b.0].requires_grad {
                    let db = self.nodes[a.0].value.bmm_tn(g);
                    self.accum(*b, db);
                }
            }
            Op::BmmNt(a, b) => {
                // y[b] = a[b]·b[b]ᵀ  ⇒  da = g·b, db = gᵀ·a
                let fused_on = crate::fused_enabled();
                if !fused_on || self.nodes[a.0].requires_grad {
                    let da = g.bmm(&self.nodes[b.0].value);
                    self.accum(*a, da);
                }
                if !fused_on || self.nodes[b.0].requires_grad {
                    let db = g.bmm_tn(&self.nodes[a.0].value);
                    self.accum(*b, db);
                }
            }
            Op::RouteOneHot { head, indices } => {
                // Indices are data; only the routed summaries get a gradient:
                // dhead[b, j, :] = Σ_{i: idx=j} g[b, i, :], ascending i — the
                // dense `Aᵀ·g` chain, without materialising A or computing dA.
                let k = self.nodes[head.0].value.dims()[1];
                self.accum(*head, focus_tensor::route::route_scatter_add(g, indices, k));
            }
            Op::MatmulBroadcastNt(a, x) => {
                // out[b] = a · x[b]ᵀ, a: [k,d], x: [B,l,d], g: [B,k,l]
                // da += Σ_b g[b]·x[b];  dx[b] = g[b]ᵀ·a
                let (a, x) = (*a, *x);
                let (da, dx) = {
                    let aval = &self.nodes[a.0].value;
                    let xval = &self.nodes[x.0].value;
                    let (bsz, l, d) = (xval.dims()[0], xval.dims()[1], xval.dims()[2]);
                    let k = aval.dims()[0];
                    let fused_on = crate::fused_enabled();
                    let da = self.nodes[a.0].requires_grad.then(|| {
                        let mut da = Tensor::zeros(&[k, d]);
                        if fused_on {
                            // Per-batch GEMMs on slices of `g`/`x` — no index
                            // copies. The per-batch product still lands in a
                            // (reused) zeroed temporary before the axpy merge,
                            // preserving the reference accumulation chain
                            // `da += (gᵦ·xᵦ)` bit for bit.
                            let mut tmp = Tensor::zeros(&[k, d]);
                            for b in 0..bsz {
                                tmp.data_mut().fill(0.0);
                                focus_tensor::raw::gemm(
                                    k,
                                    l,
                                    d,
                                    &g.data()[b * k * l..(b + 1) * k * l],
                                    &xval.data()[b * l * d..(b + 1) * l * d],
                                    tmp.data_mut(),
                                );
                                da.axpy(1.0, &tmp);
                            }
                        } else {
                            for b in 0..bsz {
                                let gb = g.index_axis0(b); // [k, l]
                                let xb = xval.index_axis0(b); // [l, d]
                                da.axpy(1.0, &gb.matmul(&xb));
                            }
                        }
                        da
                    });
                    let dx = self.nodes[x.0].requires_grad.then(|| {
                        let mut dx = Tensor::zeros(&[bsz, l, d]);
                        if fused_on {
                            // gᵦᵀ·a written straight into the batched output:
                            // the same zero-initialised gemm_tn chain as the
                            // reference's temporary-then-copy. Delegates to
                            // the plan VM's slice mirror, which parallelises
                            // over the disjoint per-batch outputs.
                            focus_tensor::exec::bcast_nt_dx(
                                g.data(),
                                aval.data(),
                                bsz,
                                k,
                                l,
                                d,
                                dx.data_mut(),
                            );
                        } else {
                            for b in 0..bsz {
                                let gb = g.index_axis0(b); // [k, l]
                                let slice = gb.matmul_tn(aval); // gbᵀ·a → [l, d]
                                dx.data_mut()[b * l * d..(b + 1) * l * d]
                                    .copy_from_slice(slice.data());
                            }
                        }
                        dx
                    });
                    (da, dx)
                };
                if let Some(da) = da {
                    self.accum(a, da);
                }
                if let Some(dx) = dx {
                    self.accum(x, dx);
                }
            }
            Op::Transpose2(a) => self.accum(*a, g.transpose()),
            Op::TransposeLast2(a) => self.accum(*a, g.transpose_last2()),
            Op::SwapAxes01(a) => self.accum(*a, crate::graph::swap01(g)),
            Op::Reshape(a) => {
                // A reshape preserves the flat element order, so on the fused
                // path an existing accumulator takes the gradient directly —
                // no reshaped copy. A fresh slot still materialises one (it
                // owns the tensor), matching the reference bit-for-bit.
                if !crate::fused_enabled() {
                    let dg = g.reshape(self.nodes[a.0].value.dims());
                    self.accum(*a, dg);
                } else if self.nodes[a.0].requires_grad {
                    match &mut self.grads[a.0] {
                        Some(existing) => existing.axpy_flat(1.0, g),
                        slot @ None => *slot = Some(g.reshape(self.nodes[a.0].value.dims())),
                    }
                }
            }
            Op::AddRowBroadcast(x, bias) => {
                self.accum_scaled(*x, 1.0, g);
                if self.nodes[bias.0].requires_grad {
                    let n = g.shape().last_dim();
                    let rows = g.shape().leading();
                    let db = if crate::fused_enabled() {
                        // Column-parallel: each bias element keeps the serial
                        // row-ascending accumulation chain, so the split is
                        // bitwise-identical to the reference at any thread
                        // count.
                        let mut db = Tensor::zeros(self.nodes[bias.0].value.dims());
                        let col_grain = (16 * 1024 / rows.max(1)).max(1);
                        par::parallel_rows(db.data_mut(), 1, col_grain, 1, |col0, chunk| {
                            // Row-major sweep, chunk as accumulator: each
                            // column keeps its ascending-row chain.
                            let w = chunk.len();
                            for r in 0..rows {
                                let gr = &g.data()[r * n + col0..r * n + col0 + w];
                                for (o, &v) in chunk.iter_mut().zip(gr) {
                                    *o += v;
                                }
                            }
                        });
                        db
                    } else {
                        let mut db = vec![0.0f32; n]; // focus-lint: allow(pool-bypass) -- reference path, deliberately heap-allocated for parity with pre-pool code
                        for r in 0..rows {
                            for (o, &v) in db.iter_mut().zip(&g.data()[r * n..(r + 1) * n]) {
                                *o += v;
                            }
                        }
                        Tensor::from_vec(db, self.nodes[bias.0].value.dims())
                    };
                    self.accum(*bias, db);
                }
            }
            Op::SoftmaxLast(a) => {
                // dx = y ⊙ (g − ⟨g, y⟩_row)
                let y = &self.nodes[i].value;
                let dx = if crate::fused_enabled() {
                    fused::softmax_last_bwd(y, g)
                } else {
                    let n = y.shape().last_dim();
                    let rows = y.shape().leading();
                    let mut dx = Tensor::zeros(y.dims());
                    for r in 0..rows {
                        let yr = &y.data()[r * n..(r + 1) * n];
                        let gr = &g.data()[r * n..(r + 1) * n];
                        let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                        for (o, (yv, gv)) in dx.data_mut()[r * n..(r + 1) * n]
                            .iter_mut()
                            .zip(yr.iter().zip(gr))
                        {
                            *o = yv * (gv - dot);
                        }
                    }
                    dx
                };
                self.accum(*a, dx);
            }
            Op::LayerNormLast { x, gamma, beta, cache, .. } => {
                let (x, gamma, beta) = (*x, *gamma, *beta);
                let (dx, dgamma, dbeta) = {
                    let xval = &self.nodes[x.0].value;
                    let gval = self.nodes[gamma.0].value.data();
                    if crate::fused_enabled() {
                        fused::layer_norm_bwd(xval, gval, cache, g)
                    } else {
                        let n = xval.shape().last_dim();
                        let rows = xval.shape().leading();
                        let cd = cache.data();
                        let mut dgamma = vec![0.0f32; n]; // focus-lint: allow(pool-bypass) -- reference path, deliberately heap-allocated for parity with pre-pool code
                        let mut dbeta = vec![0.0f32; n]; // focus-lint: allow(pool-bypass) -- reference path, deliberately heap-allocated for parity with pre-pool code
                        let mut dx = Tensor::zeros(xval.dims());
                        for r in 0..rows {
                            let xr = &xval.data()[r * n..(r + 1) * n];
                            let gr = &g.data()[r * n..(r + 1) * n];
                            let (mu, rstd) = (cd[2 * r], cd[2 * r + 1]);
                            // dŷ = g ⊙ γ; accumulate row statistics for dx.
                            let mut sum_dy = 0.0f32;
                            let mut sum_dy_xhat = 0.0f32;
                            for j in 0..n {
                                let xhat = (xr[j] - mu) * rstd;
                                let dy = gr[j] * gval[j];
                                sum_dy += dy;
                                sum_dy_xhat += dy * xhat;
                                dgamma[j] += gr[j] * xhat;
                                dbeta[j] += gr[j];
                            }
                            let inv_n = 1.0 / n as f32;
                            for j in 0..n {
                                let xhat = (xr[j] - mu) * rstd;
                                let dy = gr[j] * gval[j];
                                dx.data_mut()[r * n + j] =
                                    rstd * (dy - sum_dy * inv_n - xhat * sum_dy_xhat * inv_n);
                            }
                        }
                        let n_dims = [n];
                        (
                            dx,
                            Tensor::from_vec(dgamma, &n_dims),
                            Tensor::from_vec(dbeta, &n_dims),
                        )
                    }
                };
                self.accum(x, dx);
                if self.nodes[gamma.0].requires_grad {
                    self.accum(gamma, dgamma);
                }
                if self.nodes[beta.0].requires_grad {
                    self.accum(beta, dbeta);
                }
            }
            Op::Relu(a) => {
                let dx = self.activation_bwd(*a, i, g, |x, g| if x > 0.0 { g } else { 0.0 }, true);
                self.accum(*a, dx);
            }
            Op::Gelu(a) => {
                let dx = self.activation_bwd(*a, i, g, |x, g| g * gelu_bwd(x), true);
                self.accum(*a, dx);
            }
            Op::Sigmoid(a) => {
                let dx = self.activation_bwd(*a, i, g, |y, g| g * y * (1.0 - y), false);
                self.accum(*a, dx);
            }
            Op::Tanh(a) => {
                let dx = self.activation_bwd(*a, i, g, |y, g| g * (1.0 - y * y), false);
                self.accum(*a, dx);
            }
            Op::Abs(a) => {
                let rule = |x: f32, g: f32| {
                    if x > 0.0 {
                        g
                    } else if x < 0.0 {
                        -g
                    } else {
                        0.0
                    }
                };
                let dx = self.activation_bwd(*a, i, g, rule, true);
                self.accum(*a, dx);
            }
            Op::ConcatLast(a, b, split) => {
                let (ga, gb) = g.split_last(*split);
                // split_last keeps the leading dims; reshape to exact input dims
                // (identical by construction).
                self.accum(*a, ga);
                self.accum(*b, gb);
            }
            Op::SliceLast(a, start, end) => {
                // Scatter the gradient back into a zero tensor of the input
                // shape.
                let (a, start, end) = (*a, *start, *end);
                let n = self.nodes[a.0].value.shape().last_dim();
                let width = end - start;
                let rows = self.nodes[a.0].value.shape().leading();
                let mut dx = Tensor::zeros(self.nodes[a.0].value.dims());
                for r in 0..rows {
                    dx.data_mut()[r * n + start..r * n + end]
                        .copy_from_slice(&g.data()[r * width..(r + 1) * width]);
                }
                self.accum(a, dx);
            }
            Op::MeanAll(a) => {
                let n = self.nodes[a.0].value.numel();
                let dg = Tensor::full(self.nodes[a.0].value.dims(), g.item() / n as f32);
                self.accum(*a, dg);
            }
            Op::SumAll(a) => {
                let dg = Tensor::full(self.nodes[a.0].value.dims(), g.item());
                self.accum(*a, dg);
            }
        }
    }

    /// Backward for a pointwise nonlinearity: `dx = rule(v, g)` element by
    /// element, where `v` is the op's *input* (`from_input`) or its cached
    /// *output* (for sigmoid/tanh, whose derivatives are cheapest in terms of
    /// `y`). The fused path streams through the pooled parallel `zip_with`;
    /// the reference path keeps the original collect-into-Vec loop.
    fn activation_bwd(
        &self,
        a: Var,
        node: usize,
        g: &Tensor,
        rule: impl Fn(f32, f32) -> f32 + Sync,
        from_input: bool,
    ) -> Tensor {
        let v = if from_input {
            &self.nodes[a.0].value
        } else {
            &self.nodes[node].value
        };
        if crate::fused_enabled() {
            v.zip_with(g, rule)
        } else {
            let data = v.data().iter().zip(g.data()).map(|(&v, &g)| rule(v, g)).collect();
            Tensor::from_vec(data, v.dims())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Graph;
    use focus_tensor::Tensor;

    #[test]
    fn linear_regression_gradient() {
        // L = mean((w·x - y)²); with w = 0, x = [1, 2], y = [1, 2]:
        // dL/dw = mean over samples of 2(wx−y)x = -(1·1 + 2·2) = -5.
        let mut g = Graph::new();
        let w = g.leaf(Tensor::zeros(&[1, 1]));
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
        let y = g.constant(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
        let pred = g.matmul(w, x);
        let loss = g.mse(pred, y);
        g.backward(loss);
        let dw = g.grad(w).expect("w is a trainable leaf in the graph");
        assert!((dw.data()[0] + 5.0).abs() < 1e-5);
    }

    #[test]
    fn gradient_accumulates_across_paths() {
        // L = mean(x + x) ⇒ dL/dx = 2/n each.
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let s = g.add(x, x);
        let loss = g.mean_all(s);
        g.backward(loss);
        assert_eq!(g.grad(x).expect("x is a trainable leaf in the graph").data(), &[1.0, 1.0]);
    }

    #[test]
    fn constants_get_no_gradient() {
        let mut g = Graph::new();
        let c = g.constant(Tensor::ones(&[2]));
        let p = g.leaf(Tensor::ones(&[2]));
        let s = g.mul(c, p);
        let loss = g.sum_all(s);
        g.backward(loss);
        assert!(g.grad(c).is_none());
        assert_eq!(g.grad(p).expect("p is a trainable leaf in the graph").data(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[2]));
        g.backward(x);
    }

    #[test]
    fn second_backward_replaces_gradients() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2.0], &[1]));
        let sq = g.mul(x, x);
        let l1 = g.mean_all(sq);
        g.backward(l1);
        let first = g.grad(x).expect("x is a trainable leaf in the graph").data()[0];
        assert!((first - 4.0).abs() < 1e-6);
        // Extend the graph and backward from a different loss: gradients are
        // replaced, not accumulated across calls.
        let tripled = g.scale(sq, 3.0);
        let l2 = g.mean_all(tripled);
        g.backward(l2);
        let second = g.grad(x).expect("x is a trainable leaf in the graph").data()[0];
        assert!((second - 12.0).abs() < 1e-6, "got {second}");
    }

    #[test]
    fn disconnected_leaf_has_no_gradient() {
        let mut g = Graph::new();
        let used = g.leaf(Tensor::ones(&[2]));
        let unused = g.leaf(Tensor::ones(&[2]));
        let loss = g.sum_all(used);
        g.backward(loss);
        assert!(g.grad(used).is_some());
        assert!(g.grad(unused).is_none());
    }

    #[test]
    fn mae_gradient_is_sign_over_n() {
        let mut g = Graph::new();
        let p = g.leaf(Tensor::from_vec(vec![2.0, -1.0, 0.0], &[3]));
        let t = g.constant(Tensor::zeros(&[3]));
        let loss = g.mae(p, t);
        g.backward(loss);
        let gr = g.grad(p).expect("p is a trainable leaf in the graph");
        let third = 1.0 / 3.0;
        assert!((gr.data()[0] - third).abs() < 1e-6);
        assert!((gr.data()[1] + third).abs() < 1e-6);
        assert_eq!(gr.data()[2], 0.0);
    }
}
