//! Parity suite for the plan compiler and VM.
//!
//! A compiled plan must be a pure performance transform: replaying it has to
//! produce bit-for-bit the parameters, losses and outputs the fused
//! interpreter produces, at every thread count. These tests drive a small
//! model that touches every op in the tape — dense and batched matmuls, the
//! broadcast-NT prototype product, one-hot routing, LayerNorm, softmax,
//! every pointwise nonlinearity, concat/slice, reshape/transpose/swap and
//! the scalar reductions — through the PlanCache state machine and compare
//! against interpreted runs.
//!
//! Plans and the fused/threads switches are process-global, so every test
//! takes a shared lock and restores the defaults on exit.

use std::sync::{Mutex, MutexGuard, OnceLock};

use focus_autograd::plan::{self, OpCode, Plan, PlanCache};
use focus_autograd::{Adam, Graph, Optimizer, ParamId, ParamStore, ParamVars, Sgd, Var};
use focus_tensor::{par, Tensor};

const B: usize = 2;
const D: usize = 3;
const H: usize = 8;
const K: usize = 3;
/// Default window length; the invalidation test switches to another value.
const SEQ: usize = 4;

/// Serializes tests: plans, the fused flag and the thread override are
/// process-global, and each test compares two runs that must see identical
/// settings throughout.
fn guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
}

/// Deterministic pseudo-random data so both runs of a pair see identical
/// bytes without a RNG dependency.
fn pseudo(n: usize, seed: u32) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u32)
                .wrapping_mul(2_654_435_761)
                .wrapping_add(seed.wrapping_mul(0x9e37_79b9));
            let h = h ^ (h >> 13);
            (((h % 2000) as f32 / 1000.0) - 1.0) * 0.4
        })
        .collect()
}

struct Model {
    store: ParamStore,
    ids: Vec<ParamId>,
}

fn init_model() -> Model {
    let mut store = ParamStore::new();
    let mut ids = Vec::new();
    ids.push(store.add("w1", Tensor::from_vec(pseudo(D * H, 1), &[D, H])));
    ids.push(store.add("b1", Tensor::from_vec(pseudo(H, 2), &[H])));
    let gamma: Vec<f32> = pseudo(H, 3).iter().map(|v| 1.0 + 0.1 * v).collect();
    ids.push(store.add("gamma", Tensor::from_vec(gamma, &[H])));
    ids.push(store.add("beta", Tensor::from_vec(pseudo(H, 4), &[H])));
    ids.push(store.add("proto", Tensor::from_vec(pseudo(K * H, 5), &[K, H])));
    ids.push(store.add("w2", Tensor::from_vec(pseudo(H + 2, 6), &[H + 2, 1])));
    Model { store, ids }
}

/// One training window: input, target and routing indices vary per step the
/// way real windows do, so steady-state replay sees fresh data each call.
fn sample(seq: usize, step: u32) -> (Tensor, Tensor, Vec<u32>) {
    let x = Tensor::from_vec(pseudo(B * seq * D, 100 + step), &[B, seq, D]);
    let t = Tensor::from_vec(pseudo(B * seq, 200 + step), &[B * seq]);
    let routes: Vec<u32> = (0..B * seq)
        .map(|i| ((i as u32).wrapping_mul(7).wrapping_add(step)) % K as u32)
        .collect();
    (x, t, routes)
}

/// Records the full test model onto `g` and returns `(loss, pred)`. The
/// graph deliberately routes `h3` through many consumers so gradient
/// accumulation chains (the bitwise-sensitive part) are exercised hard.
fn build_loss(
    g: &mut Graph,
    pv: &ParamVars,
    ids: &[ParamId],
    seq: usize,
    x_t: &Tensor,
    tgt_t: &Tensor,
    routes: &[u32],
) -> (Var, Var) {
    let (w1, b1) = (pv.var(ids[0]), pv.var(ids[1]));
    let (gamma, beta) = (pv.var(ids[2]), pv.var(ids[3]));
    let (proto, w2) = (pv.var(ids[4]), pv.var(ids[5]));
    let x = g.constant(x_t.clone());
    let tgt = g.constant(tgt_t.clone());

    let flat = g.reshape(x, &[B * seq, D]);
    let h1 = g.matmul(flat, w1);
    let h1 = g.add_row_broadcast(h1, b1);
    let h1 = g.gelu(h1);
    let h1 = g.layer_norm(h1, gamma, beta, 1e-5);
    let h3 = g.reshape(h1, &[B, seq, H]);
    let scores = g.matmul_broadcast_nt(proto, h3); // [B, K, seq]
    let attn = g.softmax_last(scores);
    let summ = g.bmm(attn, h3); // [B, K, H]
    let routed = g.route_one_hot(summ, routes, seq); // [B, seq, H]
    let cat = g.concat_last(h3, routed); // [B, seq, 2H]
    let sl = g.slice_last(cat, 1, H + 3); // [B, seq, H+2]
    let flat2 = g.reshape(sl, &[B * seq, H + 2]);
    let pred = g.matmul(flat2, w2); // [B*seq, 1]
    let pred = g.tanh(pred);
    let pred = g.scale(pred, 1.5);
    let pred = g.add_scalar(pred, 0.1);
    let predf = g.reshape(pred, &[B * seq]);
    let l_mse = g.mse(predf, tgt);

    // Coverage branches: elementwise ops, the remaining transposes and both
    // batched-matmul adjoints, all feeding small scalar penalties.
    let dif = g.sub(h3, routed);
    let sq = g.mul(dif, dif);
    let l_sq = g.mean_all(sq);
    let ab = g.abs(dif);
    let l_abs = g.mean_all(ab);
    let q = g.bmm_nt(h3, h3); // [B, seq, seq]
    let q2 = g.sigmoid(q);
    let l_q = g.mean_all(q2);
    let sw = g.swap_axes01(h3); // [seq, B, H]
    let swt = g.transpose_last2(sw); // [seq, H, B]
    let rl = g.relu(swt);
    let l_r = g.sum_all(rl);
    let xt = g.transpose(flat); // [D, B*seq]
    let w1t = g.transpose(w1); // [H, D]
    let alt = g.matmul(w1t, xt); // [H, B*seq]
    let aa = g.abs(alt);
    let l_alt = g.mean_all(aa);
    let na = g.neg(l_alt);

    let s1 = g.scale(l_sq, 0.05);
    let s2 = g.scale(l_abs, 0.05);
    let s3 = g.scale(l_q, 0.02);
    let s4 = g.scale(l_r, 0.001);
    let t1 = g.add(l_mse, s1);
    let t2 = g.add(s2, s3);
    let t3 = g.sub(t1, na); // == t1 + l_alt
    let t4 = g.add(t2, s4);
    (g.add(t3, t4), pred)
}

/// One interpreted training step: record, backward, update, and optionally
/// feed the tape to a plan cache (the same call order the core train loop
/// uses).
fn interpreted_step<O: Optimizer>(
    model: &mut Model,
    opt: &mut O,
    seq: usize,
    x: &Tensor,
    tgt: &Tensor,
    routes: &[u32],
    cache: Option<&mut PlanCache>,
) -> f32 {
    let mut g = Graph::new();
    let pv = model.store.register(&mut g);
    let (loss, _) = build_loss(&mut g, &pv, &model.ids, seq, x, tgt, routes);
    let lv = g.value(loss).data()[0];
    g.backward(loss);
    model.store.step(opt, &g, &pv);
    if let Some(c) = cache {
        c.observe_train(&g, loss, &pv, &model.store, &[x, tgt], &[routes]);
    }
    lv
}

/// Forward-only loss evaluation (for finite differences).
fn eval_loss(model: &Model, seq: usize, x: &Tensor, tgt: &Tensor, routes: &[u32]) -> f32 {
    let mut g = Graph::new();
    let pv = model.store.register(&mut g);
    let (loss, _) = build_loss(&mut g, &pv, &model.ids, seq, x, tgt, routes);
    g.value(loss).data()[0]
}

fn run_interpreted(n_steps: u32) -> (Vec<Tensor>, Vec<f32>) {
    let mut model = init_model();
    let mut opt = Adam::new(1e-2);
    let mut losses = Vec::new();
    for s in 0..n_steps {
        let (x, t, r) = sample(SEQ, s);
        losses.push(interpreted_step(&mut model, &mut opt, SEQ, &x, &t, &r, None));
    }
    (model.store.snapshot(), losses)
}

fn run_planned(n_steps: u32) -> (Vec<Tensor>, Vec<f32>, u32) {
    let mut model = init_model();
    let mut opt = Adam::new(1e-2);
    let mut cache = PlanCache::new();
    let mut losses = Vec::new();
    let mut replays = 0;
    for s in 0..n_steps {
        let (x, t, r) = sample(SEQ, s);
        if let Some(lv) = cache.try_replay_train(&[&x, &t], &[&r], &mut model.store, &mut opt) {
            replays += 1;
            losses.push(lv);
            continue;
        }
        losses.push(interpreted_step(&mut model, &mut opt, SEQ, &x, &t, &r, Some(&mut cache)));
    }
    (model.store.snapshot(), losses, replays)
}

fn assert_bitwise_eq(a: &[Tensor], b: &[Tensor], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: param count");
    for (i, (ta, tb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ta.dims(), tb.dims(), "{ctx}: param {i} dims");
        let ba: Vec<u32> = ta.data().iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = tb.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ba, bb, "{ctx}: param {i} bits");
    }
}

#[test]
fn replay_is_bitwise_equal_to_interpreter_at_1_2_4_threads() {
    let _lock = guard();
    focus_autograd::set_fused(true);
    plan::set_enabled(true);
    for threads in [1usize, 2, 4] {
        par::set_threads(threads);
        let (params_i, losses_i) = run_interpreted(8);
        let (params_p, losses_p, replays) = run_planned(8);
        // Steps 0 and 1 interpret (compile + verify); 2..8 replay.
        assert_eq!(replays, 6, "threads={threads}: replay count");
        assert_bitwise_eq(&params_i, &params_p, &format!("threads={threads}"));
        for (s, (a, b)) in losses_i.iter().zip(&losses_p).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "threads={threads}: loss at step {s} ({a} vs {b})"
            );
        }
    }
    par::set_threads(0);
    plan::set_enabled(false);
}

#[test]
fn gradcheck_through_a_replayed_plan() {
    let _lock = guard();
    focus_autograd::set_fused(true);
    plan::set_enabled(true);
    let lr = 1e-3f32;
    let mut model = init_model();
    let mut opt = Sgd::new(lr);
    let mut cache = PlanCache::new();
    let (x, t, r) = sample(SEQ, 0);
    for _ in 0..2 {
        interpreted_step(&mut model, &mut opt, SEQ, &x, &t, &r, Some(&mut cache));
    }
    assert!(cache.is_ready(), "cache should verify after two identical-shape steps");

    let before = model.store.snapshot();
    cache
        .try_replay_train(&[&x, &t], &[&r], &mut model.store, &mut opt)
        .expect("ready cache must replay a matching step");
    let after = model.store.snapshot();

    // SGD: p' = p − lr·g, so (p − p') / lr recovers the replayed gradient up
    // to one rounding. Check it against central differences of the
    // interpreted loss.
    model.store.restore(&before);
    let eps = 1e-2f32;
    let mut max_rel = 0.0f32;
    for (pi, id) in model.ids.iter().enumerate() {
        for j in 0..before[pi].numel() {
            let orig = model.store.get(*id).data()[j];
            model.store.get_mut(*id).data_mut()[j] = orig + eps;
            let lp = eval_loss(&model, SEQ, &x, &t, &r);
            model.store.get_mut(*id).data_mut()[j] = orig - eps;
            let lm = eval_loss(&model, SEQ, &x, &t, &r);
            model.store.get_mut(*id).data_mut()[j] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = (before[pi].data()[j] - after[pi].data()[j]) / lr;
            let rel = (analytic - numeric).abs() / numeric.abs().max(1.0);
            max_rel = max_rel.max(rel);
        }
    }
    assert!(max_rel < 5e-2, "replayed-plan gradcheck failed: max rel err {max_rel}");
    plan::set_enabled(false);
}

#[test]
fn shape_change_invalidates_and_recompiles() {
    let _lock = guard();
    focus_autograd::set_fused(true);
    plan::set_enabled(true);
    let mut model = init_model();
    let mut opt = Adam::new(1e-2);
    let mut cache = PlanCache::new();

    // Warm to Ready at SEQ.
    for s in 0..2 {
        let (x, t, r) = sample(SEQ, s);
        interpreted_step(&mut model, &mut opt, SEQ, &x, &t, &r, Some(&mut cache));
    }
    assert!(cache.is_ready());
    let (x, t, r) = sample(SEQ, 2);
    assert!(cache.try_replay_train(&[&x, &t], &[&r], &mut model.store, &mut opt).is_some());

    // A different window length must refuse to replay and reset the cache
    // instead of replaying a stale plan.
    let wide = SEQ + 2;
    let (x6, t6, r6) = sample(wide, 3);
    assert!(
        cache.try_replay_train(&[&x6, &t6], &[&r6], &mut model.store, &mut opt).is_none(),
        "a plan compiled for seq={SEQ} must not replay seq={wide} inputs"
    );
    assert_eq!(cache.state_name(), "cold", "shape mismatch resets the cache");

    // Two steps at the new geometry re-verify and replay again.
    for s in 4..6 {
        let (x6, t6, r6) = sample(wide, s);
        interpreted_step(&mut model, &mut opt, wide, &x6, &t6, &r6, Some(&mut cache));
    }
    assert!(cache.is_ready(), "cache recompiles at the new geometry");
    let (x6, t6, r6) = sample(wide, 6);
    assert!(cache.try_replay_train(&[&x6, &t6], &[&r6], &mut model.store, &mut opt).is_some());
    plan::set_enabled(false);
}

#[test]
fn shape_change_during_warmup_restarts_verification() {
    let _lock = guard();
    focus_autograd::set_fused(true);
    plan::set_enabled(true);
    let mut model = init_model();
    let mut opt = Adam::new(1e-2);
    let mut cache = PlanCache::new();

    let (x, t, r) = sample(SEQ, 0);
    interpreted_step(&mut model, &mut opt, SEQ, &x, &t, &r, Some(&mut cache));
    assert_eq!(cache.state_name(), "verify");
    // Geometry moves mid-warmup: verification restarts, it does not give up.
    let wide = SEQ + 2;
    let (x6, t6, r6) = sample(wide, 1);
    interpreted_step(&mut model, &mut opt, wide, &x6, &t6, &r6, Some(&mut cache));
    assert_eq!(cache.state_name(), "verify");
    let (x6, t6, r6) = sample(wide, 2);
    interpreted_step(&mut model, &mut opt, wide, &x6, &t6, &r6, Some(&mut cache));
    assert!(cache.is_ready());
    plan::set_enabled(false);
}

#[test]
fn per_window_constant_turns_cache_off() {
    let _lock = guard();
    focus_autograd::set_fused(true);
    plan::set_enabled(true);
    let mut model = init_model();
    let mut opt = Adam::new(1e-2);
    let mut cache = PlanCache::new();

    // The target is NOT declared as an input here, so it compiles as a baked
    // static. It varies per step, so the two candidate plans disagree with
    // identical shapes — replay would be wrong, and the cache must go
    // (sticky) off rather than promote.
    for s in 0..2 {
        let (x, t, r) = sample(SEQ, s);
        let mut g = Graph::new();
        let pv = model.store.register(&mut g);
        let (loss, _) = build_loss(&mut g, &pv, &model.ids, SEQ, &x, &t, &r);
        g.backward(loss);
        model.store.step(&mut opt, &g, &pv);
        cache.observe_train(&g, loss, &pv, &model.store, &[&x], &[&r]);
    }
    assert!(cache.is_off(), "varying baked constants must disable replay");
    // Off is sticky: further observations don't resurrect it.
    let (x, t, r) = sample(SEQ, 2);
    interpreted_step(&mut model, &mut opt, SEQ, &x, &t, &r, Some(&mut cache));
    assert!(cache.is_off());
    plan::set_enabled(false);
}

#[test]
fn forward_replay_matches_interpreter() {
    let _lock = guard();
    focus_autograd::set_fused(true);
    plan::set_enabled(true);
    let model = init_model();
    let mut cache = PlanCache::new();

    for s in 0..2 {
        let (x, t, r) = sample(SEQ, s);
        let mut g = Graph::new();
        let pv = model.store.register(&mut g);
        let (_, pred) = build_loss(&mut g, &pv, &model.ids, SEQ, &x, &t, &r);
        cache.observe_forward(&g, pred, &pv, &model.store, &[&x, &t], &[&r]);
    }
    assert!(cache.is_ready());

    let (x, t, r) = sample(SEQ, 7);
    let replayed = cache
        .try_replay_forward(&[&x, &t], &[&r], &model.store)
        .expect("ready forward cache must replay");
    let mut g = Graph::new();
    let pv = model.store.register(&mut g);
    let (_, pred) = build_loss(&mut g, &pv, &model.ids, SEQ, &x, &t, &r);
    let reference = g.value(pred);
    assert_eq!(reference.dims(), replayed.dims());
    let ba: Vec<u32> = reference.data().iter().map(|v| v.to_bits()).collect();
    let bb: Vec<u32> = replayed.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(ba, bb, "forward replay must be bitwise equal");
    plan::set_enabled(false);
}

#[test]
fn plan_text_round_trip() {
    let _lock = guard();
    focus_autograd::set_fused(true);
    let model = init_model();
    let (x, t, r) = sample(SEQ, 0);

    // Train plan.
    let mut g = Graph::new();
    let pv = model.store.register(&mut g);
    let (loss, pred) = build_loss(&mut g, &pv, &model.ids, SEQ, &x, &t, &r);
    let train =
        plan::compile_train(&g, loss, &pv, &model.store, &[&x, &t], &[&r]).expect("compiles");
    assert!(train.is_train());
    assert!(train.n_instrs() > 0 && train.n_slots() > 0);
    let back = Plan::from_text(&train.to_text()).expect("round-trip parses");
    assert_eq!(back, train, "train plan text round-trip");

    // Forward plan (fresh tape, no backward).
    let mut g = Graph::new();
    let pv = model.store.register(&mut g);
    let (_, pred2) = build_loss(&mut g, &pv, &model.ids, SEQ, &x, &t, &r);
    let fwd =
        plan::compile_forward(&g, pred2, &pv, &model.store, &[&x, &t], &[&r]).expect("compiles");
    assert!(!fwd.is_train());
    let back = Plan::from_text(&fwd.to_text()).expect("round-trip parses");
    assert_eq!(back, fwd, "forward plan text round-trip");
    let _ = pred;

    // Malformed input reports a 1-based line, not a panic.
    let err = Plan::from_text("not a plan\n").expect_err("bad magic must fail");
    assert_eq!(err.line, 1);
}

/// The parity corpus is the ground truth the `opcode-coverage` lint rule
/// checks test coverage against: every opcode the compiler can emit must be
/// exercised (and named) here, and the ones it structurally cannot emit are
/// listed explicitly so a new opcode cannot slip in uncovered. The two lists
/// must partition [`OpCode::ALL`] exactly.
#[test]
fn opcode_corpus_coverage_is_exhaustive() {
    let _lock = guard();
    focus_autograd::set_fused(true);
    let model = init_model();
    let (x, t, r) = sample(SEQ, 0);

    let mut g = Graph::new();
    let pv = model.store.register(&mut g);
    let (loss, _) = build_loss(&mut g, &pv, &model.ids, SEQ, &x, &t, &r);
    let train =
        plan::compile_train(&g, loss, &pv, &model.store, &[&x, &t], &[&r]).expect("compiles");
    let mut g = Graph::new();
    let pv = model.store.register(&mut g);
    let (_, pred) = build_loss(&mut g, &pv, &model.ids, SEQ, &x, &t, &r);
    let fwd =
        plan::compile_forward(&g, pred, &pv, &model.store, &[&x, &t], &[&r]).expect("compiles");

    /// Opcodes the corpus model's train + forward plans emit — today that is
    /// the whole instruction set, and this list keeps it that way: adding an
    /// `OpCode` variant fails the partition check below until the corpus
    /// model is extended (or the gap is consciously recorded) here.
    const EMITTED: &[OpCode] = &[
        OpCode::ZipAdd,
        OpCode::ZipSub,
        OpCode::ZipMul,
        OpCode::ZipReluBwd,
        OpCode::ZipGeluBwd,
        OpCode::ZipAbsBwd,
        OpCode::ZipSigmoidBwd,
        OpCode::ZipTanhBwd,
        OpCode::MapScale,
        OpCode::MapAddScalar,
        OpCode::MapRelu,
        OpCode::MapGelu,
        OpCode::MapSigmoid,
        OpCode::MapTanh,
        OpCode::MapAbs,
        OpCode::GemmNn,
        OpCode::GemmNt,
        OpCode::GemmTn,
        OpCode::BmmNn,
        OpCode::BmmNt,
        OpCode::BmmTn,
        OpCode::BcastNt,
        OpCode::BcastNtDa,
        OpCode::BcastNtDx,
        OpCode::RouteGather,
        OpCode::RouteScatter,
        OpCode::AddRowBcast,
        OpCode::BiasGrad,
        OpCode::Softmax,
        OpCode::SoftmaxBwd,
        OpCode::LayerNormFwd,
        OpCode::LayerNormBwd,
        OpCode::Transpose2,
        OpCode::TransposeLast2,
        OpCode::Swap01,
        OpCode::ConcatLast,
        OpCode::SliceCols,
        OpCode::ScatterCols,
        OpCode::MeanAll,
        OpCode::SumAll,
        OpCode::Fill,
        OpCode::Copy,
        OpCode::Axpy,
    ];
    /// Opcodes the corpus cannot emit, with the structural reason.
    const NOT_EMITTED: &[OpCode] = &[];

    let mut partition: Vec<&str> =
        EMITTED.iter().chain(NOT_EMITTED).map(|o| o.name()).collect();
    partition.sort_unstable();
    let mut all: Vec<&str> = OpCode::ALL.iter().map(|o| o.name()).collect();
    all.sort_unstable();
    assert_eq!(partition, all, "EMITTED and NOT_EMITTED must partition OpCode::ALL");

    let used: std::collections::BTreeSet<&str> =
        train.instrs().iter().chain(fwd.instrs()).map(|i| i.op.name()).collect();
    let expected: std::collections::BTreeSet<&str> =
        EMITTED.iter().map(|o| o.name()).collect();
    assert_eq!(used, expected, "corpus plans drifted from the declared EMITTED set");
}
