//! Corpus tests for the plan IR static verifier.
//!
//! The compiler runs `verify_plan` on everything it emits, so the only way to
//! exercise the verifier's rejection paths from outside the crate is the text
//! format: compile a real plan, serialize it, corrupt one line the way a
//! buggy compiler (or a bit-flipped plan file) would, re-parse and verify.
//! Each corruption must come back as the expected [`VerifyErrorKind`] *with
//! the offending instruction index* — a corrupted plan names its own
//! corruption site. The same file also covers malformed `focus-plan v1` text
//! (truncated stream, bad f32 hex bits, unknown opcode, out-of-range slot)
//! and proves that a verifier rejection trips the cache's sticky Off
//! fallback instead of replaying.

use std::sync::{Mutex, MutexGuard, OnceLock};

use focus_autograd::plan::{self, Loc, Plan, PlanCache};
use focus_autograd::verify::{self, VerifyErrorKind};
use focus_autograd::{Graph, ParamStore, Sgd};
use focus_tensor::Tensor;

const N: usize = 4;
const D: usize = 3;
const H: usize = 8;

/// The fused flag, the plan gate and the verifier failpoint are
/// process-global; serialize the tests in this binary.
fn guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
}

fn pseudo(n: usize, seed: u32) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u32)
                .wrapping_mul(2_654_435_761)
                .wrapping_add(seed.wrapping_mul(0x9e37_79b9));
            let h = h ^ (h >> 13);
            (((h % 2000) as f32 / 1000.0) - 1.0) * 0.4
        })
        .collect()
}

fn small_store() -> (ParamStore, Vec<focus_autograd::ParamId>) {
    let mut store = ParamStore::new();
    let ids = vec![
        store.add("w1", Tensor::from_vec(pseudo(D * H, 1), &[D, H])),
        store.add("b1", Tensor::from_vec(pseudo(H, 2), &[H])),
        store.add("w2", Tensor::from_vec(pseudo(H, 3), &[H, 1])),
    ];
    (store, ids)
}

fn sample() -> (Tensor, Tensor) {
    let x = Tensor::from_vec(pseudo(N * D, 10), &[N, D]);
    let t = Tensor::from_vec(pseudo(N, 11), &[N]);
    (x, t)
}

/// Records a small MLP (matmul → bias → gelu → matmul → mse) and compiles a
/// training plan: enough instructions to host every corruption below while
/// staying readable in a failing-test dump.
fn small_train_plan() -> Plan {
    focus_autograd::set_fused(true);
    let (store, ids) = small_store();
    let (x_t, tgt_t) = sample();
    let mut g = Graph::new();
    let pv = store.register(&mut g);
    let (w1, b1, w2) = (pv.var(ids[0]), pv.var(ids[1]), pv.var(ids[2]));
    let x = g.constant(x_t.clone());
    let tgt = g.constant(tgt_t.clone());
    let h = g.matmul(x, w1);
    let h = g.add_row_broadcast(h, b1);
    let h = g.gelu(h);
    let p = g.matmul(h, w2);
    let pf = g.reshape(p, &[N]);
    let loss = g.mse(pf, tgt);
    plan::compile_train(&g, loss, &pv, &store, &[&x_t, &tgt_t], &[]).expect("small model compiles")
}

fn small_forward_plan() -> Plan {
    focus_autograd::set_fused(true);
    let (store, ids) = small_store();
    let (x_t, tgt_t) = sample();
    let mut g = Graph::new();
    let pv = store.register(&mut g);
    let (w1, b1, w2) = (pv.var(ids[0]), pv.var(ids[1]), pv.var(ids[2]));
    let x = g.constant(x_t.clone());
    let _tgt = g.constant(tgt_t.clone());
    let h = g.matmul(x, w1);
    let h = g.add_row_broadcast(h, b1);
    let h = g.gelu(h);
    let p = g.matmul(h, w2);
    plan::compile_forward(&g, p, &pv, &store, &[&x_t, &tgt_t], &[]).expect("compiles")
}

// ---------------------------------------------------------------------------
// Text-surgery helpers
// ---------------------------------------------------------------------------

fn lines_of(p: &Plan) -> Vec<String> {
    p.to_text().lines().map(String::from).collect()
}

fn reparse(lines: &[String]) -> Plan {
    let text = lines.join("\n") + "\n";
    Plan::from_text(&text).expect("corrupted plan must still parse; verification is separate")
}

/// 0-based line index of the k-th instruction line (`i ...`).
fn instr_line(lines: &[String], k: usize) -> usize {
    lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.starts_with("i "))
        .nth(k)
        .map(|(i, _)| i)
        .expect("instruction line exists")
}

/// 0-based line index of the section header `<key> <count>`.
fn header_line(lines: &[String], key: &str) -> usize {
    lines
        .iter()
        .position(|l| l.split_whitespace().next() == Some(key))
        .expect("section header exists")
}

fn bump_header(lines: &mut [String], key: &str, delta: usize) {
    let idx = header_line(lines, key);
    let count: usize = lines[idx]
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .expect("header count parses");
    lines[idx] = format!("{key} {}", count + delta);
}

/// Replaces one whitespace token of a line; `sect` is the section tag
/// (`"d"`, `"a"` or `"m"`) and `k` the operand index within that section.
fn set_operand(line: &str, sect: &str, k: usize, new_tok: &str) -> String {
    let mut toks: Vec<String> = line.split_whitespace().map(String::from).collect();
    let at = toks.iter().position(|t| t == sect).expect("section tag present");
    toks[at + 2 + k] = new_tok.to_string();
    toks.join(" ")
}

/// Per-slot index of the first instruction that defines it.
fn first_defs(plan: &Plan) -> Vec<Option<usize>> {
    let n_slots = lines_between_headers(plan);
    let mut first = vec![None; n_slots];
    for (ii, ins) in plan.instrs().iter().enumerate() {
        for &d in &ins.dsts {
            let slot = &mut first[d as usize];
            if slot.is_none() {
                *slot = Some(ii);
            }
        }
    }
    first
}

/// Slot count read back through the text format (slot tables are
/// crate-private; the serialized form is the public window onto them).
fn lines_between_headers(plan: &Plan) -> usize {
    let lines = lines_of(plan);
    let idx = header_line(&lines, "slots");
    lines[idx].split_whitespace().nth(1).and_then(|t| t.parse().ok()).expect("slot count")
}

fn slot_cap(lines: &[String], slot: usize) -> usize {
    let base = header_line(lines, "slots");
    lines[base + 1 + slot]
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .expect("slot cap parses")
}

// ---------------------------------------------------------------------------
// Acceptance: everything the compiler emits passes
// ---------------------------------------------------------------------------

/// The compiler already verifies internally (a `Rejected` compile error would
/// fail the `expect` above, and the plan-parity suite compiles far bigger
/// tapes). This re-checks explicitly through the public entry point, and —
/// more importantly — verifies the *deserialized* plan, which never went
/// through `compile`.
#[test]
fn compiler_emitted_plans_pass_the_verifier() {
    let _lock = guard();
    let train = small_train_plan();
    train.verify().expect("compiled train plan verifies");
    let round = Plan::from_text(&train.to_text()).expect("parses");
    round.verify().expect("deserialized train plan verifies");

    let fwd = small_forward_plan();
    fwd.verify().expect("compiled forward plan verifies");
    let round = Plan::from_text(&fwd.to_text()).expect("parses");
    round.verify().expect("deserialized forward plan verifies");
}

// ---------------------------------------------------------------------------
// Corrupted-plan corpus: each case is rejected with the offending index
// ---------------------------------------------------------------------------

/// Retargets an early instruction's slot argument at a slot that is only
/// defined later in the stream.
#[test]
fn corrupted_use_before_def_is_rejected() {
    let _lock = guard();
    let plan = small_train_plan();
    let first = first_defs(&plan);
    let (ii, ai) = plan
        .instrs()
        .iter()
        .enumerate()
        .find_map(|(ii, ins)| {
            ins.args
                .iter()
                .position(|a| matches!(a, Loc::Slot(_)))
                .map(|ai| (ii, ai))
        })
        .expect("some instruction reads a slot");
    let late = first
        .iter()
        .enumerate()
        .find(|(s, d)| {
            d.is_some_and(|d| d > ii) && !plan.instrs()[ii].dsts.contains(&(*s as u32))
        })
        .map(|(s, _)| s)
        .expect("some slot is first defined later");

    let mut lines = lines_of(&plan);
    let li = instr_line(&lines, ii);
    lines[li] = set_operand(&lines[li], "a", ai, &format!("s{late}"));
    let err = reparse(&lines).verify().expect_err("use-before-def must be rejected");
    assert_eq!(err.kind, VerifyErrorKind::UseBeforeDef, "{err}");
    assert_eq!(err.instr, Some(ii), "diagnostic names the offending instruction: {err}");
}

/// Bumps a zip kernel's element count by one: the abstract shape
/// interpretation disagrees with the operands' real sizes.
#[test]
fn corrupted_shape_mismatch_is_rejected() {
    let _lock = guard();
    let plan = small_train_plan();
    let ii = plan
        .instrs()
        .iter()
        .position(|ins| ins.op.name().starts_with("zip_") && ins.dims == [(N * H) as u32])
        .expect("a zip over the hidden activation exists");

    let mut lines = lines_of(&plan);
    let li = instr_line(&lines, ii);
    lines[li] = set_operand(&lines[li], "m", 0, &format!("{}", N * H + 1));
    let err = reparse(&lines).verify().expect_err("shape mismatch must be rejected");
    assert_eq!(err.kind, VerifyErrorKind::ShapeMismatch, "{err}");
    assert_eq!(err.instr, Some(ii), "diagnostic names the offending instruction: {err}");
}

/// Retargets a multi-element result at the (capacity-1) loss slot: two live
/// values forced into one slot the allocator never sized for it.
#[test]
fn corrupted_double_assigned_slot_is_rejected() {
    let _lock = guard();
    let plan = small_train_plan();
    let lines = lines_of(&plan);
    let loss_slot: u32 = lines[header_line(&lines, "loss")]
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .expect("train plan has a loss sink");
    let ii = plan
        .instrs()
        .iter()
        .position(|ins| {
            ins.op.name().starts_with("zip_")
                && ins.dims == [(N * H) as u32]
                && !ins.args.contains(&Loc::Slot(loss_slot))
        })
        .expect("a wide zip not reading the loss slot exists");

    let mut lines = lines;
    let li = instr_line(&lines, ii);
    lines[li] = set_operand(&lines[li], "d", 0, &format!("{loss_slot}"));
    let err = reparse(&lines).verify().expect_err("double-assigned slot must be rejected");
    assert_eq!(err.kind, VerifyErrorKind::CapMismatch, "{err}");
    assert_eq!(err.instr, Some(ii), "diagnostic names the offending instruction: {err}");
}

/// Inserts a fill whose result is immediately overwritten: pure wasted work
/// the dead-instruction analysis must flag.
#[test]
fn corrupted_dead_instruction_is_rejected() {
    let _lock = guard();
    let plan = small_train_plan();
    let first = first_defs(&plan);
    // The slot defined latest: inserting a fill right before its first def
    // guarantees nothing reads the fill's value in between.
    let (slot, jj) = first
        .iter()
        .enumerate()
        .filter_map(|(s, d)| d.map(|d| (s, d)))
        .max_by_key(|&(_, d)| d)
        .expect("plan defines at least one slot");

    let mut lines = lines_of(&plan);
    let cap = slot_cap(&lines, slot);
    let li = instr_line(&lines, jj);
    lines.insert(li, format!("i fill d 1 {slot} a 0 m 1 {cap} imm 00000000"));
    bump_header(&mut lines, "instrs", 1);
    let err = reparse(&lines).verify().expect_err("dead instruction must be rejected");
    assert_eq!(err.kind, VerifyErrorKind::DeadInstr, "{err}");
    assert_eq!(err.instr, Some(jj), "diagnostic names the inserted instruction: {err}");
}

/// Appends a slot plus a fill into it at plan exit: the value survives the
/// stream without being a declared sink — a leak.
#[test]
fn corrupted_leaked_slot_is_rejected() {
    let _lock = guard();
    let plan = small_train_plan();
    let mut lines = lines_of(&plan);
    let n_slots: usize = lines[header_line(&lines, "slots")]
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .expect("slot count");
    let n_instrs = plan.instrs().len();

    let slots_at = header_line(&lines, "slots");
    lines.insert(slots_at + 1 + n_slots, "slot 4".to_string());
    bump_header(&mut lines, "slots", 1);
    let last_instr = instr_line(&lines, n_instrs - 1);
    lines.insert(last_instr + 1, format!("i fill d 1 {n_slots} a 0 m 1 4 imm 00000000"));
    bump_header(&mut lines, "instrs", 1);

    let err = reparse(&lines).verify().expect_err("leaked slot must be rejected");
    assert_eq!(err.kind, VerifyErrorKind::LeakedValue, "{err}");
    assert_eq!(err.instr, Some(n_instrs), "diagnostic names the leaking instruction: {err}");
}

/// A slot in the capacity table no instruction ever writes is the allocator
/// leaking a buffer for nothing — rejected even though no instruction is at
/// fault (table-level diagnostic, no index).
#[test]
fn corrupted_unwritten_slot_is_rejected() {
    let _lock = guard();
    let plan = small_train_plan();
    let mut lines = lines_of(&plan);
    let n_slots: usize = lines[header_line(&lines, "slots")]
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .expect("slot count");
    let slots_at = header_line(&lines, "slots");
    lines.insert(slots_at + 1 + n_slots, "slot 8".to_string());
    bump_header(&mut lines, "slots", 1);

    let err = reparse(&lines).verify().expect_err("unwritten slot must be rejected");
    assert_eq!(err.kind, VerifyErrorKind::UnwrittenSlot, "{err}");
    assert_eq!(err.instr, None, "{err}");
}

// ---------------------------------------------------------------------------
// Malformed `focus-plan v1` text: positioned errors, not panics
// ---------------------------------------------------------------------------

/// A slot index past the capacity table parses (the text format is purely
/// syntactic) but the verifier rejects it with the instruction index.
#[test]
fn out_of_range_slot_is_rejected_by_the_verifier() {
    let _lock = guard();
    let plan = small_train_plan();
    let (ii, ai) = plan
        .instrs()
        .iter()
        .enumerate()
        .find_map(|(ii, ins)| {
            ins.args
                .iter()
                .position(|a| matches!(a, Loc::Slot(_)))
                .map(|ai| (ii, ai))
        })
        .expect("some instruction reads a slot");
    let mut lines = lines_of(&plan);
    let li = instr_line(&lines, ii);
    lines[li] = set_operand(&lines[li], "a", ai, "s9999");
    let err = reparse(&lines).verify().expect_err("out-of-range slot must be rejected");
    assert_eq!(err.kind, VerifyErrorKind::OutOfRange, "{err}");
    assert_eq!(err.instr, Some(ii), "diagnostic names the offending instruction: {err}");
}

#[test]
fn truncated_stream_reports_the_eof_line() {
    let _lock = guard();
    let plan = small_train_plan();
    let lines = lines_of(&plan);
    // Cut mid-instruction-stream: the parser still owes the header's count.
    let keep = instr_line(&lines, 2) + 1;
    let text = lines[..keep].join("\n") + "\n";
    let err = Plan::from_text(&text).expect_err("truncated stream must fail");
    assert_eq!(err.line, keep + 1, "error positioned where input ran out: {err}");
    assert!(err.msg.contains("unexpected end"), "{err}");
}

#[test]
fn bad_f32_hex_bits_report_their_line() {
    let _lock = guard();
    let plan = small_train_plan();
    let mut lines = lines_of(&plan);
    let li = instr_line(&lines, 0);
    let n_toks = lines[li].split_whitespace().count();
    // The immediate is the last token of every instruction line.
    let mut toks: Vec<&str> = lines[li].split_whitespace().collect();
    toks[n_toks - 1] = "zzzzzzzz";
    lines[li] = toks.join(" ");
    let text = lines.join("\n") + "\n";
    let err = Plan::from_text(&text).expect_err("bad f32 bits must fail");
    assert_eq!(err.line, li + 1, "{err}");
    assert!(err.msg.contains("imm bits"), "{err}");
}

#[test]
fn unknown_opcode_reports_its_line() {
    let _lock = guard();
    let plan = small_train_plan();
    let mut lines = lines_of(&plan);
    let li = instr_line(&lines, 0);
    let mut toks: Vec<&str> = lines[li].split_whitespace().collect();
    toks[1] = "warp_drive";
    lines[li] = toks.join(" ");
    let text = lines.join("\n") + "\n";
    let err = Plan::from_text(&text).expect_err("unknown opcode must fail");
    assert_eq!(err.line, li + 1, "{err}");
    assert!(err.msg.contains("unknown opcode"), "{err}");
}

// ---------------------------------------------------------------------------
// Verifier rejection trips the sticky Off fallback
// ---------------------------------------------------------------------------

#[test]
fn verifier_rejection_trips_sticky_off() {
    let _lock = guard();
    focus_autograd::set_fused(true);
    plan::set_enabled(true);
    verify::set_fail_all(true);

    let (mut store, ids) = small_store();
    let (x_t, tgt_t) = sample();
    let mut cache = PlanCache::new();
    let mut opt = Sgd::new(1e-2);

    let mut g = Graph::new();
    let pv = store.register(&mut g);
    let (w1, b1, w2) = (pv.var(ids[0]), pv.var(ids[1]), pv.var(ids[2]));
    let x = g.constant(x_t.clone());
    let tgt = g.constant(tgt_t.clone());
    let h = g.matmul(x, w1);
    let h = g.add_row_broadcast(h, b1);
    let h = g.gelu(h);
    let p = g.matmul(h, w2);
    let pf = g.reshape(p, &[N]);
    let loss = g.mse(pf, tgt);
    g.backward(loss);
    cache.observe_train(&g, loss, &pv, &store, &[&x_t, &tgt_t], &[]);

    assert!(cache.is_off(), "verifier rejection must turn the cache off");
    let reason = cache.off_reason().unwrap_or("").to_string();
    assert!(reason.contains("failpoint"), "off reason surfaces the verifier: {reason}");

    // Sticky: clearing the failpoint does not resurrect the cache, and it
    // never replays — the caller keeps interpreting.
    verify::set_fail_all(false);
    assert!(cache
        .try_replay_train(&[&x_t, &tgt_t], &[], &mut store, &mut opt)
        .is_none());
    assert!(cache.is_off());
    assert_eq!(cache.state_name(), "off");

    plan::set_enabled(false);
}
