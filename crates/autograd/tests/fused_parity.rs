//! Parity guarantees for the fused kernel path.
//!
//! The fused kernels (LayerNorm, softmax, Gelu family, AdamW) promise to be
//! *bitwise identical* to the unfused reference path and invariant to the
//! worker thread count. These tests pin both promises, plus finite-difference
//! gradchecks run with the fused path active.
//!
//! `set_fused` and `set_threads` are process globals, so every test that
//! toggles them serialises on one mutex and restores the defaults before
//! releasing it.

use std::sync::{Mutex, MutexGuard};

use focus_autograd::{gradcheck, set_fused, AdamW, Graph, ParamStore};
use focus_tensor::{par, Tensor};

static GLOBALS: Mutex<()> = Mutex::new(());

fn lock_globals() -> MutexGuard<'static, ()> {
    GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic pseudo-random fill in roughly [-0.5, 0.5] — no RNG state,
/// so every mode/thread-count run sees identical inputs.
fn filled(dims: &[usize], seed: u32) -> Tensor {
    let n: usize = dims.iter().product();
    let data = (0..n)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(seed * 97 + 13);
            (h >> 8) as f32 / (1u32 << 24) as f32 - 0.5
        })
        .collect();
    Tensor::from_vec(data, dims)
}

/// Forward + backward of a net that exercises every fused kernel:
/// LayerNorm (6 rows: the 4-row interleaved chains plus the remainder loop),
/// Gelu, sigmoid, tanh and trailing-axis softmax. Returns the loss value and
/// the gradients of all leaves.
fn run_net(inputs: &[Tensor]) -> (f32, Vec<Tensor>) {
    let mut g = Graph::new();
    let vars: Vec<_> = inputs.iter().map(|t| g.leaf(t.clone())).collect();
    let [x, gamma, beta, w, target] = vars[..] else {
        panic!("run_net expects 5 inputs")
    };
    let ln = g.layer_norm(x, gamma, beta, 1e-5);
    let act = g.gelu(ln);
    let sig = g.sigmoid(act);
    let mixed = g.matmul(sig, w);
    let th = g.tanh(mixed);
    let sm = g.softmax_last(th);
    let loss = g.mse(sm, target);
    g.backward(loss);
    let grads = vars
        .iter()
        .map(|&v| g.grad(v).cloned().unwrap_or_else(|| Tensor::zeros(&[1])))
        .collect();
    (g.value(loss).item(), grads)
}

fn net_inputs() -> Vec<Tensor> {
    vec![
        filled(&[6, 7], 1),  // x: 6 rows hits the interleaved quad + remainder
        filled(&[7], 2),     // gamma
        filled(&[7], 3),     // beta
        filled(&[7, 5], 4),  // w
        filled(&[6, 5], 5),  // target
    ]
}

fn assert_bitwise_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn fused_kernels_pass_gradcheck() {
    let _guard = lock_globals();
    set_fused(true);
    let rep = gradcheck::check(&net_inputs(), 1e-2, |g, v| {
        let ln = g.layer_norm(v[0], v[1], v[2], 1e-5);
        let act = g.gelu(ln);
        let sig = g.sigmoid(act);
        let mixed = g.matmul(sig, v[3]);
        let th = g.tanh(mixed);
        let sm = g.softmax_last(th);
        g.mse(sm, v[4])
    });
    assert!(rep.max_rel_err < 0.05, "rel err {}", rep.max_rel_err);
}

#[test]
fn fused_path_is_bitwise_equal_to_reference() {
    let _guard = lock_globals();
    let inputs = net_inputs();

    set_fused(false);
    let (loss_ref, grads_ref) = run_net(&inputs);
    set_fused(true);
    let (loss_fused, grads_fused) = run_net(&inputs);

    assert_eq!(loss_ref.to_bits(), loss_fused.to_bits(), "loss differs");
    for (i, (r, f)) in grads_ref.iter().zip(&grads_fused).enumerate() {
        assert_bitwise_eq(r, f, &format!("grad of leaf {i}"));
    }
}

#[test]
fn fused_kernels_are_thread_count_invariant() {
    let _guard = lock_globals();
    set_fused(true);
    let inputs = net_inputs();

    par::set_threads(1);
    let (loss_1, grads_1) = run_net(&inputs);
    for threads in [2, 4] {
        par::set_threads(threads);
        let (loss_t, grads_t) = run_net(&inputs);
        assert_eq!(
            loss_1.to_bits(),
            loss_t.to_bits(),
            "loss differs at {threads} threads"
        );
        for (i, (a, b)) in grads_1.iter().zip(&grads_t).enumerate() {
            assert_bitwise_eq(a, b, &format!("grad of leaf {i} at {threads} threads"));
        }
    }
    par::set_threads(0);
}

/// Runs `steps` AdamW updates on a two-parameter model and returns the final
/// parameter tensors. Fresh optimizer state each call, so the only variable
/// between calls is the global mode/thread configuration.
fn train_params(steps: usize) -> Vec<Tensor> {
    let mut store = ParamStore::new();
    let w = store.add("w", filled(&[4, 6], 11));
    let b = store.add("b", filled(&[6], 12));
    let x = filled(&[3, 4], 13);
    let target = filled(&[3, 6], 14);

    let mut opt = AdamW::new(1e-2, 1e-3);
    let mut g = Graph::new();
    for _ in 0..steps {
        g.reset();
        let vars = store.register(&mut g);
        let xv = g.constant(x.clone());
        let tv = g.constant(target.clone());
        let h = g.matmul(xv, vars.var(w));
        let hb = g.add_row_broadcast(h, vars.var(b));
        let act = g.gelu(hb);
        let loss = g.mse(act, tv);
        g.backward(loss);
        store.step(&mut opt, &g, &vars);
    }
    store.snapshot()
}

#[test]
fn fused_adamw_matches_reference_bitwise_across_thread_counts() {
    let _guard = lock_globals();

    set_fused(false);
    let reference = train_params(5);

    set_fused(true);
    for threads in [1, 2, 4] {
        par::set_threads(threads);
        let fused = train_params(5);
        for (i, (r, f)) in reference.iter().zip(&fused).enumerate() {
            assert_bitwise_eq(r, f, &format!("param {i} at {threads} threads"));
        }
    }
    par::set_threads(0);
}
