//! Property-based tests: gradient identities that must hold for arbitrary
//! bounded inputs, checked with the finite-difference harness.

use focus_autograd::{gradcheck, Graph};
use focus_tensor::Tensor;
use proptest::prelude::*;

fn tensor(dims: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-2.0f32..2.0, n).prop_map(move |v| Tensor::from_vec(v, dims))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_chain_gradcheck(a in tensor(&[3, 4]), b in tensor(&[4, 2])) {
        let rep = gradcheck::check(&[a, b], 1e-2, |g, v| {
            let m = g.matmul(v[0], v[1]);
            let sq = g.mul(m, m);
            g.mean_all(sq)
        });
        prop_assert!(rep.max_rel_err < 0.05, "rel err {}", rep.max_rel_err);
    }

    #[test]
    fn softmax_then_mse_gradcheck(x in tensor(&[2, 5]), t in tensor(&[2, 5])) {
        let rep = gradcheck::check(&[x, t], 1e-2, |g, v| {
            let s = g.softmax_last(v[0]);
            g.mse(s, v[1])
        });
        prop_assert!(rep.max_rel_err < 0.05, "rel err {}", rep.max_rel_err);
    }

    #[test]
    fn linearity_of_gradients(x in tensor(&[6]), c in 0.1f32..3.0) {
        // d(mean(c·x²))/dx = c · d(mean(x²))/dx.
        let grad_of = |scale: f32, input: &Tensor| -> Vec<f32> {
            let mut g = Graph::new();
            let xv = g.leaf(input.clone());
            let sq = g.mul(xv, xv);
            let scaled = g.scale(sq, scale);
            let loss = g.mean_all(scaled);
            g.backward(loss);
            g.grad(xv).unwrap().data().to_vec()
        };
        let g1 = grad_of(1.0, &x);
        let gc = grad_of(c, &x);
        for (a, b) in g1.iter().zip(&gc) {
            prop_assert!((a * c - b).abs() < 1e-4 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn sum_rule(x in tensor(&[4, 3])) {
        // grad of sum_all is all-ones.
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let loss = g.sum_all(xv);
        g.backward(loss);
        let grad = g.grad(xv).unwrap();
        prop_assert!(grad.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn chain_through_reshape_and_transpose_preserves_gradient_norm(x in tensor(&[3, 4])) {
        // Loss is invariant to reshape/transpose, so gradients must match the
        // direct computation elementwise (after undoing the permutation).
        let direct = {
            let mut g = Graph::new();
            let xv = g.leaf(x.clone());
            let sq = g.mul(xv, xv);
            let loss = g.mean_all(sq);
            g.backward(loss);
            g.grad(xv).unwrap().clone()
        };
        let via_ops = {
            let mut g = Graph::new();
            let xv = g.leaf(x.clone());
            let r = g.reshape(xv, &[4, 3]);
            let t = g.transpose(r);
            let sq = g.mul(t, t);
            let loss = g.mean_all(sq);
            g.backward(loss);
            g.grad(xv).unwrap().clone()
        };
        prop_assert!(direct.max_abs_diff(&via_ops) < 1e-5);
    }

    #[test]
    fn swap_axes_is_gradient_involution(x in tensor(&[2, 3, 4])) {
        // swap01(swap01(x)) = x, so the gradient through the double swap
        // equals the direct gradient.
        let direct = {
            let mut g = Graph::new();
            let xv = g.leaf(x.clone());
            let sq = g.mul(xv, xv);
            let loss = g.mean_all(sq);
            g.backward(loss);
            g.grad(xv).unwrap().clone()
        };
        let swapped = {
            let mut g = Graph::new();
            let xv = g.leaf(x.clone());
            let s1 = g.swap_axes01(xv);
            let s2 = g.swap_axes01(s1);
            let sq = g.mul(s2, s2);
            let loss = g.mean_all(sq);
            g.backward(loss);
            g.grad(xv).unwrap().clone()
        };
        prop_assert!(direct.max_abs_diff(&swapped) < 1e-6);
    }

    #[test]
    fn layer_norm_gradient_orthogonal_to_ones(x in tensor(&[2, 6])) {
        // LayerNorm output is invariant to a constant shift of its input,
        // so dL/dx must sum to ~0 per row.
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let gamma = g.constant(Tensor::ones(&[6]));
        let beta = g.constant(Tensor::zeros(&[6]));
        let y = g.layer_norm(xv, gamma, beta, 1e-5);
        let sq = g.mul(y, y);
        let loss = g.mean_all(sq);
        g.backward(loss);
        let grad = g.grad(xv).unwrap();
        for r in 0..2 {
            let row_sum: f32 = grad.row(r).iter().sum();
            prop_assert!(row_sum.abs() < 1e-3, "row {r} grad sum {row_sum}");
        }
    }
}
