//! Property-based tests for the tensor kernels: the algebraic identities that
//! must hold for arbitrary (finite, bounded) inputs, and the bitwise parity
//! of the tiled/parallel kernels with their serial references.

use focus_tensor::{par, reference, stats, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a matrix of the given dims with bounded finite entries.
fn matrix(m: usize, n: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, m * n).prop_map(move |v| Tensor::from_vec(v, &[m, n]))
}

proptest! {
    #[test]
    fn matmul_distributes_over_addition(
        a in matrix(3, 4),
        b in matrix(4, 2),
        c in matrix(4, 2),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-3);
    }

    #[test]
    fn transpose_of_product_is_reversed_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-3);
    }

    #[test]
    fn matmul_nt_tn_agree_with_naive(a in matrix(3, 5), b in matrix(4, 5), c in matrix(3, 4)) {
        prop_assert!(a.matmul_nt(&b).max_abs_diff(&a.matmul(&b.transpose())) < 1e-3);
        prop_assert!(c.matmul_tn(&a).max_abs_diff(&c.transpose().matmul(&a)) < 1e-3);
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix(4, 6)) {
        let s = a.softmax_last();
        prop_assert!(s.all_finite());
        for i in 0..4 {
            let row = s.row(i);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_is_stable_under_large_row_offsets(
        a in matrix(3, 8),
        magnitude in 80.0f32..3.0e4,
        flip in 0u32..2,
    ) {
        let offset = if flip == 0 { magnitude } else { -magnitude };
        // Without the max-subtract rewrite, exp(x) overflows to inf (or
        // flushes every entry to 0) long before |x| reaches 1e4. Shifting a
        // whole row must leave the softmax a distribution: shift-invariance
        // means the result should also stay close to the unshifted one.
        let base = a.softmax_last();
        let shifted = a.add_scalar(offset).softmax_last();
        prop_assert!(shifted.all_finite());
        for i in 0..3 {
            let row = shifted.row(i);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {} sums to {}", i, sum);
        }
        prop_assert!(base.max_abs_diff(&shifted) < 1e-3);
    }

    #[test]
    fn softmax_preserves_argmax(a in matrix(1, 8)) {
        let s = a.softmax_last();
        prop_assert_eq!(a.argmax(), s.argmax());
    }

    #[test]
    fn pearson_is_bounded_and_symmetric(
        x in prop::collection::vec(-100.0f32..100.0, 16),
        y in prop::collection::vec(-100.0f32..100.0, 16),
    ) {
        let r = stats::pearson(&x, &y);
        prop_assert!((-1.0..=1.0).contains(&r));
        let r2 = stats::pearson(&y, &x);
        prop_assert!((r - r2).abs() < 1e-5);
    }

    #[test]
    fn pearson_self_is_one_unless_flat(x in prop::collection::vec(-100.0f32..100.0, 16)) {
        let (_, s) = stats::mean_std(&x);
        let r = stats::pearson(&x, &x);
        if s > 1e-3 {
            prop_assert!((r - 1.0).abs() < 1e-4, "r = {r}, std = {s}");
        } else {
            // Near-constant input: correlation defined as 0 or 1 depending on
            // exact variance; only boundedness is guaranteed.
            prop_assert!((-1.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn sq_euclidean_is_a_metric_squared(
        x in prop::collection::vec(-50.0f32..50.0, 8),
        y in prop::collection::vec(-50.0f32..50.0, 8),
    ) {
        prop_assert!(stats::sq_euclidean(&x, &y) >= 0.0);
        prop_assert!((stats::sq_euclidean(&x, &y) - stats::sq_euclidean(&y, &x)).abs() < 1e-3);
        prop_assert!(stats::sq_euclidean(&x, &x) < 1e-6);
    }

    #[test]
    fn concat_split_round_trip(a in matrix(3, 4), b in matrix(3, 2)) {
        let c = a.concat_last(&b);
        let (x, y) = c.split_last(4);
        prop_assert_eq!(x.data(), a.data());
        prop_assert_eq!(y.data(), b.data());
    }

    #[test]
    fn stack_index_round_trip(a in matrix(2, 3), b in matrix(2, 3)) {
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        let s0 = s.index_axis0(0);
        let s1 = s.index_axis0(1);
        prop_assert_eq!(s0.data(), a.data());
        prop_assert_eq!(s1.data(), b.data());
    }

    #[test]
    fn reshape_preserves_sum(a in matrix(3, 8)) {
        let r = a.reshape(&[2, 3, 4]);
        prop_assert!((r.sum_all() - a.sum_all()).abs() < 1e-3);
    }
}

/// Serialises tests that flip the process-global [`par::set_threads`]
/// override, so one test's thread sweep can't disturb another's baseline.
/// Shares the crate-wide guard so the policy lives in one place.
fn lock_threads() -> std::sync::MutexGuard<'static, ()> {
    par::threads_guard()
}

/// Builds `[m, k]` test data whose entries include exact zeros (so the
/// `a != 0.0` skip paths are exercised) alongside arbitrary finite values.
fn gemm_operand(dims: &[usize], rng: &mut StdRng) -> Tensor {
    use rand::Rng;
    let n: usize = dims.iter().product();
    let data = (0..n)
        .map(|_| {
            if rng.gen_bool(0.25) {
                0.0
            } else {
                rng.gen_range(-4.0f32..4.0)
            }
        })
        .collect();
    Tensor::from_vec(data, dims)
}

// Bitwise parity of the tiled + parallel matmul family with the serial
// reference. Shapes deliberately straddle the dispatch thresholds: empty and
// single-row cases stay on the reference, mid sizes hit the tiled serial
// path, and the largest (with `k` above one KC block and dims off every
// MR/NR multiple) hit the tiled + multithreaded path. For each shape the
// product is recomputed under 1, 2 and 4 worker threads and must be
// bit-for-bit equal every time.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matmul_family_bitwise_matches_reference(
        seed in 0u64..1u64 << 48,
        m in 0usize..70,
        k in 0usize..300,
        n in 0usize..70,
    ) {
        let _guard = lock_threads();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = gemm_operand(&[m, k], &mut rng);
        let b = gemm_operand(&[k, n], &mut rng);
        let bt = gemm_operand(&[n, k], &mut rng);
        let at = gemm_operand(&[k, m], &mut rng);

        let mut c_nn = Tensor::zeros(&[m, n]);
        reference::gemm(m, k, n, a.data(), b.data(), c_nn.data_mut());
        let mut c_nt = Tensor::zeros(&[m, n]);
        reference::gemm_nt(m, k, n, a.data(), bt.data(), c_nt.data_mut());
        let mut c_tn = Tensor::zeros(&[m, n]);
        reference::gemm_tn(m, k, n, at.data(), b.data(), c_tn.data_mut());

        for threads in [1usize, 2, 4] {
            par::set_threads(threads);
            let (nn, nt, tn) = (a.matmul(&b), a.matmul_nt(&bt), at.matmul_tn(&b));
            prop_assert_eq!(nn.data(), c_nn.data(), "gemm {}x{}x{} t{}", m, k, n, threads);
            prop_assert_eq!(nt.data(), c_nt.data(), "nt {}x{}x{} t{}", m, k, n, threads);
            prop_assert_eq!(tn.data(), c_tn.data(), "tn {}x{}x{} t{}", m, k, n, threads);
        }
        par::set_threads(0);
    }

    #[test]
    fn bmm_family_bitwise_matches_reference(
        seed in 0u64..1u64 << 48,
        bt in 1usize..9,
        m in 1usize..40,
        k in 1usize..80,
        n in 1usize..40,
    ) {
        let _guard = lock_threads();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = gemm_operand(&[bt, m, k], &mut rng);
        let b = gemm_operand(&[bt, k, n], &mut rng);
        let b_t = gemm_operand(&[bt, n, k], &mut rng);
        let a_t = gemm_operand(&[bt, k, m], &mut rng);

        let mut c_nn = Tensor::zeros(&[bt, m, n]);
        let mut c_nt = Tensor::zeros(&[bt, m, n]);
        let mut c_tn = Tensor::zeros(&[bt, m, n]);
        for bi in 0..bt {
            let c = &mut c_nn.data_mut()[bi * m * n..(bi + 1) * m * n];
            reference::gemm(m, k, n, &a.data()[bi * m * k..(bi + 1) * m * k], &b.data()[bi * k * n..(bi + 1) * k * n], c);
            let c = &mut c_nt.data_mut()[bi * m * n..(bi + 1) * m * n];
            reference::gemm_nt(m, k, n, &a.data()[bi * m * k..(bi + 1) * m * k], &b_t.data()[bi * n * k..(bi + 1) * n * k], c);
            let c = &mut c_tn.data_mut()[bi * m * n..(bi + 1) * m * n];
            reference::gemm_tn(m, k, n, &a_t.data()[bi * k * m..(bi + 1) * k * m], &b.data()[bi * k * n..(bi + 1) * k * n], c);
        }

        for threads in [1usize, 2, 4] {
            par::set_threads(threads);
            let (nn, nt, tn) = (a.bmm(&b), a.bmm_nt(&b_t), a_t.bmm_tn(&b));
            prop_assert_eq!(nn.data(), c_nn.data(), "bmm {}: {}x{}x{} t{}", bt, m, k, n, threads);
            prop_assert_eq!(nt.data(), c_nt.data(), "bmm_nt {}: {}x{}x{} t{}", bt, m, k, n, threads);
            prop_assert_eq!(tn.data(), c_tn.data(), "bmm_tn {}: {}x{}x{} t{}", bt, m, k, n, threads);
        }
        par::set_threads(0);
    }

    #[test]
    fn parallel_row_ops_bitwise_match_serial(seed in 0u64..1u64 << 48, rows in 1usize..600, cols in 1usize..48) {
        let _guard = lock_threads();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = gemm_operand(&[rows, cols], &mut rng);
        // Serial baselines (thread override 1 forces the inline path).
        par::set_threads(1);
        let sm = t.softmax_last();
        let sl = t.sum_last();
        let ms = t.row_mean_std();
        let mp = t.map(|v| v * 1.5 - 0.25);
        for threads in [2usize, 4] {
            par::set_threads(threads);
            let (sm2, sl2, mp2) = (t.softmax_last(), t.sum_last(), t.map(|v| v * 1.5 - 0.25));
            prop_assert_eq!(sm2.data(), sm.data());
            prop_assert_eq!(sl2.data(), sl.data());
            prop_assert_eq!(t.row_mean_std(), ms.clone());
            prop_assert_eq!(mp2.data(), mp.data());
        }
        par::set_threads(0);
    }
}
