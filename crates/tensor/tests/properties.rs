//! Property-based tests for the tensor kernels: the algebraic identities that
//! must hold for arbitrary (finite, bounded) inputs.

use focus_tensor::{stats, Tensor};
use proptest::prelude::*;

/// Strategy: a matrix of the given dims with bounded finite entries.
fn matrix(m: usize, n: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, m * n).prop_map(move |v| Tensor::from_vec(v, &[m, n]))
}

proptest! {
    #[test]
    fn matmul_distributes_over_addition(
        a in matrix(3, 4),
        b in matrix(4, 2),
        c in matrix(4, 2),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-3);
    }

    #[test]
    fn transpose_of_product_is_reversed_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-3);
    }

    #[test]
    fn matmul_nt_tn_agree_with_naive(a in matrix(3, 5), b in matrix(4, 5), c in matrix(3, 4)) {
        prop_assert!(a.matmul_nt(&b).max_abs_diff(&a.matmul(&b.transpose())) < 1e-3);
        prop_assert!(c.matmul_tn(&a).max_abs_diff(&c.transpose().matmul(&a)) < 1e-3);
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix(4, 6)) {
        let s = a.softmax_last();
        prop_assert!(s.all_finite());
        for i in 0..4 {
            let row = s.row(i);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_preserves_argmax(a in matrix(1, 8)) {
        let s = a.softmax_last();
        prop_assert_eq!(a.argmax(), s.argmax());
    }

    #[test]
    fn pearson_is_bounded_and_symmetric(
        x in prop::collection::vec(-100.0f32..100.0, 16),
        y in prop::collection::vec(-100.0f32..100.0, 16),
    ) {
        let r = stats::pearson(&x, &y);
        prop_assert!((-1.0..=1.0).contains(&r));
        let r2 = stats::pearson(&y, &x);
        prop_assert!((r - r2).abs() < 1e-5);
    }

    #[test]
    fn pearson_self_is_one_unless_flat(x in prop::collection::vec(-100.0f32..100.0, 16)) {
        let (_, s) = stats::mean_std(&x);
        let r = stats::pearson(&x, &x);
        if s > 1e-3 {
            prop_assert!((r - 1.0).abs() < 1e-4, "r = {r}, std = {s}");
        } else {
            // Near-constant input: correlation defined as 0 or 1 depending on
            // exact variance; only boundedness is guaranteed.
            prop_assert!((-1.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn sq_euclidean_is_a_metric_squared(
        x in prop::collection::vec(-50.0f32..50.0, 8),
        y in prop::collection::vec(-50.0f32..50.0, 8),
    ) {
        prop_assert!(stats::sq_euclidean(&x, &y) >= 0.0);
        prop_assert!((stats::sq_euclidean(&x, &y) - stats::sq_euclidean(&y, &x)).abs() < 1e-3);
        prop_assert!(stats::sq_euclidean(&x, &x) < 1e-6);
    }

    #[test]
    fn concat_split_round_trip(a in matrix(3, 4), b in matrix(3, 2)) {
        let c = a.concat_last(&b);
        let (x, y) = c.split_last(4);
        prop_assert_eq!(x.data(), a.data());
        prop_assert_eq!(y.data(), b.data());
    }

    #[test]
    fn stack_index_round_trip(a in matrix(2, 3), b in matrix(2, 3)) {
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        let s0 = s.index_axis0(0);
        let s1 = s.index_axis0(1);
        prop_assert_eq!(s0.data(), a.data());
        prop_assert_eq!(s1.data(), b.data());
    }

    #[test]
    fn reshape_preserves_sum(a in matrix(3, 8)) {
        let r = a.reshape(&[2, 3, 4]);
        prop_assert!((r.sum_all() - a.sum_all()).abs() < 1e-3);
    }
}
