//! Sparse one-hot routing kernels.
//!
//! ProtoAttn routes each segment to its assigned prototype's attention
//! summary: `out = A · head` with `A: [B, l, k]` one-hot. Materialising `A`
//! and running a dense batched product costs `O(B·l·k·d)` (the zero-skip in
//! [`crate::reference::gemm`] helps, but still scans every `(row, k)` pair).
//! These kernels carry the assignment as an index vector `[B·l]` instead:
//!
//! * forward ([`route_gather`]) is a row gather — `O(B·l·d)` copies;
//! * backward ([`route_scatter_add`]) is a scatter-add over ascending segment
//!   index within each batch — the identical per-element accumulation chain
//!   as the dense `Aᵀ · g` (`gemm_tn` walks the contraction axis ascending
//!   and skips the zero entries, adding `1.0 · g` terms in the same order),
//!   so the result is **bitwise identical** to the dense backward.
//!
//! Both kernels split work over disjoint output rows (gather) or disjoint
//! batches (scatter), so the determinism contract of [`crate::par`] holds at
//! any thread count.

use crate::par;
use crate::Tensor;

/// Minimum copied/accumulated elements per thread before the routing kernels
/// go parallel.
pub(crate) const ROUTE_GRAIN: usize = 64 * 1024;

/// Validates a routing index vector against the prototype count `k`.
fn check_indices(indices: &[u32], k: usize) {
    for (pos, &j) in indices.iter().enumerate() {
        assert!(
            (j as usize) < k,
            "routing index {j} at position {pos} out of range for k = {k}"
        );
    }
}

/// One-hot routing forward: `out[b, i, :] = head[b, indices[b·l + i], :]`
/// for `head: [B, k, d]`, producing `[B, l, d]`.
///
/// Equivalent to `A · head` with the one-hot `A` built from `indices`
/// (`0.0 + 1.0·h` is exact in IEEE 754, so the gather is bitwise identical
/// to the dense product), at `O(B·l·d)` instead of `O(B·l·k·d)`.
///
/// # Panics
/// If `head` is not rank 3, `indices.len() != B·l`, or an index is `≥ k`.
pub fn route_gather(head: &Tensor, indices: &[u32], l: usize) -> Tensor {
    assert_eq!(head.rank(), 3, "route_gather head must be [B, k, d]");
    let (b, k, d) = (head.dims()[0], head.dims()[1], head.dims()[2]);
    assert_eq!(indices.len(), b * l, "route_gather expects B·l = {} indices, got {}", b * l, indices.len());
    check_indices(indices, k);
    let mut out = Tensor::zeros(&[b, l, d]);
    let grain_rows = ROUTE_GRAIN.div_ceil(d.max(1)).max(1);
    let head_data = head.data();
    par::parallel_rows(out.data_mut(), d, grain_rows, 1, |row0, chunk| {
        for (off, dst) in chunk.chunks_exact_mut(d).enumerate() {
            let row = row0 + off; // global segment slot in [B·l]
            let bi = row / l;
            let j = indices[row] as usize;
            let src = (bi * k + j) * d;
            dst.copy_from_slice(&head_data[src..src + d]);
        }
    });
    out
}

/// One-hot routing backward: `dhead[b, indices[b·l + i], :] += dout[b, i, :]`
/// for `dout: [B, l, d]`, producing `[B, k, d]`.
///
/// Within each batch the adds run over ascending segment index `i`, matching
/// the dense `Aᵀ · dout` accumulation chain bit for bit (see module docs).
/// Batches write disjoint output slices and may run in parallel.
///
/// # Panics
/// If `dout` is not rank 3, `indices.len() != B·l`, or an index is `≥ k`.
pub fn route_scatter_add(dout: &Tensor, indices: &[u32], k: usize) -> Tensor {
    assert_eq!(dout.rank(), 3, "route_scatter_add dout must be [B, l, d]");
    let (b, l, d) = (dout.dims()[0], dout.dims()[1], dout.dims()[2]);
    assert_eq!(indices.len(), b * l, "route_scatter_add expects B·l = {} indices, got {}", b * l, indices.len());
    check_indices(indices, k);
    let mut out = Tensor::zeros(&[b, k, d]);
    let grain_batches = ROUTE_GRAIN.div_ceil((l * d).max(1)).max(1);
    let dout_data = dout.data();
    par::parallel_rows(out.data_mut(), k * d, grain_batches, 1, |b0, chunk| {
        for (off, dst) in chunk.chunks_exact_mut(k * d).enumerate() {
            let bi = b0 + off;
            for i in 0..l {
                let j = indices[bi * l + i] as usize;
                let src = (bi * l + i) * d;
                let acc = &mut dst[j * d..(j + 1) * d];
                for (o, &v) in acc.iter_mut().zip(&dout_data[src..src + d]) {
                    *o += v;
                }
            }
        }
    });
    out
}

/// Builds the dense one-hot `[B, l, k]` matrix a routing index vector stands
/// for (diagnostics and the dense-path tests; the hot path never calls this).
pub fn one_hot_matrix(indices: &[u32], b: usize, l: usize, k: usize) -> Tensor {
    assert_eq!(indices.len(), b * l, "one_hot_matrix expects B·l = {} indices, got {}", b * l, indices.len());
    check_indices(indices, k);
    let mut a = Tensor::zeros(&[b, l, k]);
    for (row, &j) in indices.iter().enumerate() {
        a.data_mut()[row * k + j as usize] = 1.0;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fixture(b: usize, l: usize, k: usize, d: usize, seed: u64) -> (Tensor, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let head = Tensor::randn(&[b, k, d], 1.0, &mut rng);
        let indices: Vec<u32> = (0..b * l).map(|_| rng.gen_range(0..k as u32)).collect();
        (head, indices)
    }

    #[test]
    fn gather_matches_dense_bmm_bitwise() {
        let (b, l, k, d) = (3, 17, 5, 9);
        let (head, indices) = fixture(b, l, k, d, 1);
        let fast = route_gather(&head, &indices, l);
        let dense = one_hot_matrix(&indices, b, l, k).bmm(&head);
        assert_eq!(fast.data(), dense.data());
    }

    #[test]
    fn scatter_add_matches_dense_bmm_tn_bitwise() {
        let (b, l, k, d) = (2, 23, 4, 7);
        let (_, indices) = fixture(b, l, k, d, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let dout = Tensor::randn(&[b, l, d], 1.0, &mut rng);
        let fast = route_scatter_add(&dout, &indices, k);
        let dense = one_hot_matrix(&indices, b, l, k).bmm_tn(&dout);
        assert_eq!(fast.data(), dense.data());
    }

    #[test]
    fn kernels_are_bitwise_identical_across_thread_counts() {
        // The override is process-global; the guard keeps the par/pool tests
        // in this binary from observing our sweep (and vice versa).
        let _g = par::threads_guard();
        let (b, l, k, d) = (4, 64, 8, 16);
        let (head, indices) = fixture(b, l, k, d, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let dout = Tensor::randn(&[b, l, d], 1.0, &mut rng);
        par::set_threads(1);
        let g1 = route_gather(&head, &indices, l);
        let s1 = route_scatter_add(&dout, &indices, k);
        for threads in [2, 4] {
            par::set_threads(threads);
            assert_eq!(route_gather(&head, &indices, l).data(), g1.data());
            assert_eq!(route_scatter_add(&dout, &indices, k).data(), s1.data());
        }
        par::set_threads(0);
    }

    #[test]
    fn scatter_accumulates_shared_buckets() {
        // Two segments routed to the same prototype must sum their grads.
        let dout = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], &[1, 2, 2]);
        let out = route_scatter_add(&dout, &[1, 1], 3);
        assert_eq!(out.dims(), &[1, 3, 2]);
        assert_eq!(out.data(), &[0.0, 0.0, 11.0, 22.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_index() {
        let head = Tensor::zeros(&[1, 2, 3]);
        let _ = route_gather(&head, &[2], 1);
    }

    #[test]
    #[should_panic(expected = "indices")]
    fn rejects_wrong_index_count() {
        let head = Tensor::zeros(&[1, 2, 3]);
        let _ = route_gather(&head, &[0, 1, 0], 2);
    }
}
