//! Slice-level execution entry points for compiled autograd plans.
//!
//! The plan VM in `focus-autograd` replays a recorded training step against
//! pre-allocated buffer slots instead of pool-backed [`Tensor`]s. Every
//! function here writes into a caller-provided `&mut [f32]` and performs
//! **zero pool traffic**; each one reproduces, operation for operation, the
//! floating-point sequence of the Tensor-level op it mirrors (same kernels,
//! same [`crate::par`] grains, same serial loops), so a replayed step is
//! bitwise-identical to the interpreted step at any thread count.
//!
//! The mirrors fall into three groups:
//!
//! * **shared cores** — GEMM dispatch, fused LayerNorm/softmax and the
//!   routing kernels call the *same* internal functions as the Tensor ops
//!   (`matmul::gemm_dispatch`, `fused::*_into`), so parity is structural;
//! * **re-expressed loops** — elementwise zips/maps and the small copy /
//!   transpose ops restate the Tensor op's loop over slices with identical
//!   split parameters;
//! * **pre-zeroed accumulators** — ops whose Tensor form starts from
//!   [`Tensor::zeros`] (`fill(0.0)` here) before accumulating.

use crate::matmul::{self, Kind};
use crate::ops::{ELEM_GRAIN, EXP_GRAIN};
use crate::route::ROUTE_GRAIN;
use crate::{fused, par, raw};

/// Transpose mode of a GEMM, the public face of the dispatcher's kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// `a[m×k] · b[k×n]`.
    Nn,
    /// `a[m×k] · (b[n×k])ᵀ`.
    Nt,
    /// `(a[k×m])ᵀ · b[k×n]`.
    Tn,
}

impl Trans {
    fn kind(self) -> Kind {
        match self {
            Trans::Nn => Kind::Nn,
            Trans::Nt => Kind::Nt,
            Trans::Tn => Kind::Tn,
        }
    }
}

/// Elementwise binary op into `dst`: the slice mirror of
/// [`Tensor::zip_with`] (same [`par::parallel_fill`] split).
fn zip(a: &[f32], b: &[f32], dst: &mut [f32], op: impl Fn(f32, f32) -> f32 + Sync) {
    debug_assert!(a.len() == dst.len() && b.len() == dst.len());
    par::parallel_fill(dst, ELEM_GRAIN, |range, chunk| {
        let av = &a[range.clone()];
        let bv = &b[range];
        for ((o, &x), &y) in chunk.iter_mut().zip(av).zip(bv) {
            *o = op(x, y);
        }
    });
}

/// Elementwise map into `dst`: the slice mirror of [`Tensor::map`].
fn map(src: &[f32], dst: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    debug_assert_eq!(src.len(), dst.len());
    par::parallel_fill(dst, ELEM_GRAIN, |range, chunk| {
        for (o, &v) in chunk.iter_mut().zip(&src[range]) {
            *o = f(v);
        }
    });
}

/// `dst = a + b` (mirror of [`Tensor::add`]).
pub fn zip_add(a: &[f32], b: &[f32], dst: &mut [f32]) {
    zip(a, b, dst, |x, y| x + y);
}

/// `dst = a - b` (mirror of [`Tensor::sub`]).
pub fn zip_sub(a: &[f32], b: &[f32], dst: &mut [f32]) {
    zip(a, b, dst, |x, y| x - y);
}

/// `dst = a ⊙ b` (mirror of [`Tensor::mul`]).
pub fn zip_mul(a: &[f32], b: &[f32], dst: &mut [f32]) {
    zip(a, b, dst, |x, y| x * y);
}

/// ReLU backward: `dst = g where x > 0 else 0` (mirror of the autograd
/// activation rule's `zip_with`).
pub fn zip_relu_bwd(x: &[f32], g: &[f32], dst: &mut [f32]) {
    zip(x, g, dst, |v, gv| if v > 0.0 { gv } else { 0.0 });
}

/// GELU backward over the forward *input*.
pub fn zip_gelu_bwd(x: &[f32], g: &[f32], dst: &mut [f32]) {
    zip(x, g, dst, |v, gv| gv * fused::gelu_bwd(v));
}

/// |x| backward over the forward *input*.
pub fn zip_abs_bwd(x: &[f32], g: &[f32], dst: &mut [f32]) {
    zip(x, g, dst, |v, gv| {
        if v > 0.0 {
            gv
        } else if v < 0.0 {
            -gv
        } else {
            0.0
        }
    });
}

/// Sigmoid backward over the forward *output* `y`: `dst = g · y · (1 − y)`.
pub fn zip_sigmoid_bwd(y: &[f32], g: &[f32], dst: &mut [f32]) {
    zip(y, g, dst, |v, gv| gv * v * (1.0 - v));
}

/// Tanh backward over the forward *output* `y`: `dst = g · (1 − y²)`.
pub fn zip_tanh_bwd(y: &[f32], g: &[f32], dst: &mut [f32]) {
    zip(y, g, dst, |v, gv| gv * (1.0 - v * v));
}

/// `dst = src · alpha` (mirror of [`Tensor::scale`]).
pub fn map_scale(src: &[f32], alpha: f32, dst: &mut [f32]) {
    map(src, dst, |v| v * alpha);
}

/// `dst = src + alpha` (mirror of [`Tensor::add_scalar`]).
pub fn map_add_scalar(src: &[f32], alpha: f32, dst: &mut [f32]) {
    map(src, dst, |v| v + alpha);
}

/// ReLU forward (mirror of the autograd `relu` map).
pub fn map_relu(src: &[f32], dst: &mut [f32]) {
    map(src, dst, |v| v.max(0.0));
}

/// GELU forward (tanh approximation, shared scalar).
pub fn map_gelu(src: &[f32], dst: &mut [f32]) {
    map(src, dst, fused::gelu_fwd);
}

/// Sigmoid forward (mirror of the autograd `sigmoid` map).
pub fn map_sigmoid(src: &[f32], dst: &mut [f32]) {
    map(src, dst, |v| 1.0 / (1.0 + (-v).exp()));
}

/// Tanh forward.
pub fn map_tanh(src: &[f32], dst: &mut [f32]) {
    map(src, dst, f32::tanh);
}

/// |x| forward.
pub fn map_abs(src: &[f32], dst: &mut [f32]) {
    map(src, dst, f32::abs);
}

/// `dst += alpha · src` over the flat element order (mirror of
/// [`Tensor::axpy_flat`], the gradient accumulator).
pub fn axpy(dst: &mut [f32], alpha: f32, src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    par::parallel_rows(dst, 1, ELEM_GRAIN, 1, |start, block| {
        let n = block.len();
        for (a, &b) in block.iter_mut().zip(&src[start..start + n]) {
            *a += alpha * b;
        }
    });
}

/// `dst = value` everywhere (mirror of [`Tensor::full`]'s serial fill).
pub fn fill(dst: &mut [f32], value: f32) {
    dst.fill(value);
}

/// `dst = src` (mirror of [`Tensor::clone`]'s buffer copy).
pub fn copy(src: &[f32], dst: &mut [f32]) {
    dst.copy_from_slice(src);
}

/// Row-broadcast add: `dst = x` then `dst[r, :] += row` for every length-`n`
/// row (mirror of [`Tensor::add_row_broadcast`]: clone + in-place sweep).
pub fn add_row_broadcast(x: &[f32], row: &[f32], n: usize, dst: &mut [f32]) {
    debug_assert_eq!(row.len(), n);
    dst.copy_from_slice(x);
    let grain_rows = ELEM_GRAIN.div_ceil(n).max(1);
    par::parallel_rows(dst, n, grain_rows, 1, |_, block| {
        for chunk in block.chunks_mut(n) {
            for (o, &b) in chunk.iter_mut().zip(row) {
                *o += b;
            }
        }
    });
}

/// Bias gradient of the row broadcast: `dst[j] = Σ_r g[r, j]`, columns in
/// parallel, each column summed in ascending row order (the autograd
/// `AddRowBroadcast` backward's exact chain).
pub fn bias_grad(g: &[f32], rows: usize, n: usize, dst: &mut [f32]) {
    debug_assert_eq!(g.len(), rows * n);
    debug_assert_eq!(dst.len(), n);
    let col_grain = (ELEM_GRAIN / rows.max(1)).max(1);
    par::parallel_rows(dst, 1, col_grain, 1, |col0, cols| {
        cols.fill(0.0);
        let w = cols.len();
        for r in 0..rows {
            let base = r * n + col0;
            for (o, &v) in cols.iter_mut().zip(&g[base..base + w]) {
                *o += v;
            }
        }
    });
}

/// Row softmax over trailing axis `n` (mirror of [`Tensor::softmax_last`]:
/// clone + in-place [`fused::softmax_row`] sweep).
pub fn softmax_last(src: &[f32], n: usize, dst: &mut [f32]) {
    dst.copy_from_slice(src);
    let grain_rows = EXP_GRAIN.div_ceil(n).max(1);
    par::parallel_rows(dst, n, grain_rows, 1, |_, block| {
        for chunk in block.chunks_mut(n) {
            fused::softmax_row(chunk);
        }
    });
}

/// Softmax backward (shared fused core).
pub fn softmax_last_bwd(y: &[f32], g: &[f32], n: usize, dst: &mut [f32]) {
    fused::softmax_last_bwd_into(y, g, n, dst);
}

/// LayerNorm forward (shared fused core): writes the normalised rows and the
/// `[rows, 2]` interleaved `(mean, rstd)` cache.
pub fn layer_norm_fwd(
    x: &[f32],
    n: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    out: &mut [f32],
    cache: &mut [f32],
) {
    fused::layer_norm_fwd_into(x, n, gamma, beta, eps, out, cache);
}

/// LayerNorm backward (shared fused core).
#[allow(clippy::too_many_arguments)]
pub fn layer_norm_bwd(
    x: &[f32],
    n: usize,
    gamma: &[f32],
    cache: &[f32],
    g: &[f32],
    dx: &mut [f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) {
    fused::layer_norm_bwd_into(x, n, gamma, cache, g, dx, dgamma, dbeta);
}

/// Rank-2 transpose (mirror of [`Tensor::transpose`]'s serial loop).
pub fn transpose2(src: &[f32], m: usize, n: usize, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            dst[j * m + i] = src[i * n + j];
        }
    }
}

/// Swap of the last two axes of `[b, m, n]` (mirror of
/// [`Tensor::transpose_last2`]).
pub fn transpose_last2(src: &[f32], b: usize, m: usize, n: usize, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), b * m * n);
    for bi in 0..b {
        let base = bi * m * n;
        for i in 0..m {
            for j in 0..n {
                dst[base + j * m + i] = src[base + i * n + j];
            }
        }
    }
}

/// Swap of the first two axes of `[a, b, c]`: `dst[j, i, :] = src[i, j, :]`
/// (mirror of the autograd `swap_axes01` helper's row copies).
pub fn swap01(src: &[f32], a: usize, b: usize, c: usize, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), a * b * c);
    for i in 0..a {
        for j in 0..b {
            let s = (i * b + j) * c;
            let d = (j * a + i) * c;
            dst[d..d + c].copy_from_slice(&src[s..s + c]);
        }
    }
}

/// Trailing-axis concatenation (mirror of [`Tensor::concat_last`]).
pub fn concat_last(a: &[f32], b: &[f32], na: usize, nb: usize, rows: usize, dst: &mut [f32]) {
    debug_assert_eq!(dst.len(), rows * (na + nb));
    for i in 0..rows {
        let base = i * (na + nb);
        dst[base..base + na].copy_from_slice(&a[i * na..(i + 1) * na]);
        dst[base + na..base + na + nb].copy_from_slice(&b[i * nb..(i + 1) * nb]);
    }
}

/// Column-range copy `dst[r, :] = src[r, from..to]` for rows of width `n`:
/// covers `split_last` halves and the `slice_last` forward (byte-identical
/// to the interpreter's staged copies).
pub fn slice_cols(src: &[f32], n: usize, from: usize, to: usize, rows: usize, dst: &mut [f32]) {
    let w = to - from;
    debug_assert_eq!(dst.len(), rows * w);
    for i in 0..rows {
        let row = &src[i * n..i * n + n];
        dst[i * w..(i + 1) * w].copy_from_slice(&row[from..to]);
    }
}

/// `slice_last` backward: zero `dst` (rows of width `n`) and copy each
/// gradient row into columns `[start, start + w)`.
pub fn scatter_cols(g: &[f32], n: usize, start: usize, w: usize, rows: usize, dst: &mut [f32]) {
    debug_assert_eq!(dst.len(), rows * n);
    debug_assert_eq!(g.len(), rows * w);
    dst.fill(0.0);
    for i in 0..rows {
        dst[i * n + start..i * n + start + w].copy_from_slice(&g[i * w..(i + 1) * w]);
    }
}

/// One-hot routing forward into `dst` (mirror of
/// [`crate::route::route_gather`]'s gather sweep; every output row is
/// overwritten).
pub fn route_gather(head: &[f32], indices: &[u32], b: usize, k: usize, d: usize, l: usize, dst: &mut [f32]) {
    debug_assert_eq!(head.len(), b * k * d);
    debug_assert_eq!(indices.len(), b * l);
    debug_assert_eq!(dst.len(), b * l * d);
    let grain_rows = ROUTE_GRAIN.div_ceil(d.max(1)).max(1);
    par::parallel_rows(dst, d, grain_rows, 1, |row0, chunk| {
        for (off, out) in chunk.chunks_exact_mut(d).enumerate() {
            let row = row0 + off;
            let bi = row / l;
            let j = indices[row] as usize;
            let src = (bi * k + j) * d;
            out.copy_from_slice(&head[src..src + d]);
        }
    });
}

/// One-hot routing backward into `dst` (mirror of
/// [`crate::route::route_scatter_add`]: zeroed, then per-batch ascending
/// scatter-add).
pub fn route_scatter_add(
    dout: &[f32],
    indices: &[u32],
    b: usize,
    l: usize,
    d: usize,
    k: usize,
    dst: &mut [f32],
) {
    debug_assert_eq!(dout.len(), b * l * d);
    debug_assert_eq!(indices.len(), b * l);
    debug_assert_eq!(dst.len(), b * k * d);
    dst.fill(0.0);
    let grain_batches = ROUTE_GRAIN.div_ceil((l * d).max(1)).max(1);
    par::parallel_rows(dst, k * d, grain_batches, 1, |b0, chunk| {
        for (off, out) in chunk.chunks_exact_mut(k * d).enumerate() {
            let bi = b0 + off;
            for i in 0..l {
                let j = indices[bi * l + i] as usize;
                let src = (bi * l + i) * d;
                let acc = &mut out[j * d..(j + 1) * d];
                for (o, &v) in acc.iter_mut().zip(&dout[src..src + d]) {
                    *o += v;
                }
            }
        }
    });
}

/// One GEMM into a zeroed `dst` through the shared dispatcher — the exact
/// path of [`Tensor::matmul`] / `matmul_nt` / `matmul_tn`.
pub fn gemm(trans: Trans, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(dst.len(), m * n);
    dst.fill(0.0);
    matmul::gemm_dispatch(trans.kind(), m, k, n, a, b, dst);
}

/// One batched GEMM into a zeroed `dst` through the shared dispatcher — the
/// exact path of [`Tensor::bmm`] / `bmm_nt` / `bmm_tn`.
#[allow(clippy::too_many_arguments)]
pub fn bmm(
    trans: Trans,
    bt: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    dst: &mut [f32],
) {
    debug_assert_eq!(dst.len(), bt * m * n);
    dst.fill(0.0);
    matmul::bmm_dispatch(trans.kind(), bt, m, k, n, a, b, dst);
}

/// Broadcast-left `a · bᵀ` sweep into a zeroed `dst` (the exact path of the
/// autograd `matmul_broadcast_nt` forward).
pub fn bcast_nt(bt: usize, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(dst.len(), bt * m * n);
    dst.fill(0.0);
    raw::gemm_nt_bcast(bt, m, k, n, a, b, dst);
}

/// Broadcast-NT backward for the shared LHS: `da = Σ_b g[b]·x[b]` with `da`
/// zeroed and each per-batch product landing in the zeroed `tmp` scratch
/// before an axpy merge — the autograd rule's exact accumulation chain.
#[allow(clippy::too_many_arguments)]
pub fn bcast_nt_da(
    g: &[f32],
    x: &[f32],
    bsz: usize,
    k: usize,
    l: usize,
    d: usize,
    da: &mut [f32],
    tmp: &mut [f32],
) {
    debug_assert_eq!(da.len(), k * d);
    debug_assert_eq!(tmp.len(), k * d);
    da.fill(0.0);
    for b in 0..bsz {
        tmp.fill(0.0);
        raw::gemm(k, l, d, &g[b * k * l..(b + 1) * k * l], &x[b * l * d..(b + 1) * l * d], tmp);
        axpy(da, 1.0, tmp);
    }
}

/// Broadcast-NT backward for the batched RHS: `dx[b] = g[b]ᵀ·a` written into
/// zeroed per-batch slices (the autograd rule's exact `gemm_tn` chain).
///
/// Unlike the `da` reduction above, every batch writes a disjoint `dx` slice,
/// so the sweep parallelises over batches with the dispatcher's MAC grain:
/// each batch's GEMM is the identical serial kernel regardless of which
/// thread runs it, keeping the gradient bitwise-stable at any thread count.
pub fn bcast_nt_dx(g: &[f32], a: &[f32], bsz: usize, k: usize, l: usize, d: usize, dx: &mut [f32]) {
    debug_assert_eq!(a.len(), k * d);
    debug_assert_eq!(dx.len(), bsz * l * d);
    dx.fill(0.0);
    if l * d == 0 {
        return;
    }
    let per_batch_macs = l * k * d;
    let batch_grain = matmul::PAR_GRAIN_MACS.div_ceil(per_batch_macs.max(1)).max(1);
    par::parallel_rows(dx, l * d, batch_grain, 1, |b0, chunk| {
        for (off, out) in chunk.chunks_exact_mut(l * d).enumerate() {
            let b = b0 + off;
            // Each batch runs the shared dispatcher exactly as the serial
            // loop did; a nested parallel attempt inside a worker degrades
            // to the same serial partition, so the bits cannot move.
            raw::gemm_tn(l, k, d, &g[b * k * l..(b + 1) * k * l], a, out);
        }
    });
}

/// Sum over the flat elements with an f64 accumulator (mirror of
/// [`Tensor::sum_all`]).
pub fn sum_all(src: &[f32]) -> f32 {
    src.iter().map(|&v| v as f64).sum::<f64>() as f32
}

/// Mean over the flat elements (mirror of [`Tensor::mean_all`]).
pub fn mean_all(src: &[f32]) -> f32 {
    sum_all(src) / src.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rt(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::randn(dims, 1.0, &mut rng)
    }

    #[test]
    fn zips_and_maps_match_tensor_ops_bitwise() {
        let a = rt(&[7, 13], 1);
        let b = rt(&[7, 13], 2);
        let mut out = vec![0.0f32; 91];
        zip_add(a.data(), b.data(), &mut out);
        assert_eq!(out, a.add(&b).data());
        zip_mul(a.data(), b.data(), &mut out);
        assert_eq!(out, a.mul(&b).data());
        map_scale(a.data(), -1.7, &mut out);
        assert_eq!(out, a.scale(-1.7).data());
        map_sigmoid(a.data(), &mut out);
        assert_eq!(out, a.map(|v| 1.0 / (1.0 + (-v).exp())).data());
    }

    #[test]
    fn gemm_matches_tensor_matmul_bitwise() {
        let a = rt(&[9, 17], 3);
        let b = rt(&[17, 11], 4);
        let mut out = vec![1.0f32; 9 * 11]; // stale contents must not leak
        gemm(Trans::Nn, 9, 17, 11, a.data(), b.data(), &mut out);
        assert_eq!(out, a.matmul(&b).data());
        let bt = rt(&[11, 17], 5);
        gemm(Trans::Nt, 9, 17, 11, a.data(), bt.data(), &mut out);
        assert_eq!(out, a.matmul_nt(&bt).data());
    }

    #[test]
    fn softmax_and_layer_norm_match_tensor_paths_bitwise() {
        let x = rt(&[12, 16], 6);
        let mut out = vec![0.0f32; 12 * 16];
        softmax_last(x.data(), 16, &mut out);
        assert_eq!(out, x.softmax_last().data());

        let gamma = rt(&[16], 7);
        let beta = rt(&[16], 8);
        let mut y = vec![0.0f32; 12 * 16];
        let mut cache = vec![0.0f32; 24];
        layer_norm_fwd(x.data(), 16, gamma.data(), beta.data(), 1e-5, &mut y, &mut cache);
        let (ty, tcache) = fused::layer_norm_fwd(&x, gamma.data(), beta.data(), 1e-5);
        assert_eq!(y, ty.data());
        assert_eq!(cache, tcache.data());
    }

    #[test]
    fn add_row_broadcast_and_bias_grad_round_trip() {
        let x = rt(&[31, 8], 9);
        let row = rt(&[8], 10);
        let mut out = vec![0.0f32; 31 * 8];
        add_row_broadcast(x.data(), row.data(), 8, &mut out);
        assert_eq!(out, x.add_row_broadcast(&row).data());

        let mut db = vec![0.0f32; 8];
        bias_grad(x.data(), 31, 8, &mut db);
        let mut serial = vec![0.0f32; 8];
        for r in 0..31 {
            for (j, s) in serial.iter_mut().enumerate() {
                *s += x.data()[r * 8 + j];
            }
        }
        assert_eq!(db, serial);
    }

    #[test]
    fn slice_scatter_and_concat_mirror_tensor_ops() {
        let a = rt(&[5, 6], 11);
        let b = rt(&[5, 3], 12);
        let mut cat = vec![0.0f32; 5 * 9];
        concat_last(a.data(), b.data(), 6, 3, 5, &mut cat);
        assert_eq!(cat, a.concat_last(&b).data());

        let mut left = vec![0.0f32; 5 * 6];
        slice_cols(&cat, 9, 0, 6, 5, &mut left);
        assert_eq!(left, a.data());

        let mut sc = vec![1.0f32; 5 * 9];
        scatter_cols(b.data(), 9, 6, 3, 5, &mut sc);
        for i in 0..5 {
            assert_eq!(&sc[i * 9..i * 9 + 6], &[0.0; 6]);
            assert_eq!(&sc[i * 9 + 6..i * 9 + 9], &b.data()[i * 3..(i + 1) * 3]);
        }
    }

    #[test]
    fn route_mirrors_match_tensor_kernels_bitwise() {
        use crate::route;
        let head = rt(&[3, 5, 4], 13);
        let indices: Vec<u32> = (0..3 * 7).map(|i| (i % 5) as u32).collect();
        let mut out = vec![0.0f32; 3 * 7 * 4];
        route_gather(head.data(), &indices, 3, 5, 4, 7, &mut out);
        assert_eq!(out, route::route_gather(&head, &indices, 7).data());

        let dout = rt(&[3, 7, 4], 14);
        let mut dh = vec![1.0f32; 3 * 5 * 4];
        route_scatter_add(dout.data(), &indices, 3, 7, 4, 5, &mut dh);
        assert_eq!(dh, route::route_scatter_add(&dout, &indices, 5).data());
    }
}
