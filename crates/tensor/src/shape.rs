//! Shape bookkeeping: a thin wrapper over a dimension list with the index
//! arithmetic the kernels need.

use std::fmt;

/// The shape of a [`crate::Tensor`]: an ordered list of dimension sizes.
///
/// Shapes are immutable once created. A scalar is represented by the empty
/// shape `[]` with `numel() == 1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Box<[usize]>);

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.into())
    }

    /// Number of dimensions (rank).
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `i`. Panics if `i >= rank()`.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements (product of all dimensions; 1 for scalars).
    #[inline]
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of the trailing dimension, or 1 for a scalar.
    #[inline]
    pub fn last_dim(&self) -> usize {
        self.0.last().copied().unwrap_or(1)
    }

    /// Number of rows when the tensor is viewed as a matrix of
    /// `[numel / last_dim, last_dim]`.
    #[inline]
    pub fn leading(&self) -> usize {
        self.numel().checked_div(self.last_dim()).unwrap_or(0)
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// True if both shapes have the same dimension list.
    #[inline]
    pub fn same_as(&self, other: &Shape) -> bool {
        self.0 == other.0
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.last_dim(), 4);
        assert_eq!(s.leading(), 6);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.last_dim(), 1);
        assert_eq!(s.leading(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn zero_dim_shape() {
        let s = Shape::new(&[0, 5]);
        assert_eq!(s.numel(), 0);
        assert_eq!(s.leading(), 0);
    }

    #[test]
    fn equality() {
        assert!(Shape::new(&[2, 3]).same_as(&Shape::from([2, 3])));
        assert!(!Shape::new(&[2, 3]).same_as(&Shape::new(&[3, 2])));
    }
}
