//! Size-bucketed recycling pool for tensor buffers.
//!
//! Every [`Tensor`](crate::Tensor) buffer is handed out by [`take`] /
//! [`take_zeroed`] / [`take_copy`] and returned by [`give`] when the tensor
//! drops. Buffers are grouped into power-of-two capacity classes: a fresh
//! allocation for a request of `n` elements reserves exactly
//! `n.next_power_of_two()` slots, so once a buffer exists for a class it is
//! found again by every later request that rounds up to the same class.
//! Combined with `Graph::reset` tape reuse, a steady-state training step
//! performs **zero** new heap allocations: every window re-requests the same
//! capacity classes the previous window just returned.
//!
//! Contents of a pooled buffer are **unspecified** (whatever the previous
//! owner left behind). [`take`] is therefore only for kernels that overwrite
//! every element before reading any; use [`take_zeroed`] when the kernel
//! accumulates into its output (e.g. GEMM) and [`take_copy`] to duplicate an
//! existing buffer. This is safe Rust throughout — recycled buffers always
//! hold previously-written `f32`s, never uninitialised memory — but reading
//! a slot before writing it would leak stale values into results and break
//! run-to-run determinism, so the overwrite discipline is load-bearing.
//!
//! The pool is a process-wide singleton guarded by a [`Mutex`]; the lock is
//! held only for the bucket push/pop, never while zeroing or copying.
//! Retention is capped per class and in total so pathological size sweeps
//! cannot hold the high-water mark of every shape ever seen.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One free-list per power-of-two capacity class (`2^0 ..= 2^63`).
const CLASSES: usize = usize::BITS as usize;
/// Buffers retained per class; excess returns are dropped (freed). A single
/// training tape holds hundreds of same-class activations at once (every
/// graph node keeps its value until `Graph::reset`), and they all return in
/// one burst at reset — the class cap must absorb that burst or the next
/// step re-allocates what was just freed. [`MAX_RESIDENT_BYTES`] is the
/// actual memory bound; this cap only stops one class hoarding it.
const MAX_PER_CLASS: usize = 4096;
/// Total bytes the pool may keep resident across all classes.
const MAX_RESIDENT_BYTES: usize = 256 << 20;

struct Shelves {
    classes: Vec<Vec<Vec<f32>>>,
    resident_bytes: usize,
}

static SHELVES: Mutex<Shelves> = Mutex::new(Shelves {
    classes: Vec::new(),
    resident_bytes: 0,
});
static ENABLED: AtomicBool = AtomicBool::new(true);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static FRESH_ALLOCS: AtomicU64 = AtomicU64::new(0);
static FRESH_STEADY: AtomicU64 = AtomicU64::new(0);
static RETURNED: AtomicU64 = AtomicU64::new(0);
/// Whether the process has declared itself past warmup (see [`set_steady`]).
static STEADY: AtomicBool = AtomicBool::new(false);

/// Snapshot of the pool's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from a recycled buffer.
    pub hits: u64,
    /// Requests that found their capacity class empty (pool enabled).
    pub misses: u64,
    /// Actual heap allocations performed (misses, plus every request while
    /// the pool is disabled).
    pub fresh_allocs: u64,
    /// The subset of `fresh_allocs` performed after [`set_steady`]`(true)`.
    /// A correctly warmed-up steady state keeps this at zero; the warmup
    /// share is `fresh_allocs - fresh_allocs_steady`.
    pub fresh_allocs_steady: u64,
    /// Buffers accepted back into the pool.
    pub returned: u64,
    /// Bytes currently resident in the free lists.
    pub resident_bytes: u64,
}

/// Records one fresh heap allocation, attributing it to the warmup or
/// steady phase (see [`set_steady`]).
#[inline]
fn count_fresh() {
    FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
    if STEADY.load(Ordering::Relaxed) {
        FRESH_STEADY.fetch_add(1, Ordering::Relaxed);
    }
}

/// Class whose fresh allocations serve requests of `n` elements.
#[inline]
fn class_for_request(n: usize) -> usize {
    n.next_power_of_two().trailing_zeros() as usize
}

/// Class a returned buffer of capacity `cap` files under: the largest class
/// it can fully serve (`2^c <= cap`).
#[inline]
fn class_for_capacity(cap: usize) -> usize {
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

fn lock() -> std::sync::MutexGuard<'static, Shelves> {
    let mut s = SHELVES.lock().expect("tensor pool mutex poisoned");
    if s.classes.is_empty() {
        s.classes.resize_with(CLASSES, Vec::new);
    }
    s
}

/// A buffer of length `n` with **unspecified** contents (stale values from
/// its previous owner). The caller must overwrite every element before
/// reading any.
pub fn take(n: usize) -> Vec<f32> {
    if n == 0 {
        return Vec::new();
    }
    if !ENABLED.load(Ordering::Relaxed) {
        count_fresh();
        return vec![0.0; n];
    }
    let c = class_for_request(n);
    let popped = {
        let mut s = lock();
        let v = s.classes[c].pop();
        if let Some(v) = &v {
            s.resident_bytes -= v.capacity() * std::mem::size_of::<f32>();
        }
        v
    };
    match popped {
        Some(mut v) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            // Capacity is >= 2^c >= n by the class invariant, so this never
            // reallocates: it either truncates or extends within capacity.
            debug_assert!(v.capacity() >= n);
            if v.len() >= n {
                v.truncate(n);
            } else {
                v.resize(n, 0.0);
            }
            v
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            count_fresh();
            // Reserve the full class so the buffer files back under `c` and
            // is found by every later same-class request.
            let mut v = Vec::with_capacity(1usize << c);
            v.resize(n, 0.0);
            v
        }
    }
}

/// A zero-filled buffer of length `n`.
pub fn take_zeroed(n: usize) -> Vec<f32> {
    let mut v = take(n);
    v.fill(0.0);
    v
}

/// A buffer holding a copy of `src`.
pub fn take_copy(src: &[f32]) -> Vec<f32> {
    let mut v = take(src.len());
    v.copy_from_slice(src);
    v
}

/// Returns a buffer to the pool (or frees it if retention caps are hit).
/// Zero-capacity buffers are ignored.
pub fn give(v: Vec<f32>) {
    let cap_bytes = v.capacity() * std::mem::size_of::<f32>();
    if cap_bytes == 0 || !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let c = class_for_capacity(v.capacity());
    let mut s = lock();
    if s.classes[c].len() >= MAX_PER_CLASS
        || s.resident_bytes + cap_bytes > MAX_RESIDENT_BYTES
    {
        return; // dropped: caps reached
    }
    s.resident_bytes += cap_bytes;
    s.classes[c].push(v);
    RETURNED.fetch_add(1, Ordering::Relaxed);
}

/// Enables or disables recycling. While disabled every [`take`] performs a
/// fresh allocation and every [`give`] frees — the pre-pool behaviour, kept
/// for baseline benchmarking. Already-pooled buffers stay resident.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recycling is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Frees every resident buffer (counters are not reset).
pub fn clear() {
    let mut s = lock();
    for class in &mut s.classes {
        class.clear();
    }
    s.resident_bytes = 0;
}

/// Current counter snapshot.
pub fn stats() -> PoolStats {
    let resident = lock().resident_bytes as u64;
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        fresh_allocs: FRESH_ALLOCS.load(Ordering::Relaxed),
        fresh_allocs_steady: FRESH_STEADY.load(Ordering::Relaxed),
        returned: RETURNED.load(Ordering::Relaxed),
        resident_bytes: resident,
    }
}

/// Fresh heap allocations performed so far (monotone counter).
pub fn fresh_allocs() -> u64 {
    FRESH_ALLOCS.load(Ordering::Relaxed)
}

/// Marks the boundary between warmup and steady state for fresh-allocation
/// accounting: allocations performed while `on` is true count into
/// `fresh_allocs_steady` in addition to the monotone `fresh_allocs` total.
/// Benchmarks flip this after their warmup rounds so the published counters
/// distinguish expected warmup allocation from a steady-state regression.
pub fn set_steady(on: bool) {
    STEADY.store(on, Ordering::Relaxed);
}

/// Total pool lookups performed so far (hits + misses, monotone). Compiled
/// plan replay measures its own delta of this to prove the steady-state path
/// bypasses the pool entirely.
pub fn lookups() -> u64 {
    HITS.load(Ordering::Relaxed) + MISSES.load(Ordering::Relaxed)
}

/// Publishes the current pool counters into the `focus-trace` registry as
/// `pool/*` gauges (no-op while tracing is disabled). Pool traffic depends
/// on the worker-thread count (parallel kernels take per-worker scratch
/// buffers), so consumers comparing traces across thread counts exclude the
/// `pool/` prefix.
pub fn publish_trace_stats() {
    if !focus_trace::enabled() {
        return;
    }
    let s = stats();
    focus_trace::counter_set("pool/hits", s.hits);
    focus_trace::counter_set("pool/misses", s.misses);
    focus_trace::counter_set("pool/fresh_allocs", s.fresh_allocs);
    focus_trace::counter_set("pool/fresh_allocs_warmup", s.fresh_allocs - s.fresh_allocs_steady);
    focus_trace::counter_set("pool/fresh_allocs_steady", s.fresh_allocs_steady);
    focus_trace::counter_set("pool/returned", s.returned);
    focus_trace::counter_set("pool/resident_bytes", s.resident_bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests that flip `set_enabled` or assert on recycling behaviour must not
    // interleave with each other (the pool is process-global and the rest of
    // the crate's tests run concurrently in the same binary). Sizes below use
    // a capacity class (2^17) no other tensor test touches, so concurrent
    // pool traffic from other tests cannot steal or contribute buffers here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn round_trip_reuses_buffer_in_class() {
        let _g = TEST_LOCK.lock().expect("pool test lock");
        let n = 70_000; // class 2^17
        let mut v = take(n);
        assert_eq!(v.len(), n);
        assert!(v.capacity() >= 131_072, "fresh alloc reserves the full class");
        v.fill(7.5); // sentinel to prove the same buffer comes back
        give(v);
        // Anything in (65536, 131072] rounds up to the same class.
        let w = take(65_537);
        assert_eq!(w.len(), 65_537);
        assert!(
            w.contains(&7.5),
            "take must hand back the recycled (stale-content) buffer"
        );
        give(w);
    }

    #[test]
    fn take_zeroed_and_take_copy_clear_stale_contents() {
        let _g = TEST_LOCK.lock().expect("pool test lock");
        let n = 70_001;
        let mut v = take(n);
        v.fill(7.0);
        give(v);
        // The recycled buffer may be handed to either of these; both must be
        // clean for their contract.
        let z = take_zeroed(n);
        assert!(z.iter().all(|&x| x == 0.0));
        give(z);
        let src = vec![1.0f32; n];
        let c = take_copy(&src);
        assert!(c.iter().all(|&x| x == 1.0));
        give(c);
    }

    #[test]
    fn zero_length_requests_bypass_pool() {
        let v = take(0);
        assert!(v.is_empty() && v.capacity() == 0);
        give(v); // must be a no-op, not a panic
    }

    #[test]
    fn class_maths() {
        assert_eq!(class_for_request(1), 0);
        assert_eq!(class_for_request(2), 1);
        assert_eq!(class_for_request(3), 2);
        assert_eq!(class_for_request(1024), 10);
        assert_eq!(class_for_request(1025), 11);
        assert_eq!(class_for_capacity(1024), 10);
        assert_eq!(class_for_capacity(1535), 10);
        assert_eq!(class_for_capacity(2048), 11);
    }

    #[test]
    fn steady_flag_attributes_fresh_allocs() {
        let _g = TEST_LOCK.lock().expect("pool test lock");
        // Disabled pool so every take is a deterministic fresh allocation.
        set_enabled(false);
        let before = stats();
        set_steady(true);
        let v = take(70_011);
        set_steady(false);
        let w = take(70_011);
        set_enabled(true);
        let after = stats();
        assert!(
            after.fresh_allocs_steady > before.fresh_allocs_steady,
            "steady-phase allocation must count into fresh_allocs_steady"
        );
        assert!(
            (after.fresh_allocs - after.fresh_allocs_steady)
                > (before.fresh_allocs - before.fresh_allocs_steady),
            "warmup-phase allocation must count into the warmup share"
        );
        drop(v);
        drop(w);
    }

    #[test]
    fn lookups_counts_hits_and_misses() {
        let _g = TEST_LOCK.lock().expect("pool test lock");
        let before = lookups();
        let v = take(70_013); // hit or miss, either way one lookup
        give(v);
        assert!(lookups() > before);
    }

    #[test]
    fn disabled_pool_always_allocates() {
        let _g = TEST_LOCK.lock().expect("pool test lock");
        set_enabled(false);
        let n = 70_003; // exact capacity n when freshly allocated while disabled
        let v = take(n);
        assert_eq!(v.capacity(), n, "disabled take must not round up to a class");
        give(v); // freed, not pooled
        let w = take(n);
        assert_eq!(w.capacity(), n, "disabled pool never recycles");
        set_enabled(true);
        drop(w);
    }
}
