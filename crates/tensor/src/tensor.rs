//! The core [`Tensor`] type: an owned, contiguous, row-major `f32` array with
//! a dynamic shape.

use crate::{pool, Shape};
use rand::Rng;
use std::fmt;

/// An owned, contiguous, row-major `f32` tensor.
///
/// Construction validates that the data length matches the shape; all
/// subsequent kernels can therefore index without bounds surprises. Shape
/// mismatches in operations are programming errors and panic.
///
/// Buffers come from and return to the process-wide recycling
/// [`pool`]: dropping a tensor files its buffer under the matching capacity
/// class, and constructors request from there, so steady-state training
/// reuses the same allocations window after window.
#[derive(PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: pool::take_copy(&self.data),
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        pool::give(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// If `data.len()` does not equal the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} (numel {})",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor { shape, data }
    }

    /// A tensor with the given shape and **unspecified** contents, drawn
    /// from the buffer pool. For kernels that overwrite every element before
    /// reading any; see the [`pool`] contract.
    pub(crate) fn uninit(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: pool::take(n),
        }
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: pool::take_zeroed(n),
        }
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let mut t = Self::uninit(dims);
        t.data.fill(value);
        t
    }

    /// A rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Self::full(&[], value)
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Samples every element i.i.d. uniformly from `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(dims: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let mut t = Self::uninit(dims);
        for v in &mut t.data {
            *v = rng.gen_range(lo..hi);
        }
        t
    }

    /// Samples every element i.i.d. from `N(0, std²)` using Box–Muller.
    pub fn randn<R: Rng + ?Sized>(dims: &[usize], std: f32, rng: &mut R) -> Self {
        let mut t = Self::uninit(dims);
        let n = t.numel();
        let mut i = 0;
        while i < n {
            let (a, b) = box_muller(rng);
            t.data[i] = a * std;
            i += 1;
            if i < n {
                t.data[i] = b * std;
                i += 1;
            }
        }
        t
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes, as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Read-only view of the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the flat buffer (the buffer leaves
    /// the pool's custody; dropping it frees normally).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    /// If the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() requires a single-element tensor, got shape {}",
            self.shape
        );
        self.data[0]
    }

    /// Element access for a rank-2 tensor.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[i * self.shape.dim(1) + j]
    }

    /// Element access for a rank-3 tensor.
    #[inline]
    pub fn at3(&self, b: usize, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.rank(), 3);
        let (d1, d2) = (self.shape.dim(1), self.shape.dim(2));
        self.data[(b * d1 + i) * d2 + j]
    }

    /// Returns a copy with the same data but a different shape.
    ///
    /// # Panics
    /// If the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} ({} elements) to {} ({} elements)",
            self.shape,
            self.numel(),
            shape,
            shape.numel()
        );
        Tensor {
            shape,
            data: pool::take_copy(&self.data),
        }
    }

    /// In-place reshape (no data movement).
    ///
    /// # Panics
    /// If the element counts differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) {
        let shape = Shape::new(dims);
        assert_eq!(shape.numel(), self.numel(), "reshape element count mismatch");
        self.shape = shape;
    }

    /// Copies row `i` of a rank-≥1 tensor viewed as `[leading, last_dim]`.
    pub fn row(&self, i: usize) -> &[f32] {
        let last = self.shape.last_dim();
        &self.data[i * last..(i + 1) * last]
    }

    /// Stacks `rows` (each of length `width`) into a `[rows.len(), width]` matrix.
    ///
    /// # Panics
    /// If any row's length differs from `width`.
    pub fn from_rows(rows: &[&[f32]], width: usize) -> Tensor {
        let mut t = Tensor::uninit(&[rows.len(), width]);
        for (idx, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), width, "row {idx} has length {} != {width}", r.len());
            t.data[idx * width..(idx + 1) * width].copy_from_slice(r);
        }
        t
    }

    /// True if every element is finite (no NaN/±∞).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute elementwise difference against `other`.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert!(
            self.shape.same_as(&other.shape),
            "max_abs_diff shape mismatch: {} vs {}",
            self.shape,
            other.shape
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

/// One Box–Muller draw: two independent standard-normal samples.
fn box_muller<R: Rng + ?Sized>(rng: &mut R) -> (f32, f32) {
    // Guard against log(0).
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen::<f32>();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.numel() > PREVIEW {
            write!(f, ", … {} more", self.numel() - PREVIEW)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_round_trip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at2(0, 0), 1.0);
        assert_eq!(i.at2(0, 1), 0.0);
        assert_eq!(i.data().iter().sum::<f32>(), 3.0);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        let mean = t.data().iter().sum::<f32>() / 10_000.0;
        let var = t.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.at2(2, 1), 5.0);
    }

    #[test]
    fn at3_indexes_row_major() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        assert_eq!(t.at3(1, 2, 3), 23.0);
        assert_eq!(t.at3(0, 1, 0), 4.0);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn from_rows_stacks() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let t = Tensor::from_rows(&[&a, &b], 2);
        assert_eq!(t.dims(), &[2, 2]);
        assert_eq!(t.at2(1, 0), 3.0);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.5, 1.0], &[2]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}
