//! Elementwise operations, broadcasting helpers, softmax, transposes and
//! concatenation.
//!
//! Large elementwise maps, broadcasts and row-softmaxes run on the scoped
//! thread pool ([`crate::par`]); every output element depends only on its own
//! input position (or its own row), so the parallel split is bitwise-identical
//! to serial at any thread count.

use crate::{fused, par, Shape, Tensor};

/// Minimum elements per thread for cheap elementwise ops (add/mul/map):
/// below ~2 grains the spawn overhead exceeds the arithmetic.
pub(crate) const ELEM_GRAIN: usize = 16 * 1024;
/// Minimum elements per thread for transcendental row ops (softmax's `exp`
/// is ~10× the cost of an add, so it pays off earlier).
pub(crate) const EXP_GRAIN: usize = 2 * 1024;

impl Tensor {
    /// Elementwise binary operation on same-shape tensors.
    pub fn zip_with(&self, other: &Tensor, op: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert!(
            self.shape().same_as(other.shape()),
            "elementwise op shape mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::uninit(self.dims());
        par::parallel_fill(out.data_mut(), ELEM_GRAIN, |range, chunk| {
            let a = &self.data()[range.clone()];
            let b = &other.data()[range];
            for ((o, &x), &y) in chunk.iter_mut().zip(a).zip(b) {
                *o = op(x, y);
            }
        });
        out
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference. Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product. Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise quotient. Panics on shape mismatch.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a / b)
    }

    /// Adds `rhs` to every element.
    pub fn add_scalar(&self, rhs: f32) -> Tensor {
        self.map(|v| v + rhs)
    }

    /// Multiplies every element by `rhs`.
    pub fn scale(&self, rhs: f32) -> Tensor {
        self.map(|v| v * rhs)
    }

    /// Applies `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = Tensor::uninit(self.dims());
        par::parallel_fill(out.data_mut(), ELEM_GRAIN, |range, chunk| {
            for (o, &v) in chunk.iter_mut().zip(&self.data()[range]) {
                *o = f(v);
            }
        });
        out
    }

    /// In-place `self += alpha * other`. Panics on shape mismatch.
    ///
    /// Element `i` of the output depends only on element `i` of the inputs,
    /// so the parallel split is bitwise-identical to serial.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert!(
            self.shape().same_as(other.shape()),
            "axpy shape mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        self.axpy_flat(alpha, other);
    }

    /// `self += alpha · other` over the flat element order, ignoring shape:
    /// the rank-agnostic core of [`Tensor::axpy`], for gradients flowing
    /// through layout-preserving views (reshape). Identical per-element
    /// arithmetic and parallel split as `axpy`.
    ///
    /// # Panics
    /// On element-count mismatch.
    pub fn axpy_flat(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.numel(), other.numel(), "axpy_flat element count mismatch");
        let src = other.data();
        par::parallel_rows(self.data_mut(), 1, ELEM_GRAIN, 1, |start, block| {
            let n = block.len();
            for (a, &b) in block.iter_mut().zip(&src[start..start + n]) {
                *a += alpha * b;
            }
        });
    }

    /// Adds a length-`n` row vector to every row of a `[.., n]` tensor.
    ///
    /// This is the bias-broadcast used by linear layers.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        let n = self.shape().last_dim();
        assert_eq!(
            row.numel(),
            n,
            "broadcast row has {} elements, last dim is {n}",
            row.numel()
        );
        let mut out = self.clone();
        let grain_rows = ELEM_GRAIN.div_ceil(n).max(1);
        par::parallel_rows(out.data_mut(), n, grain_rows, 1, |_, block| {
            for chunk in block.chunks_mut(n) {
                for (o, &b) in chunk.iter_mut().zip(row.data()) {
                    *o += b;
                }
            }
        });
        out
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires rank 2, got {}", self.shape());
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::uninit(&[n, m]);
        let (src, dst) = (self.data(), out.data_mut());
        for i in 0..m {
            for j in 0..n {
                dst[j * m + i] = src[i * n + j];
            }
        }
        out
    }

    /// Swaps the last two axes of a rank-3 tensor.
    pub fn transpose_last2(&self) -> Tensor {
        assert_eq!(
            self.rank(),
            3,
            "transpose_last2 requires rank 3, got {}",
            self.shape()
        );
        let (b, m, n) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let mut out = Tensor::uninit(&[b, n, m]);
        let (src, dst) = (self.data(), out.data_mut());
        for bi in 0..b {
            let base = bi * m * n;
            for i in 0..m {
                for j in 0..n {
                    dst[base + j * m + i] = src[base + i * n + j];
                }
            }
        }
        out
    }

    /// Numerically stable softmax over the trailing axis.
    ///
    /// Each length-`last_dim` row is shifted by its maximum before
    /// exponentiation (the [`fused::softmax_row`] kernel), so the result is
    /// finite for any finite input and every row sums to 1.
    pub fn softmax_last(&self) -> Tensor {
        let n = self.shape().last_dim();
        assert!(n > 0, "softmax over an empty trailing axis");
        let mut out = self.clone();
        let grain_rows = EXP_GRAIN.div_ceil(n).max(1);
        par::parallel_rows(out.data_mut(), n, grain_rows, 1, |_, block| {
            for chunk in block.chunks_mut(n) {
                fused::softmax_row(chunk);
            }
        });
        out
    }

    /// Concatenates two tensors along the trailing axis.
    ///
    /// All leading dimensions must match.
    pub fn concat_last(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rank(),
            other.rank(),
            "concat_last rank mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let r = self.rank();
        assert!(r >= 1, "concat_last requires rank >= 1");
        assert_eq!(
            &self.dims()[..r - 1],
            &other.dims()[..r - 1],
            "concat_last leading dims mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let (na, nb) = (self.shape().last_dim(), other.shape().last_dim());
        let rows = self.shape().leading();
        let mut dims = self.dims().to_vec();
        dims[r - 1] = na + nb;
        let mut out = Tensor::uninit(&dims);
        let dst = out.data_mut();
        for i in 0..rows {
            let base = i * (na + nb);
            dst[base..base + na].copy_from_slice(&self.data()[i * na..(i + 1) * na]);
            dst[base + na..base + na + nb].copy_from_slice(&other.data()[i * nb..(i + 1) * nb]);
        }
        out
    }

    /// Splits the trailing axis at `split`: returns `(self[.., ..split], self[.., split..])`.
    pub fn split_last(&self, split: usize) -> (Tensor, Tensor) {
        let n = self.shape().last_dim();
        assert!(split <= n, "split point {split} exceeds last dim {n}");
        let rows = self.shape().leading();
        let r = self.rank();
        let mut da = self.dims().to_vec();
        let mut db = self.dims().to_vec();
        da[r - 1] = split;
        db[r - 1] = n - split;
        let mut a = Tensor::uninit(&da);
        let mut b = Tensor::uninit(&db);
        for i in 0..rows {
            let row = &self.data()[i * n..(i + 1) * n];
            a.data_mut()[i * split..(i + 1) * split].copy_from_slice(&row[..split]);
            b.data_mut()[i * (n - split)..(i + 1) * (n - split)].copy_from_slice(&row[split..]);
        }
        (a, b)
    }

    /// Stacks rank-`r` tensors of identical shape into one rank-`r+1` tensor.
    pub fn stack(tensors: &[Tensor]) -> Tensor {
        assert!(!tensors.is_empty(), "stack of zero tensors");
        let inner = tensors[0].shape().clone();
        let step = inner.numel();
        let mut dims = vec![tensors.len()];
        dims.extend_from_slice(inner.dims());
        let mut out = Tensor::uninit(&dims);
        for (idx, t) in tensors.iter().enumerate() {
            assert!(
                t.shape().same_as(&inner),
                "stack shape mismatch at index {idx}: {} vs {}",
                t.shape(),
                inner
            );
            out.data_mut()[idx * step..(idx + 1) * step].copy_from_slice(t.data());
        }
        out
    }

    /// Extracts slice `i` along the first axis of a rank-≥2 tensor,
    /// dropping that axis.
    pub fn index_axis0(&self, i: usize) -> Tensor {
        assert!(self.rank() >= 2, "index_axis0 requires rank >= 2");
        let n0 = self.dims()[0];
        assert!(i < n0, "index {i} out of bounds for axis of size {n0}");
        let inner: usize = self.dims()[1..].iter().product();
        let mut out = Tensor::uninit(&self.dims()[1..]);
        out.data_mut()
            .copy_from_slice(&self.data()[i * inner..(i + 1) * inner]);
        out
    }

    /// The shape both operands of a same-shape op must have, for diagnostics.
    pub fn expect_shape(&self, dims: &[usize]) -> &Tensor {
        assert!(
            self.shape().same_as(&Shape::new(dims)),
            "expected shape {:?}, got {}",
            dims,
            self.shape()
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2() -> Tensor {
        Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])
    }

    #[test]
    fn add_sub_mul_div() {
        let a = t2();
        let b = Tensor::full(&[2, 2], 2.0);
        assert_eq!(a.add(&b).data(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sub(&b).data(), &[-1.0, 0.0, 1.0, 2.0]);
        assert_eq!(a.mul(&b).data(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.div(&b).data(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_mismatch() {
        let _ = t2().add(&Tensor::zeros(&[3]));
    }

    #[test]
    fn transpose_rank2() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at2(2, 1), 6.0);
        assert_eq!(tt.transpose().data(), t.data());
    }

    #[test]
    fn transpose_last2_rank3() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 2, 3]);
        let tt = t.transpose_last2();
        assert_eq!(tt.dims(), &[2, 3, 2]);
        assert_eq!(tt.at3(1, 2, 0), t.at3(1, 0, 2));
        assert_eq!(tt.transpose_last2().data(), t.data());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = t.softmax_last();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone in the logits.
        assert!(s.at2(0, 2) > s.at2(0, 1));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0, 999.0], &[1, 3]);
        let s = t.softmax_last();
        assert!(s.all_finite());
        let shifted = t.add_scalar(-1000.0).softmax_last();
        assert!(s.max_abs_diff(&shifted) < 1e-6);
    }

    #[test]
    fn add_row_broadcast_applies_per_row() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(t.add_row_broadcast(&b).data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn concat_and_split_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0], &[2, 1]);
        let c = a.concat_last(&b);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.row(0), &[1.0, 2.0, 5.0]);
        let (x, y) = c.split_last(2);
        assert_eq!(x.data(), a.data());
        assert_eq!(y.data(), b.data());
    }

    #[test]
    fn stack_and_index_axis0() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.index_axis0(1).data(), b.data());
        assert_eq!(s.index_axis0(0).data(), a.data());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::zeros(&[3]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.axpy(0.5, &g);
        a.axpy(0.5, &g);
        assert_eq!(a.data(), g.data());
    }
}
