//! Matrix multiplication kernels.
//!
//! All kernels use the `i-k-j` loop order: the innermost loop walks a row of
//! the right operand and a row of the output contiguously, which vectorises
//! well and avoids strided reads. Transposed variants (`matmul_nt`,
//! `matmul_tn`) are provided so callers never have to materialise a transpose
//! on the hot path (the autograd backward passes need both).

use crate::Tensor;

/// `out[i, :] += a_ik * b[k, :]` — the shared inner kernel.
#[inline]
fn saxpy_row(out: &mut [f32], a_ik: f32, b_row: &[f32]) {
    for (o, &b) in out.iter_mut().zip(b_row) {
        *o += a_ik * b;
    }
}

/// Raw GEMM: `c[m×n] = a[m×k] · b[k×n]`, all row-major slices.
fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let c_row = &mut c[i * n..(i + 1) * n];
        for kk in 0..k {
            let a_ik = a[i * k + kk];
            if a_ik != 0.0 {
                saxpy_row(c_row, a_ik, &b[kk * n..(kk + 1) * n]);
            }
        }
    }
}

/// `c[m×n] = a[m×k] · bᵀ` where `b` is `[n×k]` row-major.
fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            c[i * n + j] = acc;
        }
    }
}

/// `c[m×n] = aᵀ · b` where `a` is `[k×m]` row-major and `b` is `[k×n]`.
fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    for kk in 0..k {
        let b_row = &b[kk * n..(kk + 1) * n];
        for i in 0..m {
            let a_ki = a[kk * m + i];
            if a_ki != 0.0 {
                saxpy_row(&mut c[i * n..(i + 1) * n], a_ki, b_row);
            }
        }
    }
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] · [k, n] → [m, n]`.
    ///
    /// # Panics
    /// On rank or inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2, got {}", self.shape());
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2, got {}", other.shape());
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul inner dims: {} vs {}", self.shape(), other.shape());
        let mut out = Tensor::zeros(&[m, n]);
        gemm(m, k, n, self.data(), other.data(), out.data_mut());
        out
    }

    /// `self · otherᵀ` without materialising the transpose:
    /// `[m, k] · [n, k]ᵀ → [m, n]`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_nt inner dims: {} vs {}", self.shape(), other.shape());
        let mut out = Tensor::zeros(&[m, n]);
        gemm_nt(m, k, n, self.data(), other.data(), out.data_mut());
        out
    }

    /// `selfᵀ · other` without materialising the transpose:
    /// `[k, m]ᵀ · [k, n] → [m, n]`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_tn inner dims: {} vs {}", self.shape(), other.shape());
        let mut out = Tensor::zeros(&[m, n]);
        gemm_tn(m, k, n, self.data(), other.data(), out.data_mut());
        out
    }

    /// Batched matmul of rank-3 tensors: `[B, m, k] · [B, k, n] → [B, m, n]`.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm lhs must be rank 3, got {}", self.shape());
        assert_eq!(other.rank(), 3, "bmm rhs must be rank 3, got {}", other.shape());
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(b, b2, "bmm batch dims: {} vs {}", self.shape(), other.shape());
        assert_eq!(k, k2, "bmm inner dims: {} vs {}", self.shape(), other.shape());
        let mut out = Tensor::zeros(&[b, m, n]);
        for bi in 0..b {
            gemm(
                m,
                k,
                n,
                &self.data()[bi * m * k..(bi + 1) * m * k],
                &other.data()[bi * k * n..(bi + 1) * k * n],
                &mut out.data_mut()[bi * m * n..(bi + 1) * m * n],
            );
        }
        out
    }

    /// Batched `self · otherᵀ`: `[B, m, k] · [B, n, k]ᵀ → [B, m, n]`.
    pub fn bmm_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm_nt lhs must be rank 3");
        assert_eq!(other.rank(), 3, "bmm_nt rhs must be rank 3");
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, n, k2) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(b, b2, "bmm_nt batch dims: {} vs {}", self.shape(), other.shape());
        assert_eq!(k, k2, "bmm_nt inner dims: {} vs {}", self.shape(), other.shape());
        let mut out = Tensor::zeros(&[b, m, n]);
        for bi in 0..b {
            gemm_nt(
                m,
                k,
                n,
                &self.data()[bi * m * k..(bi + 1) * m * k],
                &other.data()[bi * n * k..(bi + 1) * n * k],
                &mut out.data_mut()[bi * m * n..(bi + 1) * m * n],
            );
        }
        out
    }

    /// Batched `selfᵀ · other`: `[B, k, m]ᵀ · [B, k, n] → [B, m, n]`.
    pub fn bmm_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm_tn lhs must be rank 3");
        assert_eq!(other.rank(), 3, "bmm_tn rhs must be rank 3");
        let (b, k, m) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(b, b2, "bmm_tn batch dims: {} vs {}", self.shape(), other.shape());
        assert_eq!(k, k2, "bmm_tn inner dims: {} vs {}", self.shape(), other.shape());
        let mut out = Tensor::zeros(&[b, m, n]);
        for bi in 0..b {
            gemm_tn(
                m,
                k,
                n,
                &self.data()[bi * k * m..(bi + 1) * k * m],
                &other.data()[bi * k * n..(bi + 1) * k * n],
                &mut out.data_mut()[bi * m * n..(bi + 1) * m * n],
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[3, 5], 1.0, &mut rng);
        assert!(a.matmul(&Tensor::eye(5)).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 6], 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(&[6, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn bmm_matches_per_slice_matmul() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::randn(&[3, 2, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[3, 4, 5], 1.0, &mut rng);
        let c = a.bmm(&b);
        for bi in 0..3 {
            let expect = a.index_axis0(bi).matmul(&b.index_axis0(bi));
            assert!(c.index_axis0(bi).max_abs_diff(&expect) < 1e-5);
        }
    }

    #[test]
    fn bmm_nt_and_tn_match_explicit() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn(&[2, 3, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[2, 5, 4], 1.0, &mut rng);
        let nt = a.bmm_nt(&b);
        let slow = a.bmm(&b.transpose_last2());
        assert!(nt.max_abs_diff(&slow) < 1e-5);

        // bmm_tn(x, y) = xᵀ · y per batch, so bmm_tn(aᵀ, c) == a · c.
        let c = Tensor::randn(&[2, 4, 5], 1.0, &mut rng);
        let tn = a.transpose_last2().bmm_tn(&c);
        let direct = a.bmm(&c);
        assert!(tn.max_abs_diff(&direct) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_associativity_with_scaling() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Tensor::randn(&[3, 3], 1.0, &mut rng);
        let b = Tensor::randn(&[3, 3], 1.0, &mut rng);
        let left = a.scale(2.0).matmul(&b);
        let right = a.matmul(&b).scale(2.0);
        assert!(left.max_abs_diff(&right) < 1e-4);
    }
}
