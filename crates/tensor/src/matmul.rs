//! Matrix multiplication kernels: serial reference + cache-blocked,
//! register-tiled, multithreaded implementations.
//!
//! All kernels share one arithmetic contract: every output element is an
//! `f32` accumulation chain over `k` in **ascending order**, starting from
//! zero. The tiled and parallel paths block loops for cache reuse and split
//! *output rows* across threads, but never reorder, split, or widen an
//! element's accumulation chain — so their results are **bitwise identical**
//! to the serial reference for any tile size and any thread count (see
//! `tests/properties.rs`).
//!
//! `gemm` and `gemm_tn` skip `a_ik == 0.0` terms. This is not just a
//! micro-optimisation: ProtoAttn routes per-segment head outputs through
//! one-hot assignment matrices (`A · head`), and the skip turns those
//! products from `O(l·k·d)` into `O(l·d)`. The skip is part of the
//! arithmetic contract (skipping a `+ 0.0 * b` term is *not* a bitwise
//! no-op: it changes `-0.0` and non-finite propagation), so the tiled
//! kernels implement it per `(row, k)` exactly like the reference.
//! `gemm_nt` computes plain dot products and has no skip, matching its
//! reference.
//!
//! The serial references live in [`reference`] and stay the ground truth the
//! property tests compare against.

use crate::par;
use crate::{fused, Tensor};

/// Register tile width (output columns per micro-tile).
const NR: usize = 16;
/// Register tile height (output rows per micro-tile).
const MR: usize = 4;
/// k-block depth: bounds the live panel to ~`KC × NR` floats (L1-resident).
const KC: usize = 256;

/// Below this many multiply–accumulates (`m·k·n`) the naive reference runs —
/// tiling set-up costs more than it saves.
const TILE_MIN_MACS: usize = 16 * 16 * 16;
/// Below this many multiply–accumulates the kernel stays single-threaded.
const PAR_MIN_MACS: usize = 64 * 64 * 64;
/// Minimum multiply–accumulates each worker thread should receive. Shared
/// with the batched backward sweeps in [`crate::exec`] so they split batches
/// on the same per-thread work target as the dispatcher.
pub(crate) const PAR_GRAIN_MACS: usize = 32 * 64 * 64;

pub mod reference {
    //! Naive serial kernels: the arithmetic ground truth.
    //!
    //! `i-k-j` loop order — the innermost loop walks a row of the right
    //! operand and a row of the output contiguously. Exposed publicly so
    //! property tests (and benchmarks) can compare the optimised paths
    //! against them on arbitrary shapes.

    /// `out[i, :] += a_ik * b[k, :]` — the shared inner kernel.
    #[inline]
    fn saxpy_row(out: &mut [f32], a_ik: f32, b_row: &[f32]) {
        for (o, &b) in out.iter_mut().zip(b_row) {
            *o += a_ik * b;
        }
    }

    /// Raw GEMM: `c[m×n] = a[m×k] · b[k×n]`, all row-major slices.
    ///
    /// Skips `a_ik == 0.0` terms (one-hot fast path; see module docs).
    pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        for i in 0..m {
            let c_row = &mut c[i * n..(i + 1) * n];
            for kk in 0..k {
                let a_ik = a[i * k + kk];
                // focus-lint: allow(float-hygiene) -- exact-zero test is the one-hot sparsity skip; skipped terms contribute nothing bitwise
                if a_ik != 0.0 {
                    saxpy_row(c_row, a_ik, &b[kk * n..(kk + 1) * n]);
                }
            }
        }
    }

    /// `c[m×n] = a[m×k] · bᵀ` where `b` is `[n×k]` row-major.
    pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), n * k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                c[i * n + j] = acc;
            }
        }
    }

    /// `c[m×n] = aᵀ · b` where `a` is `[k×m]` row-major and `b` is `[k×n]`.
    ///
    /// Skips `a_ki == 0.0` terms, like [`gemm`].
    pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        debug_assert_eq!(a.len(), k * m);
        debug_assert_eq!(b.len(), k * n);
        for kk in 0..k {
            let b_row = &b[kk * n..(kk + 1) * n];
            for i in 0..m {
                let a_ki = a[kk * m + i];
                // focus-lint: allow(float-hygiene) -- exact-zero test is the one-hot sparsity skip; skipped terms contribute nothing bitwise
                if a_ki != 0.0 {
                    saxpy_row(&mut c[i * n..(i + 1) * n], a_ki, b_row);
                }
            }
        }
    }
}

/// The register micro-kernel: accumulates an `mr × NR` output tile over one
/// k-block, keeping the tile in registers for the whole block.
///
/// * `a[a_off + r * a_stride + kk]` is the `(row r, step kk)` left operand;
/// * `b[b_off + kk * b_stride ..][..NR]` is the step-`kk` right-operand row;
/// * `c[c_off + r * c_stride ..][..NR]` is loaded, accumulated and stored —
///   carrying the chain across k-blocks without reordering it.
///
/// With `SKIP`, `a == 0.0` terms are skipped per `(row, k)` exactly like the
/// serial references. The dense case (all `mr` left-operand values nonzero at
/// a given `k`, i.e. every step of a non-one-hot product) takes a branch-free
/// unrolled path; both paths run the identical per-row accumulation, so the
/// guard affects speed only, never bits.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_tile<const SKIP: bool>(
    mr: usize,
    kc: usize,
    a: &[f32],
    a_off: usize,
    a_stride: usize,
    b: &[f32],
    b_off: usize,
    b_stride: usize,
    c: &mut [f32],
    c_off: usize,
    c_stride: usize,
) {
    debug_assert!(mr <= MR);
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_r) in acc.iter_mut().enumerate().take(mr) {
        let base = c_off + r * c_stride;
        acc_r.copy_from_slice(&c[base..base + NR]);
    }
    // Decide skip-vs-dense once per tile, not once per k step: a branch in
    // the innermost loop forces the accumulator tile out of registers. When
    // the left-operand sub-panel has no zeros the skip loop and the dense
    // loop execute the identical arithmetic, so routing dense tiles through
    // the branch-free loop changes speed only, never bits.
    let sparse = SKIP
        // focus-lint: allow(float-hygiene) -- exact-zero scan decides skip-vs-dense only; both paths compute identical bits
        && (0..mr).any(|r| a[a_off + r * a_stride..a_off + r * a_stride + kc].contains(&0.0));
    if sparse {
        for kk in 0..kc {
            let base = b_off + kk * b_stride;
            let b_row: &[f32; NR] =
                (&b[base..base + NR]).try_into().expect("slice is NR long by construction");
            for (r, acc_r) in acc.iter_mut().enumerate().take(mr) {
                let av = a[a_off + r * a_stride + kk];
                // focus-lint: allow(float-hygiene) -- exact-zero test is the one-hot sparsity skip; skipped terms contribute nothing bitwise
                if av != 0.0 {
                    for (o, &bv) in acc_r.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        }
    } else {
        for kk in 0..kc {
            let base = b_off + kk * b_stride;
            let b_row: &[f32; NR] =
                (&b[base..base + NR]).try_into().expect("slice is NR long by construction");
            for (r, acc_r) in acc.iter_mut().enumerate().take(mr) {
                let av = a[a_off + r * a_stride + kk];
                for (o, &bv) in acc_r.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate().take(mr) {
        let base = c_off + r * c_stride;
        c[base..base + NR].copy_from_slice(acc_r);
    }
}

/// Cache-blocked GEMM over the output row block `i0..i1`:
/// `c_block[(i-i0)×n] += a[i×k] · b[k×n]` for `i` in `i0..i1`.
///
/// `c_block` holds exactly rows `i0..i1` (the caller splits disjoint blocks
/// across threads).
fn gemm_block(i0: usize, i1: usize, k: usize, n: usize, a: &[f32], b: &[f32], c_block: &mut [f32]) {
    debug_assert_eq!(c_block.len(), (i1 - i0) * n);
    let n_full = n - n % NR;
    let mut panel = [0.0f32; KC * NR];
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        let mut j0 = 0;
        while j0 < n_full {
            // panel[kk] = b[k0 + kk][j0..j0 + NR] — packed once per k-block,
            // reused by every row tile of this output block.
            for (kk, dst) in panel.chunks_exact_mut(NR).take(kc).enumerate() {
                dst.copy_from_slice(&b[(k0 + kk) * n + j0..(k0 + kk) * n + j0 + NR]);
            }
            let mut i = i0;
            while i < i1 {
                let mr = MR.min(i1 - i);
                micro_tile::<true>(
                    mr,
                    kc,
                    a,
                    i * k + k0,
                    k,
                    &panel,
                    0,
                    NR,
                    c_block,
                    (i - i0) * n + j0,
                    n,
                );
                i += mr;
            }
            j0 += NR;
        }
        // Column remainder: run the micro-kernel against a zero-padded panel
        // and a padded staging tile, then copy the live columns back. The
        // real columns keep the same ascending-k chain and per-(row, k) skip
        // as the scalar remainder loop; the padded lanes are discarded.
        if n_full < n {
            let nrem = n - n_full;
            for (kk, dst) in panel.chunks_exact_mut(NR).take(kc).enumerate() {
                dst[..nrem].copy_from_slice(&b[(k0 + kk) * n + n_full..(k0 + kk) * n + n]);
                dst[nrem..].fill(0.0);
            }
            let mut stage = [0.0f32; MR * NR];
            let mut i = i0;
            while i < i1 {
                let mr = MR.min(i1 - i);
                for r in 0..mr {
                    let base = (i - i0 + r) * n + n_full;
                    stage[r * NR..r * NR + nrem].copy_from_slice(&c_block[base..base + nrem]);
                    stage[r * NR + nrem..(r + 1) * NR].fill(0.0);
                }
                micro_tile::<true>(mr, kc, a, i * k + k0, k, &panel, 0, NR, &mut stage, 0, NR);
                for r in 0..mr {
                    let base = (i - i0 + r) * n + n_full;
                    c_block[base..base + nrem].copy_from_slice(&stage[r * NR..r * NR + nrem]);
                }
                i += mr;
            }
        }
        k0 += KC;
    }
}

/// Cache-blocked `a · bᵀ` over the output row block `i0..i1`.
///
/// Packs each `KC × NR` panel of `bᵀ` once per k-block so the micro-kernel
/// streams it contiguously; every output element keeps the serial dot
/// product's ascending-k chain (no zero-skip, matching the reference).
fn gemm_nt_block(
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_block: &mut [f32],
) {
    debug_assert_eq!(c_block.len(), (i1 - i0) * n);
    let n_full = n - n % NR;
    let mut panel = [0.0f32; KC * NR];
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        let mut j0 = 0;
        while j0 < n_full {
            // panel[kk][r] = b[(j0 + r) * k + (k0 + kk)]  (transposed gather).
            for kk in 0..kc {
                let dst = &mut panel[kk * NR..kk * NR + NR];
                for (r, d) in dst.iter_mut().enumerate() {
                    *d = b[(j0 + r) * k + k0 + kk];
                }
            }
            let mut i = i0;
            while i < i1 {
                let mr = MR.min(i1 - i);
                micro_tile::<false>(
                    mr,
                    kc,
                    a,
                    i * k + k0,
                    k,
                    &panel,
                    0,
                    NR,
                    c_block,
                    (i - i0) * n + j0,
                    n,
                );
                i += mr;
            }
            j0 += NR;
        }
        // Column remainder: plain dots carried through c across k-blocks.
        for j in n_full..n {
            for i in i0..i1 {
                let mut acc = c_block[(i - i0) * n + j];
                let a_row = &a[i * k + k0..i * k + k0 + kc];
                let b_row = &b[j * k + k0..j * k + k0 + kc];
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                c_block[(i - i0) * n + j] = acc;
            }
        }
        k0 += KC;
    }
}

/// Cache-blocked `aᵀ · b` over the output row block `i0..i1` (`a` is
/// `[k × m]` row-major).
///
/// Packs each `mr × KC` panel of `aᵀ` once per (row-block, k-block) so the
/// micro-kernel reads it with stride 1; keeps the reference's zero-skip and
/// ascending-k chain.
fn gemm_tn_block(
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_block: &mut [f32],
) {
    debug_assert_eq!(c_block.len(), (i1 - i0) * n);
    let n_full = n - n % NR;
    let mut a_panel = [0.0f32; MR * KC];
    // Lazily initialised so aligned-n calls never pay for zeroing it.
    let mut b_rem: Option<Box<[f32; KC * NR]>> = None;
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        // Zero-padded panel of the remainder columns, packed once per k-block
        // and shared by every row tile below.
        if n_full < n {
            let nrem = n - n_full;
            let b_rem = b_rem.get_or_insert_with(|| Box::new([0.0; KC * NR]));
            for (kk, dst) in b_rem.chunks_exact_mut(NR).take(kc).enumerate() {
                dst[..nrem].copy_from_slice(&b[(k0 + kk) * n + n_full..(k0 + kk) * n + n]);
                dst[nrem..].fill(0.0);
            }
        }
        let mut i = i0;
        while i < i1 {
            let mr = MR.min(i1 - i);
            // a_panel[r][kk] = a[(k0 + kk) * m-stride + (i + r)]; the row-major
            // stride of `a` is m, the total column count of aᵀ's source.
            // kk-outer so each source row's `mr` adjacent floats are read from
            // one cache line rather than touched once per destination row.
            let m_stride = a.len() / k;
            for kk in 0..kc {
                let src = &a[(k0 + kk) * m_stride + i..(k0 + kk) * m_stride + i + mr];
                for (r, &v) in src.iter().enumerate() {
                    a_panel[r * kc + kk] = v;
                }
            }
            let mut j0 = 0;
            while j0 < n_full {
                micro_tile::<true>(
                    mr,
                    kc,
                    &a_panel,
                    0,
                    kc,
                    b,
                    k0 * n + j0,
                    n,
                    c_block,
                    (i - i0) * n + j0,
                    n,
                );
                j0 += NR;
            }
            // Column remainder: padded micro-tile against `b_rem`, keeping
            // the per-(row, k) skip and ascending-k chain of the scalar loop
            // on the live columns; padded lanes are discarded.
            if n_full < n {
                let nrem = n - n_full;
                let brem: &[f32] =
                    b_rem.as_deref().expect("packed above whenever a remainder exists");
                let mut stage = [0.0f32; MR * NR];
                for r in 0..mr {
                    let base = (i - i0 + r) * n + n_full;
                    stage[r * NR..r * NR + nrem].copy_from_slice(&c_block[base..base + nrem]);
                    stage[r * NR + nrem..(r + 1) * NR].fill(0.0);
                }
                micro_tile::<true>(mr, kc, &a_panel, 0, kc, brem, 0, NR, &mut stage, 0, NR);
                for r in 0..mr {
                    let base = (i - i0 + r) * n + n_full;
                    c_block[base..base + nrem].copy_from_slice(&stage[r * NR..r * NR + nrem]);
                }
            }
            i += mr;
        }
        k0 += KC;
    }
}

pub mod raw {
    //! Raw-slice entry points to the dispatched kernels.
    //!
    //! These run the same reference→tiled→parallel dispatch as the [`Tensor`]
    //! methods but accumulate into a caller-owned buffer, so batched sweeps
    //! (e.g. the clustering distance matrix, the broadcast-LHS attention
    //! products) can write straight into slices of one output allocation.
    //! Like the reference kernels, they **accumulate** into `c` — zero it
    //! first for a plain product.
    //!
    //! [`Tensor`]: crate::Tensor

    /// `c[m×n] += a[m×k] · b[k×n]`, all row-major slices (zero-skip on `a`).
    ///
    /// # Panics
    /// If a slice length disagrees with its shape.
    pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        assert_eq!(a.len(), m * k, "gemm lhs length");
        assert_eq!(b.len(), k * n, "gemm rhs length");
        assert_eq!(c.len(), m * n, "gemm out length");
        super::gemm_dispatch(super::Kind::Nn, m, k, n, a, b, c);
    }

    /// `c[m×n] += a[m×k] · (b[n×k])ᵀ`, all row-major slices.
    ///
    /// # Panics
    /// If a slice length disagrees with its shape.
    pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        assert_eq!(a.len(), m * k, "gemm_nt lhs length");
        assert_eq!(b.len(), n * k, "gemm_nt rhs length");
        assert_eq!(c.len(), m * n, "gemm_nt out length");
        super::gemm_dispatch(super::Kind::Nt, m, k, n, a, b, c);
    }

    /// `c[m×n] += (a[k×m])ᵀ · b[k×n]`, all row-major slices (zero-skip on
    /// `a`).
    ///
    /// # Panics
    /// If a slice length disagrees with its shape.
    pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        assert_eq!(a.len(), k * m, "gemm_tn lhs length");
        assert_eq!(b.len(), k * n, "gemm_tn rhs length");
        assert_eq!(c.len(), m * n, "gemm_tn out length");
        super::gemm_dispatch(super::Kind::Tn, m, k, n, a, b, c);
    }

    /// Batched `c[bi] += a · (b[bi])ᵀ` with a broadcast left operand: `a` is
    /// one `[m × k]` matrix, `b` holds `bt` batches of `[n × k]` and `c`
    /// holds `bt` batches of `[m × n]`. Bitwise-identical to calling
    /// [`gemm_nt`] per batch, but narrow outputs (`n < NR`, the prototype
    /// attention scores) share one packing panel and staging tile across the
    /// whole sweep instead of re-initialising scratch per batch.
    ///
    /// # Panics
    /// If a slice length disagrees with its shape.
    pub fn gemm_nt_bcast(
        bt: usize,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        use super::{Kind, NR, PAR_GRAIN_MACS, PAR_MIN_MACS, SMALL_STAGE};
        focus_trace::counter_add("gemm/nt_bcast", 1);
        assert_eq!(a.len(), m * k, "gemm_nt_bcast lhs length");
        assert_eq!(b.len(), bt * n * k, "gemm_nt_bcast rhs length");
        assert_eq!(c.len(), bt * m * n, "gemm_nt_bcast out length");
        let per_batch_macs = m * k * n;
        let small = n < NR && per_batch_macs > 0 && m * NR <= SMALL_STAGE && crate::fused::enabled();
        let batch_grain = PAR_GRAIN_MACS.div_ceil(per_batch_macs.max(1)).max(1);
        if small && bt * per_batch_macs >= PAR_MIN_MACS && bt >= 2 * batch_grain {
            // Batch-parallel sweep, mirroring `bmm_dispatch`: batches are
            // independent, each worker shares one panel + staging tile
            // across its block. Scratch is fully overwritten before use
            // (that is why the serial sweep can share it too), so per-worker
            // scratch leaves every output bit unchanged.
            super::par::parallel_rows(c, m * n, batch_grain, 1, |b0, chunk| {
                let mut panel = [0.0f32; super::KC * NR];
                let mut stage = [0.0f32; SMALL_STAGE];
                for (off, out) in chunk.chunks_exact_mut(m * n).enumerate() {
                    let bi = b0 + off;
                    super::gemm_nt_small_rows(
                        0,
                        k,
                        n,
                        a,
                        &b[bi * n * k..(bi + 1) * n * k],
                        out,
                        &mut panel,
                        &mut stage,
                    );
                }
            });
        } else if small {
            let mut panel = [0.0f32; super::KC * NR];
            let mut stage = [0.0f32; SMALL_STAGE];
            for bi in 0..bt {
                super::gemm_nt_small_rows(
                    0,
                    k,
                    n,
                    a,
                    &b[bi * n * k..(bi + 1) * n * k],
                    &mut c[bi * m * n..(bi + 1) * m * n],
                    &mut panel,
                    &mut stage,
                );
            }
        } else {
            for bi in 0..bt {
                super::gemm_dispatch(
                    Kind::Nt,
                    m,
                    k,
                    n,
                    a,
                    &b[bi * n * k..(bi + 1) * n * k],
                    &mut c[bi * m * n..(bi + 1) * m * n],
                );
            }
        }
    }
}

/// `a · bᵀ` for outputs narrower than one register tile (`n < NR`), where the
/// blocked kernel would push every column through its scalar-dot remainder —
/// a `k`-axis reduction the compiler must not vectorise (reassociation would
/// change bits). Instead the panel of `bᵀ` is packed zero-padded to the full
/// `NR` width and the regular [`micro_tile`] runs against an `NR`-wide
/// staging buffer, so the kernel keeps `MR` rows of accumulators in flight
/// exactly like the dense path (the padded lanes compute and discard zeros).
/// Each real output element still accumulates `a[i,kk] * b[j,kk]` in
/// ascending `kk` from its existing value — the exact reference `gemm_nt`
/// chain, which has no zero-skip — so results are bitwise-identical.
fn gemm_nt_small(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert!(n <= NR);
    let rows = |i0: usize, c_block: &mut [f32]| {
        let mr_rows = c_block.len() / n;
        let mut panel = [0.0f32; KC * NR];
        // Tiny row blocks (every per-batch attention product) stage on the
        // stack; large blocks use a per-thread scratch buffer that persists
        // across calls, so steady-state GEMMs touch neither the allocator
        // nor the tensor pool (compiled-plan replay asserts zero pool
        // lookups per step).
        let mut stack_stage = [0.0f32; SMALL_STAGE];
        if mr_rows * NR <= stack_stage.len() {
            gemm_nt_small_rows(i0, k, n, a, b, c_block, &mut panel, &mut stack_stage);
        } else {
            NT_STAGE.with(|cell| {
                let mut stage = cell.borrow_mut();
                if stage.len() < mr_rows * NR {
                    stage.resize(mr_rows * NR, 0.0);
                }
                gemm_nt_small_rows(i0, k, n, a, b, c_block, &mut panel, &mut stage);
            });
        }
    };
    if m * k * n < PAR_MIN_MACS {
        rows(0, c);
    } else {
        let grain_rows = PAR_GRAIN_MACS.div_ceil(k * n).max(1);
        par::parallel_rows(c, n, grain_rows, 1, |row0, c_block| rows(row0, c_block));
    }
}

/// Staging capacity (in floats) that [`gemm_nt_small`] keeps on the stack and
/// batched sweeps preallocate: covers row blocks up to `4 · MR` rows.
pub(crate) const SMALL_STAGE: usize = 4 * MR * NR;

std::thread_local! {
    /// Per-thread staging scratch for [`gemm_nt_small`] row blocks larger
    /// than [`SMALL_STAGE`]: grows to the high-water mark once and is then
    /// reused, keeping steady-state GEMMs allocation- and pool-free. The
    /// contents are fully overwritten before any read.
    static NT_STAGE: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Serial core of [`gemm_nt_small`] over the row block starting at `i0`,
/// staging into caller-provided scratch (`panel` of `KC · NR` floats, `stage`
/// covering at least `rows · NR`). Split out so batched sweeps can reuse one
/// set of buffers across batches — re-initialising the 16 KiB panel per
/// 2-kMAC batch would otherwise dominate the arithmetic.
#[allow(clippy::too_many_arguments)]
fn gemm_nt_small_rows(
    i0: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_block: &mut [f32],
    panel: &mut [f32],
    stage: &mut [f32],
) {
    let mr_rows = c_block.len() / n;
    let stage = &mut stage[..mr_rows * NR];
    for (s, c_row) in stage.chunks_exact_mut(NR).zip(c_block.chunks_exact(n)) {
        s[..n].copy_from_slice(c_row);
        s[n..].fill(0.0);
    }
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        // panel[kk][j] = b[j*k + k0+kk] for j < n, zero-padded to NR.
        for (kk, dst) in panel.chunks_exact_mut(NR).take(kc).enumerate() {
            for (j, d) in dst.iter_mut().enumerate().take(n) {
                *d = b[j * k + k0 + kk];
            }
            dst[n..].fill(0.0);
        }
        let mut r = 0;
        while r < mr_rows {
            let mr = MR.min(mr_rows - r);
            micro_tile::<false>(mr, kc, a, (i0 + r) * k + k0, k, panel, 0, NR, stage, r * NR, NR);
            r += mr;
        }
        k0 += KC;
    }
    for (s, c_row) in stage.chunks_exact(NR).zip(c_block.chunks_exact_mut(n)) {
        c_row.copy_from_slice(&s[..n]);
    }
}

/// Which optimised block kernel to run per output row block.
#[derive(Clone, Copy)]
pub(crate) enum Kind {
    /// `a[m×k] · b[k×n]`.
    Nn,
    /// `a[m×k] · (b[n×k])ᵀ`.
    Nt,
    /// `(a[k×m])ᵀ · b[k×n]`.
    Tn,
}

/// Counts one GEMM entry in the `focus-trace` registry, bucketed by
/// transpose kind and the size class the dispatch thresholds put it in.
/// Every counted site runs on the coordinating thread (worker closures call
/// the block kernels directly), so the counts are thread-count-invariant.
fn trace_gemm(prefix: &str, kind: Kind, macs: usize) {
    if !focus_trace::enabled() {
        return;
    }
    let class = if macs < TILE_MIN_MACS {
        0
    } else if macs < PAR_MIN_MACS {
        1
    } else {
        2
    };
    // Static name table: the trace registry keys on `&'static str`.
    const NAMES: [[[&str; 3]; 3]; 2] = [
        [
            ["gemm/nn_small", "gemm/nn_tiled", "gemm/nn_par"],
            ["gemm/nt_small", "gemm/nt_tiled", "gemm/nt_par"],
            ["gemm/tn_small", "gemm/tn_tiled", "gemm/tn_par"],
        ],
        [
            ["bmm/nn_small", "bmm/nn_tiled", "bmm/nn_par"],
            ["bmm/nt_small", "bmm/nt_tiled", "bmm/nt_par"],
            ["bmm/tn_small", "bmm/tn_tiled", "bmm/tn_par"],
        ],
    ];
    let p = usize::from(prefix == "bmm");
    let ki = match kind {
        Kind::Nn => 0,
        Kind::Nt => 1,
        Kind::Tn => 2,
    };
    focus_trace::counter_add(NAMES[p][ki][class], 1);
}

/// Dispatches one raw GEMM: reference for small shapes, tiled for medium,
/// tiled + row-parallel for large. Bitwise-identical across all three paths.
pub(crate) fn gemm_dispatch(
    kind: Kind,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let macs = m * k * n;
    trace_gemm("gemm", kind, macs);
    // Narrow-output and sub-tile `a·bᵀ` products otherwise run entirely as
    // scalar dots; the packed saxpy kernel is bitwise-identical and part of
    // the fused path (the reference path keeps the pre-fusion behaviour).
    if matches!(kind, Kind::Nt) && macs > 0 && n < NR && fused::enabled() {
        gemm_nt_small(m, k, n, a, b, c);
        return;
    }
    if macs < TILE_MIN_MACS || k == 0 || n == 0 || m == 0 {
        match kind {
            Kind::Nn => reference::gemm(m, k, n, a, b, c),
            Kind::Nt => reference::gemm_nt(m, k, n, a, b, c),
            Kind::Tn => reference::gemm_tn(m, k, n, a, b, c),
        }
        return;
    }
    let block = |i0: usize, i1: usize, c_block: &mut [f32]| match kind {
        Kind::Nn => gemm_block(i0, i1, k, n, a, b, c_block),
        Kind::Nt => gemm_nt_block(i0, i1, k, n, a, b, c_block),
        Kind::Tn => gemm_tn_block(i0, i1, k, n, a, b, c_block),
    };
    if macs < PAR_MIN_MACS {
        block(0, m, c);
        return;
    }
    let grain_rows = PAR_GRAIN_MACS.div_ceil(k * n).max(MR);
    par::parallel_rows(c, n, grain_rows, MR, |row0, c_block| {
        block(row0, row0 + c_block.len() / n, c_block);
    });
}

/// Dispatches a batch of `bt` independent GEMMs sharing one output buffer.
///
/// Many small batches parallelise across the batch axis; few large batches
/// parallelise inside each GEMM instead.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bmm_dispatch(
    kind: Kind,
    bt: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let a_sz = m * k; // == k * m for Tn: same element count either way
    let b_sz = match kind {
        Kind::Nn | Kind::Tn => k * n,
        Kind::Nt => n * k,
    };
    let per_batch_macs = m * k * n;
    let total_macs = bt * per_batch_macs;
    trace_gemm("bmm", kind, total_macs);
    let batch_grain = PAR_GRAIN_MACS.div_ceil(per_batch_macs.max(1)).max(1);
    // Same gate as gemm_dispatch; resolved once so the per-batch loops stay
    // branch-free. Scratch for the small-NT kernel is shared across batches —
    // per-call buffers would re-initialise a 16 KiB panel per tiny batch.
    let small_nt = matches!(kind, Kind::Nt) && n < NR && per_batch_macs > 0;
    let small_nt_fused = small_nt && m * NR <= SMALL_STAGE && fused::enabled();
    if total_macs >= PAR_MIN_MACS && bt >= 2 * batch_grain {
        // Batch-parallel: each worker runs whole serial GEMMs on its slice.
        par::parallel_rows(c, m * n, batch_grain, 1, |b0, c_chunk| {
            let mut panel = [0.0f32; KC * NR];
            let mut stage = [0.0f32; SMALL_STAGE];
            for (idx, c_one) in c_chunk.chunks_mut(m * n).enumerate() {
                let bi = b0 + idx;
                let a_one = &a[bi * a_sz..(bi + 1) * a_sz];
                let b_one = &b[bi * b_sz..(bi + 1) * b_sz];
                if small_nt_fused {
                    gemm_nt_small_rows(0, k, n, a_one, b_one, c_one, &mut panel, &mut stage);
                } else if small_nt {
                    if fused::enabled() {
                        gemm_nt_small(m, k, n, a_one, b_one, c_one);
                    } else {
                        reference::gemm_nt(m, k, n, a_one, b_one, c_one);
                    }
                } else if per_batch_macs < TILE_MIN_MACS {
                    match kind {
                        Kind::Nn => reference::gemm(m, k, n, a_one, b_one, c_one),
                        Kind::Nt => reference::gemm_nt(m, k, n, a_one, b_one, c_one),
                        Kind::Tn => reference::gemm_tn(m, k, n, a_one, b_one, c_one),
                    }
                } else {
                    match kind {
                        Kind::Nn => gemm_block(0, m, k, n, a_one, b_one, c_one),
                        Kind::Nt => gemm_nt_block(0, m, k, n, a_one, b_one, c_one),
                        Kind::Tn => gemm_tn_block(0, m, k, n, a_one, b_one, c_one),
                    }
                }
            }
        });
    } else if small_nt_fused {
        // Tiny-batch a·bᵀ sweep below the parallel threshold: one shared
        // panel + staging tile across all batches.
        let mut panel = [0.0f32; KC * NR];
        let mut stage = [0.0f32; SMALL_STAGE];
        for bi in 0..bt {
            gemm_nt_small_rows(
                0,
                k,
                n,
                &a[bi * a_sz..(bi + 1) * a_sz],
                &b[bi * b_sz..(bi + 1) * b_sz],
                &mut c[bi * m * n..(bi + 1) * m * n],
                &mut panel,
                &mut stage,
            );
        }
    } else {
        // Few/large batches: let each GEMM parallelise internally.
        for bi in 0..bt {
            gemm_dispatch(
                kind,
                m,
                k,
                n,
                &a[bi * a_sz..(bi + 1) * a_sz],
                &b[bi * b_sz..(bi + 1) * b_sz],
                &mut c[bi * m * n..(bi + 1) * m * n],
            );
        }
    }
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] · [k, n] → [m, n]`.
    ///
    /// # Panics
    /// On rank or inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2, got {}", self.shape());
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2, got {}", other.shape());
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul inner dims: {} vs {}", self.shape(), other.shape());
        let mut out = Tensor::zeros(&[m, n]);
        gemm_dispatch(Kind::Nn, m, k, n, self.data(), other.data(), out.data_mut());
        out
    }

    /// `self · otherᵀ` without materialising the transpose:
    /// `[m, k] · [n, k]ᵀ → [m, n]`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_nt inner dims: {} vs {}", self.shape(), other.shape());
        let mut out = Tensor::zeros(&[m, n]);
        gemm_dispatch(Kind::Nt, m, k, n, self.data(), other.data(), out.data_mut());
        out
    }

    /// `selfᵀ · other` without materialising the transpose:
    /// `[k, m]ᵀ · [k, n] → [m, n]`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_tn inner dims: {} vs {}", self.shape(), other.shape());
        let mut out = Tensor::zeros(&[m, n]);
        gemm_dispatch(Kind::Tn, m, k, n, self.data(), other.data(), out.data_mut());
        out
    }

    /// Batched matmul of rank-3 tensors: `[B, m, k] · [B, k, n] → [B, m, n]`.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm lhs must be rank 3, got {}", self.shape());
        assert_eq!(other.rank(), 3, "bmm rhs must be rank 3, got {}", other.shape());
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(b, b2, "bmm batch dims: {} vs {}", self.shape(), other.shape());
        assert_eq!(k, k2, "bmm inner dims: {} vs {}", self.shape(), other.shape());
        let mut out = Tensor::zeros(&[b, m, n]);
        bmm_dispatch(Kind::Nn, b, m, k, n, self.data(), other.data(), out.data_mut());
        out
    }

    /// Batched `self · otherᵀ`: `[B, m, k] · [B, n, k]ᵀ → [B, m, n]`.
    pub fn bmm_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm_nt lhs must be rank 3");
        assert_eq!(other.rank(), 3, "bmm_nt rhs must be rank 3");
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, n, k2) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(b, b2, "bmm_nt batch dims: {} vs {}", self.shape(), other.shape());
        assert_eq!(k, k2, "bmm_nt inner dims: {} vs {}", self.shape(), other.shape());
        let mut out = Tensor::zeros(&[b, m, n]);
        bmm_dispatch(Kind::Nt, b, m, k, n, self.data(), other.data(), out.data_mut());
        out
    }

    /// Batched `selfᵀ · other`: `[B, k, m]ᵀ · [B, k, n] → [B, m, n]`.
    pub fn bmm_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm_tn lhs must be rank 3");
        assert_eq!(other.rank(), 3, "bmm_tn rhs must be rank 3");
        let (b, k, m) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(b, b2, "bmm_tn batch dims: {} vs {}", self.shape(), other.shape());
        assert_eq!(k, k2, "bmm_tn inner dims: {} vs {}", self.shape(), other.shape());
        let mut out = Tensor::zeros(&[b, m, n]);
        bmm_dispatch(Kind::Tn, b, m, k, n, self.data(), other.data(), out.data_mut());
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[3, 5], 1.0, &mut rng);
        assert!(a.matmul(&Tensor::eye(5)).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 6], 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(&[6, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn bmm_matches_per_slice_matmul() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::randn(&[3, 2, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[3, 4, 5], 1.0, &mut rng);
        let c = a.bmm(&b);
        for bi in 0..3 {
            let expect = a.index_axis0(bi).matmul(&b.index_axis0(bi));
            assert!(c.index_axis0(bi).max_abs_diff(&expect) < 1e-5);
        }
    }

    #[test]
    fn bmm_nt_and_tn_match_explicit() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn(&[2, 3, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[2, 5, 4], 1.0, &mut rng);
        let nt = a.bmm_nt(&b);
        let slow = a.bmm(&b.transpose_last2());
        assert!(nt.max_abs_diff(&slow) < 1e-5);

        // bmm_tn(x, y) = xᵀ · y per batch, so bmm_tn(aᵀ, c) == a · c.
        let c = Tensor::randn(&[2, 4, 5], 1.0, &mut rng);
        let tn = a.transpose_last2().bmm_tn(&c);
        let direct = a.bmm(&c);
        assert!(tn.max_abs_diff(&direct) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_associativity_with_scaling() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Tensor::randn(&[3, 3], 1.0, &mut rng);
        let b = Tensor::randn(&[3, 3], 1.0, &mut rng);
        let left = a.scale(2.0).matmul(&b);
        let right = a.matmul(&b).scale(2.0);
        assert!(left.max_abs_diff(&right) < 1e-4);
    }

    /// Exhaustive bitwise agreement of the tiled paths with the serial
    /// reference on shapes straddling every tile boundary.
    #[test]
    fn tiled_paths_bitwise_match_reference_across_tile_edges() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 16, 16),
            (5, 17, 15),
            (16, 16, 16),
            (17, 300, 33),
            (33, 64, 31),
            (64, 64, 64),
        ] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let mut c_ref = Tensor::zeros(&[m, n]);
            super::reference::gemm(m, k, n, a.data(), b.data(), c_ref.data_mut());
            assert_eq!(a.matmul(&b).data(), c_ref.data(), "gemm {m}x{k}x{n}");

            let bt = Tensor::randn(&[n, k], 1.0, &mut rng);
            let mut c_ref = Tensor::zeros(&[m, n]);
            super::reference::gemm_nt(m, k, n, a.data(), bt.data(), c_ref.data_mut());
            assert_eq!(a.matmul_nt(&bt).data(), c_ref.data(), "gemm_nt {m}x{k}x{n}");

            let at = Tensor::randn(&[k, m], 1.0, &mut rng);
            let b2 = Tensor::randn(&[k, n], 1.0, &mut rng);
            let mut c_ref = Tensor::zeros(&[m, n]);
            super::reference::gemm_tn(m, k, n, at.data(), b2.data(), c_ref.data_mut());
            assert_eq!(at.matmul_tn(&b2).data(), c_ref.data(), "gemm_tn {m}x{k}x{n}");
        }
    }

    /// The one-hot fast path: a sparse assignment matrix must produce exactly
    /// the same bits as a dense product, on both the reference and the tiled
    /// kernel (regression guard for the `a_ik != 0.0` skip).
    #[test]
    fn one_hot_routing_matches_dense_product_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let (l, k, d) = (96usize, 24usize, 40usize);
        // One-hot [l, k]: row i selects prototype i % k.
        let mut a = Tensor::zeros(&[l, k]);
        for i in 0..l {
            a.data_mut()[i * k + i % k] = 1.0;
        }
        let heads = Tensor::randn(&[k, d], 1.0, &mut rng);
        let routed = a.matmul(&heads);
        // Row i of the result must be bitwise row (i % k) of `heads`:
        // 0.0 + 1.0 * h — exact in IEEE 754.
        for i in 0..l {
            assert_eq!(routed.row(i), heads.row(i % k), "row {i}");
        }
        let mut c_ref = Tensor::zeros(&[l, d]);
        super::reference::gemm(l, k, d, a.data(), heads.data(), c_ref.data_mut());
        assert_eq!(routed.data(), c_ref.data());
    }
}
