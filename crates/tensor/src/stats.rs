//! Statistics over `f32` slices: Pearson correlation, z-scores, Euclidean
//! distances.
//!
//! These are the primitives behind the paper's composite clustering distance
//! (Eq. 6): `‖x − c‖² + α · (1 − corr(x, c))`.

/// Scale-aware zero-variance test shared by every correlation-style
/// normalisation in the workspace (Pearson here, the centred-normalised rows
/// in `focus-cluster`'s batched sweep, and the correlation gradient).
///
/// A constant `f32` slice rarely produces an *exactly* zero centred sum of
/// squares in `f64`: the mean of `n` copies of `v` rounds, leaving per-element
/// residuals of order `ε₆₄ · |v|`, so `sxx ≈ n · (ε₆₄ · |v|)²` — tiny but
/// positive, and for large `|v|` far above the absolute `f64::EPSILON`
/// threshold. Dividing by such a noise-only norm manufactures a garbage
/// "unit" vector (the NaN/garbage-corr bug). The fix: treat `sxx` as zero
/// when it is at or below the accumulated-rounding noise floor for a slice
/// of `n` elements with magnitude `max_abs`.
///
/// The floor is deliberately generous (×256) so near-constant rows whose
/// variation is itself rounding noise also read as flat; genuinely varying
/// data sits orders of magnitude above it — an `f32` step at magnitude
/// `|v|` is `ε₃₂ · |v| ≈ 10⁹ · ε₆₄ · |v|`, so one real step per slice
/// already clears the floor by ~10¹⁶×.
pub fn zero_variance(sxx: f64, n: usize, max_abs: f64) -> bool {
    let ulp = f64::EPSILON * max_abs.max(1.0);
    let noise_floor = (n as f64) * ulp * ulp * 256.0;
    sxx <= f64::EPSILON.max(noise_floor)
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// If either input has zero variance the correlation is undefined; this
/// implementation returns `0.0` in that case so the composite distance of
/// Eq. 6 stays finite (a flat segment carries no shape information, so "no
/// correlation" is the neutral choice).
///
/// # Panics
/// If the slices have different lengths or are empty.
pub fn pearson(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "pearson length mismatch: {} vs {}", x.len(), y.len());
    assert!(!x.is_empty(), "pearson of empty slices");
    let n = x.len() as f64;
    let mx: f64 = x.iter().map(|&v| v as f64).sum::<f64>() / n;
    let my: f64 = y.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut sxy = 0.0f64;
    let mut sxx = 0.0f64;
    let mut syy = 0.0f64;
    let mut ax = 0.0f64;
    let mut ay = 0.0f64;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a as f64 - mx;
        let dy = b as f64 - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
        ax = ax.max((a as f64).abs());
        ay = ay.max((b as f64).abs());
    }
    if zero_variance(sxx, x.len(), ax) || zero_variance(syy, y.len(), ay) {
        return 0.0;
    }
    let r = sxy / (sxx.sqrt() * syy.sqrt());
    // Floating-point noise can push |r| infinitesimally past 1.
    r.clamp(-1.0, 1.0) as f32
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// If the slices have different lengths.
pub fn sq_euclidean(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "sq_euclidean length mismatch");
    x.iter()
        .zip(y)
        .map(|(&a, &b)| {
            let d = (a - b) as f64;
            d * d
        })
        .sum::<f64>() as f32
}

/// Mean and population standard deviation of a slice.
///
/// Returns `(0.0, 0.0)` for an empty slice.
pub fn mean_std(x: &[f32]) -> (f32, f32) {
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let n = x.len() as f64;
    let mean: f64 = x.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var: f64 = x
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    (mean as f32, var.max(0.0).sqrt() as f32)
}

/// Z-score normalises a slice in place using the given statistics.
///
/// A `std` of zero (constant series) leaves values centred but unscaled,
/// matching the convention of the standard MTS forecasting pipelines which
/// guard the division with a small epsilon.
pub fn zscore_in_place(x: &mut [f32], mean: f32, std: f32) {
    let denom = if std > 1e-8 { std } else { 1.0 };
    for v in x.iter_mut() {
        *v = (*v - mean) / denom;
    }
}

/// Inverts [`zscore_in_place`].
pub fn un_zscore_in_place(x: &mut [f32], mean: f32, std: f32) {
    let denom = if std > 1e-8 { std } else { 1.0 };
    for v in x.iter_mut() {
        *v = *v * denom + mean;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_paper_example() {
        // Example 2 from the paper: A={9,10,11}, B={7,10,13}, C={11,10,9}.
        // A correlates perfectly with B and anti-correlates with C, even
        // though the Euclidean distances tie.
        let a = [9.0, 10.0, 11.0];
        let b = [7.0, 10.0, 13.0];
        let c = [11.0, 10.0, 9.0];
        assert!((sq_euclidean(&a, &b) - sq_euclidean(&a, &c)).abs() < 1e-6);
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-6);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        let flat = [5.0, 5.0, 5.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&flat, &y), 0.0);
        assert_eq!(pearson(&y, &flat), 0.0);
        assert_eq!(pearson(&flat, &flat), 0.0);
    }

    #[test]
    fn pearson_large_magnitude_constant_is_zero() {
        // At |v| ≈ 1e8 the f64 mean rounds, leaving sxx tiny-but-positive —
        // far above the old absolute f64::EPSILON threshold. The scale-aware
        // floor must still read the row as flat.
        let flat = [1.0e8f32, 1.0e8, 1.0e8, 1.0e8, 1.0e8, 1.0e8, 1.0e8];
        let y = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert_eq!(pearson(&flat, &y), 0.0);
        assert_eq!(pearson(&y, &flat), 0.0);
    }

    #[test]
    fn zero_variance_floor_scales_with_magnitude() {
        // Absolute-epsilon regime: small sxx at small magnitude is zero.
        assert!(zero_variance(1e-17, 8, 1.0));
        assert!(!zero_variance(1e-3, 8, 1.0));
        // Rounding noise for 8 elements at |v|=1e8 is ~8·(ε₆₄·1e8)² ≈ 4e-15;
        // the generous floor absorbs it, but one real f32 step at that
        // magnitude ((ε₃₂·1e8)² ≈ 64) clears the floor comfortably.
        assert!(zero_variance(4e-15, 8, 1e8));
        assert!(!zero_variance(64.0, 8, 1e8));
    }

    #[test]
    fn pearson_still_sees_one_f32_step_at_large_magnitude() {
        // One representable step above 1e8 is still a real signal.
        let step = f32::from_bits(1.0e8f32.to_bits() + 1);
        let x = [1.0e8f32, step, 1.0e8, step];
        let y = [0.0f32, 1.0, 0.0, 1.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn pearson_shift_and_scale_invariant() {
        let x = [0.3, -1.2, 2.5, 0.0, 1.1];
        let y: Vec<f32> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn sq_euclidean_known() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn zscore_round_trip() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let (m, s) = mean_std(&x);
        zscore_in_place(&mut x, m, s);
        let (m2, s2) = mean_std(&x);
        assert!(m2.abs() < 1e-6);
        assert!((s2 - 1.0).abs() < 1e-5);
        un_zscore_in_place(&mut x, m, s);
        assert!((x[0] - 1.0).abs() < 1e-5 && (x[3] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn zscore_constant_series_is_safe() {
        let mut x = vec![2.0, 2.0];
        let (m, s) = mean_std(&x);
        zscore_in_place(&mut x, m, s);
        assert_eq!(x, vec![0.0, 0.0]);
    }
}
