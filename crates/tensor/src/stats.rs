//! Statistics over `f32` slices: Pearson correlation, z-scores, Euclidean
//! distances.
//!
//! These are the primitives behind the paper's composite clustering distance
//! (Eq. 6): `‖x − c‖² + α · (1 − corr(x, c))`.

/// Pearson correlation coefficient between two equal-length slices.
///
/// If either input has zero variance the correlation is undefined; this
/// implementation returns `0.0` in that case so the composite distance of
/// Eq. 6 stays finite (a flat segment carries no shape information, so "no
/// correlation" is the neutral choice).
///
/// # Panics
/// If the slices have different lengths or are empty.
pub fn pearson(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "pearson length mismatch: {} vs {}", x.len(), y.len());
    assert!(!x.is_empty(), "pearson of empty slices");
    let n = x.len() as f64;
    let mx: f64 = x.iter().map(|&v| v as f64).sum::<f64>() / n;
    let my: f64 = y.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut sxy = 0.0f64;
    let mut sxx = 0.0f64;
    let mut syy = 0.0f64;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a as f64 - mx;
        let dy = b as f64 - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= f64::EPSILON || syy <= f64::EPSILON {
        return 0.0;
    }
    let r = sxy / (sxx.sqrt() * syy.sqrt());
    // Floating-point noise can push |r| infinitesimally past 1.
    r.clamp(-1.0, 1.0) as f32
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// If the slices have different lengths.
pub fn sq_euclidean(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "sq_euclidean length mismatch");
    x.iter()
        .zip(y)
        .map(|(&a, &b)| {
            let d = (a - b) as f64;
            d * d
        })
        .sum::<f64>() as f32
}

/// Mean and population standard deviation of a slice.
///
/// Returns `(0.0, 0.0)` for an empty slice.
pub fn mean_std(x: &[f32]) -> (f32, f32) {
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let n = x.len() as f64;
    let mean: f64 = x.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var: f64 = x
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    (mean as f32, var.max(0.0).sqrt() as f32)
}

/// Z-score normalises a slice in place using the given statistics.
///
/// A `std` of zero (constant series) leaves values centred but unscaled,
/// matching the convention of the standard MTS forecasting pipelines which
/// guard the division with a small epsilon.
pub fn zscore_in_place(x: &mut [f32], mean: f32, std: f32) {
    let denom = if std > 1e-8 { std } else { 1.0 };
    for v in x.iter_mut() {
        *v = (*v - mean) / denom;
    }
}

/// Inverts [`zscore_in_place`].
pub fn un_zscore_in_place(x: &mut [f32], mean: f32, std: f32) {
    let denom = if std > 1e-8 { std } else { 1.0 };
    for v in x.iter_mut() {
        *v = *v * denom + mean;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_paper_example() {
        // Example 2 from the paper: A={9,10,11}, B={7,10,13}, C={11,10,9}.
        // A correlates perfectly with B and anti-correlates with C, even
        // though the Euclidean distances tie.
        let a = [9.0, 10.0, 11.0];
        let b = [7.0, 10.0, 13.0];
        let c = [11.0, 10.0, 9.0];
        assert!((sq_euclidean(&a, &b) - sq_euclidean(&a, &c)).abs() < 1e-6);
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-6);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        let flat = [5.0, 5.0, 5.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&flat, &y), 0.0);
        assert_eq!(pearson(&y, &flat), 0.0);
        assert_eq!(pearson(&flat, &flat), 0.0);
    }

    #[test]
    fn pearson_shift_and_scale_invariant() {
        let x = [0.3, -1.2, 2.5, 0.0, 1.1];
        let y: Vec<f32> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn sq_euclidean_known() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn zscore_round_trip() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let (m, s) = mean_std(&x);
        zscore_in_place(&mut x, m, s);
        let (m2, s2) = mean_std(&x);
        assert!(m2.abs() < 1e-6);
        assert!((s2 - 1.0).abs() < 1e-5);
        un_zscore_in_place(&mut x, m, s);
        assert!((x[0] - 1.0).abs() < 1e-5 && (x[3] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn zscore_constant_series_is_safe() {
        let mut x = vec![2.0, 2.0];
        let (m, s) = mean_std(&x);
        zscore_in_place(&mut x, m, s);
        assert_eq!(x, vec![0.0, 0.0]);
    }
}
