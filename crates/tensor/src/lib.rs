//! # focus-tensor
//!
//! Dense, row-major `f32` tensor kernels used throughout the FOCUS
//! reproduction: the autograd engine, the neural-network layers, the offline
//! clustering phase and the dataset generators are all built on this crate.
//!
//! The design goals, in order:
//!
//! 1. **Correctness** — every kernel has unit tests and the algebraic
//!    identities (associativity with transposes, softmax normalisation,
//!    Pearson bounds) are covered by property-based tests.
//! 2. **Predictable performance** — kernels avoid per-element allocation,
//!    matmul is cache-blocked and register-tiled with a serial `i-k-j`
//!    reference kept as ground truth, large ops run on a persistent worker
//!    pool ([`par`]) with bitwise-identical results at any thread count, and
//!    all shapes are validated once up front.
//! 3. **Small surface** — only the operations the forecaster needs. This is
//!    not a general array library.
//!
//! Tensors are owned, contiguous and row-major. Rank is dynamic (the models
//! use rank 1–3). Shape errors are programming errors and panic with a
//! descriptive message; numerical edge cases (zero variance in
//! [`stats::pearson`], empty reductions) are defined and documented instead of
//! panicking.
//!
//! ```
//! use focus_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

// `deny` rather than `forbid`: the persistent worker pool in [`par`] needs a
// small audited `unsafe` island (type-erased borrowed jobs, rayon-style) and
// opts in item-by-item with `#[allow(unsafe_code)]` + SAFETY comments. Every
// other module stays unsafe-free; focus-lint flags `unsafe` tokens anywhere
// outside `par.rs`.
#![deny(unsafe_code)]

mod matmul;
mod ops;
mod reduce;
mod shape;
mod tensor;

pub mod exec;
pub mod fused;
pub mod par;
pub mod pool;
pub mod route;
pub mod stats;

pub use matmul::{raw, reference};

pub use shape::Shape;
pub use tensor::Tensor;
