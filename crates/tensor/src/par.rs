//! Scoped-thread parallel execution layer.
//!
//! Every hot kernel in the workspace (GEMM, elementwise maps, row-wise
//! reductions, nearest-prototype assignment) funnels through the two
//! partitioners here. The design constraints, in order:
//!
//! 1. **Bitwise determinism** — work is split into *disjoint, contiguous*
//!    output ranges and every output element is produced by exactly the same
//!    sequence of floating-point operations as the serial reference, so
//!    results are identical for any thread count (property-tested in
//!    `tests/properties.rs`).
//! 2. **Zero runtime dependencies** — plain [`std::thread::scope`]; threads
//!    are spawned per call and joined before returning, so no closure needs
//!    `'static` and panics propagate to the caller.
//! 3. **No small-op regressions** — callers pass a *grain* (minimum items per
//!    thread); when the work does not cover two grains the closure runs
//!    inline on the calling thread with no spawn at all.
//!
//! The worker count defaults to [`std::thread::available_parallelism`], can
//! be pinned with the `FOCUS_THREADS` environment variable, and can be
//! changed at runtime with [`set_threads`] (used by the kernel benchmarks to
//! sweep 1/2/4/N threads in one process).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Runtime override set by [`set_threads`]; `0` means "use the default".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Lazily resolved default: `FOCUS_THREADS` env var, else available
/// parallelism, else 1.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// Parses a `FOCUS_THREADS` value into a worker count. The variable must be
/// a positive integer; anything else is an error carrying the offending
/// value — a typo like `FOCUS_THREADS=all` must fail loudly, not silently
/// fall back to the default and mask the misconfiguration.
fn parse_focus_threads(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "FOCUS_THREADS must be a positive integer worker count, got `{raw}` \
             (unset the variable to use all available cores)"
        )),
    }
}

/// Resolves the default worker count from an optional `FOCUS_THREADS`
/// value; an unparseable value panics with the offending text.
fn resolve_default(env: Option<String>) -> usize {
    match env {
        Some(v) => parse_focus_threads(&v).expect("invalid FOCUS_THREADS"),
        None => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

fn default_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        // `var_os` + lossy conversion so even a non-unicode value reaches the
        // parser (and fails loudly) instead of being silently dropped.
        let env = std::env::var_os("FOCUS_THREADS").map(|v| v.to_string_lossy().into_owned());
        resolve_default(env)
    })
}

/// The number of worker threads kernels may use right now.
///
/// Resolution order: [`set_threads`] override, then `FOCUS_THREADS`, then
/// [`std::thread::available_parallelism`]. Always at least 1.
pub fn max_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Overrides the worker count process-wide; `0` restores the default.
///
/// Results are bitwise-identical for every setting — this knob only trades
/// wall-clock for core usage. Mainly for benchmarks and tests.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// How many threads to use for `len` items at `grain` items per thread
/// minimum.
fn plan_threads(len: usize, grain: usize) -> usize {
    let by_grain = len / grain.max(1);
    max_threads().min(by_grain).max(1)
}

/// Runs `f` over disjoint contiguous subranges of `0..len`, in parallel when
/// `len` spans at least two grains and more than one worker is available.
///
/// `f` receives each subrange exactly once; subranges cover `0..len` without
/// overlap. `f(0..len)` runs inline (no spawn) in the serial case, so this
/// is safe to call at any depth.
pub fn parallel_for<F>(len: usize, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let threads = plan_threads(len, grain);
    if threads <= 1 {
        if len > 0 {
            f(0..len);
        }
        return;
    }
    let chunk = len.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        for t in 1..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(len);
            if start < end {
                s.spawn(move || f(start..end));
            }
        }
        f(0..chunk.min(len));
    });
}

/// Splits `out` (viewed as rows of `row_len` elements) into disjoint
/// per-thread row blocks and runs `f(first_row, block)` on each, in parallel
/// when the row count spans at least two grains.
///
/// Block boundaries are aligned down to multiples of `align` rows (the last
/// block absorbs the remainder), so register-tiled kernels never straddle a
/// thread boundary mid-tile.
///
/// # Panics
/// If `out.len()` is not a multiple of `row_len`.
pub fn parallel_rows<T, F>(out: &mut [T], row_len: usize, grain_rows: usize, align: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(out.len() % row_len, 0, "output not a whole number of rows");
    let rows = out.len() / row_len;
    let threads = plan_threads(rows, grain_rows);
    if threads <= 1 {
        if rows > 0 {
            f(0, out);
        }
        return;
    }
    let align = align.max(1);
    // Rows per thread, rounded up to the alignment.
    let per = rows.div_ceil(threads).div_ceil(align) * align;
    let f = &f;
    std::thread::scope(|s| {
        let mut rest = out;
        let mut row0 = 0usize;
        // Peel off full blocks for the spawned workers, keep the first block
        // for the calling thread.
        let mut head_block = None;
        let mut blocks = Vec::with_capacity(threads);
        while row0 < rows {
            let take = per.min(rows - row0);
            let (head, tail) = rest.split_at_mut(take * row_len);
            if row0 == 0 {
                head_block = Some(head);
            } else {
                blocks.push((row0, head));
            }
            rest = tail;
            row0 += take;
        }
        for (r0, block) in blocks {
            s.spawn(move || f(r0, block));
        }
        if let Some(block) = head_block {
            f(0, block);
        }
    });
}

/// Splits two output slices over the *same* disjoint row ranges and runs
/// `f(first_row, a_block, b_block)` on each. The slices may have different
/// row widths (`a_row_len`, `b_row_len`) but must describe the same number
/// of rows; a block covering rows `r0..r1` receives
/// `a[r0*a_row_len..r1*a_row_len]` and `b[r0*b_row_len..r1*b_row_len]`.
///
/// For kernels that produce a main output plus a per-row side product in one
/// pass (e.g. LayerNorm forward writing the normalised rows and the
/// `(mean, rstd)` cache), or column-parallel reductions writing two
/// per-column outputs.
///
/// # Panics
/// If either slice is not a whole number of rows, or the row counts differ.
pub fn parallel_rows2<T, U, F>(
    a: &mut [T],
    a_row_len: usize,
    b: &mut [U],
    b_row_len: usize,
    grain_rows: usize,
    f: F,
) where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    assert!(a_row_len > 0 && b_row_len > 0, "row lengths must be positive");
    assert_eq!(a.len() % a_row_len, 0, "first output not a whole number of rows");
    assert_eq!(b.len() % b_row_len, 0, "second output not a whole number of rows");
    let rows = a.len() / a_row_len;
    assert_eq!(b.len() / b_row_len, rows, "row count mismatch between outputs");
    let threads = plan_threads(rows, grain_rows);
    if threads <= 1 {
        if rows > 0 {
            f(0, a, b);
        }
        return;
    }
    let per = rows.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let (mut ra, mut rb) = (a, b);
        let mut row0 = 0usize;
        let mut head = None;
        let mut blocks = Vec::with_capacity(threads);
        while row0 < rows {
            let take = per.min(rows - row0);
            let (ha, ta) = ra.split_at_mut(take * a_row_len);
            let (hb, tb) = rb.split_at_mut(take * b_row_len);
            if row0 == 0 {
                head = Some((ha, hb));
            } else {
                blocks.push((row0, ha, hb));
            }
            (ra, rb) = (ta, tb);
            row0 += take;
        }
        for (r0, ba, bb) in blocks {
            s.spawn(move || f(r0, ba, bb));
        }
        if let Some((ha, hb)) = head {
            f(0, ha, hb);
        }
    });
}

/// Splits four equal-length slices into the *same* disjoint contiguous
/// per-thread ranges and runs `f(start, a_chunk, b_chunk, c_chunk, d_chunk)`
/// on each. For fused elementwise updates over several buffers at once
/// (e.g. the AdamW step over parameter/gradient/moment slices): element `i`
/// of every output chunk must depend only on element `i` of the inputs, so
/// the split stays bitwise-identical to serial at any thread count.
///
/// # Panics
/// If the slice lengths differ.
pub fn parallel_zip4<F>(
    a: &mut [f32],
    b: &[f32],
    c: &mut [f32],
    d: &mut [f32],
    grain: usize,
    f: F,
) where
    F: Fn(usize, &mut [f32], &[f32], &mut [f32], &mut [f32]) + Sync,
{
    let len = a.len();
    assert!(
        b.len() == len && c.len() == len && d.len() == len,
        "parallel_zip4 length mismatch: {} / {} / {} / {}",
        len,
        b.len(),
        c.len(),
        d.len()
    );
    let threads = plan_threads(len, grain);
    if threads <= 1 {
        if len > 0 {
            f(0, a, b, c, d);
        }
        return;
    }
    let chunk = len.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let (mut ra, mut rb, mut rc, mut rd) = (a, b, c, d);
        let mut start = 0usize;
        let mut head = None;
        let mut blocks = Vec::with_capacity(threads);
        while start < len {
            let take = chunk.min(len - start);
            let (ha, ta) = ra.split_at_mut(take);
            let (hb, tb) = rb.split_at(take);
            let (hc, tc) = rc.split_at_mut(take);
            let (hd, td) = rd.split_at_mut(take);
            if start == 0 {
                head = Some((ha, hb, hc, hd));
            } else {
                blocks.push((start, ha, hb, hc, hd));
            }
            (ra, rb, rc, rd) = (ta, tb, tc, td);
            start += take;
        }
        for (s0, ba, bb, bc, bd) in blocks {
            s.spawn(move || f(s0, ba, bb, bc, bd));
        }
        if let Some((ha, hb, hc, hd)) = head {
            f(0, ha, hb, hc, hd);
        }
    });
}

/// Fills `out` by mapping `f` over per-thread subranges: `f(range, chunk)`
/// writes `chunk` (which aliases `out[range]`). Convenience wrapper over
/// [`parallel_rows`] for flat elementwise producers.
pub fn parallel_fill<T, F>(out: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    parallel_rows(out, 1, grain, 1, |start, chunk| {
        let end = start + chunk.len();
        f(start..end, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(1000, 10, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_handles_empty_and_tiny() {
        parallel_for(0, 1, |_| panic!("must not run on empty input"));
        let ran = AtomicUsize::new(0);
        parallel_for(1, 1000, |r| {
            assert_eq!(r, 0..1);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_rows_partitions_disjointly() {
        let mut out = vec![0u32; 7 * 13];
        parallel_rows(&mut out, 13, 1, 2, |row0, block| {
            for (r, row) in block.chunks_mut(13).enumerate() {
                for v in row {
                    *v = (row0 + r) as u32 + 1;
                }
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i / 13) as u32 + 1, "element {i}");
        }
    }

    #[test]
    fn parallel_rows_respects_alignment() {
        // With align = 4, every block except possibly the last must start at
        // a multiple of 4.
        let mut out = vec![0u8; 23 * 3];
        parallel_rows(&mut out, 3, 1, 4, |row0, _| {
            assert_eq!(row0 % 4, 0, "block start {row0} not aligned");
        });
    }

    #[test]
    fn focus_threads_accepts_positive_integers() {
        assert_eq!(parse_focus_threads("4"), Ok(4));
        assert_eq!(parse_focus_threads(" 8 "), Ok(8), "surrounding whitespace is fine");
        assert_eq!(parse_focus_threads("1"), Ok(1));
    }

    #[test]
    fn focus_threads_rejects_garbage_with_the_offending_value() {
        for bad in ["all", "0", "", "-2", "4.0", "2 threads"] {
            let err = parse_focus_threads(bad).expect_err("must reject");
            assert!(
                err.contains(&format!("`{bad}`")),
                "error must name the offending value: {err}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid FOCUS_THREADS")]
    fn invalid_focus_threads_fails_loudly_instead_of_falling_back() {
        resolve_default(Some("all".to_string()));
    }

    #[test]
    fn unset_focus_threads_uses_available_parallelism() {
        assert!(resolve_default(None) >= 1);
    }

    #[test]
    fn set_threads_round_trips() {
        let before = max_threads();
        set_threads(3);
        assert_eq!(max_threads(), 3);
        set_threads(0);
        assert_eq!(max_threads(), before);
    }

    #[test]
    fn parallel_rows2_splits_both_outputs_on_the_same_rows() {
        // 37 rows; a has width 5, b has width 2. Each block must see
        // matching row ranges in both outputs.
        let mut a = vec![0u32; 37 * 5];
        let mut b = vec![0u32; 37 * 2];
        parallel_rows2(&mut a, 5, &mut b, 2, 1, |row0, ab, bb| {
            assert_eq!(ab.len() / 5, bb.len() / 2, "blocks cover different row counts");
            for (r, row) in ab.chunks_mut(5).enumerate() {
                row.fill((row0 + r) as u32 + 1);
            }
            for (r, row) in bb.chunks_mut(2).enumerate() {
                row.fill((row0 + r) as u32 + 1);
            }
        });
        assert!(a.iter().enumerate().all(|(i, &v)| v == (i / 5) as u32 + 1));
        assert!(b.iter().enumerate().all(|(i, &v)| v == (i / 2) as u32 + 1));
    }

    #[test]
    fn parallel_zip4_covers_all_elements() {
        let mut a = vec![0.0f32; 1000];
        let b: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let mut c = vec![0.0f32; 1000];
        let mut d = vec![0.0f32; 1000];
        parallel_zip4(&mut a, &b, &mut c, &mut d, 16, |start, ac, bc, cc, dc| {
            for i in 0..ac.len() {
                ac[i] = bc[i] + 1.0;
                cc[i] = (start + i) as f32;
                dc[i] = 2.0 * bc[i];
            }
        });
        assert!(a.iter().enumerate().all(|(i, &v)| v == i as f32 + 1.0));
        assert!(c.iter().enumerate().all(|(i, &v)| v == i as f32));
        assert!(d.iter().enumerate().all(|(i, &v)| v == 2.0 * i as f32));
    }

    #[test]
    fn parallel_fill_writes_disjoint_chunks() {
        let mut out = vec![0usize; 4096];
        parallel_fill(&mut out, 64, |range, chunk| {
            for (i, v) in range.zip(chunk.iter_mut()) {
                *v = i * 2;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }
}
