//! Scoped-thread parallel execution layer.
//!
//! Every hot kernel in the workspace (GEMM, elementwise maps, row-wise
//! reductions, nearest-prototype assignment) funnels through the two
//! partitioners here. The design constraints, in order:
//!
//! 1. **Bitwise determinism** — work is split into *disjoint, contiguous*
//!    output ranges and every output element is produced by exactly the same
//!    sequence of floating-point operations as the serial reference, so
//!    results are identical for any thread count (property-tested in
//!    `tests/properties.rs`).
//! 2. **Zero runtime dependencies** — plain [`std::thread::scope`]; threads
//!    are spawned per call and joined before returning, so no closure needs
//!    `'static` and panics propagate to the caller.
//! 3. **No small-op regressions** — callers pass a *grain* (minimum items per
//!    thread); when the work does not cover two grains the closure runs
//!    inline on the calling thread with no spawn at all.
//!
//! The worker count defaults to [`std::thread::available_parallelism`], can
//! be pinned with the `FOCUS_THREADS` environment variable, and can be
//! changed at runtime with [`set_threads`] (used by the kernel benchmarks to
//! sweep 1/2/4/N threads in one process).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Runtime override set by [`set_threads`]; `0` means "use the default".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Lazily resolved default: `FOCUS_THREADS` env var, else available
/// parallelism, else 1.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

fn default_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        std::env::var("FOCUS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// The number of worker threads kernels may use right now.
///
/// Resolution order: [`set_threads`] override, then `FOCUS_THREADS`, then
/// [`std::thread::available_parallelism`]. Always at least 1.
pub fn max_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Overrides the worker count process-wide; `0` restores the default.
///
/// Results are bitwise-identical for every setting — this knob only trades
/// wall-clock for core usage. Mainly for benchmarks and tests.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// How many threads to use for `len` items at `grain` items per thread
/// minimum.
fn plan_threads(len: usize, grain: usize) -> usize {
    let by_grain = len / grain.max(1);
    max_threads().min(by_grain).max(1)
}

/// Runs `f` over disjoint contiguous subranges of `0..len`, in parallel when
/// `len` spans at least two grains and more than one worker is available.
///
/// `f` receives each subrange exactly once; subranges cover `0..len` without
/// overlap. `f(0..len)` runs inline (no spawn) in the serial case, so this
/// is safe to call at any depth.
pub fn parallel_for<F>(len: usize, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let threads = plan_threads(len, grain);
    if threads <= 1 {
        if len > 0 {
            f(0..len);
        }
        return;
    }
    let chunk = len.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        for t in 1..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(len);
            if start < end {
                s.spawn(move || f(start..end));
            }
        }
        f(0..chunk.min(len));
    });
}

/// Splits `out` (viewed as rows of `row_len` elements) into disjoint
/// per-thread row blocks and runs `f(first_row, block)` on each, in parallel
/// when the row count spans at least two grains.
///
/// Block boundaries are aligned down to multiples of `align` rows (the last
/// block absorbs the remainder), so register-tiled kernels never straddle a
/// thread boundary mid-tile.
///
/// # Panics
/// If `out.len()` is not a multiple of `row_len`.
pub fn parallel_rows<T, F>(out: &mut [T], row_len: usize, grain_rows: usize, align: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(out.len() % row_len, 0, "output not a whole number of rows");
    let rows = out.len() / row_len;
    let threads = plan_threads(rows, grain_rows);
    if threads <= 1 {
        if rows > 0 {
            f(0, out);
        }
        return;
    }
    let align = align.max(1);
    // Rows per thread, rounded up to the alignment.
    let per = rows.div_ceil(threads).div_ceil(align) * align;
    let f = &f;
    std::thread::scope(|s| {
        let mut rest = out;
        let mut row0 = 0usize;
        // Peel off full blocks for the spawned workers, keep the first block
        // for the calling thread.
        let mut head_block = None;
        let mut blocks = Vec::with_capacity(threads);
        while row0 < rows {
            let take = per.min(rows - row0);
            let (head, tail) = rest.split_at_mut(take * row_len);
            if row0 == 0 {
                head_block = Some(head);
            } else {
                blocks.push((row0, head));
            }
            rest = tail;
            row0 += take;
        }
        for (r0, block) in blocks {
            s.spawn(move || f(r0, block));
        }
        if let Some(block) = head_block {
            f(0, block);
        }
    });
}

/// Fills `out` by mapping `f` over per-thread subranges: `f(range, chunk)`
/// writes `chunk` (which aliases `out[range]`). Convenience wrapper over
/// [`parallel_rows`] for flat elementwise producers.
pub fn parallel_fill<T, F>(out: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    parallel_rows(out, 1, grain, 1, |start, chunk| {
        let end = start + chunk.len();
        f(start..end, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(1000, 10, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_handles_empty_and_tiny() {
        parallel_for(0, 1, |_| panic!("must not run on empty input"));
        let ran = AtomicUsize::new(0);
        parallel_for(1, 1000, |r| {
            assert_eq!(r, 0..1);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_rows_partitions_disjointly() {
        let mut out = vec![0u32; 7 * 13];
        parallel_rows(&mut out, 13, 1, 2, |row0, block| {
            for (r, row) in block.chunks_mut(13).enumerate() {
                for v in row {
                    *v = (row0 + r) as u32 + 1;
                }
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i / 13) as u32 + 1, "element {i}");
        }
    }

    #[test]
    fn parallel_rows_respects_alignment() {
        // With align = 4, every block except possibly the last must start at
        // a multiple of 4.
        let mut out = vec![0u8; 23 * 3];
        parallel_rows(&mut out, 3, 1, 4, |row0, _| {
            assert_eq!(row0 % 4, 0, "block start {row0} not aligned");
        });
    }

    #[test]
    fn set_threads_round_trips() {
        let before = max_threads();
        set_threads(3);
        assert_eq!(max_threads(), 3);
        set_threads(0);
        assert_eq!(max_threads(), before);
    }

    #[test]
    fn parallel_fill_writes_disjoint_chunks() {
        let mut out = vec![0usize; 4096];
        parallel_fill(&mut out, 64, |range, chunk| {
            for (i, v) in range.zip(chunk.iter_mut()) {
                *v = i * 2;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }
}
