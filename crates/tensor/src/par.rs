//! Persistent worker-pool parallel execution layer.
//!
//! Every hot kernel in the workspace (GEMM, elementwise maps, row-wise
//! reductions, nearest-prototype assignment) funnels through the partitioners
//! here. The design constraints, in order:
//!
//! 1. **Bitwise determinism** — work is split into *disjoint, contiguous*
//!    output ranges and every output element is produced by exactly the same
//!    sequence of floating-point operations as the serial reference, so
//!    results are identical for any thread count *and any partition*
//!    (property-tested in `tests/properties.rs`). Partition-independence is
//!    load-bearing: it is what lets the inline fallback, the contended-pool
//!    fallback and the grain autotuner all pick different splits without ever
//!    changing a single output bit.
//! 2. **Zero runtime dependencies** — plain `std` threads, atomics and
//!    park/unpark. No rayon, no crossbeam.
//! 3. **No per-call spawning** — a train step issues thousands of kernel
//!    calls; spawning and joining OS threads per call (the pre-pool design)
//!    made threads a net *slowdown*. Workers are now spawned once, lazily, on
//!    the first dispatch that needs them, and are parked between jobs. A
//!    dispatch is a handful of atomic stores plus at most one `unpark` per
//!    sleeping worker.
//! 4. **No small-op regressions** — callers pass a *grain* (minimum items per
//!    thread); when the work does not cover two grains the closure runs
//!    inline on the calling thread with no worker traffic at all, and the
//!    clock-free autotuner ([`plan_threads`]) raises the effective grain for
//!    partitioner classes whose recent traffic is dominated by sub-grain
//!    calls.
//!
//! # Barrier protocol
//!
//! One static [`Pool`] owns up to [`MAX_THREADS`]` - 1` lazily spawned
//! workers. A dispatch with `p` parts:
//!
//! 1. takes the dispatch arbiter with `try_lock` — if another dispatch is in
//!    flight (nested parallelism, or concurrent tests), the caller runs every
//!    part itself, in part order, which is bitwise-identical and cannot
//!    deadlock;
//! 2. publishes the type-erased job (closure pointer + monomorphic
//!    trampoline) and the coordinator's thread handle, stores `p - 1` into
//!    the pending counter, and arms workers `0..p-1` with one `Release` store
//!    each (plus an `unpark` for workers that had gone to sleep);
//! 3. runs part `0` on the calling thread — the head block always stays on
//!    the caller, like the pre-pool design;
//! 4. spins briefly, then parks, until the pending counter drains to zero;
//!    each worker runs its part, re-arms itself as idle, decrements pending
//!    (`Release`, pairing with the coordinator's `Acquire`) and unparks the
//!    coordinator.
//!
//! A panic inside any part is caught, parked until every other part has
//! finished (so the arbiter is never released while workers still hold the
//! job), and then resumed on the calling thread — same observable behaviour
//! as the old `std::thread::scope` join.
//!
//! Workers never touch the job cell outside the armed window, so the
//! `UnsafeCell` reads/writes are ordered by the arm/pending atomics; this is
//! the one audited `unsafe` island in the workspace (the crate root carries
//! `#![deny(unsafe_code)]` and focus-lint flags `unsafe` tokens anywhere
//! outside this file).
//!
//! # Determinism under the pool
//!
//! The partition formulas (`per`-thread block sizes, alignment rounding) are
//! unchanged from the scoped-thread design, and every closure receives the
//! same `(first_row, block)` arguments it always did. Which OS thread runs a
//! block is irrelevant by construction: blocks are disjoint and each block's
//! arithmetic is a pure function of its input slice. The 1/2/4-thread parity
//! suites pin this end to end.
//!
//! # Observability
//!
//! Always-on relaxed counters (mirroring `pool::stats`): spawns, wakes,
//! inline/parallel/contended dispatches, per-partitioner dispatch counts.
//! [`publish_trace_stats`] exports them as `par/*` gauges. They vary with
//! the thread count by design — trace consumers comparing runs across thread
//! counts exclude the `par/` prefix, exactly like `pool/`.
//!
//! The worker count defaults to [`std::thread::available_parallelism`], can
//! be pinned with the `FOCUS_THREADS` environment variable, and can be
//! changed at runtime with [`set_threads`] (used by the kernel benchmarks to
//! sweep 1/2/4/N threads in one process; tests that flip it serialise on
//! [`threads_guard`]).

use std::any::Any;
use std::cell::UnsafeCell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, TryLockError};
use std::thread::Thread;

/// Hard cap on the threads one dispatch may use (1 coordinator + up to
/// [`MAX_THREADS`]` - 1` pool workers). Bounds the stack-allocated block
/// lists in the partitioners, so the hottest dispatch path performs zero
/// heap allocations. `set_threads`/`FOCUS_THREADS` values above the cap are
/// clamped at dispatch time.
pub const MAX_THREADS: usize = 32;

/// Pool workers available to a dispatch (the coordinator is the caller).
const MAX_WORKERS: usize = MAX_THREADS - 1;

/// Spin iterations before a waiter parks. Long enough to bridge the gap
/// between two back-to-back kernel dispatches, short enough not to burn a
/// core while the model is between steps (or the host is oversubscribed).
const SPIN_LIMIT: u32 = 1 << 10;

/// Runtime override set by [`set_threads`]; `0` means "use the default".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Lazily resolved default: `FOCUS_THREADS` env var, else available
/// parallelism, else 1.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// Parses a `FOCUS_THREADS` value into a worker count. The variable must be
/// a positive integer; anything else is an error carrying the offending
/// value — a typo like `FOCUS_THREADS=all` must fail loudly, not silently
/// fall back to the default and mask the misconfiguration.
fn parse_focus_threads(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "FOCUS_THREADS must be a positive integer worker count, got `{raw}` \
             (unset the variable to use all available cores)"
        )),
    }
}

/// Resolves the default worker count from an optional `FOCUS_THREADS`
/// value; an unparseable value panics with the offending text.
fn resolve_default(env: Option<String>) -> usize {
    match env {
        Some(v) => parse_focus_threads(&v).expect("invalid FOCUS_THREADS"),
        None => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

fn default_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        // `var_os` + lossy conversion so even a non-unicode value reaches the
        // parser (and fails loudly) instead of being silently dropped.
        let env = std::env::var_os("FOCUS_THREADS").map(|v| v.to_string_lossy().into_owned());
        resolve_default(env)
    })
}

/// The number of worker threads kernels may use right now.
///
/// Resolution order: [`set_threads`] override, then `FOCUS_THREADS`, then
/// [`std::thread::available_parallelism`]. Always at least 1. Values above
/// [`MAX_THREADS`] are honoured here but clamped at dispatch time.
pub fn max_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Overrides the worker count process-wide; `0` restores the default.
///
/// Results are bitwise-identical for every setting — this knob only trades
/// wall-clock for core usage. Mainly for benchmarks and tests; tests that
/// flip it must hold [`threads_guard`] for their whole body, because the
/// override is process-global and `cargo test` runs tests concurrently.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Serialises tests and benches that flip the process-global [`set_threads`]
/// override (or assert on the global `par/*` counters). Lock poisoning is
/// deliberately shrugged off — a panicked thread-sweep test must not take
/// every other one down with it.
pub fn threads_guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Dispatch counters + clock-free grain autotuning
// ---------------------------------------------------------------------------

/// Worker threads spawned so far (monotone). Steady-state training must not
/// move this: the trainstep bench asserts a zero delta across its measured
/// rounds, next to the pool's `fresh_allocs == 0` check.
static SPAWNS: AtomicU64 = AtomicU64::new(0);
/// Worker activations: one per worker armed by a pooled dispatch (monotone).
static WAKES: AtomicU64 = AtomicU64::new(0);
/// Dispatches that fanned out to pool workers (monotone).
static PARALLEL: AtomicU64 = AtomicU64::new(0);
/// Dispatches that ran inline on the caller — sub-grain work, a single
/// planned thread, or a clamped partition (monotone).
static INLINE: AtomicU64 = AtomicU64::new(0);
/// Inline dispatches caused specifically by the arbiter being busy (nested
/// or concurrent parallelism); a subset of [`INLINE`].
static CONTENDED: AtomicU64 = AtomicU64::new(0);

/// The partitioner entry points, as autotuning classes: workloads funnel
/// through them in stable per-kernel patterns, so per-class traffic is a
/// usable (and clock-free) signal.
#[derive(Clone, Copy)]
enum Class {
    For = 0,
    Rows = 1,
    Rows2 = 2,
    Zip4 = 3,
}

/// Class names for trace export, indexed by `Class as usize`.
const CLASS_NAMES: [&str; 4] = ["par/for", "par/rows", "par/rows2", "par/zip4"];

/// Dispatches per autotune decision window.
const AUTOTUNE_WINDOW: u64 = 1024;
/// Ceiling on the grain boost: effective grain ≤ caller grain × 8.
const MAX_BOOST_LOG2: u32 = 3;

/// Per-class dispatch statistics and the autotuned grain boost.
struct ClassStats {
    /// Total dispatches (monotone, for trace export).
    calls: AtomicU64,
    /// Dispatches in the current autotune window.
    window_calls: AtomicU64,
    /// Inline dispatches in the current autotune window.
    window_inline: AtomicU64,
    /// log2 of the current grain multiplier (0 ⇒ caller grain verbatim).
    boost_log2: AtomicU32,
}

impl ClassStats {
    const fn new() -> ClassStats {
        ClassStats {
            calls: AtomicU64::new(0),
            window_calls: AtomicU64::new(0),
            window_inline: AtomicU64::new(0),
            boost_log2: AtomicU32::new(0),
        }
    }
}

static CLASS_STATS: [ClassStats; 4] = [const { ClassStats::new() }; 4];

/// Records one dispatch outcome in the global counters.
fn note_outcome(parallel: bool) {
    if parallel {
        PARALLEL.fetch_add(1, Ordering::Relaxed);
    } else {
        INLINE.fetch_add(1, Ordering::Relaxed);
    }
}

/// How many threads to use for `len` items at `grain` items per thread
/// minimum, after the class's autotuned grain boost and the [`MAX_THREADS`]
/// clamp. Also advances the autotuner.
///
/// The autotune policy is deterministic and clock-free (clock reads are
/// banned workspace-wide outside `focus_trace::clock`): once per
/// [`AUTOTUNE_WINDOW`] dispatches of a class, if ≥ 7/8 of the window was
/// sub-grain work the class's effective grain doubles (saturating at ×8) — a
/// stream of sub-grain calls means borderline sizes are not worth a worker
/// wake either — and if ≤ 1/2 was sub-grain the boost halves back toward the
/// caller's grain. The signal is measured against the *caller's* grain, not
/// the boosted one, so the boost can never feed back into its own
/// justification, and nothing is recorded while only one thread is available
/// (a single-threaded phase says nothing about the op-size mix worth
/// parallelising). Boost changes only move the inline/parallel threshold and
/// the block sizes; by partition-independence they can never change output
/// bits. Window accounting is racy-but-monotone under concurrent dispatch,
/// which only ever delays a boost decision, never corrupts results.
fn plan_threads(class: Class, len: usize, grain: usize) -> usize {
    let s = &CLASS_STATS[class as usize];
    s.calls.fetch_add(1, Ordering::Relaxed);
    let max = max_threads().min(MAX_THREADS);
    if max <= 1 {
        return 1;
    }
    if len < 2 * grain.max(1) {
        s.window_inline.fetch_add(1, Ordering::Relaxed);
    }
    let w = s.window_calls.fetch_add(1, Ordering::Relaxed) + 1;
    if w >= AUTOTUNE_WINDOW {
        s.window_calls.store(0, Ordering::Relaxed);
        let sub_grain = s.window_inline.swap(0, Ordering::Relaxed);
        let boost = s.boost_log2.load(Ordering::Relaxed);
        let next = if sub_grain * 8 >= AUTOTUNE_WINDOW * 7 {
            (boost + 1).min(MAX_BOOST_LOG2)
        } else if sub_grain * 2 <= AUTOTUNE_WINDOW {
            boost.saturating_sub(1)
        } else {
            boost
        };
        s.boost_log2.store(next, Ordering::Relaxed);
    }
    let boost = s.boost_log2.load(Ordering::Relaxed);
    let by_grain = len / (grain.max(1) << boost).max(1);
    max.min(by_grain).max(1)
}

/// Worker threads spawned so far (monotone). The trainstep bench asserts
/// this does not move across steady-state rounds: warmed-up training reuses
/// the pool, it never respawns.
pub fn spawn_count() -> u64 {
    SPAWNS.load(Ordering::Relaxed)
}

/// Snapshot of the dispatch counters, for benches and tests.
#[derive(Debug, Clone, Copy)]
pub struct ParStats {
    /// Worker threads spawned (monotone).
    pub spawns: u64,
    /// Worker activations across all pooled dispatches (monotone).
    pub wakes: u64,
    /// Dispatches that fanned out to the pool (monotone).
    pub parallel: u64,
    /// Dispatches that ran inline on the caller (monotone).
    pub inline: u64,
    /// Inline dispatches due to arbiter contention (subset of `inline`).
    pub contended: u64,
}

/// Current counter snapshot.
pub fn stats() -> ParStats {
    ParStats {
        spawns: SPAWNS.load(Ordering::Relaxed),
        wakes: WAKES.load(Ordering::Relaxed),
        parallel: PARALLEL.load(Ordering::Relaxed),
        inline: INLINE.load(Ordering::Relaxed),
        contended: CONTENDED.load(Ordering::Relaxed),
    }
}

/// Publishes the dispatch counters into the `focus-trace` registry as
/// `par/*` gauges (no-op while tracing is disabled). Like `pool/*`, these
/// legitimately vary with the worker-thread count, so consumers comparing
/// traces across thread counts exclude the `par/` prefix.
pub fn publish_trace_stats() {
    if !focus_trace::enabled() {
        return;
    }
    let s = stats();
    focus_trace::counter_set("par/spawns", s.spawns);
    focus_trace::counter_set("par/wakes", s.wakes);
    focus_trace::counter_set("par/parallel", s.parallel);
    focus_trace::counter_set("par/inline", s.inline);
    focus_trace::counter_set("par/contended", s.contended);
    focus_trace::counter_set("par/workers", POOL.spawned.load(Ordering::Relaxed) as u64);
    for (i, name) in CLASS_NAMES.iter().enumerate() {
        focus_trace::counter_set(name, CLASS_STATS[i].calls.load(Ordering::Relaxed));
    }
}

// ---------------------------------------------------------------------------
// The persistent pool
// ---------------------------------------------------------------------------

/// Worker slot states. `IDLE → ARMED → IDLE` per job; a worker that gave up
/// spinning parks itself via `IDLE → PARKED`, and the coordinator's arm
/// (`swap(ARMED)`) observes `PARKED` and unparks it.
const IDLE: u32 = 0;
const ARMED: u32 = 1;
const PARKED: u32 = 2;

/// A type-erased borrowed job: a pointer to the dispatching call's closure
/// plus the monomorphic trampoline that knows its concrete type.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

/// Trampoline instantiated per closure type by [`run_parts`].
///
/// # Safety
/// `data` must point to a live `F` for the duration of the call (guaranteed
/// by the dispatch protocol: the coordinator keeps the closure alive on its
/// stack until the pending counter drains).
#[allow(unsafe_code)]
unsafe fn call_thunk<F: Fn(usize) + Sync>(data: *const (), part: usize) {
    let f = &*(data as *const F);
    f(part);
}

/// Placeholder job for the pool's static initialiser; never executed
/// (workers only read the cell after being armed, and arming always follows
/// a fresh job write).
#[allow(unsafe_code)]
unsafe fn empty_job(_: *const (), _: usize) {}

/// The shared job cell.
struct JobCell(UnsafeCell<Job>);

// SAFETY: written only by the coordinator that holds `ARBITER`, while every
// worker is idle (the previous dispatch drained `pending` to zero before the
// arbiter was released); read by a worker only between observing its slot
// `ARMED` (Acquire, pairing with the coordinator's Release arm — so the
// write happens-before the read) and its `pending` decrement (Release,
// pairing with the coordinator's Acquire drain — so the read happens-before
// the next write). Reads and writes therefore never overlap.
#[allow(unsafe_code)]
unsafe impl Sync for JobCell {}

/// The coordinator's thread handle for the in-flight dispatch, so workers
/// can unpark it when they finish.
struct CoordCell(UnsafeCell<Option<Thread>>);

// SAFETY: same single-writer protocol as `JobCell` — written under the
// arbiter before any worker is armed, read by workers only inside the
// armed-to-decrement window.
#[allow(unsafe_code)]
unsafe impl Sync for CoordCell {}

/// One persistent worker's mailbox.
struct WorkerSlot {
    /// [`IDLE`] / [`ARMED`] / [`PARKED`].
    state: AtomicU32,
    /// The worker's thread handle, set once at spawn, for `unpark`.
    thread: OnceLock<Thread>,
}

impl WorkerSlot {
    const fn new() -> WorkerSlot {
        WorkerSlot { state: AtomicU32::new(IDLE), thread: OnceLock::new() }
    }
}

/// The process-wide worker pool. Workers are spawned lazily by the first
/// dispatch that needs them and then live for the rest of the process,
/// parked between jobs.
struct Pool {
    job: JobCell,
    coord: CoordCell,
    /// Workers still running the current job; the coordinator waits for 0.
    pending: AtomicUsize,
    /// First panic payload caught by a worker this dispatch, re-thrown on
    /// the coordinator after the barrier (same semantics as a scoped join).
    panic_box: Mutex<Option<Box<dyn Any + Send>>>,
    slots: [WorkerSlot; MAX_WORKERS],
    /// Workers spawned so far; grows monotonically, written under the
    /// arbiter.
    spawned: AtomicUsize,
}

static POOL: Pool = Pool {
    job: JobCell(UnsafeCell::new(Job { data: std::ptr::null(), call: empty_job })),
    coord: CoordCell(UnsafeCell::new(None)),
    pending: AtomicUsize::new(0),
    panic_box: Mutex::new(None),
    slots: [const { WorkerSlot::new() }; MAX_WORKERS],
    spawned: AtomicUsize::new(0),
};

/// Serialises dispatches. `try_lock` only — a dispatch that finds the pool
/// busy (nested parallelism, concurrent tests) runs its parts itself, which
/// is bitwise-identical by partition-independence and cannot deadlock.
static ARBITER: Mutex<()> = Mutex::new(());

/// The body of worker `idx`: wait (spin, then park) for an armed job, run
/// part `idx + 1`, hand the slot back and release the coordinator. Loops
/// forever — pool workers live for the process lifetime.
#[allow(unsafe_code)]
fn worker_main(idx: usize) {
    let slot = &POOL.slots[idx];
    loop {
        let mut spins = 0u32;
        loop {
            if slot.state.load(Ordering::Acquire) == ARMED {
                break;
            }
            if spins < SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
            } else if slot
                .state
                .compare_exchange(IDLE, PARKED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                while slot.state.load(Ordering::Acquire) == PARKED {
                    std::thread::park();
                }
            }
        }
        // SAFETY: the Acquire load of ARMED pairs with the coordinator's
        // Release arm, which follows the job/coordinator writes — see the
        // `JobCell` protocol comment. The copy completes before `pending` is
        // decremented, so the cell is never read while it is being written.
        let (job, coord) = unsafe { (*POOL.job.0.get(), (*POOL.coord.0.get()).clone()) };
        // SAFETY: `call_thunk` contract — the coordinator keeps the closure
        // alive until `pending` drains, and this worker decrements only
        // after the call returns.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, idx + 1) }));
        if let Err(payload) = result {
            let mut first = POOL.panic_box.lock().unwrap_or_else(|e| e.into_inner());
            first.get_or_insert(payload);
        }
        slot.state.store(IDLE, Ordering::Relaxed);
        POOL.pending.fetch_sub(1, Ordering::Release);
        if let Some(c) = coord {
            c.unpark();
        }
    }
}

/// Spawns workers `spawned..n` (named `focus-par-<idx>`). Called under the
/// arbiter. Returns `false` if the OS refused a spawn, in which case the
/// caller falls back to running its parts itself.
fn ensure_workers(n: usize) -> bool {
    let have = POOL.spawned.load(Ordering::Relaxed);
    for idx in have..n {
        let builder = std::thread::Builder::new().name(format!("focus-par-{idx}"));
        match builder.spawn(move || worker_main(idx)) {
            Ok(handle) => {
                let _ = POOL.slots[idx].thread.set(handle.thread().clone());
                SPAWNS.fetch_add(1, Ordering::Relaxed);
                POOL.spawned.store(idx + 1, Ordering::Relaxed);
            }
            Err(_) => return false,
        }
    }
    true
}

/// Executes `task(0)`, …, `task(parts - 1)` exactly once each: part 0 on the
/// calling thread, parts `1..` on pool workers when the pool is free, or all
/// parts serially in order on the caller otherwise. Callers guarantee every
/// part writes disjoint state, and that results do not depend on which
/// thread runs which part (partition-independence).
#[allow(unsafe_code)]
fn run_parts<F: Fn(usize) + Sync>(parts: usize, task: F) {
    debug_assert!(parts <= MAX_THREADS, "partition exceeds MAX_THREADS");
    if parts <= 1 {
        note_outcome(false);
        if parts == 1 {
            task(0);
        }
        return;
    }
    let guard = match ARBITER.try_lock() {
        Ok(g) => g,
        // A panicking dispatch poisons the mutex on unwind; the pool state
        // itself is re-synchronised by the pending barrier, so the lock
        // stays usable.
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            // Nested or concurrent dispatch: run the same partition serially.
            CONTENDED.fetch_add(1, Ordering::Relaxed);
            note_outcome(false);
            for i in 0..parts {
                task(i);
            }
            return;
        }
    };
    let helpers = parts - 1;
    if !ensure_workers(helpers) {
        drop(guard);
        note_outcome(false);
        for i in 0..parts {
            task(i);
        }
        return;
    }
    note_outcome(true);
    WAKES.fetch_add(helpers as u64, Ordering::Relaxed);
    // SAFETY: arbiter held and `pending` was zero (previous dispatch drained
    // it before releasing the arbiter), so no worker is reading either cell.
    unsafe {
        *POOL.coord.0.get() = Some(std::thread::current());
        *POOL.job.0.get() =
            Job { data: (&task) as *const F as *const (), call: call_thunk::<F> };
    }
    POOL.pending.store(helpers, Ordering::Release);
    for slot in &POOL.slots[..helpers] {
        if slot.state.swap(ARMED, Ordering::AcqRel) == PARKED {
            if let Some(t) = slot.thread.get() {
                t.unpark();
            }
        }
    }
    // The head part always runs on the caller; its panic (if any) must not
    // skip the barrier — workers still hold the job cell.
    let head = catch_unwind(AssertUnwindSafe(|| task(0)));
    let mut spins = 0u32;
    while POOL.pending.load(Ordering::Acquire) > 0 {
        if spins < SPIN_LIMIT {
            spins += 1;
            std::hint::spin_loop();
        } else {
            // Workers unpark us after their decrement; a stale unpark token
            // at worst makes this loop re-check once.
            std::thread::park();
        }
    }
    let worker_panic = POOL.panic_box.lock().unwrap_or_else(|e| e.into_inner()).take();
    drop(guard);
    if let Err(payload) = head {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

/// A raw pointer that may cross the dispatch boundary. Only ever points into
/// a caller-owned slice that outlives the dispatch, and only one part
/// dereferences any given pointer.
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: the pointer targets live exactly as long as the dispatch (the
// coordinator's stack frame), and the partitioners hand each disjoint block
// to exactly one part — there is never concurrent aliasing.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for SendPtr<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Shared-reference counterpart of [`SendPtr`] for read-only operands.
struct SendConst<T>(*const T);

impl<T> Clone for SendConst<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendConst<T> {}

// SAFETY: read-only views of caller slices that outlive the dispatch.
#[allow(unsafe_code)]
unsafe impl<T: Sync> Send for SendConst<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Sync> Sync for SendConst<T> {}

// ---------------------------------------------------------------------------
// Partitioners
// ---------------------------------------------------------------------------

/// Runs `f` over disjoint contiguous subranges of `0..len`, in parallel when
/// `len` spans at least two (autotuned) grains and more than one worker is
/// available.
///
/// `f` receives each subrange exactly once; subranges cover `0..len` without
/// overlap. `f(0..len)` runs inline (no worker traffic) in the serial case,
/// so this is safe to call at any depth.
pub fn parallel_for<F>(len: usize, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let threads = plan_threads(Class::For, len, grain);
    if threads <= 1 {
        note_outcome(false);
        if len > 0 {
            f(0..len);
        }
        return;
    }
    let chunk = len.div_ceil(threads);
    let parts = len.div_ceil(chunk);
    run_parts(parts, |i| {
        let start = i * chunk;
        let end = ((i + 1) * chunk).min(len);
        f(start..end);
    });
}

/// Splits `out` (viewed as rows of `row_len` elements) into disjoint
/// per-thread row blocks and runs `f(first_row, block)` on each, in parallel
/// when the row count spans at least two (autotuned) grains.
///
/// Block boundaries are aligned down to multiples of `align` rows (the last
/// block absorbs the remainder), so register-tiled kernels never straddle a
/// thread boundary mid-tile.
///
/// # Panics
/// If `out.len()` is not a multiple of `row_len`.
#[allow(unsafe_code)]
pub fn parallel_rows<T, F>(out: &mut [T], row_len: usize, grain_rows: usize, align: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(out.len() % row_len, 0, "output not a whole number of rows");
    let rows = out.len() / row_len;
    let threads = plan_threads(Class::Rows, rows, grain_rows);
    if threads <= 1 {
        note_outcome(false);
        if rows > 0 {
            f(0, out);
        }
        return;
    }
    let align = align.max(1);
    // Rows per thread, rounded up to the alignment.
    let per = rows.div_ceil(threads).div_ceil(align) * align;
    // Fixed-size stack block list: the dispatch path stays heap-free.
    let mut blocks = [(0usize, SendPtr(std::ptr::null_mut()), 0usize); MAX_THREADS];
    let mut parts = 0usize;
    let mut rest = out;
    let mut row0 = 0usize;
    while row0 < rows {
        let take = per.min(rows - row0);
        let (head, tail) = rest.split_at_mut(take * row_len);
        blocks[parts] = (row0, SendPtr(head.as_mut_ptr()), head.len());
        parts += 1;
        rest = tail;
        row0 += take;
    }
    let f = &f;
    run_parts(parts, move |i| {
        let (r0, ptr, len) = blocks[i];
        // SAFETY: blocks are disjoint `split_at_mut` sub-slices of `out`
        // (alive for the whole dispatch), and `run_parts` executes each part
        // index exactly once on exactly one thread.
        let block = unsafe { std::slice::from_raw_parts_mut(ptr.0, len) };
        f(r0, block);
    });
}

/// Splits two output slices over the *same* disjoint row ranges and runs
/// `f(first_row, a_block, b_block)` on each. The slices may have different
/// row widths (`a_row_len`, `b_row_len`) but must describe the same number
/// of rows; a block covering rows `r0..r1` receives
/// `a[r0*a_row_len..r1*a_row_len]` and `b[r0*b_row_len..r1*b_row_len]`.
/// Block boundaries are aligned down to multiples of `align` rows exactly
/// like [`parallel_rows`], so two-output register-tiled kernels (LayerNorm
/// forward's `(mean, rstd)` cache path) never straddle a tile mid-block.
///
/// For kernels that produce a main output plus a per-row side product in one
/// pass, or column-parallel reductions writing two per-column outputs.
///
/// # Panics
/// If either slice is not a whole number of rows, or the row counts differ.
#[allow(unsafe_code)]
pub fn parallel_rows2<T, U, F>(
    a: &mut [T],
    a_row_len: usize,
    b: &mut [U],
    b_row_len: usize,
    grain_rows: usize,
    align: usize,
    f: F,
) where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    assert!(a_row_len > 0 && b_row_len > 0, "row lengths must be positive");
    assert_eq!(a.len() % a_row_len, 0, "first output not a whole number of rows");
    assert_eq!(b.len() % b_row_len, 0, "second output not a whole number of rows");
    let rows = a.len() / a_row_len;
    assert_eq!(b.len() / b_row_len, rows, "row count mismatch between outputs");
    let threads = plan_threads(Class::Rows2, rows, grain_rows);
    if threads <= 1 {
        note_outcome(false);
        if rows > 0 {
            f(0, a, b);
        }
        return;
    }
    let align = align.max(1);
    let per = rows.div_ceil(threads).div_ceil(align) * align;
    let nullb = (0usize, SendPtr(std::ptr::null_mut()), SendPtr(std::ptr::null_mut()), 0usize);
    let mut blocks = [nullb; MAX_THREADS];
    let mut parts = 0usize;
    let (mut ra, mut rb) = (a, b);
    let mut row0 = 0usize;
    while row0 < rows {
        let take = per.min(rows - row0);
        let (ha, ta) = ra.split_at_mut(take * a_row_len);
        let (hb, tb) = rb.split_at_mut(take * b_row_len);
        blocks[parts] = (row0, SendPtr(ha.as_mut_ptr()), SendPtr(hb.as_mut_ptr()), take);
        parts += 1;
        (ra, rb) = (ta, tb);
        row0 += take;
    }
    let f = &f;
    run_parts(parts, move |i| {
        let (r0, pa, pb, take) = blocks[i];
        // SAFETY: disjoint `split_at_mut` sub-slices of `a`/`b`, each part
        // index executed exactly once on exactly one thread.
        let (ba, bb) = unsafe {
            (
                std::slice::from_raw_parts_mut(pa.0, take * a_row_len),
                std::slice::from_raw_parts_mut(pb.0, take * b_row_len),
            )
        };
        f(r0, ba, bb);
    });
}

/// Splits four equal-length slices into the *same* disjoint contiguous
/// per-thread ranges and runs `f(start, a_chunk, b_chunk, c_chunk, d_chunk)`
/// on each. For fused elementwise updates over several buffers at once
/// (e.g. the AdamW step over parameter/gradient/moment slices): element `i`
/// of every output chunk must depend only on element `i` of the inputs, so
/// the split stays bitwise-identical to serial at any thread count.
///
/// # Panics
/// If the slice lengths differ.
#[allow(unsafe_code)]
pub fn parallel_zip4<F>(
    a: &mut [f32],
    b: &[f32],
    c: &mut [f32],
    d: &mut [f32],
    grain: usize,
    f: F,
) where
    F: Fn(usize, &mut [f32], &[f32], &mut [f32], &mut [f32]) + Sync,
{
    let len = a.len();
    assert!(
        b.len() == len && c.len() == len && d.len() == len,
        "parallel_zip4 length mismatch: {} / {} / {} / {}",
        len,
        b.len(),
        c.len(),
        d.len()
    );
    let threads = plan_threads(Class::Zip4, len, grain);
    if threads <= 1 {
        note_outcome(false);
        if len > 0 {
            f(0, a, b, c, d);
        }
        return;
    }
    let chunk = len.div_ceil(threads);
    let parts = len.div_ceil(chunk);
    // Captured as one tuple so the closure grabs the `Send`/`Sync` wrappers
    // whole (precise field capture would otherwise pull out the bare raw
    // pointers, which are deliberately not `Sync`).
    let ptrs =
        (SendPtr(a.as_mut_ptr()), SendConst(b.as_ptr()), SendPtr(c.as_mut_ptr()), SendPtr(d.as_mut_ptr()));
    let f = &f;
    run_parts(parts, move |i| {
        let (pa, pb, pc, pd) = ptrs;
        let start = i * chunk;
        let take = chunk.min(len - start);
        // SAFETY: the four parent slices outlive the dispatch; chunk ranges
        // `start..start + take` are disjoint across part indices and each
        // index is executed exactly once, so no `&mut` chunk aliases.
        let (ca, cb, cc, cd) = unsafe {
            (
                std::slice::from_raw_parts_mut(pa.0.add(start), take),
                std::slice::from_raw_parts(pb.0.add(start), take),
                std::slice::from_raw_parts_mut(pc.0.add(start), take),
                std::slice::from_raw_parts_mut(pd.0.add(start), take),
            )
        };
        f(start, ca, cb, cc, cd);
    });
}

/// Fills `out` by mapping `f` over per-thread subranges: `f(range, chunk)`
/// writes `chunk` (which aliases `out[range]`). Convenience wrapper over
/// [`parallel_rows`] for flat elementwise producers.
pub fn parallel_fill<T, F>(out: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    parallel_rows(out, 1, grain, 1, |start, chunk| {
        let end = start + chunk.len();
        f(start..end, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(1000, 10, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_handles_empty_and_tiny() {
        parallel_for(0, 1, |_| panic!("must not run on empty input"));
        let ran = AtomicUsize::new(0);
        parallel_for(1, 1000, |r| {
            assert_eq!(r, 0..1);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_rows_partitions_disjointly() {
        let mut out = vec![0u32; 7 * 13];
        parallel_rows(&mut out, 13, 1, 2, |row0, block| {
            for (r, row) in block.chunks_mut(13).enumerate() {
                for v in row {
                    *v = (row0 + r) as u32 + 1;
                }
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i / 13) as u32 + 1, "element {i}");
        }
    }

    #[test]
    fn parallel_rows_respects_alignment() {
        // With align = 4, every block except possibly the last must start at
        // a multiple of 4.
        let mut out = vec![0u8; 23 * 3];
        parallel_rows(&mut out, 3, 1, 4, |row0, _| {
            assert_eq!(row0 % 4, 0, "block start {row0} not aligned");
        });
    }

    #[test]
    fn parallel_rows2_respects_alignment() {
        // Mirror of `parallel_rows_respects_alignment` for the two-output
        // splitter: with align = 4 no block may start mid-tile, and both
        // outputs must split on the same row ranges.
        let mut a = vec![0u8; 23 * 3];
        let mut b = vec![0u8; 23 * 2];
        parallel_rows2(&mut a, 3, &mut b, 2, 1, 4, |row0, ab, bb| {
            assert_eq!(row0 % 4, 0, "block start {row0} not aligned");
            assert_eq!(ab.len() / 3, bb.len() / 2, "row ranges differ between outputs");
        });
    }

    #[test]
    fn focus_threads_accepts_positive_integers() {
        assert_eq!(parse_focus_threads("4"), Ok(4));
        assert_eq!(parse_focus_threads(" 8 "), Ok(8), "surrounding whitespace is fine");
        assert_eq!(parse_focus_threads("1"), Ok(1));
    }

    #[test]
    fn focus_threads_rejects_garbage_with_the_offending_value() {
        for bad in ["all", "0", "", "-2", "4.0", "2 threads"] {
            let err = parse_focus_threads(bad).expect_err("must reject");
            assert!(
                err.contains(&format!("`{bad}`")),
                "error must name the offending value: {err}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid FOCUS_THREADS")]
    fn invalid_focus_threads_fails_loudly_instead_of_falling_back() {
        resolve_default(Some("all".to_string()));
    }

    #[test]
    fn unset_focus_threads_uses_available_parallelism() {
        assert!(resolve_default(None) >= 1);
    }

    #[test]
    fn set_threads_round_trips() {
        // The override is process-global: hold the guard so concurrently
        // running tests cannot observe (or clobber) the temporary setting.
        let _g = threads_guard();
        let before = max_threads();
        set_threads(3);
        assert_eq!(max_threads(), 3);
        set_threads(0);
        assert_eq!(max_threads(), before);
    }

    #[test]
    fn plan_clamps_at_max_threads() {
        let _g = threads_guard();
        set_threads(10 * MAX_THREADS);
        let planned = plan_threads(Class::For, usize::MAX, 1);
        set_threads(0);
        assert_eq!(planned, MAX_THREADS, "dispatch must clamp huge overrides");
    }

    #[test]
    fn workers_are_spawned_once_and_reused() {
        let _g = threads_guard();
        set_threads(3);
        let warm = |tag: u32| {
            let mut out = vec![0u32; 3 * 64];
            parallel_rows(&mut out, 64, 1, 1, |row0, block| {
                block.fill(row0 as u32 + tag);
            });
            assert_eq!(out[0], tag);
        };
        warm(1); // may spawn workers
        let before = spawn_count();
        for tag in 2..30 {
            warm(tag);
        }
        let after = spawn_count();
        set_threads(0);
        assert_eq!(after, before, "steady-state dispatches must never respawn workers");
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let _g = threads_guard();
        set_threads(2);
        let caught = std::panic::catch_unwind(|| {
            parallel_for(1000, 1, |range| {
                if range.start > 0 {
                    panic!("boom in worker part");
                }
            });
        });
        set_threads(0);
        let payload = caught.expect_err("worker panic must reach the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(msg.contains("boom in worker part"), "payload preserved: {msg}");
        // The pool must stay usable after a panic.
        set_threads(2);
        let hits = AtomicUsize::new(0);
        parallel_for(1000, 1, |r| {
            hits.fetch_add(r.len(), Ordering::Relaxed);
        });
        set_threads(0);
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn dispatch_counters_tick() {
        let _g = threads_guard();
        let before = stats();
        set_threads(1);
        parallel_for(64, 1, |_| {}); // planned single-threaded ⇒ inline
        set_threads(2);
        parallel_for(4096, 1, |_| {}); // two grains of work ⇒ pooled
        set_threads(0);
        let after = stats();
        assert!(after.inline > before.inline, "inline dispatch must count");
        assert!(after.parallel > before.parallel, "pooled dispatch must count");
        assert!(after.wakes > before.wakes, "pooled dispatch wakes workers");
    }

    #[test]
    fn parallel_rows2_splits_both_outputs_on_the_same_rows() {
        // 37 rows; a has width 5, b has width 2. Each block must see
        // matching row ranges in both outputs.
        let mut a = vec![0u32; 37 * 5];
        let mut b = vec![0u32; 37 * 2];
        parallel_rows2(&mut a, 5, &mut b, 2, 1, 1, |row0, ab, bb| {
            assert_eq!(ab.len() / 5, bb.len() / 2, "blocks cover different row counts");
            for (r, row) in ab.chunks_mut(5).enumerate() {
                row.fill((row0 + r) as u32 + 1);
            }
            for (r, row) in bb.chunks_mut(2).enumerate() {
                row.fill((row0 + r) as u32 + 1);
            }
        });
        assert!(a.iter().enumerate().all(|(i, &v)| v == (i / 5) as u32 + 1));
        assert!(b.iter().enumerate().all(|(i, &v)| v == (i / 2) as u32 + 1));
    }

    #[test]
    fn parallel_zip4_covers_all_elements() {
        let mut a = vec![0.0f32; 1000];
        let b: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let mut c = vec![0.0f32; 1000];
        let mut d = vec![0.0f32; 1000];
        parallel_zip4(&mut a, &b, &mut c, &mut d, 16, |start, ac, bc, cc, dc| {
            for i in 0..ac.len() {
                ac[i] = bc[i] + 1.0;
                cc[i] = (start + i) as f32;
                dc[i] = 2.0 * bc[i];
            }
        });
        assert!(a.iter().enumerate().all(|(i, &v)| v == i as f32 + 1.0));
        assert!(c.iter().enumerate().all(|(i, &v)| v == i as f32));
        assert!(d.iter().enumerate().all(|(i, &v)| v == 2.0 * i as f32));
    }

    #[test]
    fn parallel_fill_writes_disjoint_chunks() {
        let mut out = vec![0usize; 4096];
        parallel_fill(&mut out, 64, |range, chunk| {
            for (i, v) in range.zip(chunk.iter_mut()) {
                *v = i * 2;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }
}
