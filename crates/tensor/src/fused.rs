//! Fused single-pass forward/backward kernels for the hot non-GEMM ops:
//! row softmax (fwd + bwd), LayerNorm over the trailing axis (fwd + bwd),
//! the tanh-approximation GELU scalars, and the AdamW parameter step.
//!
//! Every kernel here obeys the two backend invariants:
//!
//! * **Pooled, no temporaries** — outputs come from the buffer
//!   [`pool`](crate::pool) via [`Tensor::uninit`]-style construction and the
//!   kernels write each element exactly once (no intermediate tensors), so a
//!   steady-state train step allocates nothing.
//! * **Bitwise-deterministic parallelism** — work splits into disjoint
//!   contiguous row/element ranges on [`par`], and every output element is
//!   produced by the same floating-point op sequence as the serial
//!   reference, so results are identical at any thread count. Cross-row
//!   reductions (`dgamma`/`dbeta`) parallelise over *columns*: each output
//!   column keeps its serial row-ascending accumulation chain.
//!
//! The autograd crate routes its `SoftmaxLast` / `LayerNormLast` /
//! activation rules and the AdamW optimizer through these entry points; the
//! unfused reference implementations stay behind `focus_autograd`'s
//! `set_fused(false)` switch and the parity tests prove the two paths
//! bitwise-equal.

use crate::ops::{ELEM_GRAIN, EXP_GRAIN};
use crate::{par, Tensor};
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide switch between the fused/optimised kernels and the serial
/// reference implementations. Lives here (not in the autograd crate) because
/// the GEMM dispatch also consults it: the small-`n` packed NT kernel is part
/// of the fused path, and `set_enabled(false)` must reproduce the pre-fusion
/// per-step behaviour exactly for baseline benchmarking. The two paths are
/// bitwise-identical by construction; the flag trades speed only.
static FUSED: AtomicBool = AtomicBool::new(true);

/// Selects the fused kernels (`true`, default) or the serial reference
/// implementations (`false`).
pub fn set_enabled(on: bool) {
    FUSED.store(on, Ordering::Relaxed);
}

/// Whether the fused kernels are selected.
pub fn enabled() -> bool {
    FUSED.load(Ordering::Relaxed)
}

/// In-place numerically-stable softmax of one row: shift by the row maximum,
/// exponentiate, normalise. The single source of truth for row softmax —
/// `Tensor::softmax_last` and the soft-assignment routing both call this.
#[inline]
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Softmax backward in one row sweep: `dx = y ⊙ (g − ⟨y, g⟩_row)`.
///
/// `y` is the forward output. Rows are independent, so the parallel split is
/// bitwise-identical to serial.
pub fn softmax_last_bwd(y: &Tensor, g: &Tensor) -> Tensor {
    assert!(
        y.shape().same_as(g.shape()),
        "softmax_last_bwd shape mismatch: {} vs {}",
        y.shape(),
        g.shape()
    );
    let n = y.shape().last_dim();
    let mut dx = Tensor::uninit(y.dims());
    softmax_last_bwd_into(y.data(), g.data(), n, dx.data_mut());
    dx
}

/// Slice core of [`softmax_last_bwd`]: `dx` holds `rows · n` elements and is
/// fully overwritten. Shared with the compiled-plan VM so replay reproduces
/// the interpreter bit for bit.
pub(crate) fn softmax_last_bwd_into(y: &[f32], g: &[f32], n: usize, dx: &mut [f32]) {
    let grain_rows = EXP_GRAIN.div_ceil(n).max(1);
    par::parallel_rows(dx, n, grain_rows, 1, |row0, block| {
        for (r, out) in block.chunks_mut(n).enumerate() {
            let at = (row0 + r) * n;
            let yr = &y[at..at + n];
            let gr = &g[at..at + n];
            let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
            for (o, (yv, gv)) in out.iter_mut().zip(yr.iter().zip(gr)) {
                *o = yv * (gv - dot);
            }
        }
    });
}

/// Fused LayerNorm forward over the trailing axis.
///
/// Returns `(y, cache)` where `cache` is a `[rows, 2]` tensor of
/// interleaved `(mean, rstd)` per row, consumed by [`layer_norm_bwd`].
/// One pass per row: statistics then the affine normalisation, writing the
/// output directly (no cloned input, no copied `gamma`/`beta`).
pub fn layer_norm_fwd(x: &Tensor, gamma: &[f32], beta: &[f32], eps: f32) -> (Tensor, Tensor) {
    let n = x.shape().last_dim();
    assert_eq!(gamma.len(), n, "layer_norm gamma length");
    assert_eq!(beta.len(), n, "layer_norm beta length");
    let rows = x.shape().leading();
    let mut out = Tensor::uninit(x.dims());
    let mut cache = Tensor::uninit(&[rows, 2]);
    layer_norm_fwd_into(x.data(), n, gamma, beta, eps, out.data_mut(), cache.data_mut());
    (out, cache)
}

/// Slice core of [`layer_norm_fwd`]: `out` holds `rows · n` elements,
/// `cache` holds `rows · 2` interleaved `(mean, rstd)` pairs; both are fully
/// overwritten. Shared with the compiled-plan VM.
pub(crate) fn layer_norm_fwd_into(
    x: &[f32],
    n: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    out: &mut [f32],
    cache: &mut [f32],
) {
    let grain_rows = EXP_GRAIN.div_ceil(n).max(1);
    par::parallel_rows2(
        out,
        n,
        cache,
        2,
        grain_rows,
        // Block starts aligned to the 4-row interleave below, so no parallel
        // split can land a boundary mid-quad.
        4,
        |row0, block, cblock| {
            // The mean/variance reductions are serial ascending-j chains
            // (reassociation would change bits), so a single row is bound by
            // FP-add latency. Rows are independent: running four rows' chains
            // in flight overlaps that latency without reordering any row's
            // own sums — bitwise-identical to the one-row loop below, which
            // handles the remainder.
            let rows_here = block.len() / n;
            let mut r = 0;
            while r + 4 <= rows_here {
                let base = (row0 + r) * n;
                let x0 = &x[base..base + n];
                let x1 = &x[base + n..base + 2 * n];
                let x2 = &x[base + 2 * n..base + 3 * n];
                let x3 = &x[base + 3 * n..base + 4 * n];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for j in 0..n {
                    s0 += x0[j];
                    s1 += x1[j];
                    s2 += x2[j];
                    s3 += x3[j];
                }
                let m = [s0 / n as f32, s1 / n as f32, s2 / n as f32, s3 / n as f32];
                let (mut v0, mut v1, mut v2, mut v3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for j in 0..n {
                    v0 += (x0[j] - m[0]) * (x0[j] - m[0]);
                    v1 += (x1[j] - m[1]) * (x1[j] - m[1]);
                    v2 += (x2[j] - m[2]) * (x2[j] - m[2]);
                    v3 += (x3[j] - m[3]) * (x3[j] - m[3]);
                }
                let var = [v0 / n as f32, v1 / n as f32, v2 / n as f32, v3 / n as f32];
                for (q, xq) in [x0, x1, x2, x3].into_iter().enumerate() {
                    let rstd = 1.0 / (var[q] + eps).sqrt();
                    cblock[2 * (r + q)] = m[q];
                    cblock[2 * (r + q) + 1] = rstd;
                    let orow = &mut block[(r + q) * n..(r + q + 1) * n];
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o = (xq[j] - m[q]) * rstd * gamma[j] + beta[j];
                    }
                }
                r += 4;
            }
            for r in r..rows_here {
                let xr = &x[(row0 + r) * n..(row0 + r + 1) * n];
                let mean = xr.iter().sum::<f32>() / n as f32;
                let var = xr.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
                let rstd = 1.0 / (var + eps).sqrt();
                cblock[2 * r] = mean;
                cblock[2 * r + 1] = rstd;
                let orow = &mut block[r * n..(r + 1) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = (xr[j] - mean) * rstd * gamma[j] + beta[j];
                }
            }
        },
    );
}

/// Fused LayerNorm backward.
///
/// Returns `(dx, dgamma, dbeta)`. `dx` rows are independent and parallelise
/// bitwise-safely; `dgamma`/`dbeta` are cross-row sums, parallelised over
/// *columns* so each output element keeps the exact serial row-ascending
/// accumulation chain (thread-count invariant).
pub fn layer_norm_bwd(
    x: &Tensor,
    gamma: &[f32],
    cache: &Tensor,
    g: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let n = x.shape().last_dim();
    let rows = x.shape().leading();
    assert_eq!(cache.numel(), 2 * rows, "layer_norm cache holds (mean, rstd) per row");
    let mut dx = Tensor::uninit(x.dims());
    let mut dgamma = Tensor::uninit(&[n]);
    let mut dbeta = Tensor::uninit(&[n]);
    layer_norm_bwd_into(
        x.data(),
        n,
        gamma,
        cache.data(),
        g.data(),
        dx.data_mut(),
        dgamma.data_mut(),
        dbeta.data_mut(),
    );
    (dx, dgamma, dbeta)
}

/// Slice core of [`layer_norm_bwd`]: `dx` holds `rows · n` elements,
/// `dgamma`/`dbeta` hold `n` each; all three are fully overwritten. Shared
/// with the compiled-plan VM.
#[allow(clippy::too_many_arguments)]
pub(crate) fn layer_norm_bwd_into(
    x: &[f32],
    n: usize,
    gamma: &[f32],
    cd: &[f32],
    g: &[f32],
    dx: &mut [f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) {
    let rows = dx.len() / n;
    let grain_rows = EXP_GRAIN.div_ceil(n).max(1);
    par::parallel_rows(dx, n, grain_rows, 1, |row0, block| {
        let inv_n = 1.0 / n as f32;
        // Like the forward: the two per-row reduction chains are serial by
        // contract, so four independent rows run in flight to hide FP-add
        // latency. Each row's own chain order is untouched — bitwise-equal
        // to the one-row remainder loop.
        let rows_here = block.len() / n;
        let mut r = 0;
        while r + 4 <= rows_here {
            let at = (row0 + r) * n;
            let x0 = &x[at..at + n];
            let x1 = &x[at + n..at + 2 * n];
            let x2 = &x[at + 2 * n..at + 3 * n];
            let x3 = &x[at + 3 * n..at + 4 * n];
            let g0 = &g[at..at + n];
            let g1 = &g[at + n..at + 2 * n];
            let g2 = &g[at + 2 * n..at + 3 * n];
            let g3 = &g[at + 3 * n..at + 4 * n];
            let mu = [
                cd[2 * (row0 + r)],
                cd[2 * (row0 + r + 1)],
                cd[2 * (row0 + r + 2)],
                cd[2 * (row0 + r + 3)],
            ];
            let rstd = [
                cd[2 * (row0 + r) + 1],
                cd[2 * (row0 + r + 1) + 1],
                cd[2 * (row0 + r + 2) + 1],
                cd[2 * (row0 + r + 3) + 1],
            ];
            let (mut sd0, mut sd1, mut sd2, mut sd3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            let (mut sx0, mut sx1, mut sx2, mut sx3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for j in 0..n {
                let gj = gamma[j];
                let dy0 = g0[j] * gj;
                let dy1 = g1[j] * gj;
                let dy2 = g2[j] * gj;
                let dy3 = g3[j] * gj;
                sd0 += dy0;
                sd1 += dy1;
                sd2 += dy2;
                sd3 += dy3;
                sx0 += dy0 * ((x0[j] - mu[0]) * rstd[0]);
                sx1 += dy1 * ((x1[j] - mu[1]) * rstd[1]);
                sx2 += dy2 * ((x2[j] - mu[2]) * rstd[2]);
                sx3 += dy3 * ((x3[j] - mu[3]) * rstd[3]);
            }
            let sum_dy = [sd0, sd1, sd2, sd3];
            let sum_dy_xhat = [sx0, sx1, sx2, sx3];
            for (q, (xq, gq)) in [(x0, g0), (x1, g1), (x2, g2), (x3, g3)].into_iter().enumerate()
            {
                let out = &mut block[(r + q) * n..(r + q + 1) * n];
                for (j, o) in out.iter_mut().enumerate() {
                    let xhat = (xq[j] - mu[q]) * rstd[q];
                    let dy = gq[j] * gamma[j];
                    *o = rstd[q] * (dy - sum_dy[q] * inv_n - xhat * sum_dy_xhat[q] * inv_n);
                }
            }
            r += 4;
        }
        for r in r..rows_here {
            let at = (row0 + r) * n;
            let xr = &x[at..at + n];
            let gr = &g[at..at + n];
            let (mu, rstd) = (cd[2 * (row0 + r)], cd[2 * (row0 + r) + 1]);
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for j in 0..n {
                let xhat = (xr[j] - mu) * rstd;
                let dy = gr[j] * gamma[j];
                sum_dy += dy;
                sum_dy_xhat += dy * xhat;
            }
            let out = &mut block[r * n..(r + 1) * n];
            for (j, o) in out.iter_mut().enumerate() {
                let xhat = (xr[j] - mu) * rstd;
                let dy = gr[j] * gamma[j];
                *o = rstd * (dy - sum_dy * inv_n - xhat * sum_dy_xhat * inv_n);
            }
        }
    });

    let col_grain = ELEM_GRAIN.div_ceil(rows.max(1)).max(1);
    par::parallel_rows2(
        dgamma,
        1,
        dbeta,
        1,
        col_grain,
        // Column-parallel: single-element "rows", no tiling to respect.
        1,
        |col0, gchunk, bchunk| {
            // Row-major sweep with the output chunks as accumulators: each
            // column still sums rows in ascending order (bitwise-equal to the
            // serial reference), but reads walk `g`/`x` contiguously instead
            // of striding a full row per element.
            gchunk.fill(0.0);
            bchunk.fill(0.0);
            let w = gchunk.len();
            for r in 0..rows {
                let base = r * n + col0;
                let (mu, rstd) = (cd[2 * r], cd[2 * r + 1]);
                let gr = &g[base..base + w];
                let xr = &x[base..base + w];
                for ((dg, db), (&gv, &xv)) in
                    gchunk.iter_mut().zip(bchunk.iter_mut()).zip(gr.iter().zip(xr))
                {
                    let xhat = (xv - mu) * rstd;
                    *dg += gv * xhat;
                    *db += gv;
                }
            }
        },
    );
}

/// GELU forward, tanh approximation (shared scalar).
#[inline]
pub fn gelu_fwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu_fwd`] (shared scalar).
#[inline]
pub fn gelu_bwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let u = C * (x + 0.044715 * x3);
    let t = u.tanh();
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Fused AdamW step over one parameter tensor: decoupled decay, moment
/// updates, bias correction and the write-back in a single loop per element
/// — no `dir` temporary. Setting `weight_decay = 0` yields plain Adam.
///
/// Per-element arithmetic matches the unfused reference sequence exactly
/// (decay, `m`-update, `v`-update, direction, axpy), so results are bitwise
/// identical to it and thread-count invariant.
#[allow(clippy::too_many_arguments)]
pub fn adamw_step(
    param: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
) {
    let bc1 = 1.0 - beta1.powi(t as i32);
    let bc2 = 1.0 - beta2.powi(t as i32);
    let shrink = 1.0 - lr * weight_decay;
    let decay = weight_decay > 0.0;
    par::parallel_zip4(param, grad, m, v, ELEM_GRAIN, |_, pc, gc, mc, vc| {
        for (((p, &g), m), v) in pc.iter_mut().zip(gc).zip(mc.iter_mut()).zip(vc.iter_mut()) {
            if decay {
                *p *= shrink;
            }
            *m = beta1 * *m + (1.0 - beta1) * g;
            *v = beta2 * *v + (1.0 - beta2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            *p += -lr * (mhat / (vhat.sqrt() + eps));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_row_matches_tensor_softmax() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = t.softmax_last();
        let mut row = [1.0f32, 2.0, 3.0];
        softmax_row(&mut row);
        assert_eq!(&row, s.row(0));
    }

    #[test]
    fn softmax_bwd_zero_gradient_for_uniform_g() {
        // ⟨y, 1⟩ = 1 ⇒ dx = y ⊙ (1 − 1) = 0.
        let y = Tensor::from_vec(vec![0.2, 0.3, 0.5], &[1, 3]).softmax_last();
        let g = Tensor::ones(&[1, 3]);
        let dx = softmax_last_bwd(&y, &g);
        assert!(dx.data().iter().all(|v| v.abs() < 1e-7));
    }

    #[test]
    fn layer_norm_fwd_normalises_rows() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[2, 4]);
        let (y, cache) = layer_norm_fwd(&x, &[1.0; 4], &[0.0; 4], 1e-5);
        assert_eq!(cache.dims(), &[2, 2]);
        for i in 0..2 {
            let row = y.row(i);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn adamw_step_matches_unfused_sequence() {
        let lr = 0.01;
        let (b1, b2, eps, wd) = (0.9f32, 0.999f32, 1e-8f32, 0.1f32);
        let grad = vec![0.5f32, -1.5, 2.0, 0.0];
        let mut p1 = vec![1.0f32, -2.0, 3.0, 0.5];
        let mut m1 = vec![0.0f32; 4];
        let mut v1 = vec![0.0f32; 4];
        // Unfused reference: separate decay / m / v / dir / axpy loops.
        let mut p2 = p1.clone();
        let mut m2 = m1.clone();
        let mut v2 = v1.clone();
        for t in 1..=3u64 {
            adamw_step(&mut p1, &grad, &mut m1, &mut v1, lr, b1, b2, eps, wd, t);
            let shrink = 1.0 - lr * wd;
            for p in p2.iter_mut() {
                *p *= shrink;
            }
            for (m, &g) in m2.iter_mut().zip(&grad) {
                *m = b1 * *m + (1.0 - b1) * g;
            }
            for (v, &g) in v2.iter_mut().zip(&grad) {
                *v = b2 * *v + (1.0 - b2) * g * g;
            }
            let bc1 = 1.0 - b1.powi(t as i32);
            let bc2 = 1.0 - b2.powi(t as i32);
            let dir: Vec<f32> = m2
                .iter()
                .zip(&v2)
                .map(|(&m, &v)| (m / bc1) / ((v / bc2).sqrt() + eps))
                .collect();
            for (p, &d) in p2.iter_mut().zip(&dir) {
                *p += -lr * d;
            }
            assert_eq!(p1, p2, "fused AdamW diverged from reference at t={t}");
            assert_eq!(m1, m2);
            assert_eq!(v1, v2);
        }
    }
}
