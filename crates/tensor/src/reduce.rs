//! Reductions: sums, means, variances, min/max, along the whole tensor or the
//! trailing axis.
//!
//! Row-wise reductions ([`Tensor::sum_last`], [`Tensor::row_mean_std`])
//! parallelise over rows — each output is a function of one input row, so the
//! split is bitwise-identical to serial. Whole-tensor reductions
//! (`sum_all`, `var_all`) stay serial on purpose: splitting a single
//! accumulation chain would change summation order and therefore bits.

use crate::{par, Tensor};

/// Minimum input elements per thread for row-wise reductions.
const ROW_GRAIN: usize = 16 * 1024;

impl Tensor {
    /// Sum of all elements (accumulated in `f64` for stability).
    pub fn sum_all(&self) -> f32 {
        self.data().iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    ///
    /// # Panics
    /// If the tensor is empty.
    pub fn mean_all(&self) -> f32 {
        assert!(self.numel() > 0, "mean of an empty tensor");
        self.sum_all() / self.numel() as f32
    }

    /// Population variance of all elements.
    pub fn var_all(&self) -> f32 {
        assert!(self.numel() > 0, "variance of an empty tensor");
        let mean = self.mean_all() as f64;
        let ss: f64 = self
            .data()
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum();
        (ss / self.numel() as f64) as f32
    }

    /// Maximum element.
    pub fn max_all(&self) -> f32 {
        self.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min_all(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sum over the trailing axis: `[.., n] → [..]` (shape loses the last dim).
    pub fn sum_last(&self) -> Tensor {
        let n = self.shape().last_dim();
        assert!(n > 0, "sum over an empty trailing axis");
        let mut out = Tensor::uninit(&self.dims()[..self.rank() - 1]);
        let grain_rows = ROW_GRAIN.div_ceil(n).max(1);
        par::parallel_fill(out.data_mut(), grain_rows, |range, chunk| {
            for (i, o) in range.zip(chunk.iter_mut()) {
                *o = self.data()[i * n..(i + 1) * n].iter().sum();
            }
        });
        out
    }

    /// Mean over the trailing axis.
    pub fn mean_last(&self) -> Tensor {
        let n = self.shape().last_dim();
        self.sum_last().scale(1.0 / n as f32)
    }

    /// Per-row `(mean, population std)` of a tensor viewed as `[leading, last]`.
    ///
    /// Rows with zero variance report `std = 0`.
    pub fn row_mean_std(&self) -> Vec<(f32, f32)> {
        let n = self.shape().last_dim();
        let rows = self.shape().leading();
        let mut out = vec![(0.0f32, 0.0f32); rows];
        let grain_rows = ROW_GRAIN.div_ceil(n).max(1);
        par::parallel_fill(&mut out, grain_rows, |range, chunk| {
            for (i, o) in range.zip(chunk.iter_mut()) {
                let row = &self.data()[i * n..(i + 1) * n];
                let mean = row.iter().sum::<f32>() / n as f32;
                let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
                *o = (mean, var.max(0.0).sqrt());
            }
        });
        out
    }

    /// Sum over the first axis: `[b, ..] → [..]`.
    pub fn sum_axis0(&self) -> Tensor {
        assert!(self.rank() >= 1, "sum_axis0 requires rank >= 1");
        let b = self.dims()[0];
        let inner: usize = self.dims()[1..].iter().product();
        let mut out = Tensor::zeros(&self.dims()[1..]);
        for bi in 0..b {
            for (o, &v) in out
                .data_mut()
                .iter_mut()
                .zip(&self.data()[bi * inner..(bi + 1) * inner])
            {
                *o += v;
            }
        }
        out
    }

    /// Index of the maximum element of a rank-1 tensor.
    pub fn argmax(&self) -> usize {
        assert!(self.numel() > 0, "argmax of an empty tensor");
        let mut best = 0;
        let mut best_v = self.data()[0];
        for (i, &v) in self.data().iter().enumerate().skip(1) {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn sum_mean_var() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.sum_all(), 10.0);
        assert_eq!(t.mean_all(), 2.5);
        assert_eq!(t.var_all(), 1.25);
        assert_eq!(t.max_all(), 4.0);
        assert_eq!(t.min_all(), 1.0);
    }

    #[test]
    fn sum_last_drops_axis() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let s = t.sum_last();
        assert_eq!(s.dims(), &[2]);
        assert_eq!(s.data(), &[3.0, 12.0]);
        let m = t.mean_last();
        assert_eq!(m.data(), &[1.0, 4.0]);
    }

    #[test]
    fn sum_axis0_folds_batches() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]);
        let s = t.sum_axis0();
        assert_eq!(s.dims(), &[4]);
        assert_eq!(s.data(), &[12.0, 15.0, 18.0, 21.0]);
    }

    #[test]
    fn row_mean_std_handles_constant_rows() {
        let t = Tensor::from_vec(vec![2.0, 2.0, 2.0, 1.0, 2.0, 3.0], &[2, 3]);
        let ms = t.row_mean_std();
        assert_eq!(ms[0], (2.0, 0.0));
        assert!((ms[1].0 - 2.0).abs() < 1e-6);
        assert!((ms[1].1 - (2.0f32 / 3.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_finds_peak() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.3], &[3]);
        assert_eq!(t.argmax(), 1);
    }
}
