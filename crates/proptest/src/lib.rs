//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no network access, so this crate reimplements
//! exactly the surface the workspace's property tests use: the [`proptest!`]
//! macro, [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`], range and
//! `prop::collection::vec` strategies, [`strategy::Strategy::prop_map`], and
//! [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from upstream, deliberately accepted for an offline shim:
//! failing cases are **not shrunk** (the panic message reports the case seed
//! so a failure replays deterministically), and there is no persistence file.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn new_value(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(f32, f64, usize, u64, u32, i64, i32);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Uniform choice between boxed strategies of one value type; built by
    /// [`crate::prop_oneof!`]. Unlike upstream there are no weights — every
    /// workspace use picks uniformly.
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// A union over `first` plus `rest`. The first strategy's concrete
        /// type pins the union's value type, so the macro's boxed tail
        /// coerces without annotations.
        pub fn of<S>(first: S, rest: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V>
        where
            S: Strategy<Value = V> + 'static,
        {
            let mut options: Vec<Box<dyn Strategy<Value = V>>> = vec![Box::new(first)];
            options.extend(rest);
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, rng: &mut StdRng) -> V {
            use rand::Rng;
            let pick = rng.gen_range(0..self.options.len());
            self.options[pick].new_value(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Number-of-elements specification: a fixed size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case-iteration driver behind [`crate::proptest!`].

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// A failed property within a test case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives one property through `config.cases` deterministic cases.
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
    }

    impl TestRunner {
        /// A runner for the named property.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            TestRunner { config, name }
        }

        /// Runs the property; panics with the case seed on the first failure.
        pub fn run<F>(&mut self, mut property: F)
        where
            F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let seed = case_seed(self.name, case);
                let mut rng = StdRng::seed_from_u64(seed);
                if let Err(e) = property(&mut rng) {
                    // focus-lint: allow(panic-hygiene) -- panicking with the case seed IS this shim's failure-reporting contract
                    panic!(
                        "proptest '{}': case {}/{} (seed {:#x}) failed: {}",
                        self.name,
                        case + 1,
                        self.config.cases,
                        seed,
                        e
                    );
                }
            }
        }
    }

    /// FNV-1a over the property name, mixed with the case index — stable
    /// across runs so failures replay.
    fn case_seed(name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// Alias module so `prop::collection::vec(..)` works as in upstream.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! Everything a property-test file needs, as in upstream.

    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Picks uniformly among the listed strategies (all yielding the same value
/// type) for each generated case. Upstream's weighted form is not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {
        $crate::strategy::Union::of($first, vec![$(Box::new($rest) as _),*])
    };
}

/// Declares property tests: an optional `#![proptest_config(..)]` followed by
/// `fn name(arg in strategy, ..) { body }` items, each becoming a `#[test]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                runner.run(|__proptest_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strat), __proptest_rng);
                    )*
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case (with an optional formatted message) if `cond` is
/// false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f32..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_strategy_has_requested_len(v in prop::collection::vec(0.0f32..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn prop_map_applies(s in (1usize..5).prop_map(|n| n * 2)) {
            prop_assert!(s % 2 == 0 && (2..10).contains(&s));
            prop_assert_ne!(s, 1);
        }

        #[test]
        fn tuple_strategies_draw_componentwise(pair in (0usize..4, 10usize..14)) {
            prop_assert!(pair.0 < 4 && (10..14).contains(&pair.1));
        }

        #[test]
        fn oneof_picks_only_listed_branches(x in prop_oneof![0usize..3, 10usize..13]) {
            prop_assert!(x < 3 || (10..13).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn oneof_reaches_every_branch() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let s = prop_oneof![crate::strategy::Just(1usize), crate::strategy::Just(2usize)];
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let draws: Vec<usize> = (0..64).map(|_| s.new_value(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2), "both branches must be reachable");
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics_with_seed() {
        let mut runner = crate::test_runner::TestRunner::new(
            crate::test_runner::ProptestConfig::with_cases(4),
            "always_fails",
        );
        runner.run(|_rng| Err(crate::test_runner::TestCaseError::fail("boom")));
    }
}
