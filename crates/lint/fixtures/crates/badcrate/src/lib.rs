//! A crate root with no `#![forbid(unsafe_code)]` — the `unsafe-forbid`
//! rule must flag line 1.

pub fn noop() {}
