// Seeded violations for the `allow-marker` rule: suppressions must be
// well-formed and justified.

pub fn a(x: f32) -> bool {
    // focus-lint: allow(float-hygiene)
    x == 0.0 // marker above has no `-- <reason>`: marker flagged, finding kept
}

pub fn b(x: f32) -> bool {
    // focus-lint: allow(flaot-hygiene) -- typo in the rule name
    x != 0.0
}

pub fn c() {
    // focus-lint: allowing(panic-hygiene) -- not even the right keyword
}
