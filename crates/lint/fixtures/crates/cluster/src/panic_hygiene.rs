// Seeded violations for the `panic-hygiene` rule.

pub fn load(path: &str) -> String {
    std::fs::read_to_string(path).unwrap() // bare unwrap
}

pub fn centroid(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        panic!("empty bucket"); // panic! in library code
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

pub fn merge() {
    todo!() // todo!
}

pub fn split() {
    unimplemented!() // unimplemented!
}

pub fn first(xs: &[f32]) -> f32 {
    *xs.first().expect("") // empty expect message
}

pub fn fine(xs: &[f32]) -> f32 {
    // negative case: a justified expect must NOT be flagged
    *xs.first().expect("caller guarantees at least one segment")
}
