// Mirror of the real tensor crate root: `deny(unsafe_code)` instead of
// `forbid` is accepted for this crate (and only this crate), so the worker
// pool in par.rs can opt in item by item.

#![deny(unsafe_code)]

pub fn dims() -> usize {
    3
}
