// Seeded violations: `unsafe` tokens in a tensor module that is not the
// audited `par.rs` island must be flagged even though the crate root's
// `deny(unsafe_code)` would accept an item-level allow.

pub fn peek(v: &[u32]) -> u32 {
    unsafe { *v.as_ptr() }
}

pub unsafe fn raw_len(v: &[u32]) -> usize {
    v.len()
}
