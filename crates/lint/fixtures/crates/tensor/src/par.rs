// Mirror of the real `crates/tensor/src/par.rs` exemption: this file (and
// only this file) may spawn threads, so the lint must stay silent here.

pub fn parallel_for(n: usize) {
    std::thread::scope(|s| {
        for _ in 0..n {
            s.spawn(|| {});
        }
    });
}

pub fn detached() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
}
