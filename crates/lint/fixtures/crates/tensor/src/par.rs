// Mirror of the real `crates/tensor/src/par.rs` exemption: this file (and
// only this file) may spawn threads and carry `unsafe` pool internals, so
// the lint must stay silent here.

pub fn parallel_for(n: usize) {
    std::thread::scope(|s| {
        for _ in 0..n {
            s.spawn(|| {});
        }
    });
}

pub fn detached() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
}

#[allow(unsafe_code)]
pub fn island(v: &[u32]) -> u32 {
    // SAFETY: fixture mirror of the audited pool internals.
    unsafe { *v.as_ptr() }
}
