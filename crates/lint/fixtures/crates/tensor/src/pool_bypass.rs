//! Seeded `pool-bypass` violations (and negatives that must stay silent).

fn hot_path(n: usize) -> Vec<f32> {
    let scratch = vec![0.0f32; n]; // violation: heap float buffer
    let _neg = vec![-1.0; n]; // violation: negative repeat element
    let mut out = Vec::<f32>::with_capacity(n); // violation: turbofish capacity
    out.extend_from_slice(&scratch);
    out
}

fn negatives(n: usize) -> usize {
    let ints = vec![0u32; n]; // int buffers are not pooled
    let list = vec![1.0, 2.0, 3.0]; // list form is setup-time data, not a buffer
    let generic = Vec::with_capacity(n); // untyped capacity: not provably f32
    let _: Vec<f32> = generic;
    // focus-lint: allow(pool-bypass) -- cold reference path kept off the pool on purpose
    let marked = vec![0.0f32; n];
    ints.len() + list.len() + marked.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = vec![0.0f32; 8];
    }
}
