//! Stand-in for `focus_tensor::pool` — the one module allowed to allocate
//! float buffers from the heap, so this file must stay finding-free.

pub fn take(n: usize) -> Vec<f32> {
    vec![0.0f32; n]
}

pub fn take_with_capacity(n: usize) -> Vec<f32> {
    Vec::<f32>::with_capacity(n)
}
