// Seeded violations for the `determinism` rule: every construct below is
// banned in the numeric crates (tensor/cluster/nn/core/autograd).

use std::collections::HashMap; // line 5: HashMap
use std::collections::HashSet; // line 6: HashSet
use std::time::{Instant, SystemTime};

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new(); // two more HashSet hits
    for &x in xs {
        seen.insert(x);
    }
    seen.len()
}

pub fn timed() -> f64 {
    let t0 = Instant::now(); // clock read
    let _wall = SystemTime::now(); // clock read
    t0.elapsed().as_secs_f64()
}

pub fn fan_out() {
    std::thread::spawn(|| {}); // spawning outside focus_tensor::par
    std::thread::scope(|_s| {}); // scoped spawning outside focus_tensor::par
}

fn keyed() -> HashMap<u32, f32> {
    HashMap::new()
}
