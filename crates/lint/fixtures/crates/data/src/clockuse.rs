// POSITIVE fixture: clock reads are banned workspace-wide, so they must
// fire even in a crate that is NOT in DETERMINISM_CRATES (data is not).
use std::time::Instant;

pub fn stamp() -> u64 {
    let t0 = Instant::now(); // clock read
    t0.elapsed().as_nanos() as u64
}

pub fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now() // clock read
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _t = std::time::Instant::now();
    }
}
