//! Stale-allow fixture: a well-formed marker whose excused violation no
//! longer exists (line 6), next to one that still earns its keep (line 11).

pub fn refactored(a: f32) -> f32 {
    // the exact comparison this marker excused was refactored away
    // focus-lint: allow(float-hygiene) -- one-hot rows are exactly 0.0 by construction
    a + 1.0
}

pub fn still_guarded(a: f32) -> bool {
    a == 0.0 // focus-lint: allow(float-hygiene) -- one-hot rows are exactly 0.0 by construction
}
