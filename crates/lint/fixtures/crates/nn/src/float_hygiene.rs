// Seeded violations for the `float-hygiene` rule.

pub fn gate(a: f32, b: f32) -> bool {
    a != 0.0 // literal on the right
}

pub fn is_unit(w: f32) -> bool {
    1.0 == w // literal on the left
}

pub fn saturated(x: f32) -> bool {
    x == -1.0 // unary minus before the literal
}

pub fn any_zero(xs: &[f32]) -> bool {
    xs.contains(&0.0) // exact per-element equality in disguise
}

pub fn marked(a: f32) -> bool {
    // focus-lint: allow(float-hygiene) -- exact zero means "segment absent", never computed
    a == 0.0
}

pub fn integers_are_fine(n: usize) -> bool {
    n == 0 // negative case: integer comparison must NOT be flagged
}
