// NEGATIVE fixture: the trace crate's clock module is the workspace's one
// audited clock read — `Instant::now` here must produce zero findings.
use std::time::Instant;

pub fn now_ns(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

pub fn fresh_epoch() -> Instant {
    Instant::now()
}
