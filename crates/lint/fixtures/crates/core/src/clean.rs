// Negative-space fixture: every "violation" below is inside a string, a
// comment, a test region, or behind a justified allow marker. The lint must
// report NOTHING for this file.

// a line comment mentioning panic!("boom") and .unwrap() is not code
/* a block comment with HashMap::new() and Instant::now()
   /* nested: thread::spawn(|| x != 0.0) */
   still not code */

pub fn strings_are_opaque() -> (&'static str, &'static str, char) {
    let plain = "call .unwrap() then panic!(\"no\") on a HashMap where x == 0.0";
    let raw = r#"SystemTime::now() and thread::spawn inside a raw "string""#;
    let lifetime_bait = '\''; // a char literal, not the start of a lifetime
    (plain, raw, lifetime_bait)
}

pub fn justified(elapsed: f32) -> bool {
    // focus-lint: allow(float-hygiene) -- sentinel written verbatim upstream, never computed
    elapsed == -1.0
}

// trailing-style marker on the same line as the finding
pub fn inline_marked(x: f32) -> bool {
    x != 0.0 // focus-lint: allow(float-hygiene) -- exact bit test for the padding sentinel
}

// `.backward(` outside the train module is not graph-interpret's business:
// the rule polices crates/core/src/forecaster.rs only
pub fn backward_elsewhere(g: &mut Graph, loss: Var) {
    g.backward(loss);
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let mut m: HashMap<u32, f32> = HashMap::new();
        m.insert(1, 0.5);
        assert!(m.get(&1).unwrap() != &0.0);
        let t = std::time::Instant::now();
        std::thread::spawn(move || t.elapsed()).join().unwrap();
    }
}

#[test]
fn bare_test_fn_is_exempt() {
    let v: Vec<f32> = vec![1.0];
    assert!(v.first().unwrap() == &1.0);
    panic!("tests may panic");
}

#[cfg(all(test, feature = "slow"))]
mod gated_tests {
    pub fn helper() -> f32 {
        let x: Option<f32> = Some(0.0);
        x.unwrap()
    }
}
