//! Seeded `graph-interpret` violations (and negatives that must stay silent).

fn steady_step(g: &mut Graph, loss: Var) {
    g.backward(loss); // violation: unmarked interpretation in the train loop
    let tape = g.tape();
    tape.backward(loss); // violation: any receiver counts, not just `g`
}

fn negatives(g: &mut Graph, loss: Var, pcache: &mut PlanCache) {
    backward(loss); // free function, not a graph method call
    let _plan = g.backward_plan(); // different method name
    // focus-lint: allow(graph-interpret) -- warmup records the tape for the plan compiler
    g.backward(loss);
    let _ = pcache;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let mut g = Graph::new();
        let loss = g.zero();
        g.backward(loss);
    }
}
