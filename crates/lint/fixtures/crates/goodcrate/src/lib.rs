//! A fully clean crate root: the attribute is present and nothing else in
//! the file violates any rule, so the lint must exit zero here.

#![forbid(unsafe_code)]

pub fn noop() {}
