//! Opcode-coverage fixture: a toy instruction set whose serializer names
//! every variant, while the sibling `vm.rs` fixture forgot `ZipSub` — the
//! cross-file rule must flag the gap at the variant's declaration line.

pub enum OpCode {
    ZipAdd,
    ZipSub,
}

impl OpCode {
    pub fn name(self) -> &'static str {
        match self {
            OpCode::ZipAdd => "zip_add",
            OpCode::ZipSub => "zip_sub",
        }
    }
}
