//! VM-dispatch fixture with a deliberately incomplete match: `ZipSub` hides
//! behind the catch-all arm, exactly the silent runtime fallback the
//! `opcode-coverage` rule exists to surface.

use super::plan::OpCode;

pub fn dispatch(op: OpCode) -> &'static str {
    match op {
        OpCode::ZipAdd => "zip_add",
        _ => "fallback",
    }
}
