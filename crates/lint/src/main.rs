//! `focus-lint` CLI: lints the paths given as arguments (default: the
//! current directory), prints `file:line: rule: message` diagnostics plus a
//! rule/finding summary, and exits 1 if anything was found.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if paths.is_empty() {
        paths.push(PathBuf::from("."));
    }
    let (files, findings) = focus_lint::engine::run(&paths);
    for f in &findings {
        println!("{f}");
    }
    // counts in the summary line so verify.sh logs make regressions visible
    println!(
        "focus-lint: {} rules, {} findings across {} files",
        focus_lint::rules::RULES.len(),
        findings.len(),
        files
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
