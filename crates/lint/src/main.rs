//! `focus-lint` CLI: lints the paths given as arguments (default: the
//! current directory), prints `file:line: rule: message` diagnostics plus a
//! rule/finding summary, and exits 1 if anything non-advisory was found
//! (advisory rules — see [`focus_lint::rules::ADVISORY`] — print but never
//! fail the run).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if paths.is_empty() {
        paths.push(PathBuf::from("."));
    }
    let (files, findings) = focus_lint::engine::run(&paths);
    let advisory = |rule: &str| focus_lint::rules::ADVISORY.contains(&rule);
    let hard = findings.iter().filter(|f| !advisory(f.rule)).count();
    for f in &findings {
        if advisory(f.rule) {
            println!("{f} (advisory)");
        } else {
            println!("{f}");
        }
    }
    // counts in the summary line so verify.sh logs make regressions visible
    println!(
        "focus-lint: {} rules, {} findings ({} advisory) across {} files",
        focus_lint::rules::RULES.len(),
        findings.len(),
        findings.len() - hard,
        files
    );
    if hard == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
