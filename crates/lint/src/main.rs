//! `focus-lint` CLI: lints the paths given as arguments (default: the
//! current directory) with the two-pass engine, prints
//! `file:line: rule: message` diagnostics plus a rule/finding summary (or a
//! `focus-lint-report v1` JSON document under `--json`), and exits with
//!
//! * `0` — no enforced findings (advisory-only runs are clean),
//! * `1` — at least one enforced finding,
//! * `2` — internal error: unknown flag or an unreadable file.
//!
//! Advisory rules — see [`focus_lint::rules::ADVISORY`] — print (and appear
//! in the JSON with `"advisory": true`) but never fail the run.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

/// Minimal JSON string escaping (the report has no nested structure beyond
/// what the CLI prints itself, so a full serializer would be dead weight
/// under the offline-shim policy).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            a if a.starts_with("--") => {
                eprintln!("focus-lint: unknown flag `{a}` (supported: --json)");
                return ExitCode::from(2);
            }
            a => paths.push(PathBuf::from(a)),
        }
    }
    if paths.is_empty() {
        paths.push(PathBuf::from("."));
    }
    let r = focus_lint::engine::run_workspace(&paths);
    let advisory = |rule: &str| focus_lint::rules::ADVISORY.contains(&rule);
    let enforced = r.findings.iter().filter(|f| !advisory(f.rule)).count();

    if json {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"schema\":\"focus-lint-report v1\",\"files\":{},\"enforced\":{},\"advisory\":{},\"io_errors\":{},\"findings\":[",
            r.files,
            enforced,
            r.findings.len() - enforced,
            r.io_errors
        );
        for (i, f) in r.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"advisory\":{},\"message\":\"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.rule,
                advisory(f.rule),
                json_escape(&f.message)
            );
        }
        s.push_str("]}");
        println!("{s}");
    } else {
        for f in &r.findings {
            if advisory(f.rule) {
                println!("{f} (advisory)");
            } else {
                println!("{f}");
            }
        }
        // counts in the summary line so verify.sh logs make regressions visible
        println!(
            "focus-lint: {} rules, {} findings ({} advisory) across {} files",
            focus_lint::rules::RULES.len(),
            r.findings.len(),
            r.findings.len() - enforced,
            r.files
        );
    }
    if r.io_errors > 0 {
        ExitCode::from(2)
    } else if enforced == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
