//! # focus-lint
//!
//! From-scratch static analysis for the FOCUS workspace — no external
//! dependencies, matching the offline-shim policy (DESIGN.md §7). A
//! hand-rolled Rust lexer ([`lexer`]) feeds a token-stream rule engine
//! ([`engine`], [`rules`]) that machine-checks the invariants the
//! bitwise-determinism promise of the parallel backend rests on:
//!
//! * **determinism** — no `HashMap`/`HashSet`, no clock reads, and no thread
//!   spawning outside `focus_tensor::par` in the numeric crates
//!   (`tensor`, `cluster`, `nn`, `core`, `autograd`);
//! * **panic-hygiene** — no bare `.unwrap()` / `panic!` in non-test library
//!   code; failures carry an invariant message or propagate a `Result`;
//! * **float-hygiene** — no `==`/`!=` against float literals without an
//!   allow-marked reason (the one-hot sparsity skips are the canonical
//!   intentional site);
//! * **unsafe-forbid** — `#![forbid(unsafe_code)]` in every crate root;
//! * **allow-marker** — suppressions are well-formed:
//!   `// focus-lint: allow(<rule>) -- <reason>`, reason mandatory;
//! * **stale-allow** — an allow marker that no longer suppresses any finding
//!   is itself a finding: a stale license is cover for the next regression;
//! * **opcode-coverage** — cross-file: every `Op`/`OpCode` variant must be
//!   referenced in the backward emitter, the VM dispatch, the plan verifier,
//!   the text serializer and the plan-parity test corpus, so a missing match
//!   arm is flagged before it becomes a runtime fallback;
//! * **pool-bypass** — float buffers in `tensor`/`autograd` library code
//!   come from `focus_tensor::pool`, not `vec![0.0; n]` /
//!   `Vec::<f32>::with_capacity`; enforced now that every deliberate heap
//!   allocation carries an allow marker;
//! * **graph-interpret** *(advisory)* — `.backward(` interpretation inside
//!   the steady-state train loop is warmup/fallback only.
//!
//! The engine runs in two passes ([`engine::scan_source`] then
//! [`engine::finish`]): pass 1 lints each file and extracts a workspace
//! symbol index (enum declarations, `Type::Variant` references); pass 2 runs
//! the cross-file rules over that index and audits every allow marker for
//! staleness.
//!
//! Run it over the workspace with
//! `cargo run -p focus-lint --release -- crates/ src/`; it prints
//! `file:line: rule: message` diagnostics (or a `focus-lint-report v1` JSON
//! document under `--json`) and exits 0 when clean, 1 on enforced findings,
//! 2 on internal errors (unknown flag, unreadable file).
//! `scripts/verify.sh` runs exactly that, so tier-1 verification fails on
//! regressions. Code inside strings, comments, `#[cfg(test)]` modules,
//! `#[test]` functions, and `tests/`/`benches/`/`examples/` trees is exempt
//! from the hygiene rules.

#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod rules;
