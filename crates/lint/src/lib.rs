//! # focus-lint
//!
//! From-scratch static analysis for the FOCUS workspace — no external
//! dependencies, matching the offline-shim policy (DESIGN.md §7). A
//! hand-rolled Rust lexer ([`lexer`]) feeds a token-stream rule engine
//! ([`engine`], [`rules`]) that machine-checks the invariants the
//! bitwise-determinism promise of the parallel backend rests on:
//!
//! * **determinism** — no `HashMap`/`HashSet`, no clock reads, and no thread
//!   spawning outside `focus_tensor::par` in the numeric crates
//!   (`tensor`, `cluster`, `nn`, `core`, `autograd`);
//! * **panic-hygiene** — no bare `.unwrap()` / `panic!` in non-test library
//!   code; failures carry an invariant message or propagate a `Result`;
//! * **float-hygiene** — no `==`/`!=` against float literals without an
//!   allow-marked reason (the one-hot sparsity skips are the canonical
//!   intentional site);
//! * **unsafe-forbid** — `#![forbid(unsafe_code)]` in every crate root;
//! * **allow-marker** — suppressions are well-formed:
//!   `// focus-lint: allow(<rule>) -- <reason>`, reason mandatory;
//! * **pool-bypass** *(advisory)* — float buffers in `tensor`/`autograd`
//!   library code come from `focus_tensor::pool`, not `vec![0.0; n]` /
//!   `Vec::<f32>::with_capacity`; printed but never fails the CLI, since the
//!   zero-allocation invariant itself is enforced by the pool steady-state
//!   regression test.
//!
//! Run it over the workspace with
//! `cargo run -p focus-lint --release -- crates/ src/`; it prints
//! `file:line: rule: message` diagnostics and exits nonzero on any finding.
//! `scripts/verify.sh` runs exactly that, so tier-1 verification fails on
//! regressions. Code inside strings, comments, `#[cfg(test)]` modules,
//! `#[test]` functions, and `tests/`/`benches/`/`examples/` trees is exempt
//! from the hygiene rules.

#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod rules;
