//! The invariant rules. Each one is a token-shape matcher over the
//! comment-free [`CodeView`]; none of them require type information, which is
//! what keeps the whole tool dependency-free and fast enough to run on every
//! `scripts/verify.sh` invocation.
//!
//! | rule            | invariant it guards                                        |
//! |-----------------|------------------------------------------------------------|
//! | `determinism`   | bitwise-identical runs: no hash-order iteration, thread    |
//! |                 | spawning only in `focus_tensor::par`; clock reads are      |
//! |                 | banned *workspace-wide* (not just in the numeric crates)   |
//! |                 | with `crates/trace/src/clock.rs` as the sole exemption     |
//! | `panic-hygiene` | library code fails with context: no bare `.unwrap()`,      |
//! |                 | `panic!`, `todo!`, `unimplemented!`, or empty `.expect("")`|
//! | `float-hygiene` | no `==`/`!=` against float literals (and no                |
//! |                 | `.contains(&0.0)`) without an allow-marked reason          |
//! | `unsafe-forbid` | every crate root carries `#![forbid(unsafe_code)]`; the    |
//! |                 | `tensor` root may carry `#![deny(unsafe_code)]` instead,   |
//! |                 | because the worker pool in `crates/tensor/src/par.rs` is   |
//! |                 | the one audited `unsafe` island — an `unsafe` token in any |
//! |                 | other non-test file is flagged                             |
//! | `allow-marker`  | suppressions themselves are well-formed and justified      |
//! | `stale-allow`   | *(cross-pass)* an allow marker that no longer suppresses   |
//! |                 | any finding is itself a finding: a stale license is cover  |
//! |                 | for the next regression                                    |
//! | `opcode-coverage`| *(cross-file)* every `Op`/`OpCode` variant appears in the |
//! |                 | backward emitter, the VM dispatch, the verifier, the text  |
//! |                 | serializer and the plan-parity corpus — a missing arm is   |
//! |                 | flagged before it becomes a runtime fallback               |
//! | `pool-bypass`   | float buffers in `tensor`/`autograd` library code come     |
//! |                 | from `focus_tensor::pool`, not the heap; enforced now that |
//! |                 | every reference-path site carries an allow marker          |
//! | `graph-interpret`| *(advisory)* the steady-state training loop replays the   |
//! |                 | compiled plan; `.backward(` interpretation sites there are |
//! |                 | warmup/fallback only and carry an allow marker saying so.  |
//! |                 | Advisory because warmup interpretation is *correct by      |
//! |                 | design* — the tape must be recorded before it can be       |
//! |                 | compiled — so a new unmarked site is a docs problem, not a |
//! |                 | correctness bug; the bitwise plan/interpreter parity is    |
//! |                 | enforced end-to-end by the plan-parity suite               |

use crate::engine::{CodeView, FileCtx, FileScan, Finding};
use crate::lexer::{Kind, Token};

/// Every rule the engine knows, in reporting order. `allow-marker` findings
/// are emitted by the marker parser in [`crate::engine::collect_allows`];
/// `stale-allow` and `opcode-coverage` by the second pass
/// ([`crate::engine::finish`]).
pub const RULES: [&str; 9] = [
    "determinism",
    "panic-hygiene",
    "float-hygiene",
    "unsafe-forbid",
    "allow-marker",
    "stale-allow",
    "opcode-coverage",
    "pool-bypass",
    "graph-interpret",
];

/// Advisory rules: their findings are printed but do not fail the CLI.
/// `pool-bypass` graduated to enforced once every deliberate heap-allocation
/// site carried an allow marker; `graph-interpret` stays advisory because
/// warmup-phase interpretation is structurally required (see the rule table).
pub const ADVISORY: [&str; 1] = ["graph-interpret"];

/// Crates whose numeric paths underwrite the bitwise-determinism promise of
/// PR 1; only these are in scope for the `determinism` rule.
const DETERMINISM_CRATES: [&str; 5] = ["tensor", "cluster", "nn", "core", "autograd"];

/// Crates whose steady-state training paths promise zero fresh heap
/// allocations (PR 4); only these are in scope for the `pool-bypass` rule.
const POOL_CRATES: [&str; 2] = ["tensor", "autograd"];

/// Runs every applicable rule for this file over the code view.
pub fn check(ctx: &FileCtx, view: &CodeView<'_>, findings: &mut Vec<Finding>) {
    if ctx.is_crate_root {
        unsafe_forbid(ctx, view, findings);
    }
    if ctx.is_test_path {
        // integration tests / benches / examples: hygiene rules do not apply
        return;
    }
    if !ctx.is_par_module {
        unsafe_island(ctx, view, findings);
    }
    panic_hygiene(ctx, view, findings);
    float_hygiene(ctx, view, findings);
    if !ctx.is_clock_module {
        clock_discipline(ctx, view, findings);
    }
    if DETERMINISM_CRATES.contains(&ctx.crate_name.as_str()) {
        determinism(ctx, view, findings);
    }
    if POOL_CRATES.contains(&ctx.crate_name.as_str()) && !ctx.is_pool_module {
        pool_bypass(ctx, view, findings);
    }
    if ctx.is_train_module {
        graph_interpret(ctx, view, findings);
    }
}

fn emit(ctx: &FileCtx, rule: &'static str, line: u32, message: String, out: &mut Vec<Finding>) {
    out.push(Finding { file: ctx.path.clone(), line, rule, message });
}

/// Iterator over code-token indices that are *not* inside test regions.
fn live<'v>(view: &'v CodeView<'_>) -> impl Iterator<Item = (usize, &'v Token)> + 'v {
    view.code
        .iter()
        .enumerate()
        .filter(|(j, _)| !view.in_test[*j])
        .map(|(j, t)| (j, *t))
}

/// Clock reads (`Instant::now`, `SystemTime`) are banned in *every*
/// non-test file of the workspace, not just the determinism crates: a
/// stray timestamp anywhere can leak into a numeric path or break run
/// reproducibility. The single exemption is `crates/trace/src/clock.rs`
/// ([`FileCtx::is_clock_module`]), the workspace's one audited clock —
/// everything else reads time through `focus_trace::clock::now_ns`.
/// Emits under the `determinism` rule name.
fn clock_discipline(ctx: &FileCtx, view: &CodeView<'_>, out: &mut Vec<Finding>) {
    let c = &view.code;
    for (j, t) in live(view) {
        if t.kind != Kind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant"
                if c.get(j + 1).is_some_and(|n| n.is_op("::"))
                    && c.get(j + 2).is_some_and(|n| n.is_ident("now")) =>
            {
                emit(
                    ctx,
                    "determinism",
                    t.line,
                    "clock read (Instant::now): route timing through focus_trace::clock::now_ns".into(),
                    out,
                )
            }
            "SystemTime" => emit(
                ctx,
                "determinism",
                t.line,
                "clock read (SystemTime): route timing through focus_trace::clock::now_ns".into(),
                out,
            ),
            _ => {}
        }
    }
}

/// `determinism`: no `HashMap`/`HashSet` (iteration order is seeded per
/// process), and `thread::spawn`/`thread::scope` only inside
/// `crates/tensor/src/par.rs` — the one audited fan-out point. (Clock reads
/// are handled by [`clock_discipline`], which covers the whole workspace.)
fn determinism(ctx: &FileCtx, view: &CodeView<'_>, out: &mut Vec<Finding>) {
    let c = &view.code;
    for (j, t) in live(view) {
        if t.kind != Kind::Ident {
            continue;
        }
        match t.text.as_str() {
            name @ ("HashMap" | "HashSet") => emit(
                ctx,
                "determinism",
                t.line,
                format!("{name} has seeded iteration order; use BTreeMap/BTreeSet/Vec in numeric paths"),
                out,
            ),
            "spawn" | "scope"
                if !ctx.is_par_module
                    && j >= 2
                    && c[j - 1].is_op("::")
                    && c[j - 2].is_ident("thread") =>
            {
                emit(
                    ctx,
                    "determinism",
                    t.line,
                    format!("thread::{} outside focus_tensor::par — all fan-out goes through the audited pool", t.text),
                    out,
                )
            }
            _ => {}
        }
    }
}

/// `panic-hygiene`: library code must fail with an invariant message
/// (`.expect("…")`) or propagate a `Result` — a bare `.unwrap()` backtrace in
/// a 40-epoch training run tells the user nothing.
fn panic_hygiene(ctx: &FileCtx, view: &CodeView<'_>, out: &mut Vec<Finding>) {
    let c = &view.code;
    for (j, t) in live(view) {
        if t.kind != Kind::Ident {
            continue;
        }
        let preceded_by_dot = j >= 1 && c[j - 1].is_op(".");
        let called_empty = c.get(j + 1).is_some_and(|n| n.is_op("("))
            && c.get(j + 2).is_some_and(|n| n.is_op(")"));
        match t.text.as_str() {
            "unwrap" if preceded_by_dot && called_empty => emit(
                ctx,
                "panic-hygiene",
                t.line,
                "bare .unwrap(): use .expect(\"<invariant>\") or propagate the error".into(),
                out,
            ),
            "expect"
                if preceded_by_dot
                    && c.get(j + 1).is_some_and(|n| n.is_op("("))
                    && c.get(j + 2).is_some_and(|n| n.kind == Kind::Str && str_is_empty(&n.text)) =>
            {
                emit(ctx, "panic-hygiene", t.line, "empty .expect(\"\"): state the invariant that held".into(), out)
            }
            name @ ("panic" | "todo" | "unimplemented")
                if c.get(j + 1).is_some_and(|n| n.is_op("!")) && !preceded_by_dot =>
            {
                emit(
                    ctx,
                    "panic-hygiene",
                    t.line,
                    format!("{name}! in library code: return an error or .expect with context"),
                    out,
                )
            }
            _ => {}
        }
    }
}

/// Is a string literal's content empty (`""`, `r""`, `b""`)?
fn str_is_empty(text: &str) -> bool {
    text.trim_start_matches(['r', 'b', '#']).trim_end_matches('#') == "\"\""
}

/// `float-hygiene`: `==`/`!=` where either operand is a float literal, plus
/// `.contains(&<float>)` (element-wise exact equality in disguise). Exact
/// float comparison is occasionally *correct* — the one-hot sparsity skips in
/// `matmul.rs` test "is this the exact bit pattern of 0.0" on purpose — so
/// intentional sites carry an allow marker with the reason spelled out.
fn float_hygiene(ctx: &FileCtx, view: &CodeView<'_>, out: &mut Vec<Finding>) {
    let c = &view.code;
    for (j, t) in live(view) {
        let cmp = t.kind == Kind::Op && (t.text == "==" || t.text == "!=");
        if cmp {
            let prev_float = j >= 1 && c[j - 1].kind == Kind::Float;
            // allow one unary minus before the right operand
            let rhs = if c.get(j + 1).is_some_and(|n| n.is_op("-")) { j + 2 } else { j + 1 };
            let next_float = c.get(rhs).is_some_and(|n| n.kind == Kind::Float);
            if prev_float || next_float {
                emit(
                    ctx,
                    "float-hygiene",
                    t.line,
                    format!("float `{}` comparison: use to_bits()/epsilon, or allow-mark the intent", t.text),
                    out,
                );
            }
        } else if t.is_ident("contains")
            && c.get(j + 1).is_some_and(|n| n.is_op("("))
            && c.get(j + 2).is_some_and(|n| n.is_op("&"))
            && c.get(j + 3).is_some_and(|n| n.kind == Kind::Float)
        {
            emit(
                ctx,
                "float-hygiene",
                t.line,
                "contains(&<float>) is exact float equality per element: allow-mark or compare bits".into(),
                out,
            );
        }
    }
}

/// `pool-bypass` (advisory): a float buffer allocated straight from the heap
/// — `vec![<float>; len]` or `Vec::<f32>::with_capacity` — in `tensor` /
/// `autograd` library code outside `pool.rs`. Steady-state training promises
/// zero fresh allocations (guarded end-to-end by the pool regression test);
/// hot-path buffers should come from `pool::take` / `take_zeroed`, and
/// deliberate heap allocations (cold reference paths, setup-time code) carry
/// an allow marker saying so.
fn pool_bypass(ctx: &FileCtx, view: &CodeView<'_>, out: &mut Vec<Finding>) {
    let c = &view.code;
    for (j, t) in live(view) {
        if t.is_ident("vec")
            && c.get(j + 1).is_some_and(|n| n.is_op("!"))
            && c.get(j + 2).is_some_and(|n| n.is_op("["))
        {
            // repeat form only: `vec![0.0f32; n]` — allow a unary minus
            let elem = if c.get(j + 3).is_some_and(|n| n.is_op("-")) { j + 4 } else { j + 3 };
            if c.get(elem).is_some_and(|n| n.kind == Kind::Float)
                && c.get(elem + 1).is_some_and(|n| n.is_op(";"))
            {
                emit(
                    ctx,
                    "pool-bypass",
                    t.line,
                    "float buffer from the heap: use focus_tensor::pool (take/take_zeroed), or allow-mark a cold path".into(),
                    out,
                );
            }
        } else if t.is_ident("with_capacity")
            && j >= 5
            && c[j - 1].is_op("::")
            && c[j - 2].is_op(">")
            && c[j - 3].is_ident("f32")
            && c[j - 4].is_op("<")
        {
            // `Vec::<f32>::with_capacity(..)`
            emit(
                ctx,
                "pool-bypass",
                t.line,
                "f32 buffer from the heap: use focus_tensor::pool (take/take_zeroed), or allow-mark a cold path".into(),
                out,
            );
        }
    }
}

/// `graph-interpret` (advisory): a `.backward(` call — i.e. full graph
/// interpretation — inside the steady-state training loop
/// (`crates/core/src/forecaster.rs`). Since PR 6, steady-state steps replay
/// a compiled plan (`focus_autograd::plan`) with zero graph traversal;
/// interpretation is only legitimate during warmup (tape recording for the
/// compiler) and as the fallback when the plan cache is off, and those sites
/// carry an allow marker saying so. The bitwise plan/interpreter parity is
/// enforced end-to-end by the plan-parity test suite; this rule just keeps
/// new interpretation sites from sneaking into the hot loop unremarked.
fn graph_interpret(ctx: &FileCtx, view: &CodeView<'_>, out: &mut Vec<Finding>) {
    let c = &view.code;
    for (j, t) in live(view) {
        if t.is_ident("backward")
            && j >= 1
            && c[j - 1].is_op(".")
            && c.get(j + 1).is_some_and(|n| n.is_op("("))
        {
            emit(
                ctx,
                "graph-interpret",
                t.line,
                "graph interpretation in the steady-state train loop: replay the compiled plan, or allow-mark a warmup/fallback site".into(),
                out,
            );
        }
    }
}

/// One cross-file coverage contract: every variant of `enum_name` (declared
/// in the file whose path ends with `decl`) must be referenced as
/// `Enum::Variant` in each of the `require`d files. Required files absent
/// from the scan set are skipped — linting a subtree only checks the
/// contracts visible inside it, which also lets fixtures model a single
/// missing arm without replicating the whole workspace.
struct CoverageTarget {
    enum_name: &'static str,
    decl: &'static str,
    require: &'static [(&'static str, &'static str)],
}

/// The workspace's coverage contracts. `OpCode` is the VM instruction set:
/// an unhandled variant in the dispatch or the verifier is a runtime panic,
/// and one missing from the parity corpus is an untested kernel. `Op` is the
/// tape node set: a variant the backward emitter or the plan compiler does
/// not lower silently falls back to interpretation.
const COVERAGE: [CoverageTarget; 2] = [
    CoverageTarget {
        enum_name: "OpCode",
        decl: "crates/autograd/src/plan.rs",
        require: &[
            ("crates/autograd/src/plan.rs", "the text serializer"),
            ("crates/autograd/src/vm.rs", "the VM dispatch"),
            ("crates/autograd/src/verify.rs", "the verifier's kernel geometry"),
            ("crates/autograd/tests/plan_parity.rs", "the plan-parity test corpus"),
        ],
    },
    CoverageTarget {
        enum_name: "Op",
        decl: "crates/autograd/src/graph.rs",
        require: &[
            ("crates/autograd/src/backward.rs", "the backward emitter"),
            ("crates/autograd/src/plan.rs", "the plan compiler's lowering"),
        ],
    },
];

/// Component-aligned path suffix match (`…/plan.rs` must not be matched by
/// `myplan.rs`), tolerant of Windows separators.
fn path_matches(path: &str, suffix: &str) -> bool {
    let p = path.replace('\\', "/");
    p.ends_with(suffix)
        && (p.len() == suffix.len() || p.as_bytes()[p.len() - suffix.len() - 1] == b'/')
}

/// `opcode-coverage` (cross-file): runs over the whole scan set. Findings
/// land at the variant's declaration line in the declaring file, so the fix
/// site (extend the dispatch/corpus, or consciously allow-mark the variant)
/// is one jump away.
pub fn cross_file(scans: &[FileScan], findings: &mut Vec<Finding>) {
    for tgt in &COVERAGE {
        let Some(decl_scan) = scans.iter().find(|s| path_matches(&s.ctx.path, tgt.decl)) else {
            continue;
        };
        let Some(decl) = decl_scan.facts.enums.iter().find(|e| e.name == tgt.enum_name) else {
            continue;
        };
        for (suffix, role) in tgt.require {
            let Some(req) = scans.iter().find(|s| path_matches(&s.ctx.path, suffix)) else {
                continue;
            };
            for (variant, line) in &decl.variants {
                let key = (tgt.enum_name.to_string(), variant.clone());
                if !req.facts.path_pairs.contains(&key) {
                    findings.push(Finding {
                        file: decl_scan.ctx.path.clone(),
                        line: *line,
                        rule: "opcode-coverage",
                        message: format!(
                            "{}::{variant} is not referenced in {role} ({suffix}): a missing arm becomes a runtime fallback",
                            tgt.enum_name
                        ),
                    });
                }
            }
        }
    }
}

/// `unsafe-forbid`, crate-root half: the root must carry
/// `#![forbid(unsafe_code)]`, so the workspace's no-`unsafe` status quo is a
/// compile error to regress, not a convention. The `tensor` root alone may
/// carry `#![deny(unsafe_code)]` instead: the persistent worker pool in
/// `crates/tensor/src/par.rs` needs item-level `#[allow(unsafe_code)]`
/// opt-ins, which `forbid` would reject. `deny` there is still a hard error
/// everywhere an item does not explicitly opt in — and [`unsafe_island`]
/// flags any opt-in outside `par.rs` — so removing the pool restores `forbid`
/// with no lint change.
fn unsafe_forbid(ctx: &FileCtx, view: &CodeView<'_>, out: &mut Vec<Finding>) {
    let c = &view.code;
    let attr = |lint: &str| {
        c.windows(8).any(|w| {
            w[0].is_op("#")
                && w[1].is_op("!")
                && w[2].is_op("[")
                && w[3].is_ident(lint)
                && w[4].is_op("(")
                && w[5].is_ident("unsafe_code")
                && w[6].is_op(")")
                && w[7].is_op("]")
        })
    };
    if attr("forbid") {
        return;
    }
    if ctx.crate_name == "tensor" && attr("deny") {
        return;
    }
    let wanted = if ctx.crate_name == "tensor" {
        "#![forbid(unsafe_code)] or #![deny(unsafe_code)]"
    } else {
        "#![forbid(unsafe_code)]"
    };
    emit(ctx, "unsafe-forbid", 1, format!("crate root missing {wanted}"), out);
}

/// `unsafe-forbid`, token half: an `unsafe` keyword in any non-test file
/// other than the audited worker-pool island (`crates/tensor/src/par.rs`) is
/// a finding. Item-level `#[allow(unsafe_code)]` escapes the compiler's
/// `deny`, so the lint keeps the island's boundary honest.
fn unsafe_island(ctx: &FileCtx, view: &CodeView<'_>, out: &mut Vec<Finding>) {
    for (_, t) in live(view) {
        if t.is_ident("unsafe") {
            emit(
                ctx,
                "unsafe-forbid",
                t.line,
                "`unsafe` outside the audited worker-pool island (crates/tensor/src/par.rs)"
                    .into(),
                out,
            );
        }
    }
}
