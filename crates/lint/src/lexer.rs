//! A hand-rolled Rust lexer: just enough token structure for the rule engine.
//!
//! The lexer's job is **separation, not parsing**: it must never confuse code
//! with the inside of a string literal, a (possibly nested) block comment, a
//! raw string, or a char literal, and it must keep line numbers exact so
//! diagnostics land where the developer is looking. Everything else — item
//! structure, types, name resolution — is out of scope; the rules work on
//! token shapes (`.` `unwrap` `(` `)`) instead.
//!
//! Robustness contract: `lex` never panics, on any input. Malformed or
//! unterminated constructs are consumed to end of input and still produce a
//! token, because a lint that crashes on the file it is criticising is worse
//! than useless. `tests/properties.rs` holds a proptest for this.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`unwrap`, `fn`, `HashMap`, `r#type`).
    Ident,
    /// Lifetime such as `'a` or `'static` (disambiguated from char literals).
    Lifetime,
    /// Integer literal, including `0x`/`0o`/`0b` forms and suffixed ones.
    Int,
    /// Float literal (`0.0`, `1.`, `1e-3`, `2f32`).
    Float,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `br##"…"##`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// `// …` comment (doc comments included); text keeps the full line.
    LineComment,
    /// `/* … */` comment, nested blocks handled; text keeps the delimiters.
    BlockComment,
    /// Operator or punctuation, maximal-munch (`==`, `::`, `..=`, or 1 char).
    Op,
}

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: Kind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// Shorthand: is this an `Op` with exactly this text?
    pub fn is_op(&self, s: &str) -> bool {
        self.kind == Kind::Op && self.text == s
    }

    /// Shorthand: is this an `Ident` with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// True for both comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, Kind::LineComment | Kind::BlockComment)
    }
}

/// Multi-character operators, longest first so maximal munch is a linear scan.
const OPS3: [&str; 4] = ["<<=", ">>=", "..=", "..."];
const OPS2: [&str; 19] = [
    "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=",
    "^=", "&=", "|=", "<<",
];

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Collects `chars[start..self.i]` into a token.
    fn push(&mut self, kind: Kind, start: usize, line: u32) {
        let text: String = self.chars[start..self.i].iter().collect();
        self.out.push(Token { kind, text, line });
    }

    fn line_comment(&mut self, start: usize, line: u32) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        self.push(Kind::LineComment, start, line);
    }

    /// `/* … */` with nesting; unterminated comments run to end of input.
    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.push(Kind::BlockComment, start, line);
    }

    /// A `"`-delimited string body; the opening quote is already consumed.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // skip the escaped char, whatever it is
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Raw string body after `r`/`br` + `hashes` `#`s + the opening `"`.
    fn raw_string_body(&mut self, hashes: usize) {
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// `'` already seen (not consumed): lifetime or char literal?
    ///
    /// Disambiguation: `'\…` is always a char; `'x'` (any single char then a
    /// closing quote) is a char; anything else (`'a`, `'static`, `'_`) is a
    /// lifetime. This matches rustc for every program that compiles.
    fn quote(&mut self, start: usize, line: u32) {
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => {
                self.bump();
                self.bump(); // escaped char (or EOF)
                // consume up to the closing quote, bounded for junk like '\u{…}'
                while let Some(c) = self.peek(0) {
                    let done = c == '\'';
                    self.bump();
                    if done {
                        break;
                    }
                }
                self.push(Kind::Char, start, line);
            }
            Some(_) if self.peek(1) == Some('\'') => {
                self.bump();
                self.bump();
                self.push(Kind::Char, start, line);
            }
            _ => {
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(Kind::Lifetime, start, line);
            }
        }
    }

    /// Number starting at a digit. Distinguishes ints from floats well enough
    /// for the float-hygiene rule: `1.0`, `1.`, `1e-3` and `2f32` are floats;
    /// `1..n`, `1.max(2)`, `0xff` and `3usize` are ints.
    fn number(&mut self, start: usize, line: u32) {
        let mut float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.bump();
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(Kind::Int, start, line);
            return;
        }
        while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
            self.bump();
        }
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                // `1..n` is a range, `1.sqrt()` a method call: the dot is not ours
                Some('.') => {}
                Some(c) if c.is_alphabetic() || c == '_' => {}
                _ => {
                    float = true;
                    self.bump();
                    while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                }
            }
        }
        if matches!(self.peek(0), Some('e' | 'E')) {
            let sign = matches!(self.peek(1), Some('+' | '-')) as usize;
            if matches!(self.peek(1 + sign), Some(c) if c.is_ascii_digit()) {
                float = true;
                self.bump();
                for _ in 0..sign {
                    self.bump();
                }
                while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
        }
        // type suffix: `f32`/`f64` force float, `usize`/`i64`/… stay int
        if matches!(self.peek(0), Some('f')) && !float {
            float = matches!((self.peek(1), self.peek(2)), (Some('3'), Some('2')) | (Some('6'), Some('4')));
        }
        while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
            self.bump();
        }
        self.push(if float { Kind::Float } else { Kind::Int }, start, line);
    }

    /// Identifier; also routes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`
    /// and raw identifiers (`r#type`), all of which start with a letter.
    fn ident_or_prefixed_literal(&mut self, start: usize, line: u32) {
        let c0 = self.peek(0);
        // raw / byte literal prefixes
        if matches!(c0, Some('r' | 'b')) {
            let (mut j, byte) = if c0 == Some('b') && self.peek(1) == Some('r') {
                (2, true)
            } else {
                (1, c0 == Some('b'))
            };
            let mut hashes = 0usize;
            while self.peek(j) == Some('#') {
                hashes += 1;
                j += 1;
            }
            if self.peek(j) == Some('"') && (c0 == Some('r') || byte) {
                for _ in 0..j + 1 {
                    self.bump(); // prefix, hashes, opening quote
                }
                if hashes == 0 {
                    self.string_body();
                } else {
                    self.raw_string_body(hashes);
                }
                self.push(Kind::Str, start, line);
                return;
            }
            if c0 == Some('b') && self.peek(1) == Some('\'') {
                self.bump(); // 'b'
                self.quote(start, line);
                return;
            }
            if c0 == Some('r') && hashes == 1 && matches!(self.peek(2), Some(c) if c.is_alphabetic() || c == '_')
            {
                self.bump(); // 'r'
                self.bump(); // '#'
                // fall through to consume the raw identifier's name
            }
        }
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            self.bump();
        }
        self.push(Kind::Ident, start, line);
    }

    fn operator(&mut self, start: usize, line: u32) {
        let take = |n: usize, s: &mut Self| {
            for _ in 0..n {
                s.bump();
            }
        };
        let next3: String = (0..3).filter_map(|k| self.peek(k)).collect();
        let next2: String = (0..2).filter_map(|k| self.peek(k)).collect();
        if OPS3.contains(&next3.as_str()) {
            take(3, self);
        } else if OPS2.contains(&next2.as_str()) {
            take(2, self);
        } else {
            take(1, self);
        }
        self.push(Kind::Op, start, line);
    }
}

/// Lexes `src` into tokens. Total over the input: every character lands in
/// exactly one token or in inter-token whitespace, and the function never
/// panics (see module docs).
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer { chars: src.chars().collect(), i: 0, line: 1, out: Vec::new() };
    while let Some(c) = lx.peek(0) {
        let (start, line) = (lx.i, lx.line);
        match c {
            _ if c.is_whitespace() => {
                lx.bump();
            }
            '/' if lx.peek(1) == Some('/') => lx.line_comment(start, line),
            '/' if lx.peek(1) == Some('*') => lx.block_comment(start, line),
            '"' => {
                lx.bump();
                lx.string_body();
                lx.push(Kind::Str, start, line);
            }
            '\'' => lx.quote(start, line),
            _ if c.is_ascii_digit() => lx.number(start, line),
            _ if c.is_alphabetic() || c == '_' => lx.ident_or_prefixed_literal(start, line),
            _ => lx.operator(start, line),
        }
    }
    lx.out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Kind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let toks = lex(r#"let s = "a.unwrap() // not code"; // real comment"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("unwrap"));
        assert_eq!(toks.last().expect("nonempty").kind, Kind::LineComment);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still comment */ fn");
        assert_eq!(toks[0].kind, Kind::BlockComment);
        assert!(toks[0].text.contains("inner"));
        assert!(toks[1].is_ident("fn"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r###"r#"has "quote" inside"# x"###);
        assert_eq!(toks[0].kind, Kind::Str);
        assert!(toks[1].is_ident("x"));
        let toks = lex("br##\"bytes\"## y");
        assert_eq!(toks[0].kind, Kind::Str);
        assert!(toks[1].is_ident("y"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        assert_eq!(kinds("'a 'static '_"), vec![Kind::Lifetime; 3]);
        assert_eq!(kinds(r"'a' '\n' '\'' b'\0' '\u{1F600}'"), vec![Kind::Char; 5]);
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == Kind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == Kind::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn float_vs_int_literals() {
        assert_eq!(kinds("0.0"), vec![Kind::Float]);
        assert_eq!(kinds("1."), vec![Kind::Float]);
        assert_eq!(kinds("1e-3"), vec![Kind::Float]);
        assert_eq!(kinds("2f32"), vec![Kind::Float]);
        assert_eq!(kinds("3usize"), vec![Kind::Int]);
        assert_eq!(kinds("0xff_u8"), vec![Kind::Int]);
        // `1..n` is int, op, ident — the dots belong to the range
        assert_eq!(kinds("1..n"), vec![Kind::Int, Kind::Op, Kind::Ident]);
        // `1.max(2)` is a method call on an integer
        assert_eq!(kinds("1.max(2)")[0], Kind::Int);
    }

    #[test]
    fn maximal_munch_operators() {
        let toks = lex("a==b!=c..=d");
        let ops: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Op).map(|t| t.text.as_str()).collect();
        assert_eq!(ops, vec!["==", "!=", "..="]);
    }

    #[test]
    fn raw_identifiers() {
        let toks = lex("r#type r#fn normal");
        assert!(toks.iter().all(|t| t.kind == Kind::Ident));
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn line_numbers_are_exact() {
        let toks = lex("a\nb\n\n  c /* x\ny */ d");
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).expect("present").line;
        assert_eq!((find("a"), find("b"), find("c"), find("d")), (1, 2, 4, 5));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* never closed", "r#\"open", "'", "b'", "1e", "r#"] {
            let _ = lex(src);
        }
    }
}
