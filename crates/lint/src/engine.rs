//! The rule-engine plumbing: file classification, test-region masking,
//! `// focus-lint: allow(..)` markers, the deterministic workspace walker,
//! and diagnostic plumbing shared by every rule in [`crate::rules`].
//!
//! Since the two-pass upgrade the engine runs in two phases:
//!
//! 1. **Scan** ([`scan_source`]) — per file: lex, classify, run the per-file
//!    rules, parse allow markers, and extract the *symbol facts* the
//!    cross-file rules need (enum declarations, `Type::Variant` path pairs).
//! 2. **Finish** ([`finish`]) — with every [`FileScan`] in hand: run the
//!    cross-file rules over the workspace symbol index, apply allow-marker
//!    suppression while tracking which grants actually fired, and report
//!    grants that fired nothing as `stale-allow` findings.
//!
//! [`lint_source`] / [`lint_file`] keep the old single-file semantics (no
//! cross-file rules, no staleness) for callers that look at one file in
//! isolation; [`run_workspace`] is the two-pass entry the CLI uses.

use crate::lexer::{self, Kind, Token};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One diagnostic: `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Display path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (one of [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation with the fix direction.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Everything the rules need to know about a file that the token stream
/// cannot tell them: which crate it belongs to and whether it is test-only.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Display path (as passed / discovered, not canonicalised).
    pub path: String,
    /// Crate directory name (`tensor`, `cluster`, …); `focus` for the
    /// umbrella crate's `src/`, empty when undeterminable.
    pub crate_name: String,
    /// Under a `tests/`, `benches/` or `examples/` directory: integration
    /// tests and harnesses, exempt from the code-hygiene rules.
    pub is_test_path: bool,
    /// `src/lib.rs` or `src/main.rs` — where `#![forbid(unsafe_code)]` must
    /// live.
    pub is_crate_root: bool,
    /// `crates/tensor/src/par.rs`, the one file allowed to spawn threads.
    pub is_par_module: bool,
    /// `crates/tensor/src/pool.rs`, the one file allowed to allocate float
    /// buffers straight from the heap.
    pub is_pool_module: bool,
    /// `crates/trace/src/clock.rs`, the one file allowed to read the wall
    /// clock — every other crate routes timing through
    /// `focus_trace::clock::now_ns`.
    pub is_clock_module: bool,
    /// `crates/core/src/forecaster.rs`, the steady-state training loop —
    /// the one place where graph interpretation vs compiled-plan replay is
    /// policed (rule `graph-interpret`).
    pub is_train_module: bool,
}

impl FileCtx {
    /// Classifies a path purely lexically (no I/O), so fixtures laid out as
    /// `fixtures/crates/<crate>/src/<file>.rs` classify exactly like the real
    /// workspace tree.
    pub fn from_path(path: &Path) -> FileCtx {
        let comps: Vec<String> = path
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect();
        let crates_at = comps.iter().rposition(|c| c == "crates");
        let crate_name = match crates_at {
            Some(i) if i + 1 < comps.len() => comps[i + 1].clone(),
            // outside any `crates/` dir, a `src/` file belongs to the
            // umbrella `focus` package
            _ if comps.iter().any(|c| c == "src") => "focus".to_string(),
            _ => String::new(),
        };
        let file_name = comps.last().cloned().unwrap_or_default();
        let after_crate = crates_at.map_or(0, |i| i + 2);
        let is_test_path = comps[after_crate.min(comps.len())..]
            .iter()
            .any(|c| c == "tests" || c == "benches" || c == "examples");
        let under_src = comps.len() >= 2 && comps[comps.len() - 2] == "src";
        FileCtx {
            path: path.display().to_string(),
            is_crate_root: under_src && (file_name == "lib.rs" || file_name == "main.rs"),
            is_par_module: crate_name == "tensor" && under_src && file_name == "par.rs",
            is_pool_module: crate_name == "tensor" && under_src && file_name == "pool.rs",
            is_clock_module: crate_name == "trace" && under_src && file_name == "clock.rs",
            is_train_module: crate_name == "core" && under_src && file_name == "forecaster.rs",
            crate_name,
            is_test_path,
        }
    }
}

/// A comment-free view of the token stream: rules do sequence matching on
/// `code[j]`, `code[j+1]`, … without tripping over interleaved comments.
pub struct CodeView<'a> {
    /// Non-comment tokens in order.
    pub code: Vec<&'a Token>,
    /// `in_test[j]` — token `j` sits inside a `#[cfg(test)]` module or a
    /// `#[test]` function body.
    pub in_test: Vec<bool>,
}

/// Builds the comment-free view and marks test regions.
///
/// Test regions are found structurally: a `#[test]`-like or `#[cfg(test)]`
/// attribute, any further attributes/visibility, then either a `mod name {…}`
/// or an `fn …{…}` item — the region runs to the matching close brace.
/// `#[cfg(not(test))]` is deliberately *not* a test region.
pub fn code_view(tokens: &[Token]) -> CodeView<'_> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut in_test = vec![false; code.len()];
    let mut j = 0usize;
    while j < code.len() {
        if code[j].is_op("#") && code.get(j + 1).is_some_and(|t| t.is_op("[")) {
            let close = match matching(&code, j + 1, "[", "]") {
                Some(c) => c,
                None => break, // unterminated attribute: nothing more to mark
            };
            if attr_is_test(&code[j + 2..close]) {
                if let Some(end) = item_body_end(&code, close + 1) {
                    for flag in in_test.iter_mut().take(end + 1).skip(j) {
                        *flag = true;
                    }
                }
            }
            j = close + 1;
        } else {
            j += 1;
        }
    }
    CodeView { code, in_test }
}

/// Is the attribute body (`test`, `cfg(test)`, `cfg(all(test, …))`) a marker
/// of test-only code?
fn attr_is_test(body: &[&Token]) -> bool {
    let first_is = |s: &str| body.first().is_some_and(|t| t.is_ident(s));
    let has = |s: &str| body.iter().any(|t| t.is_ident(s));
    first_is("test") || (first_is("cfg") && has("test") && !has("not"))
}

/// Index of the close delimiter matching the open one at `open_at`.
fn matching(code: &[&Token], open_at: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in code.iter().enumerate().skip(open_at) {
        if t.is_op(open) {
            depth += 1;
        } else if t.is_op(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// From the token after a test attribute, skip trailing attributes and find
/// the end of the annotated item's `{…}` body. Returns `None` for bodiless
/// items (`mod tests;`), which we cannot see into anyway.
fn item_body_end(code: &[&Token], mut j: usize) -> Option<usize> {
    // skip any further attributes stacked on the same item
    while code.get(j).is_some_and(|t| t.is_op("#"))
        && code.get(j + 1).is_some_and(|t| t.is_op("["))
    {
        j = matching(code, j + 1, "[", "]")? + 1;
    }
    // find the body's opening brace: the first `{` at paren/bracket depth 0
    // (skipping e.g. an fn's parameter list); a depth-0 `;` means no body
    let mut depth = 0usize;
    while let Some(t) = code.get(j) {
        match t.text.as_str() {
            "(" | "[" if t.kind == Kind::Op => depth += 1,
            ")" | "]" if t.kind == Kind::Op => depth = depth.saturating_sub(1),
            "{" if t.kind == Kind::Op && depth == 0 => return matching(code, j, "{", "}"),
            ";" if t.kind == Kind::Op && depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Per-file allow markers: `// focus-lint: allow(rule[, rule]) -- reason`.
///
/// A marker suppresses findings of the named rules on its own line and on the
/// line directly below, covering both the trailing style
/// (`x != 0.0 { // focus-lint: allow(float-hygiene) -- …`) and the
/// own-line style above the offending statement.
pub struct Allows {
    granted: Vec<(String, u32)>,
}

impl Allows {
    /// Does a marker cover this (rule, line)?
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.index_of(rule, line).is_some()
    }

    /// Index of the grant covering this (rule, line) — pass 2 uses the index
    /// to record that the grant earned its keep. A same-line (trailing)
    /// marker wins over one on the line above, so two adjacent trailing
    /// markers each claim their own finding instead of the first claiming
    /// both and the second reading as stale.
    fn index_of(&self, rule: &str, line: u32) -> Option<usize> {
        self.granted
            .iter()
            .position(|(r, l)| r == rule && line == *l)
            .or_else(|| self.granted.iter().position(|(r, l)| r == rule && line == *l + 1))
    }
}

/// The marker keyword scanned for inside comments.
const MARKER: &str = "focus-lint:";

/// Parses every allow marker in the file's comments. Malformed markers — an
/// unknown rule name, or a missing `-- <reason>` — are themselves findings
/// (rule `allow-marker`): an unexplained suppression is a silent hole in the
/// invariant the lint exists to enforce.
pub fn collect_allows(ctx: &FileCtx, tokens: &[Token], findings: &mut Vec<Finding>) -> Allows {
    let mut granted = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        // markers live in plain comments only; doc comments merely *describe*
        // the grammar and must not grant (or fail to grant) suppressions
        if ["///", "//!", "/**", "/*!"].iter().any(|d| t.text.starts_with(d)) {
            continue;
        }
        let Some(at) = t.text.find(MARKER) else { continue };
        let rest = t.text[at + MARKER.len()..].trim_start();
        let mut bad = |msg: String| {
            findings.push(Finding {
                file: ctx.path.clone(),
                line: t.line,
                rule: "allow-marker",
                message: msg,
            });
        };
        let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            bad(format!("malformed marker: expected `{MARKER} allow(<rule>) -- <reason>`"));
            continue;
        };
        let (rules_csv, tail) = inner;
        let reason = tail.trim_start().strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad("allow marker missing `-- <reason>`: say why the suppression is sound".into());
            continue;
        }
        for rule in rules_csv.split(',').map(str::trim) {
            if !crate::rules::RULES.contains(&rule) {
                bad(format!("unknown rule `{rule}` in allow marker"));
            } else if rule == "allow-marker" || rule == "stale-allow" {
                // suppressing the marker-hygiene rules would be circular:
                // a marker excusing its own malformedness or staleness
                bad(format!("rule `{rule}` cannot be allow-marked"));
            } else {
                granted.push((rule.to_string(), t.line));
            }
        }
    }
    Allows { granted }
}

// ---------------------------------------------------------------------------
// Pass 1: per-file scan + symbol facts
// ---------------------------------------------------------------------------

/// Workspace symbol facts extracted during pass 1, the raw material of the
/// cross-file rules: which enums a file declares (with per-variant lines for
/// positioned diagnostics) and which `Type::Variant` paths it references.
#[derive(Debug, Default)]
pub struct SymbolFacts {
    /// Enum declarations in this file.
    pub enums: Vec<EnumDecl>,
    /// `Upper::Upper` path pairs referenced anywhere in the file. Test
    /// regions are included on purpose: the plan-parity corpus is a test,
    /// and "the corpus exercises this opcode" is exactly the fact the
    /// `opcode-coverage` rule consumes.
    pub path_pairs: BTreeSet<(String, String)>,
}

/// One `enum` declaration: its name and each variant with its 1-based line.
#[derive(Debug)]
pub struct EnumDecl {
    pub name: String,
    pub variants: Vec<(String, u32)>,
}

fn starts_upper(t: &Token) -> bool {
    t.kind == Kind::Ident && t.text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Extracts the symbol facts from a code view. Purely lexical, like the
/// rules: enough to resolve "every `OpCode` variant appears in the VM
/// dispatch" without a type checker.
pub fn extract_facts(view: &CodeView<'_>) -> SymbolFacts {
    let c = &view.code;
    let mut facts = SymbolFacts::default();
    for j in 0..c.len() {
        if starts_upper(c[j])
            && c.get(j + 1).is_some_and(|t| t.is_op("::"))
            && c.get(j + 2).is_some_and(|t| starts_upper(t))
        {
            facts.path_pairs.insert((c[j].text.clone(), c[j + 2].text.clone()));
        }
        if c[j].is_ident("enum") && c.get(j + 1).is_some_and(|t| t.kind == Kind::Ident) {
            if let Some(decl) = parse_enum(c, j) {
                facts.enums.push(decl);
            }
        }
    }
    facts
}

/// Parses the variant list of the `enum` whose keyword sits at `c[at]`.
/// Variants are capitalised idents at body depth 1 in head position (after
/// `{` or a depth-1 `,`); payloads, discriminants and variant attributes sit
/// at deeper nesting or after the head and are skipped.
fn parse_enum(c: &[&Token], at: usize) -> Option<EnumDecl> {
    let name = c[at + 1].text.clone();
    let mut j = at + 2;
    // find the body's `{`, skipping generics; a `;` first means an opaque
    // (or not actually a) declaration
    loop {
        let t = c.get(j)?;
        if t.is_op("{") {
            break;
        }
        if t.is_op(";") {
            return None;
        }
        j += 1;
    }
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut head = true;
    for t in &c[j..] {
        match t.text.as_str() {
            "{" | "(" | "[" if t.kind == Kind::Op => depth += 1,
            "}" | ")" | "]" if t.kind == Kind::Op => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if t.kind == Kind::Op && depth == 1 => head = true,
            _ => {
                if head && depth == 1 && starts_upper(t) {
                    variants.push((t.text.clone(), t.line));
                    head = false;
                }
            }
        }
    }
    Some(EnumDecl { name, variants })
}

/// Pass-1 result for one file: classification, the *raw* (pre-suppression)
/// findings, the parsed allow grants, and the symbol facts. [`finish`]
/// consumes a batch of these.
pub struct FileScan {
    pub ctx: FileCtx,
    raw: Vec<Finding>,
    allows: Allows,
    pub facts: SymbolFacts,
}

/// Pass 1 over one file's source text. Pure: no I/O.
pub fn scan_source(ctx: FileCtx, src: &str) -> FileScan {
    let tokens = lexer::lex(src);
    let mut raw = Vec::new();
    let allows = collect_allows(&ctx, &tokens, &mut raw);
    let view = code_view(&tokens);
    crate::rules::check(&ctx, &view, &mut raw);
    let facts = extract_facts(&view);
    FileScan { ctx, raw, allows, facts }
}

// ---------------------------------------------------------------------------
// Pass 2: cross-file rules, suppression accounting, staleness
// ---------------------------------------------------------------------------

/// Pass 2: runs the cross-file rules over the whole scan set, applies
/// allow-marker suppression while tracking which grants fired, and turns
/// grants that fired nothing into `stale-allow` findings — an unexplained
/// suppression is a hole in the invariant, and a suppression excusing
/// *nothing* is a stale license for the next regression. Returns the
/// surviving findings, unsorted.
pub fn finish(scans: Vec<FileScan>) -> Vec<Finding> {
    let mut used: Vec<Vec<bool>> =
        scans.iter().map(|s| vec![false; s.allows.granted.len()]).collect();
    let mut findings = Vec::new();

    // Cross-file findings pass through the target file's markers like any
    // local finding: a consciously-uncovered enum variant can be allow-marked
    // at its declaration line.
    let mut cross = Vec::new();
    crate::rules::cross_file(&scans, &mut cross);
    for f in cross {
        let grant = scans
            .iter()
            .position(|s| s.ctx.path == f.file)
            .and_then(|i| scans[i].allows.index_of(f.rule, f.line).map(|g| (i, g)));
        match grant {
            Some((i, g)) => used[i][g] = true,
            None => findings.push(f),
        }
    }

    for (i, scan) in scans.iter().enumerate() {
        for f in &scan.raw {
            if f.rule != "allow-marker" {
                if let Some(g) = scan.allows.index_of(f.rule, f.line) {
                    used[i][g] = true;
                    continue;
                }
            }
            findings.push(f.clone());
        }
        for (g, (rule, line)) in scan.allows.granted.iter().enumerate() {
            if !used[i][g] {
                findings.push(Finding {
                    file: scan.ctx.path.clone(),
                    line: *line,
                    rule: "stale-allow",
                    message: format!(
                        "allow({rule}) no longer suppresses anything: remove the marker or restore the reason it existed"
                    ),
                });
            }
        }
    }
    findings
}

/// Lints one file's source text. Pure: no I/O, so fixture tests and proptests
/// drive it directly.
pub fn lint_source(ctx: &FileCtx, src: &str) -> Vec<Finding> {
    let tokens = lexer::lex(src);
    let mut findings = Vec::new();
    let allows = collect_allows(ctx, &tokens, &mut findings);
    let view = code_view(&tokens);
    crate::rules::check(ctx, &view, &mut findings);
    findings.retain(|f| f.rule == "allow-marker" || !allows.covers(f.rule, f.line));
    findings.sort_by_key(|f| f.line);
    findings
}

/// Lints one file from disk. An unreadable file is itself a finding rather
/// than a crash or a silent skip.
pub fn lint_file(path: &Path) -> Vec<Finding> {
    let ctx = FileCtx::from_path(path);
    match std::fs::read_to_string(path) {
        Ok(src) => lint_source(&ctx, &src),
        Err(e) => vec![Finding {
            file: ctx.path,
            line: 1,
            rule: "allow-marker",
            message: format!("unreadable file: {e}"),
        }],
    }
}

/// Directories never descended into: build output, VCS metadata, and the
/// lint's own seeded-violation fixtures.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// Collects every `.rs` file under `paths`, depth-first with entries sorted
/// by name — `read_dir` order is filesystem-dependent, and the lint holds
/// itself to the determinism bar it enforces.
pub fn walk(paths: &[PathBuf]) -> Vec<PathBuf> {
    let mut files = Vec::new();
    // (path, explicit): paths the caller named are walked unconditionally;
    // SKIP_DIRS only prunes directories *discovered* during the walk
    let mut stack: Vec<(PathBuf, bool)> = paths.iter().map(|p| (p.clone(), true)).collect();
    stack.reverse();
    while let Some((p, explicit)) = stack.pop() {
        if p.is_dir() {
            let name = p.file_name().map(|n| n.to_string_lossy().into_owned());
            if !explicit && name.as_deref().is_some_and(|n| SKIP_DIRS.contains(&n)) {
                continue;
            }
            let mut entries: Vec<PathBuf> = match std::fs::read_dir(&p) {
                Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
                Err(_) => continue,
            };
            entries.sort();
            entries.reverse();
            stack.extend(entries.into_iter().map(|e| (e, false)));
        } else if p.extension().is_some_and(|e| e == "rs") {
            files.push(p);
        }
    }
    files
}

/// Result of a two-pass workspace run. `io_errors` counts unreadable files
/// (also reported as findings) — the CLI maps any to exit code 2, because an
/// unreadable file is a broken run, not a finding-free one.
pub struct RunResult {
    pub files: usize,
    pub findings: Vec<Finding>,
    pub io_errors: usize,
}

/// Two-pass lint of every `.rs` file under `paths`: scan each file, then
/// [`finish`] the batch (cross-file rules, suppression accounting,
/// staleness). Findings are ordered by (file, line, rule).
pub fn run_workspace(paths: &[PathBuf]) -> RunResult {
    let files = walk(paths);
    let mut scans = Vec::new();
    let mut findings = Vec::new();
    let mut io_errors = 0usize;
    for f in &files {
        let ctx = FileCtx::from_path(f);
        match std::fs::read_to_string(f) {
            Ok(src) => scans.push(scan_source(ctx, &src)),
            Err(e) => {
                io_errors += 1;
                findings.push(Finding {
                    file: ctx.path,
                    line: 1,
                    rule: "allow-marker",
                    message: format!("unreadable file: {e}"),
                });
            }
        }
    }
    findings.extend(finish(scans));
    findings.sort_by(|a, b| {
        a.file.cmp(&b.file).then(a.line.cmp(&b.line)).then(a.rule.cmp(b.rule))
    });
    RunResult { files: files.len(), findings, io_errors }
}

/// Lints every `.rs` file under `paths`; returns `(files_checked, findings)`
/// with findings ordered by (file, line). Thin wrapper over
/// [`run_workspace`] for callers that don't care about I/O errors.
pub fn run(paths: &[PathBuf]) -> (usize, Vec<Finding>) {
    let r = run_workspace(paths);
    (r.files, r.findings)
}
