//! Property tests for the lint: the lexer is total and panic-free on
//! arbitrary input, and the engine never reports violations that sit inside
//! strings, comments, or `#[cfg(test)]` modules.

use focus_lint::engine::{lint_source, FileCtx};
use focus_lint::lexer;
use proptest::prelude::*;
use std::path::Path;

/// A context under which every rule is live: tensor crate, non-test,
/// non-root, not the par module.
fn hot_ctx() -> FileCtx {
    FileCtx::from_path(Path::new("crates/tensor/src/generated.rs"))
}

/// Characters that exercise the lexer's hard paths: quote kinds, comment
/// delimiters, raw/byte prefixes, numeric shapes, escapes.
const TRICKY: [char; 24] = [
    '"', '\'', '\\', '/', '*', '#', 'r', 'b', '0', '1', '.', '=', '!', 'e', 'f', '{', '}', '[',
    ']', '\n', 'x', '_', '-', ':',
];

fn squash(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Payload alphabet that cannot terminate a string literal or a block
/// comment: no `"`, `\`, `/`, `*`, and no newline.
const SAFE: [char; 20] =
    ['a', 'Z', '0', '9', ' ', '_', '.', ',', ';', '(', ')', '=', '!', '&', '<', '>', '+', '-',
        '{', '}'];

fn from_picks(picks: &[usize], alphabet: &[char]) -> String {
    picks.iter().map(|&i| alphabet[i % alphabet.len()]).collect()
}

/// Violation text seeded into opaque regions: would trip four different
/// rules if it were ever read as code.
const BAIT: &str = ".unwrap() panic! HashMap thread::spawn SystemTime x == 0.0";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The lexer neither panics nor drops characters, on any input: random
    /// codepoints interleaved with the trickiest delimiter characters.
    #[test]
    fn lexer_is_total_and_panic_free(
        raw in prop::collection::vec(0u32..0xD800, 0..120),
        picks in prop::collection::vec(0usize..1000, 0..120),
    ) {
        let mut src = String::new();
        for (i, r) in raw.iter().enumerate() {
            if let Some(&p) = picks.get(i) {
                src.push(TRICKY[p % TRICKY.len()]);
            }
            src.push(char::from_u32(*r).unwrap_or('\u{FFFD}'));
        }
        let toks = lexer::lex(&src);
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        // totality: every non-whitespace char lands in exactly one token
        prop_assert_eq!(squash(&rebuilt), squash(&src));
        // the full engine survives the same soup
        let _ = lint_source(&hot_ctx(), &src);
    }

    /// Violations spelled out inside string literals, line comments and
    /// nested block comments are invisible to every rule.
    #[test]
    fn strings_and_comments_are_opaque_to_rules(
        picks in prop::collection::vec(0usize..1000, 0..60),
    ) {
        let p = from_picks(&picks, &SAFE);
        let src = format!(
            "pub fn f() -> &'static str {{\n\
             \x20   // {p} {BAIT}\n\
             \x20   /* {p} /* nested {BAIT} */ {p} */\n\
             \x20   \"{p} {BAIT}\"\n\
             }}\n"
        );
        let findings = lint_source(&hot_ctx(), &src);
        prop_assert!(findings.is_empty(), "opaque regions leaked: {:?}\n{}", findings, src);
    }

    /// The same violations written inside a `#[cfg(test)]` module or a
    /// `#[test]` fn are exempt — and leak the moment the test wrapper is
    /// removed (same body, same context, so the exemption is doing the work).
    #[test]
    fn test_regions_are_exempt(picks in prop::collection::vec(0usize..1000, 0..40)) {
        let name = from_picks(&picks, &['a', 'b', 'c', 'd', '_']);
        let body = format!(
            "fn helper_{name}() {{\n\
             \x20   let v: Vec<f32> = Vec::new();\n\
             \x20   let _ = v.first().unwrap();\n\
             \x20   if v.len() as f32 == 0.0 {{ panic!(\"boom\"); }}\n\
             }}\n"
        );
        let wrapped = format!("#[cfg(test)]\nmod tests {{\n{body}}}\n#[test]\n{body}");
        let findings = lint_source(&hot_ctx(), &wrapped);
        prop_assert!(findings.is_empty(), "test regions leaked: {findings:?}");

        let unwrapped = lint_source(&hot_ctx(), &body);
        prop_assert_eq!(unwrapped.len(), 3, "bare body must trip unwrap+float+panic: {:?}", unwrapped);
    }

    /// A float-literal comparison in live code is caught for any literal
    /// value, on either side of either operator.
    #[test]
    fn float_comparisons_are_caught(v in 0.0f32..1000.0, flip in 0usize..4) {
        let lit = format!("{v:?}");
        let expr = match flip {
            0 => format!("x == {lit}"),
            1 => format!("x != {lit}"),
            2 => format!("{lit} == x"),
            _ => format!("x == -{lit}"),
        };
        let src = format!("pub fn f(x: f32) -> bool {{ {expr} }}\n");
        let findings = lint_source(&hot_ctx(), &src);
        prop_assert_eq!(findings.len(), 1, "missed `{}`: {:?}", expr, findings);
        prop_assert_eq!(findings[0].rule, "float-hygiene");
    }
}
