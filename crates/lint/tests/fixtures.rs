//! Fixture-backed self-tests: every rule has a fixture with seeded
//! violations that must be caught at exact lines, negative fixtures that must
//! stay silent, and the binary's exit code is asserted end-to-end via
//! `CARGO_BIN_EXE_focus-lint`.

use focus_lint::engine::{lint_file, run, Finding};
use std::path::PathBuf;
use std::process::Command;

fn fixture(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(rel)
}

/// (rule, line) pairs in file order, for compact comparison.
fn hits(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn determinism_fixture_catches_every_seeded_violation() {
    let f = lint_file(&fixture("crates/tensor/src/determinism.rs"));
    assert_eq!(
        hits(&f),
        vec![
            ("determinism", 4),  // use … HashMap
            ("determinism", 5),  // use … HashSet
            ("determinism", 6),  // use … SystemTime
            ("determinism", 9),  // HashSet type annotation
            ("determinism", 9),  // HashSet::new()
            ("determinism", 17), // Instant::now()
            ("determinism", 18), // SystemTime::now()
            ("determinism", 23), // thread::spawn
            ("determinism", 24), // thread::scope
            ("determinism", 27), // HashMap return type
            ("determinism", 28), // HashMap::new()
        ]
    );
}

#[test]
fn clock_reads_fire_outside_determinism_crates_too() {
    // `data` is not in DETERMINISM_CRATES; the clock discipline is
    // workspace-wide, so the reads must be flagged anyway (test regions
    // stay exempt).
    let f = lint_file(&fixture("crates/data/src/clockuse.rs"));
    assert_eq!(
        hits(&f),
        vec![
            ("determinism", 6),  // Instant::now()
            ("determinism", 10), // SystemTime return type
            ("determinism", 11), // SystemTime::now()
        ]
    );
}

#[test]
fn clock_module_is_exempt_from_clock_rule() {
    let f = lint_file(&fixture("crates/trace/src/clock.rs"));
    assert!(f.is_empty(), "crates/trace/src/clock.rs is the audited clock: {f:?}");
}

#[test]
fn par_module_is_exempt_from_thread_and_unsafe_rules() {
    let f = lint_file(&fixture("crates/tensor/src/par.rs"));
    assert!(f.is_empty(), "par.rs must be allowed to spawn and use unsafe: {f:?}");
}

#[test]
fn unsafe_tokens_are_flagged_outside_the_par_island() {
    let f = lint_file(&fixture("crates/tensor/src/unsafe_use.rs"));
    assert_eq!(
        hits(&f),
        vec![
            ("unsafe-forbid", 6), // unsafe block
            ("unsafe-forbid", 9), // unsafe fn
        ]
    );
}

#[test]
fn tensor_root_may_deny_instead_of_forbid() {
    let f = lint_file(&fixture("crates/tensor/src/lib.rs"));
    assert!(f.is_empty(), "tensor root with #![deny(unsafe_code)] is the pool carve-out: {f:?}");
}

#[test]
fn panic_hygiene_fixture_catches_every_seeded_violation() {
    let f = lint_file(&fixture("crates/cluster/src/panic_hygiene.rs"));
    assert_eq!(
        hits(&f),
        vec![
            ("panic-hygiene", 4),  // bare .unwrap()
            ("panic-hygiene", 9),  // panic!
            ("panic-hygiene", 15), // todo!
            ("panic-hygiene", 19), // unimplemented!
            ("panic-hygiene", 23), // .expect("")
        ]
    );
}

#[test]
fn float_hygiene_fixture_catches_every_seeded_violation() {
    let f = lint_file(&fixture("crates/nn/src/float_hygiene.rs"));
    assert_eq!(
        hits(&f),
        vec![
            ("float-hygiene", 4),  // a != 0.0
            ("float-hygiene", 8),  // 1.0 == w
            ("float-hygiene", 12), // x == -1.0
            ("float-hygiene", 16), // contains(&0.0)
        ]
    );
}

#[test]
fn pool_bypass_fixture_catches_every_seeded_violation() {
    let f = lint_file(&fixture("crates/tensor/src/pool_bypass.rs"));
    assert_eq!(
        hits(&f),
        vec![
            ("pool-bypass", 4), // vec![0.0f32; n]
            ("pool-bypass", 5), // vec![-1.0; n]
            ("pool-bypass", 6), // Vec::<f32>::with_capacity
        ]
    );
}

#[test]
fn graph_interpret_fixture_catches_every_seeded_violation() {
    let f = lint_file(&fixture("crates/core/src/forecaster.rs"));
    assert_eq!(
        hits(&f),
        vec![
            ("graph-interpret", 4), // unmarked g.backward(loss)
            ("graph-interpret", 6), // any receiver counts
        ]
    );
}

#[test]
fn graph_interpret_only_fires_in_the_train_module() {
    // same seeded calls in any other core file stay silent: the rule polices
    // the steady-state train loop, not backward passes in general
    let f = lint_file(&fixture("crates/core/src/clean.rs"));
    assert!(f.is_empty(), "clean.rs is not the train module: {f:?}");
}

#[test]
fn pool_module_is_exempt_from_pool_bypass() {
    let f = lint_file(&fixture("crates/tensor/src/pool.rs"));
    assert!(f.is_empty(), "pool.rs must be allowed to allocate: {f:?}");
}

#[test]
fn unsafe_forbid_fixture_flags_missing_attribute() {
    let f = lint_file(&fixture("crates/badcrate/src/lib.rs"));
    assert_eq!(hits(&f), vec![("unsafe-forbid", 1)]);
}

#[test]
fn allow_marker_fixture_flags_malformed_suppressions() {
    let f = lint_file(&fixture("crates/cluster/src/markers.rs"));
    assert_eq!(
        hits(&f),
        vec![
            ("allow-marker", 5),   // marker without `-- <reason>`
            ("float-hygiene", 6),  // …so the finding below it survives
            ("allow-marker", 10),  // typo'd rule name
            ("float-hygiene", 11), // …suppresses nothing either
            ("allow-marker", 15),  // not even the allow(…) keyword
        ]
    );
}

#[test]
fn clean_fixtures_are_silent() {
    for rel in ["crates/core/src/clean.rs", "crates/goodcrate/src/lib.rs"] {
        let f = lint_file(&fixture(rel));
        assert!(f.is_empty(), "{rel} must be finding-free: {f:?}");
    }
}

#[test]
fn stale_allow_fires_only_for_unused_grants() {
    let (_, f) = run(&[fixture("crates/data/src/stale.rs")]);
    assert_eq!(
        hits(&f),
        vec![("stale-allow", 6)],
        "the line-6 marker suppresses nothing; the line-11 marker still earns its keep: {f:?}"
    );
}

#[test]
fn opcode_coverage_flags_the_variant_missing_from_the_dispatch() {
    let (_, f) = run(&[fixture("crates/autograd")]);
    assert_eq!(hits(&f), vec![("opcode-coverage", 7)], "ZipSub hides behind the catch-all: {f:?}");
    let only = &f[0];
    assert!(only.file.ends_with("plan.rs"), "finding lands at the declaration: {only}");
    assert!(only.message.contains("OpCode::ZipSub"), "{only}");
    assert!(only.message.contains("vm.rs"), "names the file missing the arm: {only}");
}

#[test]
fn opcode_coverage_skips_absent_required_files() {
    // Linting just the declaring file: every required sibling is outside the
    // scan set, so the contract is vacuously met (subtree runs stay usable).
    let (_, f) = run(&[fixture("crates/autograd/src/plan.rs")]);
    assert!(f.is_empty(), "no required files in scope, no findings: {f:?}");
}

#[test]
fn engine_run_walks_fixture_tree_deterministically() {
    let (files, findings) = run(&[fixture("crates")]);
    assert_eq!(files, 18, "all fixture files reached");
    // one positive fixture per rule keeps the suite honest
    for rule in focus_lint::rules::RULES {
        assert!(findings.iter().any(|f| f.rule == rule), "no fixture finding for rule {rule}");
    }
    let (_, again) = run(&[fixture("crates")]);
    assert_eq!(hits(&findings), hits(&again), "walk order must be deterministic");
}

/// End-to-end: the binary exits nonzero on each rule's seeded fixture and
/// zero on a clean tree.
#[test]
fn binary_exit_codes_match_findings() {
    let bin = env!("CARGO_BIN_EXE_focus-lint");
    let status = |p: PathBuf| {
        Command::new(bin)
            .arg(&p)
            .output()
            .expect("focus-lint binary runs")
    };
    for dirty in [
        "crates/tensor/src/determinism.rs",
        "crates/cluster/src/panic_hygiene.rs",
        "crates/nn/src/float_hygiene.rs",
        "crates/badcrate/src/lib.rs",
        "crates/tensor/src/unsafe_use.rs",
        "crates/cluster/src/markers.rs",
        // promoted from advisory: every deliberate heap allocation in the
        // real workspace now carries an allow marker, so a bare one fails
        "crates/tensor/src/pool_bypass.rs",
        "crates/data/src/stale.rs",
    ] {
        let out = status(fixture(dirty));
        assert_eq!(out.status.code(), Some(1), "{dirty} must fail the lint");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("9 rules"), "summary line present: {stdout}");
    }
    let out = status(fixture("crates/goodcrate"));
    assert_eq!(out.status.code(), Some(0), "clean tree must pass");

    // advisory findings print but never fail the run
    let out = status(fixture("crates/core/src/forecaster.rs"));
    assert_eq!(out.status.code(), Some(0), "graph-interpret is advisory, exit stays 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("graph-interpret"), "advisory findings still print: {stdout}");
    assert!(stdout.contains("(advisory)"), "advisory findings are labelled: {stdout}");
}

/// `--json` emits the machine-readable report with the same exit-code
/// contract, and an unknown flag is an internal error (exit 2), not a silent
/// success CI would wave through.
#[test]
fn json_mode_and_exit_code_contract() {
    let bin = env!("CARGO_BIN_EXE_focus-lint");
    let run_args = |args: &[&str]| {
        Command::new(bin).args(args).output().expect("focus-lint binary runs")
    };

    let clean = fixture("crates/goodcrate");
    let out = run_args(&["--json", clean.to_str().expect("utf-8 fixture path")]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\":\"focus-lint-report v1\""), "{stdout}");
    assert!(stdout.contains("\"findings\":[]"), "clean tree, empty findings: {stdout}");
    assert!(stdout.contains("\"io_errors\":0"), "{stdout}");

    let dirty = fixture("crates/nn/src/float_hygiene.rs");
    let out = run_args(&["--json", dirty.to_str().expect("utf-8 fixture path")]);
    assert_eq!(out.status.code(), Some(1), "enforced findings fail in JSON mode too");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\":\"float-hygiene\""), "{stdout}");
    assert!(stdout.contains("\"advisory\":false"), "{stdout}");

    let adv = fixture("crates/core/src/forecaster.rs");
    let out = run_args(&["--json", adv.to_str().expect("utf-8 fixture path")]);
    assert_eq!(out.status.code(), Some(0), "advisory-only stays clean in JSON mode");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"advisory\":true"), "{stdout}");

    let out = run_args(&["--definitely-not-a-flag"]);
    assert_eq!(out.status.code(), Some(2), "unknown flag is an internal error");
}

/// The real workspace stays lint-clean: this is the same invariant
/// `scripts/verify.sh` enforces, kept here so `cargo test` alone catches
/// regressions too.
#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    let (files, findings) = run(&[root.join("crates"), root.join("src")]);
    assert!(files > 80, "walked the whole workspace, saw {files} files");
    assert!(
        findings.is_empty(),
        "workspace must be lint-clean:\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
