//! Benchmark catalogue: the seven datasets of Table II and their statistics.

/// Application domain of a benchmark, which selects the generator profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Road traffic flow/occupancy (PEMS04, PEMS08, Traffic).
    Traffic,
    /// Electric load / transformer telemetry (Electricity, ETTh1, ETTm1).
    Electricity,
    /// Meteorological measurements (Weather).
    Environment,
}

/// Full description of a dataset instance to generate.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Human-readable name (e.g. `"PEMS08"`).
    pub name: String,
    /// Domain profile used by the generator.
    pub domain: Domain,
    /// Sampling interval in minutes.
    pub freq_minutes: usize,
    /// Total time steps `T`.
    pub len: usize,
    /// Number of entities `N`.
    pub entities: usize,
    /// Train/val/test split ratio (must sum to 10, e.g. `(6, 2, 2)`).
    pub split: (usize, usize, usize),
}

impl DatasetSpec {
    /// Time steps per day at this sampling rate.
    pub fn steps_per_day(&self) -> usize {
        (24 * 60) / self.freq_minutes
    }

    /// Index ranges `(train, val, test)` over `0..len` following the split
    /// ratio, in tenths, matching the paper's 6:2:2 / 7:1:2 conventions.
    pub fn split_points(&self) -> (std::ops::Range<usize>, std::ops::Range<usize>, std::ops::Range<usize>) {
        let (a, b, c) = self.split;
        assert_eq!(a + b + c, 10, "split ratio must sum to 10, got {:?}", self.split);
        let t1 = self.len * a / 10;
        let t2 = self.len * (a + b) / 10;
        (0..t1, t1..t2, t2..self.len)
    }
}

/// The seven benchmarks of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// PEMS04: traffic, 5-minute, 16 992 × 307, split 6:2:2.
    Pems04,
    /// PEMS08: traffic, 5-minute, 17 856 × 170, split 6:2:2.
    Pems08,
    /// ETTh1: transformer temperature, hourly, 14 400 × 7, split 6:2:2.
    Etth1,
    /// ETTm1: transformer temperature, 15-minute, 57 600 × 7, split 6:2:2.
    Ettm1,
    /// Traffic: road occupancy, hourly, 17 544 × 862, split 7:1:2.
    Traffic,
    /// Electricity: load, hourly, 26 304 × 321, split 7:1:2.
    Electricity,
    /// Weather: meteorology, 10-minute, 52 696 × 21, split 7:1:2.
    Weather,
}

impl Benchmark {
    /// All seven benchmarks in the paper's table order.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::Pems04,
        Benchmark::Pems08,
        Benchmark::Etth1,
        Benchmark::Ettm1,
        Benchmark::Traffic,
        Benchmark::Electricity,
        Benchmark::Weather,
    ];

    /// The paper-faithful specification (Table II statistics).
    pub fn spec(self) -> DatasetSpec {
        match self {
            Benchmark::Pems04 => DatasetSpec {
                name: "PEMS04".into(),
                domain: Domain::Traffic,
                freq_minutes: 5,
                len: 16_992,
                entities: 307,
                split: (6, 2, 2),
            },
            Benchmark::Pems08 => DatasetSpec {
                name: "PEMS08".into(),
                domain: Domain::Traffic,
                freq_minutes: 5,
                len: 17_856,
                entities: 170,
                split: (6, 2, 2),
            },
            Benchmark::Etth1 => DatasetSpec {
                name: "ETTh1".into(),
                domain: Domain::Electricity,
                freq_minutes: 60,
                len: 14_400,
                entities: 7,
                split: (6, 2, 2),
            },
            Benchmark::Ettm1 => DatasetSpec {
                name: "ETTm1".into(),
                domain: Domain::Electricity,
                freq_minutes: 15,
                len: 57_600,
                entities: 7,
                split: (6, 2, 2),
            },
            Benchmark::Traffic => DatasetSpec {
                name: "Traffic".into(),
                domain: Domain::Traffic,
                freq_minutes: 60,
                len: 17_544,
                entities: 862,
                split: (7, 1, 2),
            },
            Benchmark::Electricity => DatasetSpec {
                name: "Electricity".into(),
                domain: Domain::Electricity,
                freq_minutes: 60,
                len: 26_304,
                entities: 321,
                split: (7, 1, 2),
            },
            Benchmark::Weather => DatasetSpec {
                name: "Weather".into(),
                domain: Domain::Environment,
                freq_minutes: 10,
                len: 52_696,
                entities: 21,
                split: (7, 1, 2),
            },
        }
    }

    /// A laptop-scale version of this benchmark: entity count and length are
    /// clamped, everything else (domain profile, frequency, split) is kept.
    ///
    /// The experiments in `focus-bench` run on scaled specs so the full
    /// 8-model × 7-dataset matrix finishes on a CPU; EXPERIMENTS.md documents
    /// the scale used per experiment.
    pub fn scaled(self, max_entities: usize, max_len: usize) -> DatasetSpec {
        let mut spec = self.spec();
        spec.entities = spec.entities.min(max_entities);
        spec.len = spec.len.min(max_len);
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_statistics_match_paper() {
        let s = Benchmark::Pems08.spec();
        assert_eq!(s.len, 17_856);
        assert_eq!(s.entities, 170);
        assert_eq!(s.split, (6, 2, 2));
        assert_eq!(s.steps_per_day(), 288);

        let t = Benchmark::Traffic.spec();
        assert_eq!(t.entities, 862);
        assert_eq!(t.split, (7, 1, 2));
        assert_eq!(t.steps_per_day(), 24);

        let w = Benchmark::Weather.spec();
        assert_eq!(w.len, 52_696);
        assert_eq!(w.entities, 21);
        assert_eq!(w.steps_per_day(), 144);
    }

    #[test]
    fn split_points_partition_the_series() {
        for b in Benchmark::ALL {
            let s = b.spec();
            let (tr, va, te) = s.split_points();
            assert_eq!(tr.start, 0);
            assert_eq!(tr.end, va.start);
            assert_eq!(va.end, te.start);
            assert_eq!(te.end, s.len);
            assert!(tr.len() > va.len());
        }
    }

    #[test]
    fn scaled_clamps_but_preserves_profile() {
        let s = Benchmark::Traffic.scaled(16, 1_000);
        assert_eq!(s.entities, 16);
        assert_eq!(s.len, 1_000);
        assert_eq!(s.domain, Domain::Traffic);
        assert_eq!(s.split, (7, 1, 2));
        // Scaling never enlarges.
        let s2 = Benchmark::Etth1.scaled(100, 1_000_000);
        assert_eq!(s2.entities, 7);
        assert_eq!(s2.len, 14_400);
    }
}
