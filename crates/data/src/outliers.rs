//! Outlier injection for the robustness study (paper §VIII-E, Fig. 10).
//!
//! The paper perturbs the *training* data by replacing a fraction of points
//! with samples "from a distribution over three-times the real data's
//! standard deviation", then measures how forecast accuracy degrades.

use focus_tensor::{stats, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Replaces `ratio` of the points in `range` of each entity's series with
/// outliers drawn uniformly from `±[3σ_e, 5σ_e]` around the entity mean,
/// where `σ_e` is that entity's standard deviation over `range`.
///
/// Returns the perturbed copy; the input is untouched.
///
/// # Panics
/// If `ratio` is outside `[0, 1]` or `range` exceeds the series.
pub fn inject(
    data: &Tensor,
    range: std::ops::Range<usize>,
    ratio: f64,
    seed: u64,
) -> Tensor {
    assert!((0.0..=1.0).contains(&ratio), "ratio {ratio} outside [0, 1]");
    assert_eq!(data.rank(), 2, "inject expects [entities, len]");
    let (n, len) = (data.dims()[0], data.dims()[1]);
    assert!(range.end <= len, "range {range:?} exceeds series length {len}");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0071_1e25);
    let mut out = data.clone();
    for e in 0..n {
        let row_range = e * len + range.start..e * len + range.end;
        let (mean, std) = stats::mean_std(&data.data()[row_range.clone()]);
        let sigma = std.max(1e-6);
        for i in row_range {
            if rng.gen::<f64>() < ratio {
                let magnitude = rng.gen_range(3.0f32..5.0) * sigma;
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                out.data_mut()[i] = mean + sign * magnitude;
            }
        }
    }
    out
}

/// Fraction of points in `range` lying beyond `k` standard deviations of
/// each entity — a diagnostic used by tests and the Fig. 10 harness.
pub fn outlier_fraction(data: &Tensor, range: std::ops::Range<usize>, k: f32) -> f64 {
    assert_eq!(data.rank(), 2, "outlier_fraction expects [entities, len]");
    let (n, len) = (data.dims()[0], data.dims()[1]);
    let mut outliers = 0u64;
    let mut total = 0u64;
    for e in 0..n {
        let row = &data.data()[e * len + range.start..e * len + range.end];
        let (mean, std) = stats::mean_std(row);
        let sigma = std.max(1e-6);
        for &v in row {
            if (v - mean).abs() > k * sigma {
                outliers += 1;
            }
            total += 1;
        }
    }
    outliers as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_series() -> Tensor {
        let data: Vec<f32> = (0..2_000)
            .map(|t| (t as f32 * 0.05).sin())
            .chain((0..2_000).map(|t| (t as f32 * 0.03).cos()))
            .collect();
        Tensor::from_vec(data, &[2, 2_000])
    }

    #[test]
    fn zero_ratio_is_identity() {
        let x = smooth_series();
        let y = inject(&x, 0..2_000, 0.0, 1);
        assert_eq!(x.data(), y.data());
    }

    #[test]
    fn injected_fraction_tracks_ratio() {
        let x = smooth_series();
        for ratio in [0.02, 0.06, 0.10] {
            let y = inject(&x, 0..2_000, ratio, 2);
            // Count points that changed.
            let changed = x
                .data()
                .iter()
                .zip(y.data())
                .filter(|(a, b)| a != b)
                .count() as f64
                / x.numel() as f64;
            assert!(
                (changed - ratio).abs() < 0.02,
                "ratio {ratio}: changed {changed}"
            );
        }
    }

    #[test]
    fn outliers_exceed_three_sigma_of_clean_series() {
        let x = smooth_series();
        let clean_frac = outlier_fraction(&x, 0..2_000, 2.5);
        let y = inject(&x, 0..2_000, 0.08, 3);
        let dirty_frac = outlier_fraction(&y, 0..2_000, 2.5);
        assert!(
            dirty_frac > clean_frac + 0.04,
            "clean {clean_frac}, dirty {dirty_frac}"
        );
    }

    #[test]
    fn injection_respects_range() {
        let x = smooth_series();
        let y = inject(&x, 0..1_000, 0.2, 4);
        // The second half of every entity must be untouched.
        for e in 0..2 {
            let a = &x.data()[e * 2_000 + 1_000..(e + 1) * 2_000];
            let b = &y.data()[e * 2_000 + 1_000..(e + 1) * 2_000];
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_bad_ratio() {
        let x = smooth_series();
        let _ = inject(&x, 0..10, 1.5, 0);
    }
}
