//! Synthetic MTS generators.
//!
//! Each series is a sum of structured components chosen so that the
//! statistical properties FOCUS exploits — recurring segment motifs, grouped
//! inter-entity correlation, weekly/daily periodicity, slow trends — are
//! present with controllable strength:
//!
//! ```text
//! x[e, t] = amplitude_e · daily_e(t) · weekly(t) · event_g(t)
//!           + trend_e(t) + ar1_noise_e(t)
//! ```
//!
//! * `daily_e` mixes a small bank of **daily archetypes** (the latent
//!   "high-level events" of the paper's §III) with per-group weights and a
//!   per-entity phase jitter;
//! * `weekly` damps weekends for traffic/electricity domains;
//! * `event_g` injects occasional group-wide multiplicative bumps (incidents,
//!   heat waves) so dependencies exist *between* entities of a group;
//! * `trend_e` is a slow sinusoid plus linear drift (seasonality/aging);
//! * the observation noise is AR(1), heavier for weather.

use crate::spec::{DatasetSpec, Domain};
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of daily archetypes in the latent bank.
const N_ARCHETYPES: usize = 4;
/// Number of entity groups sharing archetype weights and events.
const N_GROUPS: usize = 8;

/// Generates the full `[entities, len]` series for `spec`,
/// deterministically in `(spec, seed)`.
pub fn generate(spec: &DatasetSpec, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_f0c5);
    let n = spec.entities;
    let t_len = spec.len;
    let spd = spec.steps_per_day();
    let profile = Profile::for_domain(spec.domain);

    // Group-level archetype mixture weights.
    let groups = n.clamp(1, N_GROUPS);
    let mut group_weights = vec![[0.0f32; N_ARCHETYPES]; groups];
    for w in &mut group_weights {
        let mut sum = 0.0;
        for x in w.iter_mut() {
            *x = rng.gen_range(0.05..1.0);
            sum += *x;
        }
        for x in w.iter_mut() {
            *x /= sum;
        }
    }

    // Group events: sparse multiplicative bumps with day-scale duration.
    let event_track = make_event_tracks(&mut rng, groups, t_len, spd, &profile);

    let mut data = vec![0.0f32; n * t_len];
    for e in 0..n {
        let g = e % groups;
        let phase: f32 = rng.gen_range(-0.5f32..0.5) * profile.phase_jitter;
        let amplitude: f32 = rng.gen_range(0.6..1.4);
        let trend_freq: f32 = rng.gen_range(0.5..1.5);
        let trend_amp: f32 = rng.gen_range(0.0..profile.trend_amp);
        let drift: f32 = rng.gen_range(-1.0f32..1.0) * profile.drift;
        let noise_std: f32 = profile.noise_std * rng.gen_range(0.7f32..1.3);

        let mut ar = 0.0f32;
        let row = &mut data[e * t_len..(e + 1) * t_len];
        for (t, out) in row.iter_mut().enumerate() {
            let tod = (t % spd) as f32 / spd as f32; // time of day in [0, 1)
            let day = t / spd;
            let dow = day % 7;

            // Daily pattern: group-weighted archetype mixture with phase jitter.
            let tod_shifted = (tod + phase / 24.0).rem_euclid(1.0);
            let mut daily = 0.0f32;
            for (a, &w) in group_weights[g].iter().enumerate() {
                daily += w * archetype(a, tod_shifted);
            }

            // Weekly modulation.
            let weekly = if dow >= 5 { profile.weekend_scale } else { 1.0 };

            // Group event bump.
            let event = event_track[g * t_len + t];

            // Slow trend: seasonal sinusoid + linear drift.
            let season = trend_amp
                * (2.0 * std::f32::consts::PI * trend_freq * t as f32 / t_len as f32).sin();
            let linear = drift * t as f32 / t_len as f32;

            // AR(1) observation noise.
            let (z, _) = gauss(&mut rng);
            ar = profile.ar_coeff * ar + z * noise_std;

            *out = amplitude * daily * weekly * event + season + linear + ar + profile.base_level;
        }
    }
    Tensor::from_vec(data, &[n, t_len])
}

/// One latent daily archetype evaluated at time-of-day `u ∈ [0, 1)`.
///
/// The bank covers the canonical shapes of the three domains: commuter
/// double peak, evening single peak, midday plateau and a smooth diurnal
/// sinusoid.
fn archetype(which: usize, u: f32) -> f32 {
    match which % N_ARCHETYPES {
        // Morning + evening commute peaks (traffic rush hours of Fig. 3).
        0 => bump(u, 8.0 / 24.0, 0.06) + 0.9 * bump(u, 18.0 / 24.0, 0.07),
        // Single evening peak (residential electricity).
        1 => 1.2 * bump(u, 20.0 / 24.0, 0.09),
        // Working-hours plateau (commercial load).
        2 => smoothstep(u, 8.0 / 24.0, 10.0 / 24.0) * (1.0 - smoothstep(u, 17.0 / 24.0, 19.5 / 24.0)),
        // Smooth diurnal cycle peaking mid-afternoon (temperature).
        _ => 0.5 * (1.0 + (2.0 * std::f32::consts::PI * (u - 0.625)).cos()),
    }
}

/// Gaussian bump centred at `c` with width `w`.
fn bump(u: f32, c: f32, w: f32) -> f32 {
    // Wrap distance on the daily circle.
    let d = (u - c).abs().min(1.0 - (u - c).abs());
    (-0.5 * (d / w) * (d / w)).exp()
}

/// Smoothstep rising from 0 at `lo` to 1 at `hi`.
fn smoothstep(u: f32, lo: f32, hi: f32) -> f32 {
    let x = ((u - lo) / (hi - lo)).clamp(0.0, 1.0);
    x * x * (3.0 - 2.0 * x)
}

/// Per-group multiplicative event tracks (flattened `[groups, len]`).
fn make_event_tracks(
    rng: &mut StdRng,
    groups: usize,
    t_len: usize,
    spd: usize,
    profile: &Profile,
) -> Vec<f32> {
    let mut track = vec![1.0f32; groups * t_len];
    for g in 0..groups {
        let mut t = 0;
        while t < t_len {
            if rng.gen::<f32>() < profile.event_rate {
                let dur = rng.gen_range(spd / 4..spd);
                let mag = 1.0 + rng.gen_range(-profile.event_mag..profile.event_mag);
                let end = (t + dur).min(t_len);
                for v in &mut track[g * t_len + t..g * t_len + end] {
                    *v = mag;
                }
                t = end;
            } else {
                t += spd / 4;
            }
        }
    }
    track
}

/// One standard-normal pair (Box–Muller).
fn gauss(rng: &mut StdRng) -> (f32, f32) {
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen::<f32>();
    let r = (-2.0 * u1.ln()).sqrt();
    let th = 2.0 * std::f32::consts::PI * u2;
    (r * th.cos(), r * th.sin())
}

/// Domain-specific generator parameters.
struct Profile {
    weekend_scale: f32,
    phase_jitter: f32,
    trend_amp: f32,
    drift: f32,
    noise_std: f32,
    ar_coeff: f32,
    event_rate: f32,
    event_mag: f32,
    base_level: f32,
}

impl Profile {
    fn for_domain(domain: Domain) -> Profile {
        match domain {
            Domain::Traffic => Profile {
                weekend_scale: 0.55,
                phase_jitter: 1.0,
                trend_amp: 0.05,
                drift: 0.05,
                noise_std: 0.06,
                ar_coeff: 0.5,
                event_rate: 0.02,
                event_mag: 0.35,
                base_level: 0.15,
            },
            Domain::Electricity => Profile {
                weekend_scale: 0.8,
                phase_jitter: 1.5,
                trend_amp: 0.2,
                drift: 0.15,
                noise_std: 0.05,
                ar_coeff: 0.7,
                event_rate: 0.015,
                event_mag: 0.25,
                base_level: 0.4,
            },
            Domain::Environment => Profile {
                weekend_scale: 1.0, // weather ignores weekdays
                phase_jitter: 0.5,
                trend_amp: 0.6,
                drift: 0.1,
                noise_std: 0.12,
                ar_coeff: 0.85,
                event_rate: 0.01,
                event_mag: 0.5,
                base_level: 0.5,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Benchmark;
    use focus_tensor::stats;

    fn small(b: Benchmark) -> Tensor {
        generate(&b.scaled(16, 2_000), 42)
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = Benchmark::Pems08.scaled(8, 500);
        let a = generate(&spec, 1);
        let b = generate(&spec, 1);
        let c = generate(&spec, 2);
        assert_eq!(a.data(), b.data());
        assert!(a.max_abs_diff(&c) > 1e-3, "different seeds must differ");
    }

    #[test]
    fn shape_matches_spec() {
        let t = small(Benchmark::Traffic);
        assert_eq!(t.dims(), &[16, 2_000]);
        assert!(t.all_finite());
    }

    #[test]
    fn has_daily_periodicity() {
        // Autocorrelation at one-day lag should clearly beat a half-day lag
        // for traffic data.
        let spec = Benchmark::Pems08.scaled(4, 288 * 14);
        let t = generate(&spec, 3);
        let spd = spec.steps_per_day();
        let row = t.row(0);
        let day = lagged_corr(row, spd);
        let half = lagged_corr(row, spd / 2);
        assert!(day > half, "day-lag corr {day} <= half-day {half}");
        assert!(day > 0.3, "day-lag corr too weak: {day}");
    }

    #[test]
    fn group_members_are_correlated() {
        // Entities 0 and 8 share a group (e % 8); 0 and 1 do not.
        let spec = Benchmark::Pems08.scaled(16, 288 * 10);
        let t = generate(&spec, 4);
        let same = stats::pearson(t.row(0), t.row(8));
        assert!(same > 0.4, "same-group corr too weak: {same}");
    }

    #[test]
    fn weekday_weekend_differ_for_traffic() {
        let spec = Benchmark::Traffic.scaled(4, 24 * 21);
        let t = generate(&spec, 5);
        let spd = spec.steps_per_day();
        let row = t.row(0);
        let mut weekday = 0.0f64;
        let mut weekend = 0.0f64;
        let (mut nd, mut ne) = (0u32, 0u32);
        for (i, &v) in row.iter().enumerate() {
            if (i / spd) % 7 >= 5 {
                weekend += v as f64;
                ne += 1;
            } else {
                weekday += v as f64;
                nd += 1;
            }
        }
        let (wd, we) = (weekday / nd as f64, weekend / ne as f64);
        assert!(wd > we, "weekday mean {wd} should exceed weekend mean {we}");
    }

    #[test]
    fn all_benchmarks_generate() {
        for b in Benchmark::ALL {
            let t = generate(&b.scaled(4, 600), 6);
            assert!(t.all_finite());
            assert!(t.var_all() > 1e-4, "{b:?} produced a flat series");
        }
    }

    fn lagged_corr(x: &[f32], lag: usize) -> f32 {
        stats::pearson(&x[..x.len() - lag], &x[lag..])
    }
}
