//! Novelty scoring for the generalization study (paper §VIII-D, Fig. 9).
//!
//! The paper uses t-SNE to *visualise* that the test split contains segment
//! patterns absent from the training split, then measures forecast accuracy
//! on those instances. The measurable part — identifying test windows whose
//! segments are far from everything seen in training — only needs a distance
//! to the nearest reference segment, which is what this module computes.

use focus_tensor::{stats, Tensor};

/// Splits a `[.., len]` row-major series row into consecutive length-`p`
/// segments (the tail shorter than `p` is dropped).
pub fn segment_row(row: &[f32], p: usize) -> Vec<&[f32]> {
    assert!(p > 0, "segment length must be positive");
    row.chunks_exact(p).collect()
}

/// Minimum squared Euclidean distance from `segment` to any row of
/// `reference: [k, p]`.
///
/// # Panics
/// If `reference` is empty or widths mismatch.
pub fn nearest_distance(segment: &[f32], reference: &Tensor) -> f32 {
    assert_eq!(reference.rank(), 2, "reference must be [k, p]");
    let k = reference.dims()[0];
    assert!(k > 0, "empty reference set");
    (0..k)
        .map(|j| stats::sq_euclidean(segment, reference.row(j)))
        .fold(f32::INFINITY, f32::min)
}

/// Novelty of a window `x: [N, L]` against a reference segment set
/// `[k, p]`: the **maximum over segments** of the nearest-reference
/// distance. High values mean the window contains at least one segment shape
/// unseen in training.
pub fn window_novelty(x: &Tensor, reference: &Tensor, p: usize) -> f32 {
    assert_eq!(x.rank(), 2, "window must be [entities, lookback]");
    let mut worst = 0.0f32;
    for e in 0..x.dims()[0] {
        for seg in segment_row(x.row(e), p) {
            let d = nearest_distance(seg, reference);
            if d > worst {
                worst = d;
            }
        }
    }
    worst
}

/// Ranks `windows` by descending novelty and returns the indices of the top
/// `count`.
pub fn most_novel_windows(
    windows: &[Tensor],
    reference: &Tensor,
    p: usize,
    count: usize,
) -> Vec<usize> {
    let mut scored: Vec<(usize, f32)> = windows
        .iter()
        .enumerate()
        .map(|(i, w)| (i, window_novelty(w, reference, p)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    scored.into_iter().take(count).map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_row_drops_tail() {
        let row = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let segs = segment_row(&row, 2);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1], &[3.0, 4.0]);
    }

    #[test]
    fn nearest_distance_zero_for_member() {
        let reference = Tensor::from_vec(vec![1.0, 2.0, 5.0, 6.0], &[2, 2]);
        assert_eq!(nearest_distance(&[5.0, 6.0], &reference), 0.0);
        assert!(nearest_distance(&[1.0, 3.0], &reference) > 0.0);
    }

    #[test]
    fn novel_window_scores_higher() {
        let reference = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0], &[2, 2]);
        let familiar = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0], &[1, 4]);
        let novel = Tensor::from_vec(vec![0.0, 0.0, 9.0, -9.0], &[1, 4]);
        let nf = window_novelty(&familiar, &reference, 2);
        let nn = window_novelty(&novel, &reference, 2);
        assert!(nn > nf, "novel {nn} <= familiar {nf}");
    }

    #[test]
    fn ranking_returns_most_novel_first() {
        let reference = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
        let windows = vec![
            Tensor::from_vec(vec![0.1, 0.1], &[1, 2]),
            Tensor::from_vec(vec![5.0, 5.0], &[1, 2]),
            Tensor::from_vec(vec![1.0, 1.0], &[1, 2]),
        ];
        let top = most_novel_windows(&windows, &reference, 2, 2);
        assert_eq!(top, vec![1, 2]);
    }
}
