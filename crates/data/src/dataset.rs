//! Dataset container: splits, train-statistics normalisation and supervised
//! windowing.

use crate::spec::DatasetSpec;
use crate::synth;
use focus_tensor::{stats, Tensor};

/// Which portion of the series a window is drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Split {
    /// The leading train portion.
    Train,
    /// The validation portion.
    Val,
    /// The trailing test portion.
    Test,
}

/// A supervised forecasting sample: lookback `x: [N, L]` and target
/// `y: [N, L_f]`.
#[derive(Clone, Debug)]
pub struct Window {
    /// Historical input, `[entities, lookback]`.
    pub x: Tensor,
    /// Future target, `[entities, horizon]`.
    pub y: Tensor,
    /// Start index of the lookback in the full series.
    pub start: usize,
}

/// A generated multivariate series with its normalisation state.
///
/// Normalisation follows the paper (§VIII-A): z-score per entity using
/// statistics **from the training split only**, applied to the whole series.
pub struct MtsDataset {
    spec: DatasetSpec,
    /// Normalised data, `[entities, len]`.
    data: Tensor,
    /// Per-entity `(mean, std)` computed on the train split.
    train_stats: Vec<(f32, f32)>,
}

impl MtsDataset {
    /// Generates and normalises a dataset for `spec` with the given seed.
    pub fn generate(spec: DatasetSpec, seed: u64) -> Self {
        let raw = synth::generate(&spec, seed);
        Self::from_raw(spec, raw)
    }

    /// Wraps an existing raw `[entities, len]` series (e.g. a perturbed copy
    /// from [`crate::outliers`]), normalising with train-split statistics.
    ///
    /// # Panics
    /// If `raw`'s shape does not match `spec`.
    pub fn from_raw(spec: DatasetSpec, raw: Tensor) -> Self {
        assert_eq!(
            raw.dims(),
            &[spec.entities, spec.len],
            "raw data shape {:?} does not match spec [{}, {}]",
            raw.dims(),
            spec.entities,
            spec.len
        );
        let (train_range, _, _) = spec.split_points();
        let mut data = raw;
        let len = spec.len;
        let mut train_stats = Vec::with_capacity(spec.entities);
        for e in 0..spec.entities {
            let row = &data.data()[e * len..(e + 1) * len];
            let (mean, std) = stats::mean_std(&row[train_range.clone()]);
            train_stats.push((mean, std));
        }
        for (e, &(mean, std)) in train_stats.iter().enumerate() {
            stats::zscore_in_place(&mut data.data_mut()[e * len..(e + 1) * len], mean, std);
        }
        MtsDataset {
            spec,
            data,
            train_stats,
        }
    }

    /// The dataset specification.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The normalised series, `[entities, len]`.
    pub fn data(&self) -> &Tensor {
        &self.data
    }

    /// Per-entity `(mean, std)` of the training split (pre-normalisation).
    pub fn train_stats(&self) -> &[(f32, f32)] {
        &self.train_stats
    }

    /// The index range of a split.
    pub fn range(&self, split: Split) -> std::ops::Range<usize> {
        let (tr, va, te) = self.spec.split_points();
        match split {
            Split::Train => tr,
            Split::Val => va,
            Split::Test => te,
        }
    }

    /// The normalised training-split series of every entity, as one
    /// `[entities, train_len]` tensor — the offline clustering input.
    pub fn train_matrix(&self) -> Tensor {
        let r = self.range(Split::Train);
        let len = self.spec.len;
        let mut out = Vec::with_capacity(self.spec.entities * r.len());
        for e in 0..self.spec.entities {
            out.extend_from_slice(&self.data.data()[e * len + r.start..e * len + r.end]);
        }
        Tensor::from_vec(out, &[self.spec.entities, r.len()])
    }

    /// Supervised windows of `(lookback, horizon)` drawn from `split` at the
    /// given stride. Windows never cross the split boundary. The final
    /// admissible start is always included even when `stride` does not land
    /// on it exactly, so evaluation covers the tail of the split; the last
    /// two windows may therefore overlap by more than `stride` allows
    /// elsewhere.
    pub fn windows(&self, split: Split, lookback: usize, horizon: usize, stride: usize) -> Vec<Window> {
        assert!(stride > 0, "stride must be positive");
        let r = self.range(split);
        let need = lookback + horizon;
        let mut out = Vec::new();
        if r.len() < need {
            return out;
        }
        let mut s = r.start;
        while s + need <= r.end {
            out.push(self.window_at(s, lookback, horizon));
            s += stride;
        }
        let final_start = r.end - need;
        if out.last().is_some_and(|w| w.start < final_start) {
            out.push(self.window_at(final_start, lookback, horizon));
        }
        out
    }

    /// One window starting at absolute index `start`.
    ///
    /// # Panics
    /// If the window would run past the series end.
    pub fn window_at(&self, start: usize, lookback: usize, horizon: usize) -> Window {
        let len = self.spec.len;
        assert!(
            start + lookback + horizon <= len,
            "window [{start}, {}) exceeds series length {len}",
            start + lookback + horizon
        );
        let n = self.spec.entities;
        let mut x = Vec::with_capacity(n * lookback);
        let mut y = Vec::with_capacity(n * horizon);
        for e in 0..n {
            let row = &self.data.data()[e * len..(e + 1) * len];
            x.extend_from_slice(&row[start..start + lookback]);
            y.extend_from_slice(&row[start + lookback..start + lookback + horizon]);
        }
        Window {
            x: Tensor::from_vec(x, &[n, lookback]),
            y: Tensor::from_vec(y, &[n, horizon]),
            start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Benchmark;

    fn ds() -> MtsDataset {
        MtsDataset::generate(Benchmark::Pems08.scaled(8, 1_000), 11)
    }

    #[test]
    fn train_split_is_standardised() {
        let d = ds();
        let tm = d.train_matrix();
        assert_eq!(tm.dims(), &[8, 600]);
        for e in 0..8 {
            let (m, s) = focus_tensor::stats::mean_std(tm.row(e));
            assert!(m.abs() < 1e-4, "entity {e} train mean {m}");
            assert!((s - 1.0).abs() < 1e-3, "entity {e} train std {s}");
        }
    }

    #[test]
    fn windows_respect_split_boundaries() {
        let d = ds();
        let (lookback, horizon) = (48, 12);
        for split in [Split::Train, Split::Val, Split::Test] {
            let r = d.range(split);
            for w in d.windows(split, lookback, horizon, 16) {
                assert!(w.start >= r.start);
                assert!(w.start + lookback + horizon <= r.end);
                assert_eq!(w.x.dims(), &[8, lookback]);
                assert_eq!(w.y.dims(), &[8, horizon]);
            }
        }
    }

    #[test]
    fn window_target_follows_input() {
        let d = ds();
        let w = d.window_at(100, 48, 12);
        // y's first value of entity 0 must equal the series at index 148.
        let expect = d.data().row(0)[148];
        assert_eq!(w.y.at2(0, 0), expect);
        assert_eq!(w.x.at2(0, 47), d.data().row(0)[147]);
    }

    #[test]
    fn too_short_split_yields_no_windows() {
        let d = MtsDataset::generate(Benchmark::Etth1.scaled(4, 100), 1);
        // Val split is 20 steps; a 48+12 window cannot fit.
        assert!(d.windows(Split::Val, 48, 12, 1).is_empty());
    }

    #[test]
    fn stride_controls_window_count() {
        let d = ds();
        let w1 = d.windows(Split::Train, 48, 12, 1).len();
        let w10 = d.windows(Split::Train, 48, 12, 10).len();
        assert!(w1 >= 9 * w10, "stride 1: {w1}, stride 10: {w10}");
    }

    #[test]
    fn non_dividing_stride_still_covers_the_tail() {
        // Train split is 0..600; with need = 60 the final admissible start
        // is 540. Stride 64 steps 0, 64, …, 512 — the old code stopped
        // there and never evaluated the last 28 steps of the split.
        let d = ds();
        let ws = d.windows(Split::Train, 48, 12, 64);
        assert_eq!(ws.len(), 10, "9 strided starts plus the appended tail window");
        let starts: Vec<usize> = ws.iter().map(|w| w.start).collect();
        assert_eq!(starts[..9], [0, 64, 128, 192, 256, 320, 384, 448, 512]);
        assert_eq!(*starts.last().expect("non-empty"), 540, "tail window must end at the split end");
        // Starts stay strictly increasing: no duplicate tail when the
        // stride lands on the final start exactly.
        let exact = d.windows(Split::Train, 48, 12, 60);
        let exact_starts: Vec<usize> = exact.iter().map(|w| w.start).collect();
        assert!(exact_starts.windows(2).all(|p| p[0] < p[1]), "{exact_starts:?}");
        assert_eq!(*exact_starts.last().expect("non-empty"), 540);
        assert_eq!(exact.len(), 10, "dividing stride gains no duplicate window");
    }
}
