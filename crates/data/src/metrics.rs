//! Forecast accuracy metrics: MSE and MAE with `f64` accumulation.

use focus_tensor::Tensor;

/// Mean squared error between same-shape tensors.
///
/// # Panics
/// If shapes differ or tensors are empty.
pub fn mse(pred: &Tensor, target: &Tensor) -> f64 {
    assert!(
        pred.shape().same_as(target.shape()),
        "mse shape mismatch: {} vs {}",
        pred.shape(),
        target.shape()
    );
    assert!(pred.numel() > 0, "mse of empty tensors");
    let ss: f64 = pred
        .data()
        .iter()
        .zip(target.data())
        .map(|(&p, &t)| {
            let d = (p - t) as f64;
            d * d
        })
        .sum();
    ss / pred.numel() as f64
}

/// Mean absolute error between same-shape tensors.
///
/// # Panics
/// If shapes differ or tensors are empty.
pub fn mae(pred: &Tensor, target: &Tensor) -> f64 {
    assert!(
        pred.shape().same_as(target.shape()),
        "mae shape mismatch: {} vs {}",
        pred.shape(),
        target.shape()
    );
    assert!(pred.numel() > 0, "mae of empty tensors");
    let s: f64 = pred
        .data()
        .iter()
        .zip(target.data())
        .map(|(&p, &t)| ((p - t) as f64).abs())
        .sum();
    s / pred.numel() as f64
}

/// Streaming accumulator for evaluating a model over many windows.
#[derive(Default, Clone, Copy, Debug)]
pub struct Metrics {
    sq_sum: f64,
    abs_sum: f64,
    count: u64,
}

impl Metrics {
    /// An empty accumulator.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Accumulates one `(prediction, target)` pair.
    pub fn update(&mut self, pred: &Tensor, target: &Tensor) {
        assert!(
            pred.shape().same_as(target.shape()),
            "Metrics::update shape mismatch: {} vs {}",
            pred.shape(),
            target.shape()
        );
        for (&p, &t) in pred.data().iter().zip(target.data()) {
            let d = (p - t) as f64;
            self.sq_sum += d * d;
            self.abs_sum += d.abs();
        }
        self.count += pred.numel() as u64;
    }

    /// Number of scalar points accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean squared error over everything accumulated so far.
    ///
    /// # Panics
    /// If nothing has been accumulated.
    pub fn mse(&self) -> f64 {
        assert!(self.count > 0, "no data accumulated");
        self.sq_sum / self.count as f64
    }

    /// Mean absolute error over everything accumulated so far.
    ///
    /// # Panics
    /// If nothing has been accumulated.
    pub fn mae(&self) -> f64 {
        assert!(self.count > 0, "no data accumulated");
        self.abs_sum / self.count as f64
    }

    /// Root mean squared error over everything accumulated so far.
    ///
    /// # Panics
    /// If nothing has been accumulated.
    pub fn rmse(&self) -> f64 {
        self.mse().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_and_mae_known_values() {
        let p = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let t = Tensor::from_vec(vec![0.0, 2.0, 5.0], &[3]);
        assert!((mse(&p, &t) - 5.0 / 3.0).abs() < 1e-12);
        assert!((mae(&p, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_is_zero() {
        let p = Tensor::from_vec(vec![1.5, -2.0], &[2]);
        assert_eq!(mse(&p, &p), 0.0);
        assert_eq!(mae(&p, &p), 0.0);
    }

    #[test]
    fn accumulator_matches_batch_computation() {
        let p1 = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let t1 = Tensor::from_vec(vec![0.0, 0.0], &[2]);
        let p2 = Tensor::from_vec(vec![3.0], &[1]);
        let t2 = Tensor::from_vec(vec![0.0], &[1]);
        let mut m = Metrics::new();
        m.update(&p1, &t1);
        m.update(&p2, &t2);
        assert_eq!(m.count(), 3);
        assert!((m.mse() - (1.0 + 4.0 + 9.0) / 3.0).abs() < 1e-12);
        assert!((m.mae() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no data accumulated")]
    fn empty_accumulator_panics() {
        Metrics::new().mse();
    }

    #[test]
    fn rmse_is_sqrt_of_mse() {
        let mut m = Metrics::new();
        m.update(
            &Tensor::from_vec(vec![3.0, 0.0], &[2]),
            &Tensor::from_vec(vec![0.0, 4.0], &[2]),
        );
        assert!((m.mse() - 12.5).abs() < 1e-12);
        assert!((m.rmse() - 12.5f64.sqrt()).abs() < 1e-12);
    }
}
