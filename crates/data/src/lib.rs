//! # focus-data
//!
//! Dataset substrate for the FOCUS reproduction: synthetic stand-ins for the
//! seven public benchmarks of Table II, plus the normalisation, windowing,
//! metric and perturbation machinery every experiment shares.
//!
//! ## Why synthetic data
//!
//! The original PEMS04/PEMS08/Traffic/Electricity/Weather/ETT files are not
//! available in this offline environment, so [`synth`] generates series with
//! the same *structure* the paper's method exploits (see DESIGN.md §4):
//!
//! * **recurring segment motifs** — each entity's day is a mixture of a small
//!   set of latent daily archetypes (commute double-peak, evening peak, …),
//!   exactly the "high-level events" FOCUS's offline clustering discovers;
//! * **inter-entity correlation** — entities are grouped; group members share
//!   archetype weights and event bumps, giving the entity-branch something to
//!   model;
//! * **long-range temporal structure** — weekly modulation and slow trends
//!   create dependencies far beyond one segment;
//! * **realistic noise** — AR(1) observation noise, heteroscedastic per
//!   domain.
//!
//! Every generator is deterministic in `(benchmark, seed)`.
//!
//! ```
//! use focus_data::{Benchmark, MtsDataset};
//!
//! // A laptop-scale PEMS08 stand-in: 32 entities, ~20 days of 5-minute data.
//! let ds = MtsDataset::generate(Benchmark::Pems08.scaled(32, 5_760), 7);
//! let windows = ds.windows(focus_data::Split::Train, 96, 24, 24);
//! assert!(!windows.is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod dataset;
pub mod metrics;
pub mod novelty;
pub mod outliers;
pub mod spec;
pub mod synth;

pub use dataset::{MtsDataset, Split, Window};
pub use metrics::{mae, mse, Metrics};
pub use spec::{Benchmark, DatasetSpec, Domain};
