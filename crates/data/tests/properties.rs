//! Property-based tests for dataset invariants.

use focus_data::{mae, mse, outliers, Benchmark, Metrics, MtsDataset, Split};
use focus_tensor::{stats, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn windows_tile_without_leaking_across_splits(
        seed in 0u64..1000,
        lookback in 16usize..48,
        horizon in 4usize..16,
        stride in 1usize..24,
    ) {
        let ds = MtsDataset::generate(Benchmark::Pems08.scaled(3, 900), seed);
        for split in [Split::Train, Split::Val, Split::Test] {
            let r = ds.range(split);
            for w in ds.windows(split, lookback, horizon, stride) {
                prop_assert!(w.start >= r.start);
                prop_assert!(w.start + lookback + horizon <= r.end);
            }
        }
    }

    #[test]
    fn train_stats_standardise_only_train(seed in 0u64..1000) {
        let ds = MtsDataset::generate(Benchmark::Etth1.scaled(4, 1_000), seed);
        let tm = ds.train_matrix();
        for e in 0..4 {
            let (m, s) = stats::mean_std(tm.row(e));
            prop_assert!(m.abs() < 1e-3, "entity {e} train mean {m}");
            prop_assert!((s - 1.0).abs() < 1e-2, "entity {e} train std {s}");
        }
        // The test region generally has non-zero mean (distribution shift is
        // allowed) but must stay finite.
        prop_assert!(ds.data().all_finite());
    }

    #[test]
    fn generation_is_deterministic(seed in 0u64..1000) {
        let spec = Benchmark::Weather.scaled(3, 700);
        let a = MtsDataset::generate(spec.clone(), seed);
        let b = MtsDataset::generate(spec, seed);
        prop_assert_eq!(a.data().data(), b.data().data());
    }

    #[test]
    fn outlier_injection_is_bounded_and_targeted(ratio in 0.0f64..0.3, seed in 0u64..100) {
        let x = focus_data::synth::generate(&Benchmark::Pems04.scaled(2, 600), seed);
        let y = outliers::inject(&x, 100..500, ratio, seed);
        prop_assert!(y.all_finite());
        // Values outside the injected range are untouched.
        for e in 0..2 {
            prop_assert_eq!(&x.data()[e * 600..e * 600 + 100], &y.data()[e * 600..e * 600 + 100]);
            prop_assert_eq!(&x.data()[e * 600 + 500..(e + 1) * 600], &y.data()[e * 600 + 500..(e + 1) * 600]);
        }
        // Changed fraction tracks the requested ratio.
        let changed = x.data().iter().zip(y.data()).filter(|(a, b)| a != b).count() as f64;
        let eligible = (2 * 400) as f64;
        prop_assert!((changed / eligible - ratio).abs() < 0.08);
    }

    #[test]
    fn streaming_metrics_match_one_shot_on_any_partition(
        pred in prop::collection::vec(-10.0f32..10.0, 96),
        target in prop::collection::vec(-10.0f32..10.0, 96),
        n in 1usize..96,
        chunks in prop::collection::vec(1usize..9, 24),
    ) {
        // Feeding the same point stream through `Metrics` in arbitrary window
        // chunks must reproduce the one-shot mse/mae on the concatenation
        // EXACTLY: both paths fold the same f64 additions in the same order,
        // so this is bitwise equality, not an epsilon comparison.
        let pred = &pred[..n];
        let target = &target[..n];
        let mut m = Metrics::new();
        let mut at = 0usize;
        let mut cuts = chunks.iter().cycle();
        while at < n {
            let take = (*cuts.next().expect("cycle never ends")).min(n - at);
            m.update(
                &Tensor::from_vec(pred[at..at + take].to_vec(), &[take]),
                &Tensor::from_vec(target[at..at + take].to_vec(), &[take]),
            );
            at += take;
        }
        let p = Tensor::from_vec(pred.to_vec(), &[n]);
        let t = Tensor::from_vec(target.to_vec(), &[n]);
        prop_assert_eq!(m.count(), n as u64);
        prop_assert_eq!(m.mse().to_bits(), mse(&p, &t).to_bits(), "mse {} vs {}", m.mse(), mse(&p, &t));
        prop_assert_eq!(m.mae().to_bits(), mae(&p, &t).to_bits(), "mae {} vs {}", m.mae(), mae(&p, &t));
    }

    #[test]
    fn window_xy_are_contiguous(seed in 0u64..500, start in 0usize..100) {
        let ds = MtsDataset::generate(Benchmark::Ettm1.scaled(2, 600), seed);
        let w = ds.window_at(start, 32, 8);
        // y immediately follows x in the underlying series.
        for e in 0..2 {
            let row = ds.data().row(e);
            prop_assert_eq!(w.x.row(e), &row[start..start + 32]);
            prop_assert_eq!(w.y.row(e), &row[start + 32..start + 40]);
        }
    }
}
