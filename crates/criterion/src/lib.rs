//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access, so this crate provides the
//! surface the workspace's `harness = false` benches use: [`Criterion`],
//! benchmark groups with `sample_size`/`measurement_time`/`warm_up_time`/
//! `throughput`, [`BenchmarkId`], `bench_function`/`bench_with_input`, and
//! [`Bencher::iter`], plus the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! Measurement model: each benchmark is warmed up for `warm_up_time`, then
//! timed in batches until `measurement_time` elapses (or at least
//! `sample_size` batches have run). Mean, best and worst batch times are
//! printed to stdout — no HTML reports, statistics or comparison baselines.

#![forbid(unsafe_code)]

use focus_trace::clock;
use std::fmt::{self, Display};
use std::time::Duration;

/// Top-level benchmark driver; one per binary.
#[derive(Default)]
pub struct Criterion {
    default_cfg: MeasureConfig,
}

impl Criterion {
    /// Sets the default minimum number of timed batches (builder form, for
    /// `criterion_group! { config = ... }`).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_cfg.sample_size = n.max(1);
        self
    }

    /// Sets the default measurement budget (builder form).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.default_cfg.measurement_time = d;
        self
    }

    /// Sets the default warm-up budget (builder form).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.default_cfg.warm_up_time = d;
        self
    }
}

#[derive(Clone, Copy)]
struct MeasureConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            cfg: self.default_cfg,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_cfg, f);
        self
    }
}

/// Units of work per iteration, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: MeasureConfig,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of timed batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Records the per-iteration workload (printed alongside timings).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let label = match t {
            Throughput::Elements(n) => format!("{n} elements/iter"),
            Throughput::Bytes(n) => format!("{n} bytes/iter"),
        };
        println!("{}: throughput {}", self.name, label);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.cfg, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.cfg, |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalises reports here; the shim prints as it
    /// goes, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark's identifier: a function name, a parameter, or both.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// The display form.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the closure under test; call [`Bencher::iter`] with the payload.
pub struct Bencher {
    /// Batch time samples collected so far (one per `iter` batch).
    samples: Vec<Duration>,
    iters_per_batch: u64,
    mode: Mode,
}

enum Mode {
    WarmUp { until_ns: u64 },
    Measure,
}

impl Bencher {
    /// Times `routine`, running it in calibrated batches. All clock reads go
    /// through `focus_trace::clock` — the workspace's one audited timer.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::WarmUp { until_ns } => {
                // Also calibrates the batch size to ≥ ~1ms per batch.
                let mut iters = 0u64;
                let start = clock::now_ns();
                while clock::now_ns() < until_ns {
                    std::hint::black_box(routine());
                    iters += 1;
                }
                let elapsed_ns = (clock::now_ns().saturating_sub(start)).max(1);
                let per_iter = elapsed_ns / iters.max(1);
                self.iters_per_batch = (1_000_000 / per_iter.max(1)).clamp(1, 1 << 20);
            }
            Mode::Measure => {
                let start = clock::now_ns();
                for _ in 0..self.iters_per_batch {
                    std::hint::black_box(routine());
                }
                self.samples
                    .push(Duration::from_nanos(clock::now_ns().saturating_sub(start)));
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, cfg: MeasureConfig, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_batch: 1,
        mode: Mode::WarmUp {
            until_ns: clock::now_ns() + cfg.warm_up_time.as_nanos() as u64,
        },
    };
    f(&mut b);

    b.mode = Mode::Measure;
    let deadline = clock::now_ns() + cfg.measurement_time.as_nanos() as u64;
    while b.samples.len() < cfg.sample_size || clock::now_ns() < deadline {
        f(&mut b);
        // Hard cap so pathological fast benches don't loop forever.
        if b.samples.len() >= 10_000 {
            break;
        }
    }

    let iters = b.iters_per_batch.max(1);
    let per_iter = |d: &Duration| d.as_nanos() as f64 / iters as f64;
    let mean = b.samples.iter().map(per_iter).sum::<f64>() / b.samples.len().max(1) as f64;
    let best = b.samples.iter().map(per_iter).fold(f64::INFINITY, f64::min);
    let worst = b.samples.iter().map(per_iter).fold(0.0, f64::max);
    println!(
        "{name}: mean {} (best {}, worst {}, {} samples × {iters} iters)",
        fmt_ns(mean),
        fmt_ns(best),
        fmt_ns(worst),
        b.samples.len(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Exposed for API compatibility; prefer `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runnable group. Supports both the
/// positional form (`criterion_group!(benches, f, g)`) and the configured
/// form (`criterion_group! { name = benches; config = ...; targets = f, g }`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(50));
        group.warm_up_time(Duration::from_millis(10));
        let mut count = 0u64;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
