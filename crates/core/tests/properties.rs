//! Property-based tests for the FOCUS model's structural invariants.

use focus_autograd::{Graph, ParamStore};
use focus_cluster::{Objective, Prototypes};
use focus_core::protoattn::{Assignment, ProtoAttn};
use focus_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const P: usize = 4;
const K: usize = 3;

fn prototypes() -> Prototypes {
    Prototypes::from_centers(
        Tensor::from_vec(
            vec![
                -1.0, -0.3, 0.3, 1.0, // rising
                1.0, 0.3, -0.3, -1.0, // falling
                0.0, 1.0, 0.0, -1.0, // peak
            ],
            &[K, P],
        ),
        Objective::rec_corr(0.2),
    )
}

fn segments(b: usize, l: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-3.0f32..3.0, b * l * P)
        .prop_map(move |v| Tensor::from_vec(v, &[b, l, P]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hard_assignment_rows_are_one_hot(segs in segments(2, 5)) {
        let protos = prototypes();
        let a = Assignment::Hard.matrix(&segs, &protos);
        for b in 0..2 {
            for i in 0..5 {
                let row: Vec<f32> = (0..K).map(|j| a.at3(b, i, j)).collect();
                let ones = row.iter().filter(|&&v| v == 1.0).count();
                let zeros = row.iter().filter(|&&v| v == 0.0).count();
                prop_assert_eq!(ones, 1);
                prop_assert_eq!(zeros, K - 1);
            }
        }
    }

    #[test]
    fn soft_assignment_approaches_hard_as_temperature_drops(segs in segments(1, 4)) {
        let protos = prototypes();
        let hard = Assignment::Hard.matrix(&segs, &protos);
        let cold = Assignment::Soft { temperature: 1e-3 }.matrix(&segs, &protos);
        // At near-zero temperature the soft distribution concentrates on the
        // hard choice.
        for i in 0..4 {
            let hard_j = (0..K).max_by(|&a, &b| hard.at3(0, i, a).total_cmp(&hard.at3(0, i, b))).unwrap();
            prop_assert!(cold.at3(0, i, hard_j) > 0.95, "segment {i} not concentrated");
        }
    }

    #[test]
    fn protoattn_output_is_bucket_constant(segs in segments(1, 6)) {
        // Eq. 19: identical assignment ⇒ identical ProtoAttn output rows.
        let protos = prototypes();
        let mut rng = StdRng::seed_from_u64(9);
        let mut ps = ParamStore::new();
        let pa = ProtoAttn::new(&mut ps, "pa", &protos, 8, &mut rng);
        let plan = Assignment::Hard.plan(&segs, &protos);
        let a = plan.to_matrix();
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let seg_v = g.constant(segs.clone());
        let out = pa.forward(&mut g, &pv, seg_v, &plan);
        let assigned: Vec<usize> = (0..6)
            .map(|i| (0..K).position(|j| a.at3(0, i, j) == 1.0).unwrap())
            .collect();
        for i in 0..6 {
            for j in (i + 1)..6 {
                if assigned[i] == assigned[j] {
                    let ri: Vec<f32> = (0..8).map(|d| g.value(out).at3(0, i, d)).collect();
                    let rj: Vec<f32> = (0..8).map(|d| g.value(out).at3(0, j, d)).collect();
                    prop_assert_eq!(ri, rj);
                }
            }
        }
    }

    #[test]
    fn protoattn_is_permutation_equivariant(segs in segments(1, 5)) {
        // Reversing the segment order must reverse the outputs (ProtoAttn
        // itself carries no positional term; position enters via the
        // embedding upstream).
        let protos = prototypes();
        let mut rng = StdRng::seed_from_u64(10);
        let mut ps = ParamStore::new();
        let pa = ProtoAttn::new(&mut ps, "pa", &protos, 6, &mut rng);

        let run = |input: &Tensor| -> Tensor {
            let plan = Assignment::Hard.plan(input, &protos);
            let mut g = Graph::new();
            let pv = ps.register(&mut g);
            let seg_v = g.constant(input.clone());
            let out = pa.forward(&mut g, &pv, seg_v, &plan);
            g.value(out).clone()
        };

        let forward = run(&segs);
        let mut rev_data = Vec::with_capacity(segs.numel());
        for i in (0..5).rev() {
            rev_data.extend_from_slice(&segs.data()[i * P..(i + 1) * P]);
        }
        let reversed = run(&Tensor::from_vec(rev_data, &[1, 5, P]));
        for i in 0..5 {
            for d in 0..6 {
                let a = forward.at3(0, i, d);
                let b = reversed.at3(0, 4 - i, d);
                prop_assert!((a - b).abs() < 1e-5, "mismatch at ({i}, {d}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn dependency_matrix_is_row_stochastic(segs in segments(2, 4)) {
        let protos = prototypes();
        let mut rng = StdRng::seed_from_u64(11);
        let mut ps = ParamStore::new();
        let pa = ProtoAttn::new(&mut ps, "pa", &protos, 6, &mut rng);
        let a = Assignment::Hard.matrix(&segs, &protos);
        let dep = pa.dependency_matrix(&ps, &segs, &a);
        for b in 0..2 {
            for i in 0..4 {
                let sum: f32 = (0..4).map(|j| dep.at3(b, i, j)).sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                for j in 0..4 {
                    prop_assert!(dep.at3(b, i, j) >= 0.0);
                }
            }
        }
    }
}
