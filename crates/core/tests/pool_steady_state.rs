//! Regression test for the zero-allocation steady-state invariant: once a
//! few training steps have populated the tensor buffer pool, further steps of
//! the dual-branch model must recycle every buffer — `pool::fresh_allocs()`
//! stays flat.
//!
//! This file holds exactly one test so the process-global pool counters are
//! not perturbed by unrelated tests sharing the binary.

use focus_autograd::{AdamW, Graph};
use focus_core::forecaster::normalise_target;
use focus_core::model::{Focus, FocusConfig};
use focus_core::Forecaster;
use focus_data::{Benchmark, MtsDataset, Split};
use focus_nn::revin::instance_norm;
use focus_tensor::pool;

#[test]
fn steady_state_training_performs_no_fresh_allocations() {
    let (lookback, horizon) = (64, 16);
    let ds = MtsDataset::generate(Benchmark::Pems08.scaled(6, 1_600), 13);
    let mut cfg = FocusConfig::new(lookback, horizon);
    cfg.segment_len = 8;
    cfg.n_prototypes = 6;
    cfg.d = 16;
    cfg.readout = 4;
    cfg.cluster_iters = 8;
    let mut model = Focus::fit_offline(&ds, cfg, 17);
    let windows = ds.windows(Split::Train, lookback, horizon, 24);
    assert!(windows.len() >= 3, "need distinct training windows");

    let mut opt = AdamW::new(1e-3, 1e-4);
    let mut g = Graph::new();
    let mut step = |model: &mut Focus, g: &mut Graph, i: usize| {
        let w = &windows[i % windows.len()];
        let (x_norm, stats) = instance_norm(&w.x);
        let y_norm = normalise_target(&w.y, &stats);
        g.reset();
        let pv = model.params().register(g);
        let pred = model.forward_window(g, &pv, &x_norm);
        let target = g.constant(y_norm);
        let loss = g.mse(pred, target);
        g.backward(loss);
        model.params_mut().step(&mut opt, g, &pv);
        assert!(g.value(loss).item().is_finite(), "loss diverged at step {i}");
    };

    // Warm-up: the first windows grow the pool's shelves.
    for i in 0..3 {
        step(&mut model, &mut g, i);
    }

    // Steady state: every tensor the step needs must now come off a shelf.
    let warm = pool::fresh_allocs();
    for i in 3..13 {
        step(&mut model, &mut g, i);
        assert_eq!(
            pool::fresh_allocs(),
            warm,
            "step {i} allocated fresh buffers after warm-up"
        );
    }
}
