//! Empirical verification of Theorem 1: the assignment-based low-rank
//! factorisation `P̃ = A·C` approximates `P·wᵀ` with small relative error
//! when the segment matrix is (near) low rank.
//!
//! The theorem states that for `P ∈ R^{l×p}` with `rank(P) ≤ r` and any
//! projection direction `w`, there is a rank-`k` factorisation
//! (`k = O(log r / ε²)`) whose error is at most `ε‖P·wᵀ‖` with high
//! probability. ProtoAttn's `A·C` (one-hot assignments × prototypes) is the
//! constructive instance of that factorisation; this module measures its
//! error so the bench harness (and the test-suite) can check the trend the
//! theorem predicts: error falls as `k` grows and is small once `k ≥ r`.

use focus_cluster::{ClusterConfig, Objective, ProtoUpdate};
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The measured approximation quality for one `(r, k)` setting.
#[derive(Clone, Copy, Debug)]
pub struct LowRankReport {
    /// Planted rank `r` of the segment matrix.
    pub rank: usize,
    /// Number of prototypes `k` used by the factorisation.
    pub k: usize,
    /// Relative error `‖P̃w − Pw‖ / ‖Pw‖`, averaged over directions.
    pub relative_error: f64,
}

/// Builds a random `[l, p]` matrix of rank exactly `min(r, l, p)` (product of
/// two Gaussian factors).
pub fn random_low_rank(l: usize, p: usize, r: usize, seed: u64) -> Tensor {
    let r = r.min(l).min(p).max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x10a7);
    let u = Tensor::randn(&[l, r], 1.0, &mut rng);
    let v = Tensor::randn(&[r, p], 1.0, &mut rng);
    u.matmul(&v)
}

/// Builds a `[l, p]` matrix whose rows are drawn from `r` distinct motif
/// vectors plus i.i.d. noise — the paper's actual low-rank premise (§III):
/// the data contains only `r` representative segment patterns, so
/// `rank(P) ≤ r` up to noise. Unlike [`random_low_rank`]'s generic subspace,
/// rows here *cluster*, which is what makes the assignment factorisation
/// `A·C` tight once `k ≥ r`.
pub fn planted_motif_matrix(l: usize, p: usize, r: usize, noise: f32, seed: u64) -> Tensor {
    let r = r.min(l).max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3071f);
    let motifs = Tensor::randn(&[r, p], 1.0, &mut rng);
    let mut out = Tensor::randn(&[l, p], noise, &mut rng);
    for i in 0..l {
        let motif = motifs.row(i % r).to_vec();
        for (o, m) in out.data_mut()[i * p..(i + 1) * p].iter_mut().zip(motif) {
            *o += m;
        }
    }
    out
}

/// Measures the assignment-based approximation error of Theorem 1.
///
/// The rows of `segments: [l, p]` are clustered into `k` buckets (plain
/// k-means: the factorisation of the theorem is purely geometric); `P̃`
/// replaces each row by its bucket centroid. The error is averaged over
/// `n_directions` random unit directions `w`.
pub fn approximation_error(segments: &Tensor, k: usize, n_directions: usize, seed: u64) -> f64 {
    assert_eq!(segments.rank(), 2, "segments must be [l, p]");
    let (l, p) = (segments.dims()[0], segments.dims()[1]);
    let k = k.min(l);
    let protos = ClusterConfig::new(k, p)
        .with_objective(Objective::RecOnly)
        .with_update(ProtoUpdate::ClosedFormMean)
        .with_max_iters(25)
        .fit(segments, seed);

    // P̃: every row replaced by its centroid.
    let assign = protos.assign_all(segments);
    let mut approx = Tensor::zeros(&[l, p]);
    for (i, &j) in assign.iter().enumerate() {
        approx.data_mut()[i * p..(i + 1) * p].copy_from_slice(protos.centers().row(j));
    }

    let mut rng = StdRng::seed_from_u64(seed ^ 0xd12e);
    let mut total = 0.0f64;
    for _ in 0..n_directions {
        let w = Tensor::randn(&[p, 1], 1.0, &mut rng);
        let exact = segments.matmul(&w);
        let tilde = approx.matmul(&w);
        let err = norm(&tilde.sub(&exact));
        let base = norm(&exact).max(1e-12);
        total += err / base;
    }
    total / n_directions as f64
}

/// Sweeps `k` for a generic low-rank matrix, producing the Theorem 1 curve
/// (error decreases in `k`).
pub fn sweep(l: usize, p: usize, rank: usize, ks: &[usize], seed: u64) -> Vec<LowRankReport> {
    let segments = random_low_rank(l, p, rank, seed);
    ks.iter()
        .map(|&k| LowRankReport {
            rank,
            k,
            relative_error: approximation_error(&segments, k, 8, seed),
        })
        .collect()
}

/// Sweeps `k` for a motif-structured matrix (see [`planted_motif_matrix`]),
/// where the theorem's "small error once `k ≥ r`" regime is visible.
pub fn sweep_motifs(
    l: usize,
    p: usize,
    rank: usize,
    noise: f32,
    ks: &[usize],
    seed: u64,
) -> Vec<LowRankReport> {
    let segments = planted_motif_matrix(l, p, rank, noise, seed);
    ks.iter()
        .map(|&k| LowRankReport {
            rank,
            k,
            relative_error: approximation_error(&segments, k, 8, seed),
        })
        .collect()
}

fn norm(t: &Tensor) -> f64 {
    t.data()
        .iter()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_rank_is_respected() {
        let m = random_low_rank(20, 10, 3, 1);
        assert_eq!(m.dims(), &[20, 10]);
        // Rank ≤ 3 ⇒ any 4 rows are linearly dependent; verify via the
        // Gram matrix's trace vs top singular directions (cheap proxy:
        // project onto 3 random rows and check reconstruction of others is
        // possible — here we just verify the matrix is not full rank by
        // checking determinant-like volume collapse of a 4×4 minor).
        // A robust cheap check: the matrix equals U·V by construction, so
        // numerically verify rank via Gram eigenvalue decay.
        let gram = m.matmul_tn(&m); // [10, 10]
        let trace: f32 = (0..10).map(|i| gram.at2(i, i)).sum();
        assert!(trace > 0.0);
    }

    #[test]
    fn error_decreases_with_k() {
        let segments = random_low_rank(64, 12, 4, 2);
        let e2 = approximation_error(&segments, 2, 6, 3);
        let e8 = approximation_error(&segments, 8, 6, 3);
        let e32 = approximation_error(&segments, 32, 6, 3);
        assert!(e8 < e2, "k=8 error {e8} >= k=2 error {e2}");
        assert!(e32 < e8 * 1.05, "k=32 error {e32} much worse than k=8 {e8}");
    }

    #[test]
    fn k_equal_l_is_exact() {
        // With one prototype per row the factorisation is lossless.
        let segments = random_low_rank(16, 8, 5, 4);
        let e = approximation_error(&segments, 16, 4, 5);
        assert!(e < 1e-3, "error {e}");
    }

    #[test]
    fn motif_matrix_is_tight_once_k_reaches_r() {
        // The paper's regime: rows are r noisy motifs; k = r prototypes
        // recover them and the factorisation error collapses.
        let reports = sweep_motifs(128, 16, 4, 0.05, &[1, 2, 4, 16], 9);
        let at_r = reports.iter().find(|r| r.k == 4).expect("sweep covers k=4").relative_error;
        let below_r = reports.iter().find(|r| r.k == 2).expect("sweep covers k=2").relative_error;
        assert!(at_r < 0.15, "error at k=r should be small, got {at_r}");
        assert!(below_r > 2.0 * at_r, "k<r should be much worse: {below_r} vs {at_r}");
    }

    #[test]
    fn sweep_produces_monotone_trend() {
        let reports = sweep(48, 10, 3, &[1, 4, 16, 48], 6);
        assert_eq!(reports.len(), 4);
        assert!(
            reports.last().expect("sweep produced reports").relative_error < reports[0].relative_error,
            "sweep not improving: {reports:?}"
        );
    }
}
