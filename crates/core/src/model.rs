//! The complete FOCUS model: offline prototypes + dual-branch online network.

use crate::extractor::DualBranchExtractor;
use crate::forecaster::Forecaster;
use crate::fusion::ParallelFusion;
use crate::protoattn::{Assignment, RoutingPlan};
use focus_autograd::{Graph, ParamStore, ParamVars, Var};
use focus_cluster::{segment_matrix, ClusterConfig, Objective, ProtoUpdate, Prototypes};
use focus_data::MtsDataset;
use focus_nn::CostReport;
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use crate::forecaster::{TrainOptions, TrainReport};

/// Hyper-parameters of a FOCUS instance.
///
/// Defaults follow §VIII-A ("Implementation Details"): correlation weight
/// `α = 0.2`, `m = 6` readout queries for horizon ≤ 96 and `21` beyond,
/// hard assignment, single-layer extractors.
#[derive(Clone, Debug)]
pub struct FocusConfig {
    /// Lookback window length `L` (must be divisible by `segment_len`).
    pub lookback: usize,
    /// Forecast horizon `L_f`.
    pub horizon: usize,
    /// Segment (patch) length `p`.
    pub segment_len: usize,
    /// Number of prototypes `k`.
    pub n_prototypes: usize,
    /// Embedding width `d`.
    pub d: usize,
    /// Number of readout queries `m`.
    pub readout: usize,
    /// Correlation weight `α` of the offline objective (Eq. 10);
    /// `0` selects the *Rec Only* objective of Fig. 8.
    pub alpha: f32,
    /// Online assignment mode (hard in the paper).
    pub assignment: Assignment,
    /// Prototype update rule of the offline phase.
    pub cluster_update: ProtoUpdate,
    /// Outer iterations of the offline clustering.
    pub cluster_iters: usize,
    /// ProtoAttn layers per extractor branch (1 in the paper; >1 enables the
    /// stacked-extractor extension).
    pub n_layers: usize,
}

impl FocusConfig {
    /// A config with paper-style defaults for the given window sizes.
    ///
    /// # Panics
    /// If the derived segment length does not divide `lookback`.
    pub fn new(lookback: usize, horizon: usize) -> Self {
        let segment_len = if lookback.is_multiple_of(16) && lookback >= 128 { 16 } else { 8 };
        let cfg = FocusConfig {
            lookback,
            horizon,
            segment_len,
            n_prototypes: 16,
            d: 64,
            readout: if horizon <= 96 { 6 } else { 21 },
            alpha: 0.2,
            assignment: Assignment::Hard,
            cluster_update: ProtoUpdate::paper_default(),
            cluster_iters: 20,
            n_layers: 1,
        };
        cfg.validate();
        cfg
    }

    /// Paper defaults specialised per dataset: `d = 128` for the PEMS
    /// datasets and `64` elsewhere (§VIII-A).
    pub fn for_dataset(spec: &focus_data::DatasetSpec, lookback: usize, horizon: usize) -> Self {
        let mut cfg = Self::new(lookback, horizon);
        if spec.name.starts_with("PEMS") {
            cfg.d = 128;
        }
        cfg
    }

    /// Number of temporal segments `l = L / p`.
    pub fn n_segments(&self) -> usize {
        self.lookback / self.segment_len
    }

    /// Panics with a description if the config is inconsistent.
    pub fn validate(&self) {
        assert!(self.lookback > 0 && self.horizon > 0, "window sizes must be positive");
        assert!(
            self.lookback.is_multiple_of(self.segment_len),
            "lookback {} not divisible by segment length {}",
            self.lookback,
            self.segment_len
        );
        assert!(self.n_prototypes > 0, "need at least one prototype");
        assert!(self.d > 0 && self.readout > 0, "d and m must be positive");
        assert!(self.n_layers >= 1, "need at least one extractor layer");
    }

    /// Runs the offline clustering phase on a training matrix `[N, T_train]`
    /// (Algorithm 1), returning the prototype set this config describes.
    pub fn cluster(&self, train_matrix: &Tensor, seed: u64) -> Prototypes {
        let segments = segment_matrix(train_matrix, self.segment_len);
        ClusterConfig::new(self.n_prototypes, self.segment_len)
            .with_objective(if self.alpha > 0.0 {
                Objective::rec_corr(self.alpha)
            } else {
                Objective::RecOnly
            })
            .with_update(self.cluster_update)
            .with_max_iters(self.cluster_iters)
            .fit(&segments, seed)
    }
}

/// The FOCUS forecaster.
pub struct Focus {
    cfg: FocusConfig,
    ps: ParamStore,
    extractor: DualBranchExtractor,
    fusion: ParallelFusion,
    prototypes: Prototypes,
}

impl Focus {
    /// Runs the offline clustering phase on `ds`'s training split, then
    /// builds the online network around the learned prototypes.
    pub fn fit_offline(ds: &MtsDataset, cfg: FocusConfig, seed: u64) -> Focus {
        cfg.validate();
        let prototypes = cfg.cluster(&ds.train_matrix(), seed);
        Self::with_prototypes(cfg, prototypes, seed)
    }

    /// Builds the online network around an existing prototype set (e.g. one
    /// loaded from disk, or fitted under a different objective for Fig. 8).
    ///
    /// # Panics
    /// If the prototypes' segment length disagrees with the config.
    pub fn with_prototypes(cfg: FocusConfig, prototypes: Prototypes, seed: u64) -> Focus {
        cfg.validate();
        assert_eq!(
            prototypes.segment_len(),
            cfg.segment_len,
            "prototype segment length {} != config {}",
            prototypes.segment_len(),
            cfg.segment_len
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf0c5);
        let mut ps = ParamStore::new();
        let extractor = DualBranchExtractor::new_stacked(
            &mut ps,
            "extractor",
            &prototypes,
            cfg.d,
            cfg.n_segments(),
            cfg.n_layers,
            cfg.assignment,
            &mut rng,
        );
        let fusion = ParallelFusion::new(&mut ps, "fusion", cfg.readout, cfg.d, cfg.horizon, &mut rng);
        Focus {
            cfg,
            ps,
            extractor,
            fusion,
            prototypes,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &FocusConfig {
        &self.cfg
    }

    /// The offline prototype set.
    pub fn prototypes(&self) -> &Prototypes {
        &self.prototypes
    }

    /// The dual-branch extractor (exposed for the case-study harness).
    pub fn extractor(&self) -> &DualBranchExtractor {
        &self.extractor
    }
}

impl Forecaster for Focus {
    fn name(&self) -> &str {
        "FOCUS"
    }

    fn lookback(&self) -> usize {
        self.cfg.lookback
    }

    fn horizon(&self) -> usize {
        self.cfg.horizon
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn forward_window(&self, g: &mut Graph, pv: &ParamVars, x_norm: &Tensor) -> Var {
        focus_trace::span!("model/forward");
        assert_eq!(x_norm.rank(), 2, "window must be [N, L]");
        assert_eq!(
            x_norm.dims()[1],
            self.cfg.lookback,
            "window length {} != lookback {}",
            x_norm.dims()[1],
            self.cfg.lookback
        );
        let routing = self.extractor.routing(x_norm);
        let (h_t, h_e) = self.extractor.forward(g, pv, x_norm, &routing);
        self.fusion.forward(g, pv, h_t, h_e)
    }

    fn cost(&self, entities: usize) -> CostReport {
        let l = self.cfg.n_segments();
        self.extractor.cost(entities, l) + self.fusion.cost(entities, l)
    }

    fn plan_route_indices(&self, x_norm: &Tensor) -> Vec<Vec<u32>> {
        // Hard assignment records two one-hot route sources on the tape: the
        // temporal indices and their axes-swapped view for the entity branch
        // (stacked layers reuse both). Soft assignment bakes a per-window
        // mixture matrix instead, which the plan cache detects and refuses
        // to replay — no route sources to surface.
        let routing = self.extractor.routing(x_norm);
        match routing {
            RoutingPlan::Hard { .. } => {
                let swapped = routing.swap01();
                match (routing, swapped) {
                    (
                        RoutingPlan::Hard { indices: temporal, .. },
                        RoutingPlan::Hard { indices: entity, .. },
                    ) => vec![temporal, entity],
                    _ => unreachable!("swap01 of hard routing stays hard"),
                }
            }
            RoutingPlan::Soft { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Forecaster;
    use focus_data::{Benchmark, Split};

    fn tiny_dataset() -> MtsDataset {
        MtsDataset::generate(Benchmark::Pems08.scaled(6, 1_600), 13)
    }

    pub(crate) fn tiny_config() -> FocusConfig {
        let mut cfg = FocusConfig::new(64, 16);
        cfg.segment_len = 8;
        cfg.n_prototypes = 6;
        cfg.d = 16;
        cfg.readout = 4;
        cfg.cluster_iters = 8;
        cfg
    }

    #[test]
    fn config_defaults_follow_paper() {
        let c96 = FocusConfig::new(512, 96);
        assert_eq!(c96.readout, 6);
        assert_eq!(c96.alpha, 0.2);
        let c336 = FocusConfig::new(512, 336);
        assert_eq!(c336.readout, 21);
        let pems = FocusConfig::for_dataset(&Benchmark::Pems04.spec(), 512, 96);
        assert_eq!(pems.d, 128);
        let ett = FocusConfig::for_dataset(&Benchmark::Etth1.spec(), 512, 96);
        assert_eq!(ett.d, 64);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn config_rejects_indivisible_lookback() {
        let mut cfg = FocusConfig::new(64, 16);
        cfg.segment_len = 7;
        cfg.validate();
    }

    #[test]
    fn predict_shape_and_determinism() {
        let ds = tiny_dataset();
        let model = Focus::fit_offline(&ds, tiny_config(), 1);
        let w = ds.window_at(0, 64, 16);
        let p1 = model.predict(&w.x);
        let p2 = model.predict(&w.x);
        assert_eq!(p1.dims(), &[6, 16]);
        assert_eq!(p1.data(), p2.data(), "prediction must be deterministic");
        assert!(p1.all_finite());
    }

    #[test]
    fn training_reduces_loss() {
        let ds = tiny_dataset();
        let mut model = Focus::fit_offline(&ds, tiny_config(), 2);
        let opts = TrainOptions {
            epochs: 4,
            max_windows: 24,
            ..Default::default()
        };
        let report = model.train(&ds, &opts);
        assert_eq!(report.epoch_losses.len(), 4);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().expect("training ran at least one epoch");
        assert!(last < first, "loss did not improve: {:?}", report.epoch_losses);
    }

    #[test]
    fn trained_model_beats_untrained_on_test() {
        let ds = tiny_dataset();
        let cfg = tiny_config();
        let untrained = Focus::fit_offline(&ds, cfg.clone(), 3);
        let base = untrained.evaluate(&ds, Split::Test, 32);
        let mut trained = Focus::fit_offline(&ds, cfg, 3);
        trained.train(
            &ds,
            &TrainOptions {
                epochs: 5,
                max_windows: 48,
                ..Default::default()
            },
        );
        let tuned = trained.evaluate(&ds, Split::Test, 32);
        assert!(
            tuned.mse() < base.mse(),
            "trained MSE {} >= untrained {}",
            tuned.mse(),
            base.mse()
        );
    }

    #[test]
    fn cost_scales_linearly_with_lookback() {
        let ds = tiny_dataset();
        let mut cfg_long = tiny_config();
        cfg_long.lookback = 128;
        let short = Focus::fit_offline(&ds, tiny_config(), 4);
        let long = Focus::fit_offline(&ds, cfg_long, 4);
        let (cs, cl) = (short.cost(6), long.cost(6));
        let ratio = cl.flops as f64 / cs.flops as f64;
        assert!(ratio < 2.6, "lookback doubling grew FLOPs {ratio}x");
        assert!(ratio > 1.2, "cost must still grow with lookback: {ratio}");
    }

    #[test]
    fn param_count_matches_store() {
        let ds = tiny_dataset();
        let model = Focus::fit_offline(&ds, tiny_config(), 5);
        assert_eq!(model.cost(6).params, model.params().scalar_count());
    }
}
